"""Shared test configuration.

Hypothesis profiles: CI runs derandomized (``derandomize=True``) so a
red build is reproducible by anyone checking out the commit — the
failing example is derived from the test itself, not from a random seed
buried in a log.  Local development keeps random exploration, and
``print_blob=True`` means any failure prints the
``@reproduce_failure`` blob to replay it exactly.

Selected via the ``CI`` environment variable (set by GitHub Actions);
override with ``HYPOTHESIS_PROFILE=dev|ci``.
"""

import os

try:
    from hypothesis import settings

    settings.register_profile("ci", derandomize=True, print_blob=True)
    settings.register_profile("dev", print_blob=True)
    settings.load_profile(
        os.environ.get(
            "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
        )
    )
except ImportError:  # hypothesis is an optional test dependency
    pass
