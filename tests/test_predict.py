"""Tiered prediction: dry-run profiler, analytic tier, corpus,
surrogate, escalation policy, and the harness/CLI integration."""

import os

import pytest

from repro.harness import run, scaling_sweep
from repro.machine import get_cluster
from repro.predict import (
    ANALYTIC_BAND,
    CorpusSample,
    PredictionCorpus,
    PredictionSpec,
    ProfileUnsupported,
    SurrogatePredictionTier,
    corpus_from_golden,
    predict,
    prediction_to_result,
    strong_scaling_eligible,
)
from repro.predict.profile import RecordingComm, sampled_ranks
from repro.spechpc import SUITE_ORDER, get_benchmark

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


# --------------------------------------------------------------------------
# profiler
# --------------------------------------------------------------------------

@pytest.mark.parametrize("nprocs", [1, 2, 7, 16, 17, 72, 104, 4608])
def test_sampled_ranks_cover_and_weight(nprocs):
    pairs = sampled_ranks(nprocs)
    ranks = [r for r, _ in pairs]
    assert ranks == sorted(set(ranks))
    assert ranks[0] == 0 and ranks[-1] == nprocs - 1
    assert len(pairs) <= 16
    assert sum(w for _, w in pairs) == nprocs
    assert all(w >= 1 for _, w in pairs)


def test_recording_comm_rejects_unsupported_ops():
    comm = RecordingComm(rank=0, size=4)
    with pytest.raises(ProfileUnsupported):
        comm.irecv(source=-1)
    with pytest.raises(ProfileUnsupported):
        comm.recv(source=-1)
    with pytest.raises(ProfileUnsupported):
        comm.isend(1, 64, payload={"steers": "control flow"})
    with pytest.raises(ProfileUnsupported):
        comm.allreduce_data(1.0)


# --------------------------------------------------------------------------
# analytic tier
# --------------------------------------------------------------------------

def test_analytic_within_stated_band_of_every_golden_case():
    """Tier A's core contract: the calibrated band holds corpus-wide."""
    corpus = corpus_from_golden(GOLDEN_DIR)
    assert len(corpus) == 36
    for s in corpus:
        spec = PredictionSpec(
            benchmark=s.benchmark, cluster=s.cluster, nnodes=s.nnodes,
            suite=s.suite, nprocs=s.nprocs,
        )
        pred = predict(spec, tier="analytic")
        assert pred.band == ANALYTIC_BAND[s.benchmark]
        assert abs(pred.runtime / s.elapsed - 1.0) <= pred.band
        assert abs(pred.energy.total_energy / s.total_energy - 1.0) <= pred.band
        lo, hi = pred.runtime_interval
        assert lo <= s.elapsed <= hi


def test_analytic_phase_split_and_counters():
    pred = predict(PredictionSpec("tealeaf", "A", 1), tier="analytic")
    assert pred.tier == "analytic"
    assert pred.time_by_kind["compute"] > 0
    assert any(k.startswith("MPI_") for k in pred.time_by_kind)
    assert pred.counters["flops"] > 0
    assert pred.counters["messages"] > 0
    assert pred.details["sampled_ranks"] >= 1


def test_analytic_capacity_raised_beyond_cluster_max():
    # the paper grid reaches 64 nodes; ClusterA seeds at 24
    pred = predict(PredictionSpec("lbm", "A", 64), tier="analytic")
    assert pred.energy.nnodes == 64
    one = predict(PredictionSpec("lbm", "A", 1), tier="analytic")
    assert pred.runtime < one.runtime


def test_spec_validation():
    with pytest.raises(ValueError):
        PredictionSpec("lbm", "A", 0)
    with pytest.raises(ValueError):
        predict(PredictionSpec("lbm", "A", 1), tier="psychic")


def test_strong_scaling_eligibility():
    assert strong_scaling_eligible("tealeaf")
    assert not strong_scaling_eligible("soma")       # replicated update
    assert not strong_scaling_eligible("minisweep")  # sweep-chain ripple


# --------------------------------------------------------------------------
# corpus
# --------------------------------------------------------------------------

def _sample(nnodes=1, elapsed=10.0, benchmark="tealeaf"):
    return CorpusSample(
        benchmark=benchmark, cluster="ClusterA", suite="tiny",
        nnodes=nnodes, nprocs=72 * nnodes, threads=1,
        elapsed=elapsed, total_energy=1000.0 * elapsed,
    )


def test_corpus_roundtrip_last_wins_and_corrupt_tail(tmp_path):
    path = str(tmp_path / "corpus.jsonl")
    c = PredictionCorpus(path)
    c.add(_sample(1, 10.0))
    c.add(_sample(4, 3.0))
    c.add(_sample(1, 11.0))          # same key: replaces
    with open(path, "a") as fh:
        fh.write('{"schema": 1, "kind": "sample", "tr')  # killed writer

    reloaded = PredictionCorpus(path)
    assert len(reloaded) == 2
    assert reloaded.get(_sample(1).key).elapsed == 11.0
    assert [s.nnodes for s in reloaded.group(_sample(1).group)] == [1, 4]

    # compact rewrites one line per key, dropping the torn tail
    assert reloaded.compact() == 2
    assert len(open(path).readlines()) == 2
    assert len(PredictionCorpus(path)) == 2


def test_corpus_from_golden_covers_the_grid():
    corpus = corpus_from_golden(GOLDEN_DIR)
    assert len(corpus) == 36                      # 9 benchmarks x 2 x (1, 4)
    assert len(corpus.groups()) == 18
    names = {s.benchmark for s in corpus}
    assert names == set(SUITE_ORDER)
    for s in corpus:
        assert s.elapsed > 0 and s.total_energy > 0
        assert s.nprocs == s.nnodes * get_cluster(s.cluster).cores_per_node


# --------------------------------------------------------------------------
# surrogate tier
# --------------------------------------------------------------------------

def test_surrogate_exact_at_trained_points():
    corpus = corpus_from_golden(GOLDEN_DIR)
    tier = SurrogatePredictionTier(corpus)
    for s in list(corpus)[:6]:
        pred = tier.predict(PredictionSpec(
            benchmark=s.benchmark, cluster=s.cluster, nnodes=s.nnodes,
            suite=s.suite, nprocs=s.nprocs,
        ))
        assert pred.tier == "surrogate"
        assert pred.details["in_hull"]
        assert pred.runtime == pytest.approx(s.elapsed, rel=1e-9)
        assert pred.energy.total_energy == pytest.approx(
            s.total_energy, rel=1e-9
        )


def test_surrogate_interpolates_between_corpus_points():
    corpus = corpus_from_golden(GOLDEN_DIR)
    tier = SurrogatePredictionTier(corpus)
    pred = tier.predict(PredictionSpec("tealeaf", "A", 2))
    assert pred.details["in_hull"]
    one = next(s for s in corpus
               if s.benchmark == "tealeaf" and s.cluster == "ClusterA"
               and s.nnodes == 1)
    four = next(s for s in corpus
                if s.benchmark == "tealeaf" and s.cluster == "ClusterA"
                and s.nnodes == 4)
    assert four.elapsed < pred.runtime < one.elapsed


def test_surrogate_without_corpus_coverage_degrades_to_analytic():
    pred = predict(
        PredictionSpec("tealeaf", "A", 2), tier="surrogate",
        corpus=PredictionCorpus(),
    )
    assert pred.tier == "analytic"
    assert pred.details["fallback"] == "analytic"


# --------------------------------------------------------------------------
# escalation policy
# --------------------------------------------------------------------------

def test_auto_takes_surrogate_in_hull():
    corpus = corpus_from_golden(GOLDEN_DIR)
    pred = predict(PredictionSpec("tealeaf", "A", 2), tier="auto",
                   corpus=corpus, allow_des=False)
    assert pred.tier == "surrogate"


def test_auto_out_of_hull_falls_back_without_des():
    corpus = corpus_from_golden(GOLDEN_DIR)
    pred = predict(PredictionSpec("tealeaf", "A", 16), tier="auto",
                   corpus=corpus, allow_des=False)
    assert pred.tier == "analytic"
    assert pred.details["fallback"] == "analytic"


def test_auto_escalates_to_des_and_feeds_corpus():
    corpus = PredictionCorpus()
    spec = PredictionSpec("tealeaf", "A", 1)
    first = predict(spec, tier="auto", corpus=corpus, sim_steps=2)
    assert first.tier == "des" and first.band == 0.0
    assert len(corpus) == 1
    predict(PredictionSpec("tealeaf", "A", 2), tier="auto", corpus=corpus,
            sim_steps=2)
    assert len(corpus) == 2
    # the fed corpus now answers the original query by interpolation
    again = predict(spec, tier="auto", corpus=corpus, allow_des=False)
    assert again.tier == "surrogate"
    assert again.runtime == pytest.approx(first.runtime, rel=1e-9)


def test_des_tier_matches_the_runner():
    bench = get_benchmark("lbm")
    cluster = get_cluster("A")
    reference = run(bench, cluster, cluster.cores_per_node, sim_steps=2)
    pred = predict(PredictionSpec("lbm", "A", 1), tier="des", sim_steps=2)
    assert pred.runtime == reference.elapsed
    assert pred.energy.total_energy == reference.energy.total_energy


def test_prediction_to_result_roundtrip():
    pred = predict(PredictionSpec("tealeaf", "B", 2), tier="analytic")
    result = prediction_to_result(pred)
    cluster = get_cluster("B")
    assert result.nprocs == 2 * cluster.cores_per_node
    assert result.elapsed == pred.runtime
    assert result.energy.total_energy == pred.energy.total_energy
    assert result.meta["tier"] == "analytic"
    assert result.meta["band"] == pred.band
    assert result.step_scale > 1.0


# --------------------------------------------------------------------------
# harness integration
# --------------------------------------------------------------------------

def test_scaling_sweep_analytic_tier():
    cluster = get_cluster("A")
    series = scaling_sweep(
        get_benchmark("tealeaf"), cluster,
        [4, cluster.cores_per_node], tier="analytic", repeats=2,
    )
    assert [p.nprocs for p in series.points] == [4, cluster.cores_per_node]
    for p in series.points:
        assert len(p.runs) == 2
        assert all(r.meta["tier"] == "analytic" for r in p.runs)
        assert p.runs[0].elapsed == p.runs[1].elapsed
    assert series.points[0].runs[1].meta["seed"] == 4001


def test_scaling_sweep_auto_feeds_shared_corpus():
    cluster = get_cluster("A")
    corpus = PredictionCorpus()
    first = scaling_sweep(
        get_benchmark("tealeaf"), cluster, [4, 8],
        tier="auto", corpus=corpus, sim_steps=2,
    )
    assert all(p.runs[0].meta["tier"] == "des" for p in first.points)
    assert len(corpus) == 2
    rerun = scaling_sweep(
        get_benchmark("tealeaf"), cluster, [4, 8],
        tier="auto", corpus=corpus, sim_steps=2,
    )
    assert all(p.runs[0].meta["tier"] == "surrogate" for p in rerun.points)
    assert rerun.points[0].runs[0].elapsed == pytest.approx(
        first.points[0].runs[0].elapsed, rel=1e-9
    )


def test_scaling_sweep_des_tier_is_the_default_engine_path():
    cluster = get_cluster("A")
    bench = get_benchmark("lbm")
    tiered = scaling_sweep(bench, cluster, [4], tier="des", sim_steps=2)
    legacy = scaling_sweep(bench, cluster, [4], sim_steps=2)
    assert tiered.points[0].runs[0].elapsed == legacy.points[0].runs[0].elapsed
    assert "tier" not in legacy.points[0].runs[0].meta


# --------------------------------------------------------------------------
# the differential (simulation-free subset; CI runs the full one)
# --------------------------------------------------------------------------

def test_prediction_differential_cheap_subset():
    from repro.validate import prediction_differential

    failures = prediction_differential(
        GOLDEN_DIR, benchmarks=("tealeaf", "lbm"), holdout_scales=(),
    )
    assert failures == []
