"""Hybrid MPI+OpenMP execution mode (the paper's future-work direction)."""

import pytest

from repro.harness import run
from repro.machine import CLUSTER_A, ICE_LAKE_8360Y
from repro.model import ExecutionModel, KernelModel
from repro.smpi import MpiRuntime
from repro.spechpc import get_benchmark

EM = ExecutionModel(ICE_LAKE_8360Y)

STREAM = KernelModel("s", 2.0, 0.9, 24.0, 24.0, 24.0, 24.0)
COMPUTE = KernelModel("c", 5000.0, 0.9, 4.0, 8.0, 16.0, 8.0, compute_efficiency=0.6)


# --- model level -----------------------------------------------------------


def test_hybrid_cost_compute_bound_scales_with_threads():
    units = 1_000_000
    t1 = EM.phase_cost(COMPUTE, units, 1).seconds
    t4 = EM.hybrid_phase_cost(COMPUTE, units, 1, threads=4).seconds
    assert t4 == pytest.approx(t1 / 4, rel=1e-6)


def test_hybrid_cost_counters_are_rank_totals():
    units = 1_000_000
    c = EM.hybrid_phase_cost(COMPUTE, units, 1, threads=4)
    assert c.flops == pytest.approx(COMPUTE.flops_per_unit * units)
    assert c.busy_seconds > c.seconds  # core-seconds across 4 threads


def test_hybrid_memory_bound_hits_same_bandwidth_wall():
    """4 threads of one rank contend like 4 ranks: same saturated time."""
    units = 40_000_000
    t_ranks = EM.phase_cost(STREAM, units // 4, 4).seconds
    t_hybrid = EM.hybrid_phase_cost(STREAM, units, 1, threads=4).seconds
    assert t_hybrid == pytest.approx(t_ranks, rel=1e-6)


def test_hybrid_thread_validation():
    with pytest.raises(ValueError):
        EM.hybrid_phase_cost(STREAM, 10, 1, threads=0)


# --- runtime placement ------------------------------------------------------------


def test_hybrid_placement_reserves_core_blocks():
    rt = MpiRuntime(CLUSTER_A, 18, threads_per_rank=4)
    assert rt.nnodes == 1
    # rank 5 sits at core 20 -> domain 1 of node 0
    assert rt.domain_of(5) == 1
    # ranks per domain: 18 cores / 4 threads -> 4-5 ranks
    assert 4 <= rt.ranks_in_domain(0) <= 5


def test_hybrid_capacity_check():
    with pytest.raises(ValueError):
        MpiRuntime(CLUSTER_A, CLUSTER_A.max_ranks() // 2 + 1, threads_per_rank=2)
    with pytest.raises(ValueError):
        MpiRuntime(CLUSTER_A, 4, threads_per_rank=0)


# --- end to end ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ["tealeaf", "cloverleaf", "minisweep"])
def test_hybrid_run_comparable_to_pure_mpi(name):
    """At the same core count, hybrid and pure MPI land within ~25 % for
    the non-replicating codes (same work, same bandwidth walls)."""
    b = get_benchmark(name)
    pure = run(b, CLUSTER_A, 72)
    hybrid = run(b, CLUSTER_A, 18, threads_per_rank=4)
    assert hybrid.elapsed == pytest.approx(pure.elapsed, rel=0.25)
    assert hybrid.counters["flops"] == pytest.approx(
        pure.counters["flops"], rel=0.01
    )


def test_hybrid_reduces_soma_replication():
    """The emergent payoff the paper hints at: fewer MPI ranks means
    fewer copies of soma's replicated field -> less aggregate memory
    traffic."""
    b = get_benchmark("soma")
    pure = run(b, CLUSTER_A, 72)
    hybrid = run(b, CLUSTER_A, 18, threads_per_rank=4)
    assert hybrid.mem_volume < 0.7 * pure.mem_volume


def test_hybrid_shrinks_collective_population():
    """18 ranks reduce the allreduce tree versus 72 ranks."""
    b = get_benchmark("soma")
    pure = run(b, CLUSTER_A, 72)
    hybrid = run(b, CLUSTER_A, 18, threads_per_rank=4)
    assert (
        hybrid.time_by_kind.get("MPI_Allreduce", 0.0)
        < pure.time_by_kind.get("MPI_Allreduce", 1.0)
    )
