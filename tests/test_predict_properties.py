"""Property tests for the prediction tiers.

Two contracts that must hold for *any* input, not just the calibrated
grid:

* **Tier A monotonicity** — for the strong-scaling-eligible benchmarks
  (see :data:`repro.predict.api.STRONG_SCALING`), adding nodes never
  makes the analytic runtime prediction worse on the power-of-two grid.
  A non-monotone screen would invert scaling-study conclusions even when
  every individual point is within its band.
* **Surrogate exactness** — the surrogate *interpolates*: at any trained
  corpus point it returns the DES value to round-off, for any corpus
  shape (any residual magnitudes, any node set).  A regression-style fit
  that merely passes near the points would silently break the
  ``validate.prediction_differential`` exactness guarantee.
"""

import math
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import get_cluster
from repro.predict import CorpusSample, PredictionCorpus, ResidualSurrogate
from repro.predict.api import STRONG_SCALING
from repro.predict.surrogate import BAND_FLOOR

NODE_GRID = (1, 2, 4, 8, 16, 32, 64)


@lru_cache(maxsize=None)
def _analytic_runtime(benchmark: str, cluster: str, nnodes: int) -> float:
    from repro.predict import PredictionSpec, predict

    return predict(
        PredictionSpec(benchmark, cluster, nnodes), tier="analytic"
    ).runtime


@settings(max_examples=40, deadline=None)
@given(
    benchmark=st.sampled_from(STRONG_SCALING),
    cluster=st.sampled_from(["A", "B"]),
    pair=st.tuples(
        st.sampled_from(NODE_GRID), st.sampled_from(NODE_GRID)
    ).filter(lambda p: p[0] < p[1]),
)
def test_analytic_runtime_monotone_in_nodes(benchmark, cluster, pair):
    small, large = pair
    assert _analytic_runtime(benchmark, cluster, large) <= _analytic_runtime(
        benchmark, cluster, small
    )


# --------------------------------------------------------------------------
# surrogate exactness (synthetic corpora — no simulation, pure math)
# --------------------------------------------------------------------------

def _synthetic_corpus(node_counts, runtimes, energies):
    cores = get_cluster("A").cores_per_node
    corpus = PredictionCorpus()
    for nnodes, elapsed, energy in zip(node_counts, runtimes, energies):
        corpus.add(CorpusSample(
            benchmark="synthetic", cluster="ClusterA", suite="tiny",
            nnodes=nnodes, nprocs=nnodes * cores, threads=1,
            elapsed=elapsed, total_energy=energy,
        ))
    return corpus


positive = st.floats(min_value=1e-3, max_value=1e6,
                     allow_nan=False, allow_infinity=False)


@settings(max_examples=100, deadline=None)
@given(
    node_counts=st.lists(
        st.integers(min_value=1, max_value=1024),
        min_size=1, max_size=8, unique=True,
    ),
    data=st.data(),
)
def test_surrogate_exact_at_every_corpus_point(node_counts, data):
    n = len(node_counts)
    runtimes = data.draw(st.lists(positive, min_size=n, max_size=n))
    energies = data.draw(st.lists(positive, min_size=n, max_size=n))
    corpus = _synthetic_corpus(node_counts, runtimes, energies)

    # an arbitrary smooth analytic baseline the residuals correct
    def analytic_fn(sample):
        return 100.0 / sample.nnodes, 5000.0 + 3.0 * sample.nnodes

    surrogate = ResidualSurrogate(corpus, analytic_fn)
    group = ("synthetic", "ClusterA", "tiny", 1)
    cores = get_cluster("A").cores_per_node
    for nnodes, elapsed, energy in zip(node_counts, runtimes, energies):
        a_rt, a_en = 100.0 / nnodes, 5000.0 + 3.0 * nnodes
        est = surrogate.estimate(group, nnodes * cores, a_rt, a_en)
        assert est.runtime == pytest.approx(elapsed, rel=1e-9)
        assert est.total_energy == pytest.approx(energy, rel=1e-9)
        assert est.n_samples == n
        if n >= 2:
            assert est.in_hull
            assert math.isfinite(est.cv_error)
            assert est.band >= BAND_FLOOR
        else:
            assert not est.in_hull
            assert est.band == math.inf


@settings(max_examples=50, deadline=None)
@given(
    query=st.integers(min_value=1, max_value=1024),
    node_counts=st.lists(
        st.integers(min_value=1, max_value=1024),
        min_size=2, max_size=8, unique=True,
    ),
    data=st.data(),
)
def test_surrogate_residual_stays_within_training_envelope(
    query, node_counts, data
):
    """IDW weights are positive and sum to one, so any interpolated
    residual — inside or outside the hull — is bounded by the trained
    residual extremes (no runaway extrapolation)."""
    n = len(node_counts)
    runtimes = data.draw(st.lists(positive, min_size=n, max_size=n))
    energies = data.draw(st.lists(positive, min_size=n, max_size=n))
    corpus = _synthetic_corpus(node_counts, runtimes, energies)

    def analytic_fn(sample):
        return 1.0, 1.0          # residual == ln(sample value) directly

    surrogate = ResidualSurrogate(corpus, analytic_fn)
    group = ("synthetic", "ClusterA", "tiny", 1)
    cores = get_cluster("A").cores_per_node
    est = surrogate.estimate(group, query * cores, 1.0, 1.0)
    assert min(runtimes) * (1 - 1e-9) <= est.runtime <= max(runtimes) * (1 + 1e-9)
    assert min(energies) * (1 - 1e-9) <= est.total_energy <= max(energies) * (1 + 1e-9)
