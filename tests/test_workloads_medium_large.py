"""Medium/large workload definitions and ablation benchmark variants."""

import pytest

from repro.harness import run
from repro.machine import CLUSTER_A
from repro.spechpc import all_benchmarks, get_benchmark
from repro.spechpc.lbm import Lbm
from repro.spechpc.minisweep import Minisweep

#: The paper: "the medium and large workloads are only supported by six
#: of the nine benchmarks".
SUPPORTS_MEDIUM = {"lbm", "tealeaf", "cloverleaf", "pot3d", "hpgmgfv", "weather"}


def test_exactly_six_benchmarks_support_medium_and_large():
    med = {b.name for b in all_benchmarks() if b.supports("medium")}
    lrg = {b.name for b in all_benchmarks() if b.supports("large")}
    assert med == SUPPORTS_MEDIUM
    assert lrg == SUPPORTS_MEDIUM


def test_workload_sizes_grow_monotonically():
    for b in all_benchmarks():
        if not b.supports("medium"):
            continue
        suites = ["tiny", "small", "medium", "large"]
        # use the modeled work of rank 0 at a fixed process count as a
        # size proxy
        from repro.spechpc.base import RunContext
        from repro.model.execution import ExecutionModel

        sizes = []
        for s in suites:
            ctx = RunContext(
                cluster=CLUSTER_A,
                nprocs=64,
                workload=b.workload(s),
                exec_model=ExecutionModel(CLUSTER_A.node.cpu),
            )
            sizes.append(b.local_units(ctx, 0))
        assert sizes == sorted(sizes), b.name
        assert sizes[-1] > 8 * sizes[0], b.name


def test_medium_workload_runs_on_simulator():
    r = run(get_benchmark("cloverleaf"), CLUSTER_A, 144, suite="medium",
            sim_steps=2)
    assert r.elapsed > 0
    assert r.suite == "medium"


def test_large_workload_runs_on_simulator():
    r = run(get_benchmark("pot3d"), CLUSTER_A, 256, suite="large", sim_steps=2)
    assert r.elapsed > 0


def test_unsupported_medium_raises():
    with pytest.raises(KeyError):
        get_benchmark("soma").workload("medium")
    with pytest.raises(KeyError):
        get_benchmark("minisweep").workload("large")


# --- ablation variants --------------------------------------------------------


def test_lbm_barrier_variant():
    with_b = Lbm(use_barrier=True)
    without_b = Lbm(use_barrier=False)
    r1 = run(with_b, CLUSTER_A, 8)
    r2 = run(without_b, CLUSTER_A, 8)
    assert "MPI_Barrier" in r1.time_by_kind
    assert "MPI_Barrier" not in r2.time_by_kind
    assert r2.elapsed <= r1.elapsed * (1 + 1e-9)


def test_minisweep_recv_first_variant_faster_at_primes():
    buggy = Minisweep(recv_first=False)
    fixed = Minisweep(recv_first=True)
    t_bug = run(buggy, CLUSTER_A, 59).elapsed
    t_fix = run(fixed, CLUSTER_A, 59).elapsed
    assert t_fix < t_bug


def test_minisweep_variants_equal_compute():
    buggy = Minisweep(recv_first=False)
    fixed = Minisweep(recv_first=True)
    r1 = run(buggy, CLUSTER_A, 12)
    r2 = run(fixed, CLUSTER_A, 12)
    assert r1.counters["flops"] == pytest.approx(r2.counters["flops"])
