"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "lbm" in out and "weather" in out
    assert "ClusterA" in out


def test_run_command(capsys):
    assert main(["run", "tealeaf", "-n", "18"]) == 0
    out = capsys.readouterr().out
    assert "tealeaf" in out
    assert "Gflop/s" in out
    assert "energy" in out


def test_run_with_trace(capsys):
    assert main(["run", "soma", "-n", "4", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "timeline" in out


def test_run_on_cluster_b(capsys):
    assert main(["run", "lbm", "-c", "B", "-n", "13"]) == 0
    out = capsys.readouterr().out
    assert "ClusterB" in out


def test_sweep_command(capsys):
    assert main(["sweep", "pot3d", "--counts", "1,4,18"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "18" in out


def test_sweep_nodes(capsys):
    # keep it small: ClusterB sweep reuses the same machinery; use tealeaf
    assert main(["sweep", "tealeaf", "--nodes"]) == 0
    out = capsys.readouterr().out
    assert "scaling case" in out


def test_compare_command(capsys):
    assert main(["compare", "cloverleaf"]) == 0
    out = capsys.readouterr().out
    assert "acceleration factor" in out


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        main(["run", "nonesuch"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
