"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "lbm" in out and "weather" in out
    assert "ClusterA" in out


def test_run_command(capsys):
    assert main(["run", "tealeaf", "-n", "18"]) == 0
    out = capsys.readouterr().out
    assert "tealeaf" in out
    assert "Gflop/s" in out
    assert "energy" in out


def test_run_with_trace(capsys):
    assert main(["run", "soma", "-n", "4", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "timeline" in out


def test_run_on_cluster_b(capsys):
    assert main(["run", "lbm", "-c", "B", "-n", "13"]) == 0
    out = capsys.readouterr().out
    assert "ClusterB" in out


def test_sweep_command(capsys):
    assert main(["sweep", "pot3d", "--counts", "1,4,18"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "18" in out


def test_sweep_nodes(capsys):
    # keep it small: ClusterB sweep reuses the same machinery; use tealeaf
    assert main(["sweep", "tealeaf", "--nodes"]) == 0
    out = capsys.readouterr().out
    assert "scaling case" in out


def test_compare_command(capsys):
    assert main(["compare", "cloverleaf"]) == 0
    out = capsys.readouterr().out
    assert "acceleration factor" in out


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        main(["run", "nonesuch"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# --- executor selection and the fabric worker subcommand --------------------


def test_sweep_explicit_serial_executor(capsys):
    assert main(["sweep", "lbm", "--counts", "1,2", "--executor", "serial"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_sweep_fabric_requires_listen(capsys):
    assert main(["sweep", "lbm", "--executor", "fabric"]) == 2
    assert "--listen" in capsys.readouterr().err


def test_sweep_listen_without_fabric_rejected(capsys):
    assert main(["sweep", "lbm", "--listen", "127.0.0.1:7071"]) == 2
    assert "--executor fabric" in capsys.readouterr().err


def test_worker_parser_defaults():
    args = build_parser().parse_args(["worker", "--connect", "127.0.0.1:7071"])
    assert args.connect == ("127.0.0.1", 7071)
    assert args.reconnect == 30.0
    assert args.heartbeat == 0.5
    assert args.name is None


def test_listen_hostport_defaults_to_all_interfaces():
    args = build_parser().parse_args(["sweep", "lbm", "--listen", ":7071"])
    assert args.listen == ("0.0.0.0", 7071)


def test_worker_exits_1_when_manager_unreachable(capsys):
    # nothing listens on the discard port; no reconnect window
    assert main(["worker", "--connect", "127.0.0.1:9", "--reconnect", "0"]) == 1
    assert "cannot reach manager" in capsys.readouterr().out
