"""Energy-model edges of the DVFS dimension.

Three families of checks:

* **Segmented frequency plans vs the phase-cost cache** — each segment
  of a mid-run frequency change must be bit-identical to a standalone
  fixed run at that frequency (each segment gets its own memoized
  execution model, so cache staleness across a frequency change is
  structurally impossible), and zero-duration segments must change
  nothing at all.
* **Hypothesis properties** — in the idle-dominated low-frequency
  regime, energy to solution is monotone *decreasing* in frequency for
  a compute-bound kernel (the idle baseline burns longer than the
  f^2.4 dynamic term saves); EDP is *not* monotone across the grid for
  a memory-bound kernel (weather has an interior EDP minimum).
* **The headline sweep numbers** — the exact optima that
  ``docs/scenarios.md`` and ``BENCH_scenarios.json`` cite: on ClusterA's
  1.2-3.2 GHz grid, weather (1 node) and soma (4 nodes) are clock-down
  codes with an interior EDP minimum at 2.20 GHz and an energy minimum
  at 1.45 GHz, while lbm and minisweep are race-to-idle (both minima at
  the 3.2 GHz top of the grid).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.energy import (
    dvfs_policy,
    edp_optimal_frequency,
    energy_optimal_frequency,
    frequency_sweep,
)
from repro.harness.runner import run
from repro.machine.registry import CLUSTER_A
from repro.model.dvfs import apply_frequency, frequency_grid
from repro.scenarios import (
    FrequencyPlan,
    FrequencySegment,
    run_frequency_plan,
)
from repro.spechpc.suite import get_benchmark
from repro.validate.golden import fingerprint

NOMINAL_A = CLUSTER_A.node.cpu.nominal_clock_hz
LBM = get_benchmark("lbm")


# --- segmented plans vs the phase-cost cache ---------------------------------


def test_segments_identical_to_standalone_fixed_runs():
    """A frequency change mid-run must not leak memoized phase costs
    from the previous frequency: every segment is bit-identical to a
    fresh fixed run of the same length at that frequency."""
    plan = FrequencyPlan(
        (FrequencySegment(2.0e9, iterations=2), FrequencySegment(NOMINAL_A))
    )
    seg = run_frequency_plan(LBM, CLUSTER_A, plan, nprocs=4)
    assert len(seg.segments) == 2
    for result, steps, segment in zip(
        seg.segments, seg.steps, plan.active_segments
    ):
        standalone = run(
            LBM,
            apply_frequency(CLUSTER_A, segment.frequency_hz),
            nprocs=4,
            sim_steps=steps,
        )
        assert fingerprint(result) == fingerprint(standalone)


def test_zero_duration_segment_changes_nothing():
    with_zero = FrequencyPlan(
        (
            FrequencySegment(3.0e9, iterations=0),
            FrequencySegment(2.0e9, iterations=2),
            FrequencySegment(NOMINAL_A),
        )
    )
    without = FrequencyPlan(
        (FrequencySegment(2.0e9, iterations=2), FrequencySegment(NOMINAL_A))
    )
    a = run_frequency_plan(LBM, CLUSTER_A, with_zero, nprocs=4)
    b = run_frequency_plan(LBM, CLUSTER_A, without, nprocs=4)
    assert a.steps == b.steps
    assert [fingerprint(r) for r in a.segments] == [
        fingerprint(r) for r in b.segments
    ]
    assert a.total_energy == b.total_energy
    assert a.elapsed == b.elapsed


def test_composite_totals_sum_the_segments():
    plan = FrequencyPlan(
        (FrequencySegment(2.0e9, iterations=2), FrequencySegment(NOMINAL_A))
    )
    seg = run_frequency_plan(LBM, CLUSTER_A, plan, nprocs=4)
    assert seg.elapsed > 0
    assert seg.total_energy == pytest.approx(
        seg.chip_energy + seg.dram_energy
    )
    assert seg.edp == pytest.approx(seg.total_energy * seg.elapsed)
    assert seg.avg_power == pytest.approx(seg.total_energy / seg.elapsed)


def test_plan_longer_than_the_run_is_rejected():
    from repro.scenarios import ScenarioError

    plan = FrequencyPlan((FrequencySegment(2.0e9, iterations=10_000),))
    with pytest.raises(ScenarioError, match="simulates only"):
        run_frequency_plan(LBM, CLUSTER_A, plan, nprocs=4, sim_steps=4)


def test_all_zero_plan_is_rejected_at_construction():
    from repro.scenarios import ScenarioError

    with pytest.raises(ScenarioError, match="at least one iteration"):
        FrequencyPlan((FrequencySegment(2.0e9, iterations=0),))


# --- hypothesis properties ---------------------------------------------------


def _energy_at(benchmark, ratio: float) -> tuple[float, float]:
    """(total energy, EDP) of one Tier A point at ``ratio`` x nominal."""
    (pt,) = frequency_sweep(
        benchmark, CLUSTER_A, frequencies=[NOMINAL_A * ratio], nnodes=1
    )
    return pt.total_energy, pt.edp


@settings(max_examples=25, deadline=None)
@given(
    lo=st.floats(min_value=0.50, max_value=0.70),
    hi=st.floats(min_value=0.50, max_value=0.70),
)
def test_energy_monotone_in_frequency_when_idle_dominates(lo, hi):
    """Below ~0.7x nominal the idle baseline dominates lbm's energy:
    running faster always saves energy, so E(f) is monotone decreasing
    in f throughout that regime."""
    if lo > hi:
        lo, hi = hi, lo
    e_lo, _ = _energy_at(LBM, lo)
    e_hi, _ = _energy_at(LBM, hi)
    assert e_lo >= e_hi * (1 - 1e-12)


@settings(max_examples=25, deadline=None)
@given(ratio=st.floats(min_value=1.10, max_value=4.0 / 3.0))
def test_edp_not_monotone_for_memory_bound_weather(ratio):
    """EDP is *not* monotone in frequency: weather's EDP minimum is
    interior (2.20 GHz on ClusterA), so everywhere above ~1.1x nominal
    a higher clock strictly costs more EDP than the optimum."""
    weather = get_benchmark("weather")
    _, edp_opt = _energy_at(weather, 2.2e9 / NOMINAL_A)
    _, edp_hi = _energy_at(weather, ratio)
    assert edp_hi > edp_opt


# --- the headline numbers docs/scenarios.md cites ----------------------------


def test_grid_spans_1p2_to_3p2_ghz_on_cluster_a():
    grid = frequency_grid(CLUSTER_A)
    assert len(grid) == 9
    assert grid[0] == pytest.approx(1.2e9)
    assert grid[-1] == pytest.approx(3.2e9)


@pytest.mark.parametrize(
    "name,nnodes,e_opt_ghz,edp_opt_ghz,policy",
    [
        ("weather", 1, 1.45, 2.20, "clock-down"),
        ("soma", 4, 1.45, 2.20, "clock-down"),
        ("lbm", 1, 3.20, 3.20, "race-to-idle"),
        ("minisweep", 1, 3.20, 3.20, "race-to-idle"),
    ],
)
def test_sweep_optima_match_documented_numbers(
    name, nnodes, e_opt_ghz, edp_opt_ghz, policy
):
    points = frequency_sweep(
        get_benchmark(name), CLUSTER_A, nnodes=nnodes
    )
    assert energy_optimal_frequency(points).frequency_ghz == pytest.approx(
        e_opt_ghz, abs=0.005
    )
    assert edp_optimal_frequency(points).frequency_ghz == pytest.approx(
        edp_opt_ghz, abs=0.005
    )
    assert dvfs_policy(points) == policy


def test_weather_edp_minimum_is_interior():
    """The acceptance-criterion shape: the EDP minimum sits strictly
    inside the grid, not at either endpoint — clocking *down* from
    nominal 2.4 GHz pays, but only to a point."""
    points = frequency_sweep(get_benchmark("weather"), CLUSTER_A, nnodes=1)
    opt = edp_optimal_frequency(points)
    freqs = [p.frequency_hz for p in points]
    assert min(freqs) < opt.frequency_hz < max(freqs)


def test_dvfs_policy_requires_points():
    with pytest.raises(ValueError):
        dvfs_policy([])
