"""Perfmon tests: counters, RAPL meter, trace collector, roofline."""

import pytest

from repro.machine import CLUSTER_A, CLUSTER_B
from repro.perfmon import (
    EnergyMeter,
    TraceCollector,
    measure,
    roofline_point,
)
from repro.perfmon.counters import per_node_bandwidth
from repro.perfmon.rapl import SPIN_POWER_FACTOR
from repro.smpi import MpiRuntime


def make_job(nprocs=4, compute=0.5, flops=1e9, mem=2e9, cluster=CLUSTER_A,
             trace=None, mpi_heavy=False):
    rt = MpiRuntime(cluster, nprocs, trace=trace)

    def body(comm):
        yield comm.compute(
            compute, flops=flops, simd_flops=0.8 * flops, mem_bytes=mem,
            l3_bytes=1.2 * mem, l2_bytes=1.5 * mem,
        )
        if mpi_heavy and comm.rank == 0:
            yield comm.compute(1.0)
        yield comm.barrier()

    return rt.launch(body)


# --- counters ------------------------------------------------------------------


def test_counter_report_rates():
    job = make_job()
    rep = measure(job)
    assert rep.gflops == pytest.approx(4 * 1e9 / job.elapsed / 1e9)
    assert rep.vectorization_ratio == pytest.approx(0.8)
    assert rep.mem_bandwidth == pytest.approx(4 * 2e9 / job.elapsed)
    assert rep.l3_bandwidth > rep.mem_bandwidth
    assert "Gflop/s" in rep.summary()


def test_counter_report_intensity():
    job = make_job(flops=4e9, mem=2e9)
    rep = measure(job)
    assert rep.intensity == pytest.approx(2.0)


def test_per_node_bandwidth_divides_by_nodes():
    job = make_job(nprocs=CLUSTER_A.node.cores + 1)  # spans 2 nodes
    assert job.nnodes == 2
    assert per_node_bandwidth(job) == pytest.approx(
        measure(job).mem_bandwidth / 2
    )


# --- RAPL meter ---------------------------------------------------------------------


def test_energy_meter_baseline_floor():
    """Even a do-nothing job pays the idle baseline of its nodes."""
    meter = EnergyMeter(CLUSTER_A)
    job = make_job(nprocs=1, compute=1.0, flops=0, mem=0)
    reading = meter.read(job)
    expected_min = meter.baseline_power(1) * job.elapsed
    assert reading.total_energy >= expected_min * 0.999


def test_energy_meter_mpi_spin_power():
    """Ranks blocked in MPI burn spin power (minisweep vs lbm, 4.2.2)."""
    meter = EnergyMeter(CLUSTER_A)
    job_idle = make_job(nprocs=4, compute=0.5)
    job_spin = make_job(nprocs=4, compute=0.5, mpi_heavy=True)
    # same compute counters, but the spin job has 3 ranks waiting 1 s
    extra = meter.read(job_spin).chip_energy - meter.read(job_idle).chip_energy
    # must include baseline for the longer runtime plus spin power
    assert extra > 0


def test_energy_reading_derived_quantities():
    meter = EnergyMeter(CLUSTER_A)
    reading = meter.read(make_job())
    assert reading.total_energy == pytest.approx(
        reading.chip_energy + reading.dram_energy
    )
    assert reading.avg_total_power == pytest.approx(
        reading.total_energy / reading.elapsed
    )
    assert reading.edp == pytest.approx(reading.total_energy * reading.elapsed)
    assert "kJ" in reading.summary()


def test_energy_chip_capped_at_tdp():
    meter = EnergyMeter(CLUSTER_A)
    job = make_job(nprocs=72, compute=1.0)
    reading = meter.read(job)
    max_power = 2 * CLUSTER_A.node.cpu.tdp_w
    assert reading.avg_chip_power <= max_power + 1e-9


def test_baseline_power_scales_with_nodes():
    meter = EnergyMeter(CLUSTER_B)
    assert meter.baseline_power(4) == pytest.approx(4 * meter.baseline_power(1))


def test_spin_factor_sane():
    assert 0.5 < SPIN_POWER_FACTOR < 1.0


# --- trace collector ---------------------------------------------------------------------


def test_trace_records_and_queries():
    tc = TraceCollector()
    job = make_job(trace=tc, mpi_heavy=True)
    assert len(tc) > 0
    kinds = set(tc.time_by_kind())
    assert "compute" in kinds and "MPI_Barrier" in kinds
    fr = tc.fractions()
    assert sum(fr.values()) == pytest.approx(1.0)
    assert tc.dominant_mpi_kind() == "MPI_Barrier"


def test_trace_per_rank_intervals_sorted():
    tc = TraceCollector()
    make_job(trace=tc)
    ivs = tc.for_rank(0)
    assert all(a.t0 <= b.t0 for a, b in zip(ivs, ivs[1:]))


def test_trace_span_and_timeline():
    tc = TraceCollector()
    make_job(trace=tc, mpi_heavy=True)
    t0, t1 = tc.span()
    assert t1 > t0 == 0.0
    art = tc.ascii_timeline(width=40)
    assert "rank" in art and "B=MPI_Barrier" in art


def test_trace_rejects_negative_interval():
    tc = TraceCollector()
    with pytest.raises(ValueError):
        tc.record(0, 1.0, 0.5, "compute")


def test_empty_trace_renders():
    tc = TraceCollector()
    assert tc.ascii_timeline() == "(empty trace)"
    assert tc.fractions() == {}
    assert tc.dominant_mpi_kind() is None


# --- roofline ---------------------------------------------------------------------------------


def test_roofline_point_classification():
    job = make_job(flops=1e9, mem=100e9)  # intensity 0.01: memory bound
    pt = roofline_point(job, CLUSTER_A.node)
    assert pt.memory_bound
    assert pt.attainable_gflops < pt.peak_gflops
    job2 = make_job(flops=1e12, mem=1e6)  # huge intensity: compute bound
    pt2 = roofline_point(job2, CLUSTER_A.node)
    assert not pt2.memory_bound
    assert pt2.attainable_gflops == pytest.approx(pt2.peak_gflops)


def test_roofline_knee_consistency():
    job = make_job()
    pt = roofline_point(job, CLUSTER_B.node)
    knee = pt.knee_intensity
    assert pt.peak_bw * knee / 1e9 == pytest.approx(pt.peak_gflops)


def test_roofline_efficiency_bounded():
    job = make_job(flops=1e9, mem=1e9)
    pt = roofline_point(job, CLUSTER_A.node)
    assert 0 < pt.efficiency <= 1.0
