"""Advanced simulated-MPI semantics: extended collectives, job queries,
full-scale smoke runs, deadlock surfacing."""

import pytest

from repro.des import DeadlockError
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.perfmon import TraceCollector
from repro.smpi import MpiRuntime
from repro.smpi.runtime import RankStats


def test_scatter_gather_alltoall_synchronize():
    finishes = {}

    def body(comm):
        yield comm.compute(0.05 * comm.rank)
        yield comm.scatter(4096)
        yield comm.gather(4096)
        yield comm.alltoall(1024)
        finishes[comm.rank] = comm.now

    MpiRuntime(CLUSTER_A, 5).launch(body)
    assert len({round(t, 12) for t in finishes.values()}) == 1


def test_new_collectives_traced_with_glyphs():
    tc = TraceCollector()
    rt = MpiRuntime(CLUSTER_A, 3, trace=tc)

    def body(comm):
        yield comm.compute(0.001 * (comm.rank + 1))
        yield comm.scatter(1 << 16)
        yield comm.alltoall(1 << 16)

    rt.launch(body)
    art = tc.ascii_timeline(width=40)
    assert "T=MPI_Scatter" in art
    assert "L=MPI_Alltoall" in art


def test_rank_stats_accessors():
    s = RankStats(rank=3, node=0, domain=1)
    s.add_time("compute", 1.0)
    s.add_time("MPI_Send", 0.25)
    s.add_time("MPI_Allreduce", 0.25)
    assert s.compute_time == 1.0
    assert s.mpi_time == 0.5
    assert s.total_time == 1.5


def test_job_breakdown_and_fraction():
    def body(comm):
        yield comm.compute(0.9)
        yield comm.compute(0.1 if comm.rank else 0.0)
        yield comm.barrier()

    job = MpiRuntime(CLUSTER_A, 2).launch(body)
    bd = job.breakdown()
    assert bd["compute"] == pytest.approx(1.9)
    assert 0 < job.mpi_fraction() < 0.2


def test_deadlock_detected_in_mpi_program():
    """Two ranks both blocking-recv first: a genuine deadlock the engine
    must surface rather than hang."""

    def body(comm):
        peer = 1 - comm.rank
        yield comm.recv(peer)
        yield comm.send(peer, 8)

    with pytest.raises(DeadlockError):
        MpiRuntime(CLUSTER_A, 2).launch(body)


def test_rendezvous_cross_sends_do_not_deadlock():
    """Two blocking rendezvous sends toward each other WOULD deadlock in
    synchronous mode; with the handshake modeled via posted receives
    after, the classic exchange-with-sendrecv works."""

    def body(comm):
        peer = 1 - comm.rank
        yield comm.sendrecv(peer, 10 * 1024 * 1024, peer)

    job = MpiRuntime(CLUSTER_A, 2).launch(body)
    assert job.elapsed > 0


def test_full_scale_smoke_1664_ranks():
    """The paper's largest configuration: 1664 ranks on 16 ClusterB
    nodes, one representative allreduce+halo step."""
    rt = MpiRuntime(CLUSTER_B, 1664)

    def body(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        rreq = comm.irecv(left, tag=0)
        sreq = comm.isend(right, 4096, tag=0)
        yield comm.waitall([rreq, sreq])
        yield comm.compute(0.001)
        yield comm.allreduce(8)

    job = rt.launch(body)
    assert job.nnodes == 16
    assert job.nprocs == 1664
    assert job.total_counter("messages") == 2 * 1664  # p2p + allreduce


def test_runtime_rejects_oversubscription():
    with pytest.raises(ValueError):
        MpiRuntime(CLUSTER_B, CLUSTER_B.max_ranks() + 1)
    with pytest.raises(ValueError):
        MpiRuntime(CLUSTER_A, 0)


def test_ranks_in_domain_counting():
    rt = MpiRuntime(CLUSTER_A, 20)  # 18 in domain 0, 2 in domain 1
    assert rt.ranks_in_domain(0) == 18
    assert rt.ranks_in_domain(19) == 2
    assert rt.domain_of(0) == 0
    assert rt.domain_of(18) == 1


def test_domain_ids_global_across_nodes():
    rt = MpiRuntime(CLUSTER_A, 73)
    assert rt.node_of(72) == 1
    assert rt.domain_of(72) == 4  # first domain of node 1


def test_mixed_eager_rendezvous_same_peers():
    """Interleaving small (eager) and large (rendezvous) messages between
    the same pair preserves per-tag FIFO."""
    order = []

    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, 100, tag=1, payload="small")
            yield comm.send(1, 1 << 21, tag=1, payload="big")
            yield comm.send(1, 50, tag=1, payload="small2")
        else:
            for _ in range(3):
                order.append((yield comm.recv(0, tag=1)))

    MpiRuntime(CLUSTER_A, 2).launch(body)
    assert order == ["small", "big", "small2"]


def test_compute_cost_helper():
    from repro.model import ExecutionModel, KernelModel

    em = ExecutionModel(CLUSTER_A.node.cpu)
    k = KernelModel("k", 10.0, 0.5, 8.0, 8.0, 8.0, 8.0)
    cost = em.phase_cost(k, 1000, 1)

    def body(comm):
        yield comm.compute_cost(cost)

    job = MpiRuntime(CLUSTER_A, 1).launch(body)
    assert job.elapsed == pytest.approx(cost.seconds)
    assert job.total_counter("flops") == pytest.approx(cost.flops)
