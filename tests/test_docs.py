"""Documentation health: links resolve, docstring cross-references
resolve, every example script is smoke-tested, and the docs tree the
README promises actually exists."""

import importlib.util
import os
import re

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def load_tool(name):
    path = os.path.join(ROOT, "tools", name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_markdown_links_resolve(capsys):
    checker = load_tool("check_links.py")
    rc = checker.main(["check_links.py", ROOT])
    out = capsys.readouterr().out
    assert rc == 0, out


def test_docstring_references_resolve(capsys):
    checker = load_tool("check_api_docs.py")
    rc = checker.main(["check_api_docs.py", os.path.join(ROOT, "src")])
    out = capsys.readouterr().out
    assert rc == 0, out


def test_docs_tree_exists():
    for page in ("architecture.md", "cli.md", "harness.md",
                 "observability.md", "prediction.md", "scenarios.md",
                 "serving.md"):
        path = os.path.join(ROOT, "docs", page)
        assert os.path.exists(path), f"docs/{page} is missing"
        assert open(path).read().startswith("#")


def test_every_example_has_a_smoke_test():
    """Examples rot when nothing runs them — every script in examples/
    must be exercised by tests/test_examples_smoke.py."""
    examples = sorted(
        f for f in os.listdir(os.path.join(ROOT, "examples"))
        if f.endswith(".py")
    )
    assert examples, "examples/ unexpectedly empty"
    smoke = open(os.path.join(ROOT, "tests", "test_examples_smoke.py")).read()
    missing = [e for e in examples if e not in smoke]
    assert not missing, (
        f"examples without a smoke test: {missing} — add them to "
        "tests/test_examples_smoke.py"
    )


def test_cli_doc_covers_every_subcommand():
    """docs/cli.md must document each `python -m repro` subcommand."""
    from repro.cli import build_parser

    parser = build_parser()
    subcommands = []
    for action in parser._actions:
        if hasattr(action, "choices") and action.choices:
            subcommands = list(action.choices)
    assert subcommands, "no subcommands found on the parser"
    doc = open(os.path.join(ROOT, "docs", "cli.md")).read()
    missing = [c for c in subcommands if f"repro {c}" not in doc]
    assert not missing, f"subcommands undocumented in docs/cli.md: {missing}"


def test_cli_doc_covers_scenario_flags():
    """The scenario surface must stay documented: the ``--scenario``
    flag on every consumer command, every ``repro scenarios`` action,
    and the serve request field."""
    doc = open(os.path.join(ROOT, "docs", "cli.md")).read()
    for cmd in ("sweep", "trace", "predict"):
        pattern = rf"repro {cmd}[^\n]*--scenario"
        assert re.search(pattern, doc), (
            f"docs/cli.md does not show --scenario on `repro {cmd}`"
        )
    for action in ("list", "show", "validate", "frequencies"):
        assert re.search(rf"scenarios\s+{action}", doc), (
            f"docs/cli.md does not document `repro scenarios {action}`"
        )
    assert '"scenario"' in doc, (
        "docs/cli.md does not document the serve request's scenario field"
    )


def test_scenarios_doc_pins_the_asserted_numbers():
    """docs/scenarios.md must cite the exact sweep optima that
    tests/test_dvfs_energy.py asserts — drift either place and this
    fires."""
    doc = open(os.path.join(ROOT, "docs", "scenarios.md")).read()
    for number in ("1.2", "3.2", "1.45", "2.20"):
        assert number in doc, f"docs/scenarios.md lost the {number} GHz pin"
    for phrase in ("race-to-idle", "clock-down", "weather", "soma"):
        assert phrase in doc, f"docs/scenarios.md does not discuss {phrase}"


def test_scenarios_doc_covers_every_schema_field():
    """Every accepted scenario key must appear in the schema table."""
    from repro.scenarios.spec import Scenario

    doc = open(os.path.join(ROOT, "docs", "scenarios.md")).read()
    for field in Scenario._ALLOWED:
        assert f"`{field}`" in doc, (
            f"docs/scenarios.md schema table is missing `{field}`"
        )


def test_readme_mentions_docs():
    readme = open(os.path.join(ROOT, "README.md")).read()
    for page in ("docs/architecture.md", "docs/cli.md", "docs/harness.md",
                 "docs/observability.md", "docs/prediction.md",
                 "docs/scenarios.md", "docs/serving.md"):
        assert page in readme, f"README does not link {page}"


def test_classification_thresholds_documented():
    """docs/observability.md pins the exact NetworkSpec-derived
    thresholds; keep the prose honest if the spec moves."""
    from repro.machine.network import NetworkSpec
    from repro.obs.timeline import recv_wait_floor

    net = NetworkSpec()
    doc = open(os.path.join(ROOT, "docs", "observability.md")).read()
    floor_us = recv_wait_floor(net) * 1e6
    assert f"{floor_us:.1f}" in doc  # "4.1 µs" appears in the rules
    assert re.search(r"eager_threshold.*64\s*KiB", doc)
