"""HTTP semantics of ``repro serve``: routing, validation, the ladder's
observable contract, and the prediction firewall.

One loopback server (module-scoped, corpus seeded from the golden
fingerprints) backs every test; all engine-execution assertions are
deltas against :func:`repro.harness.runner.engine_run_count`.
"""

import http.client
import json
import os

import pytest

from repro.harness.runner import engine_run_count
from repro.serve import ServeApp, ServeClient, loopback_server
from repro.serve.client import ServeError

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-api")
    app = ServeApp(
        workers=2,
        store_path=str(tmp / "store.jsonl"),
        golden_dir=GOLDEN_DIR,
        sweep_executor="serial",
    )
    with loopback_server(app) as (host, port):
        yield app, ServeClient(host, port)


def _raw(served, method, path, body=b"", headers=None):
    app, client = served
    conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


# ----------------------------------------------------------------------
# routing and validation
# ----------------------------------------------------------------------


def test_healthz(served):
    _, client = served
    assert client.healthz()


def test_unknown_route_is_404(served):
    status, raw = _raw(served, "GET", "/nope")
    assert status == 404
    assert "no route" in json.loads(raw)["error"]


def test_run_requires_post(served):
    status, raw = _raw(served, "GET", "/run")
    assert status == 405


def test_run_requires_a_body(served):
    status, raw = _raw(served, "POST", "/run")
    assert status == 400
    assert "JSON body" in json.loads(raw)["error"]


def test_invalid_json_body_is_400(served):
    body = b'{"spec": {'
    status, raw = _raw(
        served, "POST", "/run", body=body,
        headers={"Content-Length": str(len(body))},
    )
    assert status == 400
    assert "not valid JSON" in json.loads(raw)["error"]


def test_oversized_body_is_413(served):
    status, _ = _raw(
        served, "POST", "/run",
        headers={"Content-Length": str(64 * 1024 * 1024)},
    )
    assert status == 413


def test_malformed_request_line_is_400(served):
    app, client = served
    import socket

    with socket.create_connection((client.host, client.port), timeout=30) as s:
        s.sendall(b"NONSENSE\r\n\r\n")
        reply = s.recv(4096)
    assert b"400" in reply.split(b"\r\n", 1)[0]


@pytest.mark.parametrize("body,fragment", [
    ({}, "spec"),
    ({"spec": {"benchmark": "lbm", "cluster": "A"}, "bogus": 1},
     "unknown request field"),
    ({"spec": {"benchmark": "lbm", "cluster": "A", "node": 4}},
     "unknown spec field"),
    ({"spec": {"benchmark": "nope", "cluster": "A"}}, "unknown benchmark"),
    ({"spec": {"benchmark": "lbm", "cluster": "A"}, "max_band": -0.1},
     "max_band"),
])
def test_bad_run_envelopes_are_400(served, body, fragment):
    _, client = served
    with pytest.raises(ServeError) as err:
        client._json("POST", "/run", body)
    assert err.value.status == 400
    assert fragment in err.value.message


def test_unknown_job_status_is_404(served):
    _, client = served
    with pytest.raises(ServeError) as err:
        client.status("sweep-999999")
    assert err.value.status == 404


# ----------------------------------------------------------------------
# the ladder's observable contract
# ----------------------------------------------------------------------

SPEC = {"benchmark": "minisweep", "cluster": "A", "nnodes": 1}


def test_force_bypasses_the_store(served):
    _, client = served
    cold = client.run(SPEC)
    assert cold.source == "des"
    before = engine_run_count()
    warm = client.run(SPEC)
    assert warm.source == "store" and engine_run_count() == before
    forced = client.run(SPEC, force=True)
    assert forced.source == "des"
    assert engine_run_count() == before + 1
    assert forced.fingerprint == cold.fingerprint  # same spec, same bits


def test_unsatisfiable_band_escalates_to_des(served):
    # a max_band no cheap tier can state -> the ladder falls through to
    # the engine and the answer is exact (band 0, fingerprinted)
    _, client = served
    spec = {**SPEC, "seed": 41}
    before = engine_run_count()
    answer = client.run(spec, max_band=1e-12)
    assert answer.source == "des"
    assert answer.band == 0.0 and answer.fingerprint is not None
    assert engine_run_count() == before + 1


def test_predictions_are_never_cached_as_truth(served):
    # a prediction answers the request but must not poison the store:
    # the next exact request still runs the engine
    _, client = served
    spec = {**SPEC, "seed": 42}
    predicted = client.run(spec, max_band=0.5)
    assert predicted.source == "predict"
    assert predicted.fingerprint is None
    assert 0.0 <= predicted.band <= 0.5
    exact = client.run(spec)
    assert exact.source == "des"
    assert exact.fingerprint is not None


def test_des_only_axes_skip_the_predict_level(served):
    # noise_sigma makes the point unpriceable by cheap tiers: even with
    # a permissive band the ladder goes to the engine
    _, client = served
    spec = {**SPEC, "noise_sigma": 0.01, "seed": 43}
    answer = client.run(spec, max_band=10.0)
    assert answer.source == "des"


def test_predict_endpoint_prices_without_executing(served):
    _, client = served
    before = engine_run_count()
    answer = client.predict({"benchmark": "lbm", "cluster": "B", "nnodes": 2})
    assert engine_run_count() == before  # no engine execution
    doc = answer.doc
    assert doc["source"] == "predict"
    assert doc["tier"] in ("analytic", "surrogate")
    low, high = doc["runtime_interval_s"]
    assert low <= doc["runtime_s"] <= high
    assert doc["energy_j"] > 0.0


def test_predict_endpoint_rejects_unpriceable_specs(served):
    _, client = served
    with pytest.raises(ServeError) as err:
        client.predict({**SPEC, "noise_sigma": 0.5})
    assert err.value.status == 400
    assert "DES-only" in err.value.message


def test_predict_endpoint_rejects_unknown_tier(served):
    _, client = served
    with pytest.raises(ServeError) as err:
        client._json("POST", "/predict", {"spec": SPEC, "tier": "psychic"})
    assert err.value.status == 400


# ----------------------------------------------------------------------
# sweeps, jobs, metrics
# ----------------------------------------------------------------------


def test_sweep_events_and_job_status(served):
    _, client = served
    specs = [
        SPEC,                                       # cached by earlier tests
        {"benchmark": "soma", "cluster": "B", "nnodes": 1, "seed": 44},
        {"benchmark": "tealeaf", "cluster": "B", "nnodes": 1, "seed": 44},
    ]
    events = client.sweep(specs, max_band=0.5)
    assert events[0]["event"] == "accepted"
    assert events[-1]["event"] == "done"
    job_id = events[0]["job"]
    points = {e["index"]: e for e in events if e["event"] == "point"}
    assert sorted(points) == [0, 1, 2]
    assert points[0]["source"] == "store"
    # fresh keys with a satisfied band answer from the predict level
    assert {points[i]["source"] for i in (1, 2)} == {"predict"}
    status = client.status(job_id)
    assert status["state"] == "done"
    assert status["done"] == status["total"] == 3
    assert status["sources"]["store"] == 1
    assert status["sources"]["predict"] == 2


def test_sweep_streams_ndjson_incrementally(served):
    _, client = served
    specs = [SPEC, {"benchmark": "soma", "cluster": "A",
                    "nnodes": 1, "seed": 45}]
    events = list(client.sweep_events(specs))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "accepted" and kinds[-1] == "done"
    assert kinds.count("point") == 2


def test_sweep_rejects_bad_envelopes(served):
    _, client = served
    for body in ({"specs": []}, {"specs": "x"},
                 {"specs": [SPEC], "bogus": 1}):
        with pytest.raises(ServeError) as err:
            client._json("POST", "/sweep", body)
        assert err.value.status == 400


def test_metrics_shape(served):
    app, client = served
    doc = client.metrics()
    assert doc["answered"] == sum(doc["answers"].values())
    assert 0.0 <= doc["hit_rate"] <= 1.0
    assert doc["store"]["entries"] == len(app.store)
    assert doc["store"]["rejected_lines"] == 0
    assert doc["corpus"]["samples"] >= 36  # golden seed + absorbed runs
    for level, window in doc["latency"].items():
        assert window["count"] >= 1
        assert 0.0 <= window["p50_ms"] <= window["p99_ms"]


def test_server_survives_and_reports_internal_errors(served):
    # a handler bug must produce a 500 on that connection, not kill the
    # server for everyone else
    app, client = served
    original = app.metrics_doc
    app.metrics_doc = lambda: 1 / 0
    try:
        with pytest.raises(ServeError) as err:
            client.metrics()
        assert err.value.status == 500
    finally:
        app.metrics_doc = original
    assert client.healthz()
    assert client.metrics()["answers"]["error"] >= 1


def test_store_survives_restart(served, tmp_path_factory):
    # the same backing file answers a fresh app instance from the store
    app, client = served
    spec = {**SPEC, "seed": 46}
    cold = client.run(spec)
    assert cold.source == "des"
    app2 = ServeApp(store_path=app.store.path)
    with loopback_server(app2) as (host, port):
        warm = ServeClient(host, port).run(spec)
    assert warm.source == "store"
    assert warm.fingerprint == cold.fingerprint
    assert warm.doc["result"] == cold.doc["result"]
