"""Golden-fingerprint regression tests.

Every checked-in fingerprint in ``tests/golden/`` is replayed and must
match byte-for-byte.  1-node cases run in the default test lane; the
4-node cases carry the ``golden`` marker for the dedicated CI lane
(``pytest -m golden``).
"""

import os

import pytest

from repro.validate import golden as G

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

CASES_1NODE = [c for c in G.golden_cases() if c.nnodes == 1]
CASES_4NODE = [c for c in G.golden_cases() if c.nnodes == 4]


def _check(case: G.GoldenCase) -> None:
    expected = G.load_fingerprint(GOLDEN_DIR, case)
    actual = G.compute_fingerprint(case)
    if actual.digest != expected.digest:
        diff = G.record_diff(expected.record, actual.record)
        pytest.fail(
            f"{case.slug}: result drifted from the golden fingerprint; "
            f"first difference: {diff}.  If the change is intentional, "
            f"regenerate with `repro validate --regen` on a clean tree."
        )


@pytest.mark.parametrize("case", CASES_1NODE, ids=lambda c: c.slug)
def test_golden_1node(case):
    _check(case)


@pytest.mark.golden
@pytest.mark.parametrize("case", CASES_4NODE, ids=lambda c: c.slug)
def test_golden_4node(case):
    _check(case)


def test_corpus_is_complete():
    """All 36 cases (9 benchmarks x 2 clusters x 2 scales) are on disk."""
    cases = list(G.golden_cases())
    assert len(cases) == 36
    missing = [
        c.slug for c in cases if not os.path.exists(G.case_path(GOLDEN_DIR, c))
    ]
    assert not missing, f"missing golden files: {missing}"


def test_fingerprint_is_stable_and_sensitive():
    """Same result -> same digest; any hashed field moved -> new digest."""
    case = G.GoldenCase("lbm", "A", 1, 8)
    r1 = G.run_case(case)
    r2 = G.run_case(case)
    assert G.fingerprint(r1) == G.fingerprint(r2)

    import dataclasses

    moved = dataclasses.replace(r1, elapsed=r1.elapsed * (1 + 1e-15))
    assert G.fingerprint(moved) != G.fingerprint(r1)
    diff = G.record_diff(
        G.canonical_record(r1), G.canonical_record(moved)
    )
    assert diff is not None and diff.startswith("record.elapsed")


def test_record_diff_localizes_first_field():
    a = {"x": {"y": ["0x1.0p+0", "0x1.8p+1"]}, "z": 1}
    b = {"x": {"y": ["0x1.0p+0", "0x1.9p+1"]}, "z": 1}
    diff = G.record_diff(a, b)
    assert diff.startswith("record.x.y[1]:")
    assert "3.125" in diff  # hex floats are decoded in the message
    assert G.record_diff(a, a) is None
    assert "missing" in G.record_diff({"a": 1}, {})


def test_regen_refuses_dirty_tree(tmp_path, monkeypatch):
    monkeypatch.setattr(G, "tree_is_dirty", lambda root: True)
    with pytest.raises(G.DirtyTreeError, match="dirty"):
        G.regenerate(str(tmp_path / "golden"))
    # --force overrides (fingerprints stubbed: no simulation in this test)
    monkeypatch.setattr(
        G,
        "compute_fingerprint",
        lambda case: G.Fingerprint(digest="0" * 64, record={"stub": case.slug}),
    )
    paths = G.regenerate(str(tmp_path / "golden"), scales=(1,), force=True)
    assert len(paths) == 18 and all(os.path.exists(p) for p in paths)


def test_tree_is_dirty_on_non_repo(tmp_path):
    """No git provenance counts as dirty (no regen without attribution)."""
    assert G.tree_is_dirty(str(tmp_path))
