"""Tests for result export, bottleneck diagnosis, the fluid bandwidth
resource, and the extended collectives."""

import json

import pytest

from repro.analysis.bottleneck import diagnose
from repro.des import Delay, Simulator
from repro.des.resources import BandwidthResource
from repro.harness import run, scaling_sweep
from repro.harness.export import (
    CSV_FIELDS,
    runs_to_csv,
    series_to_json,
    write_runs_csv,
    write_series_json,
)
from repro.machine import CLUSTER_A
from repro.smpi import MpiRuntime
from repro.smpi.collectives import alltoall_cost, gather_cost, scatter_cost
from repro.spechpc import get_benchmark


# --- export -----------------------------------------------------------------


def test_runs_to_csv_headers_and_rows():
    runs = [run(get_benchmark("soma"), CLUSTER_A, n) for n in (2, 4)]
    text = runs_to_csv(runs)
    lines = text.strip().splitlines()
    assert lines[0].split(",") == CSV_FIELDS
    assert len(lines) == 3
    assert "soma" in lines[1]


def test_series_json_roundtrip():
    series = scaling_sweep(get_benchmark("tealeaf"), CLUSTER_A, [1, 4], repeats=2)
    doc = json.loads(series_to_json(series))
    assert doc["benchmark"] == "tealeaf"
    assert len(doc["points"]) == 2
    assert doc["points"][0]["speedup"] == pytest.approx(1.0)
    assert len(doc["points"][0]["runs"]) == 2


def test_file_writers(tmp_path):
    series = scaling_sweep(get_benchmark("soma"), CLUSTER_A, [1, 2])
    csv_path = tmp_path / "runs.csv"
    json_path = tmp_path / "series.json"
    write_runs_csv(str(csv_path), [p.best for p in series.points])
    write_series_json(str(json_path), series)
    assert csv_path.read_text().startswith("benchmark,")
    assert json.loads(json_path.read_text())["suite"] == "tiny"


# --- bottleneck diagnosis -----------------------------------------------------------


def test_diagnose_memory_bound_code():
    d = diagnose(run(get_benchmark("tealeaf"), CLUSTER_A, 72), CLUSTER_A)
    assert d.memory_bound
    assert d.bandwidth_fraction > 0.9
    assert "memory-bandwidth saturated" in d.labels
    assert "saturation" in d.summary() or "bandwidth" in d.summary()


def test_diagnose_compute_bound_code():
    d = diagnose(run(get_benchmark("sph-exa"), CLUSTER_A, 72), CLUSTER_A)
    assert not d.memory_bound
    assert "compute bound" in d.labels


def test_diagnose_serialization():
    d = diagnose(run(get_benchmark("minisweep"), CLUSTER_A, 59), CLUSTER_A)
    assert d.mpi_fraction > 0.3
    assert "communication dominated" in d.labels
    assert d.p2p_dominated


def test_diagnose_reduction_heavy():
    cores = CLUSTER_A.node.cores
    d = diagnose(
        run(get_benchmark("soma"), CLUSTER_A, 8 * cores, suite="small"),
        CLUSTER_A,
    )
    assert d.dominant_mpi == "MPI_Allreduce"
    assert "reduction heavy" in d.labels


# --- bandwidth resource ---------------------------------------------------------------


def test_bandwidth_resource_single_flow():
    sim = Simulator()
    res = BandwidthResource(sim, capacity=10.0)

    def body():
        yield res.transfer(5.0)

    sim.spawn("p", body())
    assert sim.run() == pytest.approx(0.5)


def test_bandwidth_resource_fair_sharing():
    """Two equal flows through a shared link take twice as long."""
    sim = Simulator()
    res = BandwidthResource(sim, capacity=10.0)
    finish = {}

    def body(name):
        yield res.transfer(5.0)
        finish[name] = sim.now

    sim.spawn("a", body("a"))
    sim.spawn("b", body("b"))
    sim.run()
    assert finish["a"] == pytest.approx(1.0)
    assert finish["b"] == pytest.approx(1.0)


def test_bandwidth_resource_rebalances_on_exit():
    """A short flow leaves; the long flow speeds back up:
    long = 10 units: shares 5/s while short (2.5 units) runs (0.5 s ->
    2.5 done), then full 10/s for the rest (7.5 / 10 = 0.75 s)."""
    sim = Simulator()
    res = BandwidthResource(sim, capacity=10.0)
    finish = {}

    def body(name, amount):
        yield res.transfer(amount)
        finish[name] = sim.now

    sim.spawn("short", body("short", 2.5))
    sim.spawn("long", body("long", 10.0))
    sim.run()
    assert finish["short"] == pytest.approx(0.5)
    assert finish["long"] == pytest.approx(1.25)


def test_bandwidth_resource_staggered_entry():
    """A flow entering midway slows the first one down."""
    sim = Simulator()
    res = BandwidthResource(sim, capacity=10.0)
    finish = {}

    def first():
        yield res.transfer(10.0)
        finish["first"] = sim.now

    def second():
        yield Delay(0.5)
        yield res.transfer(5.0)
        finish["second"] = sim.now

    sim.spawn("f", first())
    sim.spawn("s", second())
    sim.run()
    # first: 5 units in 0.5 s alone, then shares: both need 5 units at
    # 5/s -> 1 more second
    assert finish["first"] == pytest.approx(1.5)
    assert finish["second"] == pytest.approx(1.5)


def test_bandwidth_resource_zero_transfer():
    sim = Simulator()
    res = BandwidthResource(sim, capacity=1.0)

    def body():
        yield res.transfer(0.0)

    sim.spawn("p", body())
    assert sim.run() == 0.0


def test_bandwidth_resource_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        BandwidthResource(sim, capacity=0.0)
    res = BandwidthResource(sim, capacity=1.0)
    with pytest.raises(ValueError):
        list(res.transfer(-1.0))
    assert res.current_rate() == 1.0


# --- extended collectives ------------------------------------------------------------


def test_scatter_gather_alltoall_complete():
    rt = MpiRuntime(CLUSTER_A, 6)

    def body(comm):
        yield comm.scatter(6 * 1024, root=0)
        yield comm.gather(6 * 1024, root=0)
        yield comm.alltoall(6 * 256)

    job = rt.launch(body)
    kinds = set(job.breakdown())
    assert {"MPI_Scatter", "MPI_Gather", "MPI_Alltoall"} <= kinds


def test_alltoall_costlier_than_scatter():
    from repro.machine.network import NetworkSpec

    net = NetworkSpec()
    nbytes = 1 << 20
    assert alltoall_cost(net, 64, 4, nbytes) > scatter_cost(net, 64, 4, nbytes)
    assert gather_cost(net, 64, 4, nbytes) == scatter_cost(net, 64, 4, nbytes)


def test_collective_costs_zero_for_single_rank():
    from repro.machine.network import NetworkSpec

    net = NetworkSpec()
    assert scatter_cost(net, 1, 1, 100) == 0.0
    assert alltoall_cost(net, 1, 1, 100) == 0.0
