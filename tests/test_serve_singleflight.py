"""Single-flight under load: N identical concurrent requests, one engine
execution, one set of bytes.

The server-level test fires 32 concurrent identical ``/run`` requests
plus interleaved distinct ones at a loopback server whose DES
executions are artificially slowed (``inject_des_latency``) so every
request demonstrably lands inside the coalescing window.  The contract:

* exactly one engine execution per *unique* spec
  (:func:`repro.harness.runner.engine_run_count` is the ground truth —
  the engine itself is tallied, not the server's bookkeeping);
* every caller for the same spec receives byte-identical payloads;
* ``/metrics`` accounts every coalesced request.

Unit tests pin the :class:`repro.serve.flight.SingleFlight` semantics
the server builds on: join accounting, error propagation, cancellation
shielding, and claim/settle for batch sweeps.
"""

import asyncio
import threading

import pytest

from repro.harness.runner import engine_run_count
from repro.serve import ServeApp, ServeClient, SingleFlight, loopback_server

#: worst-case fan-in the battery proves (the ISSUE's contract point)
IDENTICAL = 32


def test_32_concurrent_identical_requests_cost_one_execution():
    app = ServeApp(workers=4, inject_des_latency=0.75)
    with loopback_server(app) as (host, port):
        base = {"benchmark": "soma", "cluster": "A", "nnodes": 1}
        distinct = [{**base, "seed": s} for s in (101, 202, 303)]
        specs = [dict(base) for _ in range(IDENTICAL)] + distinct
        unique = 1 + len(distinct)

        answers = [None] * len(specs)
        errors = []
        barrier = threading.Barrier(len(specs))

        def fire(i, spec):
            try:
                barrier.wait(timeout=30)
                answers[i] = ServeClient(host, port, timeout=120).run(spec)
            except Exception as exc:  # surfaced below, not swallowed
                errors.append((i, exc))

        before = engine_run_count()
        threads = [
            threading.Thread(target=fire, args=(i, s), daemon=True)
            for i, s in enumerate(specs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert all(a is not None for a in answers)

        # exactly one engine execution per unique spec
        assert engine_run_count() - before == unique

        # every identical caller received the leader's exact bytes
        identical = answers[:IDENTICAL]
        assert len({a.raw for a in identical}) == 1
        fingerprints = {a.fingerprint for a in identical}
        assert len(fingerprints) == 1 and None not in fingerprints

        # the distinct specs each led their own flight: distinct keys,
        # distinct payloads
        keys = {a.doc["key"] for a in answers}
        assert len(keys) == unique

        metrics = ServeClient(host, port).metrics()
        flight = metrics["singleflight"]
        assert flight["open"] == 0
        assert flight["leads"] == unique
        assert flight["joins"] == IDENTICAL - 1
        assert metrics["des_runs"] == unique
        answered = metrics["answers"]
        assert answered.get("des", 0) == unique
        assert answered.get("coalesced", 0) == IDENTICAL - 1

        # the flights are closed: a repeat is a store hit, still the
        # same result document
        warm = ServeClient(host, port).run(base)
        assert warm.source == "store"
        assert warm.doc["result"] == identical[0].doc["result"]
        assert engine_run_count() - before == unique


def test_sweep_coalesces_duplicate_points():
    # serial sweep executor: batches run in-process, so the engine
    # tally observes them (the default local pool forks workers)
    app = ServeApp(workers=2, sweep_executor="serial")
    with loopback_server(app) as (host, port):
        client = ServeClient(host, port)
        a = {"benchmark": "tealeaf", "cluster": "A", "nnodes": 1}
        b = {"benchmark": "tealeaf", "cluster": "B", "nnodes": 1}
        before = engine_run_count()
        events = client.sweep([a, a, b, a])
        assert engine_run_count() - before == 2  # one per unique spec
        points = [e for e in events if e["event"] == "point"]
        by_source = {}
        for p in points:
            by_source.setdefault(p["source"], []).append(p["index"])
        assert sorted(by_source["des"]) == [0, 2]
        assert sorted(by_source["coalesced"]) == [1, 3]
        # coalesced points resolve to the leader's fingerprint
        fps = {p["fingerprint"] for p in points if p["index"] in (0, 1, 3)}
        assert len(fps) == 1


# ----------------------------------------------------------------------
# SingleFlight unit semantics
# ----------------------------------------------------------------------


def test_flight_joiners_share_leader_value():
    async def main():
        sf = SingleFlight()
        gate = asyncio.Event()
        calls = []

        async def thunk():
            calls.append(1)
            await gate.wait()
            return b"payload"

        leader = asyncio.create_task(sf.do("k", thunk))
        await asyncio.sleep(0)  # leader opens the flight
        assert sf.flying("k")
        joiners = [asyncio.create_task(sf.do("k", thunk)) for _ in range(5)]
        await asyncio.sleep(0)
        gate.set()
        outcomes = await asyncio.gather(leader, *joiners)
        assert calls == [1]  # the thunk ran exactly once
        assert [joined for _, joined in outcomes] == [False] + [True] * 5
        assert {value for value, _ in outcomes} == {b"payload"}
        assert sf.leads == 1 and sf.joins == 5
        assert not sf.flying("k")

    asyncio.run(main())


def test_flight_error_reaches_every_joiner_and_closes():
    async def main():
        sf = SingleFlight()
        gate = asyncio.Event()

        async def boom():
            await gate.wait()
            raise RuntimeError("engine fell over")

        leader = asyncio.create_task(sf.do("k", boom))
        await asyncio.sleep(0)
        joiner = asyncio.create_task(sf.do("k", boom))
        await asyncio.sleep(0)
        gate.set()
        for task in (leader, joiner):
            with pytest.raises(RuntimeError, match="engine fell over"):
                await task
        # the flight is closed: the next caller retries fresh
        assert not sf.flying("k")

        async def ok():
            return 42

        assert await sf.do("k", ok) == (42, False)

    asyncio.run(main())


def test_cancelled_joiner_does_not_cancel_the_flight():
    async def main():
        sf = SingleFlight()
        gate = asyncio.Event()

        async def thunk():
            await gate.wait()
            return "done"

        leader = asyncio.create_task(sf.do("k", thunk))
        await asyncio.sleep(0)
        joiner = asyncio.create_task(sf.do("k", thunk))
        await asyncio.sleep(0)
        joiner.cancel()
        with pytest.raises(asyncio.CancelledError):
            await joiner
        gate.set()
        value, joined = await leader  # unharmed by the joiner's cancel
        assert (value, joined) == ("done", False)

    asyncio.run(main())


def test_claim_and_settle_feed_waiting_joiners():
    async def main():
        sf = SingleFlight()
        fut = sf.claim("k")
        assert fut is not None
        assert sf.claim("k") is None  # already claimed
        waiter = asyncio.create_task(sf.wait("k"))
        await asyncio.sleep(0)
        sf.settle("k", fut, value=b"batch-result")
        assert await waiter == b"batch-result"
        assert not sf.flying("k")
        assert sf.leads == 1 and sf.joins == 1
        # settling with an error propagates to waiters
        fut2 = sf.claim("k")
        waiter2 = asyncio.create_task(sf.wait("k"))
        await asyncio.sleep(0)
        sf.settle("k", fut2, error=RuntimeError("batch died"))
        with pytest.raises(RuntimeError, match="batch died"):
            await waiter2
        # wait() on a closed flight returns None (caller falls back to
        # the store)
        assert await sf.wait("k") is None

    asyncio.run(main())
