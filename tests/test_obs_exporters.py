"""Exporter coverage: golden Chrome trace for a deterministic 2-rank
ping-pong, SVG structure, and markdown report content."""

import json
import os

import pytest

from repro.machine import CLUSTER_A
from repro.obs import (
    COLLECTIVE_WAIT,
    COMPUTE,
    EAGER_SEND,
    RENDEZVOUS_WAIT,
    build_timelines,
    chrome_trace_json,
    render_svg_timeline,
    to_chrome_trace,
    waiting_time_report,
)
from repro.obs.export_svg import CATEGORY_COLORS
from repro.obs.patterns import analyze_waiting
from repro.perfmon.trace import TraceCollector
from repro.smpi import MpiRuntime

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "chrome_pingpong_2rank.json"
)


@pytest.fixture(scope="module")
def pingpong_timelines():
    """A deterministic 2-rank job exercising every p2p flavor: compute,
    an eager send, a rendezvous send blocked on a late receiver, a
    buffered-eager pickup, and a barrier."""

    def body(comm):
        if comm.rank == 0:
            yield comm.compute(1e-3)
            yield comm.send(1, nbytes=1024)          # eager (64 KiB limit)
            yield comm.send(1, nbytes=256 * 1024)    # rendezvous: blocks
            yield comm.barrier()
        else:
            yield comm.compute(2e-3)                 # sender waits on us
            yield comm.recv(0)                       # buffered eager pickup
            yield comm.recv(0)                       # completes rendezvous
            yield comm.barrier()

    trace = TraceCollector()
    rt = MpiRuntime(CLUSTER_A, 2, trace=trace)
    rt.launch(body)
    return build_timelines(trace, CLUSTER_A.network)


def test_pingpong_classification(pingpong_timelines):
    cats0 = [s.category for s in pingpong_timelines.rank(0).segments]
    assert cats0[0] == COMPUTE
    assert EAGER_SEND in cats0
    assert RENDEZVOUS_WAIT in cats0
    assert COLLECTIVE_WAIT in cats0
    # the rendezvous send blocked roughly the receiver's extra compute
    rdv = pingpong_timelines.rank(0).in_category(RENDEZVOUS_WAIT)
    assert len(rdv) == 1
    assert rdv[0].duration == pytest.approx(1e-3, rel=0.2)


def test_chrome_trace_matches_golden(pingpong_timelines):
    """The serialized Chrome trace is byte-identical to the checked-in
    golden.  A diff means either the exporter's format changed or the
    engine's timing of this elementary job moved — both must be
    deliberate: rerun with ``REPRO_REGEN_GOLDEN=1`` on a clean tree and
    commit the updated file."""
    got = chrome_trace_json(pingpong_timelines, label="pingpong-2rank")
    if os.environ.get("REPRO_REGEN_GOLDEN"):  # pragma: no cover - regen path
        with open(GOLDEN, "w") as fh:
            fh.write(got + "\n")
        pytest.fail(f"regenerated {GOLDEN}; rerun without REPRO_REGEN_GOLDEN")
    expected = open(GOLDEN).read().rstrip("\n")
    assert got == expected


def test_chrome_trace_structure(pingpong_timelines):
    doc = to_chrome_trace(pingpong_timelines, label="x")
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in meta} == {"thread_name", "thread_sort_index"}
    assert len(meta) == 2 * pingpong_timelines.nranks
    assert len(spans) == sum(
        len(tl.segments) for tl in pingpong_timelines.by_rank.values()
    )
    # X events are named by MPI kind, categorized by classification, and
    # carry microsecond ts/dur plus the original second-resolution times
    for e in spans:
        assert e["ts"] >= 0.0
        assert e["dur"] >= 0.0
        assert e["cat"] == e["args"]["category"]
        assert e["ts"] == pytest.approx(e["args"]["t0_s"] * 1e6)
    # serialization is deterministic
    assert chrome_trace_json(pingpong_timelines) == chrome_trace_json(
        pingpong_timelines
    )


def test_svg_structure(pingpong_timelines):
    svg = render_svg_timeline(pingpong_timelines, title="pingpong")
    assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
    assert "pingpong" in svg
    for rank in pingpong_timelines.ranks:
        assert f"rank {rank}" in svg
    # every used category appears with its legend color
    for cat in pingpong_timelines.time_by_category():
        assert CATEGORY_COLORS[cat] in svg
    # no scripts: the artifact must be safe to embed
    assert "<script" not in svg


def test_svg_rank_subset(pingpong_timelines):
    svg = render_svg_timeline(pingpong_timelines, ranks=[1])
    assert "rank 1" in svg and "rank 0" not in svg


def test_markdown_report_sections(pingpong_timelines):
    analysis = analyze_waiting(pingpong_timelines)
    md = waiting_time_report(
        pingpong_timelines,
        analysis,
        title="pingpong report",
        meta={"ranks": 2},
        metrics={"engine": {"events": 7}},
    )
    assert md.startswith("# pingpong report")
    assert "## Where the time went" in md
    assert "## Findings" in md
    assert "## Engine metrics" in md
    assert "| engine | events | 7 |" in md
