"""Analysis-layer tests: speedup metrics, case classifier, energy, comparison."""

import pytest

from repro.analysis import (
    ScalingCase,
    acceleration_factor,
    classify_scaling,
    domain_efficiency,
    race_to_idle_holds,
    saturation_ratio,
    speedup_table,
    tdp_fraction,
    zplot,
)
from repro.analysis.comparison import (
    dram_power_per_socket,
    expected_acceleration_band,
    is_hot,
)
from repro.analysis.energy import (
    ZPoint,
    concurrency_throttling_saves,
    edp_minimum,
    energy_minimum,
)
from repro.harness import run, scaling_sweep
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.spechpc import get_benchmark


@pytest.fixture(scope="module")
def tealeaf_sweep():
    return scaling_sweep(get_benchmark("tealeaf"), CLUSTER_A, [1, 4, 9, 18, 36, 72])


@pytest.fixture(scope="module")
def multinode_pot3d():
    cores = CLUSTER_A.node.cores
    return scaling_sweep(
        get_benchmark("pot3d"), CLUSTER_A, [cores, 4 * cores, 16 * cores],
        suite="small",
    )


@pytest.fixture(scope="module")
def multinode_soma():
    cores = CLUSTER_A.node.cores
    return scaling_sweep(
        get_benchmark("soma"), CLUSTER_A, [cores, 4 * cores, 16 * cores],
        suite="small",
    )


# --- speedup ----------------------------------------------------------------


def test_domain_efficiency_near_one_for_tealeaf():
    r_dom = run(get_benchmark("tealeaf"), CLUSTER_A, 18)
    r_full = run(get_benchmark("tealeaf"), CLUSTER_A, 72)
    assert domain_efficiency(r_dom, r_full, 4) == pytest.approx(1.0, abs=0.08)


def test_domain_efficiency_validation():
    r = run(get_benchmark("tealeaf"), CLUSTER_A, 2)
    with pytest.raises(ValueError):
        domain_efficiency(r, r, 0)


def test_saturation_ratio_low_for_memory_bound(tealeaf_sweep):
    assert saturation_ratio(tealeaf_sweep, 18) < 0.5


def test_saturation_ratio_requires_domain_points(tealeaf_sweep):
    with pytest.raises(ValueError):
        saturation_ratio(tealeaf_sweep, 0)


def test_speedup_table_structure(tealeaf_sweep):
    rows = speedup_table(tealeaf_sweep)
    assert [r[0] for r in rows] == [1, 4, 9, 18, 36, 72]
    for _, lo, avg, hi in rows:
        assert lo <= avg <= hi


# --- classifier ------------------------------------------------------------------


def test_classify_pot3d_case_a(multinode_pot3d):
    ev = classify_scaling(multinode_pot3d)
    assert ev.case is ScalingCase.A
    assert ev.cache_effect
    assert ev.volume_ratio < 0.95


def test_classify_soma_poor(multinode_soma):
    ev = classify_scaling(multinode_soma)
    assert ev.case is ScalingCase.POOR
    assert ev.volume_ratio > 2.0  # replication grows the traffic
    assert ev.comm_fraction > 0.2


def test_classify_needs_increasing_counts(tealeaf_sweep):
    from repro.harness.results import ScalingSeries

    single = ScalingSeries(
        "x", "A", "tiny", (tealeaf_sweep.points[0],)
    )
    with pytest.raises((ValueError, IndexError)):
        classify_scaling(single)


# --- energy --------------------------------------------------------------------------


def test_zplot_points_monotone_energy(tealeaf_sweep):
    pts = zplot(tealeaf_sweep)
    assert len(pts) == 6
    # high idle power: more speedup -> less energy (race-to-idle)
    by_speedup = sorted(pts, key=lambda p: p.speedup)
    assert by_speedup[0].energy > by_speedup[-1].energy
    assert race_to_idle_holds(pts)


def test_energy_and_edp_minima_coincide(tealeaf_sweep):
    pts = zplot(tealeaf_sweep)
    emin, edpmin = energy_minimum(pts), edp_minimum(pts)
    assert emin.nprocs == edpmin.nprocs == 72


def test_throttling_saves_little(tealeaf_sweep):
    assert concurrency_throttling_saves(zplot(tealeaf_sweep)) < 0.1


def test_zpoint_validation():
    with pytest.raises(ValueError):
        ZPoint(nprocs=1, speedup=0.0, energy=1.0, edp=1.0)
    with pytest.raises(ValueError):
        energy_minimum([])
    with pytest.raises(ValueError):
        edp_minimum([])
    with pytest.raises(ValueError):
        race_to_idle_holds([])


# --- comparison --------------------------------------------------------------------------


def test_acceleration_factor_guards():
    ra = run(get_benchmark("lbm"), CLUSTER_A, 72)
    rb = run(get_benchmark("soma"), CLUSTER_B, 104)
    with pytest.raises(ValueError):
        acceleration_factor(ra, rb)


def test_expected_band_matches_table3():
    lo, hi = expected_acceleration_band(CLUSTER_A, CLUSTER_B)
    assert lo == pytest.approx(1.20, abs=0.02)
    assert hi == pytest.approx(1.56, abs=0.03)


def test_tdp_fraction_and_hotness():
    r_hot = run(get_benchmark("sph-exa"), CLUSTER_A, 72)
    r_cool = run(get_benchmark("tealeaf"), CLUSTER_A, 72)
    assert tdp_fraction(r_hot, CLUSTER_A) > tdp_fraction(r_cool, CLUSTER_A)
    assert not is_hot(r_cool, CLUSTER_A)
    assert 0 < tdp_fraction(r_cool, CLUSTER_A) < 1


def test_dram_power_highest_for_memory_bound():
    r_mem = run(get_benchmark("pot3d"), CLUSTER_A, 72)
    r_cpu = run(get_benchmark("soma"), CLUSTER_A, 72)
    assert dram_power_per_socket(r_mem, CLUSTER_A) > dram_power_per_socket(
        r_cpu, CLUSTER_A
    )
