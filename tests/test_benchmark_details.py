"""Per-benchmark structural tests: decompositions, communication
footprints, workload memory estimates, kernel sanity."""

import pytest

from repro.machine import CLUSTER_A, CLUSTER_B
from repro.model.execution import ExecutionModel
from repro.spechpc import RunContext, all_benchmarks, get_benchmark
from repro.spechpc.base import dims_create
from repro.spechpc.lbm import COLLIDE, PROPAGATE, Lbm
from repro.spechpc.minisweep import Minisweep
from repro.spechpc.pot3d import CG_ITER as POT3D_CG
from repro.spechpc.soma import FIELD_UPDATE, MC_MOVE
from repro.spechpc.tealeaf import CG_ITER as TEALEAF_CG
from repro.units import GB


def make_ctx(bench, nprocs=72, suite="tiny", cluster=CLUSTER_A):
    return RunContext(
        cluster=cluster,
        nprocs=nprocs,
        workload=bench.workload(suite),
        exec_model=ExecutionModel(cluster.node.cpu),
    )


# --- load balance -----------------------------------------------------------------


@pytest.mark.parametrize("bench_name", [b.name for b in all_benchmarks()])
@pytest.mark.parametrize("nprocs", [7, 64, 72])
def test_local_units_sum_close_to_total(bench_name, nprocs):
    """The decomposition assigns (almost) all the work, with bounded
    imbalance."""
    bench = get_benchmark(bench_name)
    ctx = make_ctx(bench, nprocs)
    units = [bench.local_units(ctx, r) for r in range(nprocs)]
    assert min(units) > 0
    # imbalance within 2x even at awkward counts (prime decompositions)
    assert max(units) <= 2.0 * min(units) + 1e-9


def test_lbm_decomposition_covers_grid():
    lbm = get_benchmark("lbm")
    ctx = make_ctx(lbm, 72)
    total = sum(lbm.local_units(ctx, r) for r in range(72))
    assert total == pytest.approx(4096 * 16384)


def test_pot3d_3d_decomposition():
    pot3d = get_benchmark("pot3d")
    ctx = make_ctx(pot3d, 64)
    assert pot3d.decompose(ctx) == (4, 4, 4)
    total = sum(pot3d.local_units(ctx, r) for r in range(64))
    assert total == pytest.approx(173 * 361 * 1171)


def test_minisweep_chain_length_tracks_largest_factor():
    ms = Minisweep()
    assert ms.chain_length(make_ctx(ms, 59)) == 59
    assert ms.chain_length(make_ctx(ms, 58)) == 29
    assert ms.chain_length(make_ctx(ms, 64)) == 8
    assert ms.chain_length(make_ctx(ms, 72)) == 9


def test_lbm_rank_penalties_deterministic_and_bounded():
    lbm = Lbm()
    ctx = make_ctx(lbm, 71)
    penalties = [lbm.rank_penalty(ctx, r) for r in range(71)]
    assert penalties == [lbm.rank_penalty(ctx, r) for r in range(71)]
    assert all(1.0 <= p <= 2.5 for p in penalties)


# --- workload memory footprints ----------------------------------------------------------


def test_tiny_workloads_fit_64gb_budget():
    """Table 1: tiny uses 0-64 GB.  Estimate per-benchmark state from the
    kernels' working-set coefficients."""
    estimates = {
        "lbm": 4096 * 16384 * COLLIDE.working_set_bytes_per_unit,
        "tealeaf": 8192 * 8192 * TEALEAF_CG.working_set_bytes_per_unit,
        "pot3d": 173 * 361 * 1171 * POT3D_CG.working_set_bytes_per_unit,
        "soma": 14_000_000 * MC_MOVE.working_set_bytes_per_unit,
    }
    for name, bytes_ in estimates.items():
        assert bytes_ < 64 * 1e9, (name, bytes_ / 1e9)
        assert bytes_ > 0.5e9, (name, "suspiciously small")


def test_working_sets_exceed_llc_tenfold():
    """Sect. 3: working sets are at least 10x the node LLC, so the tiny
    suite cannot trivially fit into cache."""
    llc = CLUSTER_A.node.llc_bytes
    ws_tealeaf = 8192 * 8192 * TEALEAF_CG.working_set_bytes_per_unit
    ws_lbm = 4096 * 16384 * COLLIDE.working_set_bytes_per_unit
    assert ws_tealeaf > 10 * llc
    assert ws_lbm > 10 * llc


# --- kernel characterization sanity ---------------------------------------------------------


def test_lbm_collide_is_compute_bound_propagate_memory_bound():
    em = ExecutionModel(CLUSTER_A.node.cpu)
    assert not em.memory_bound(COLLIDE, 18)
    assert em.memory_bound(PROPAGATE, 18)


def test_memory_bound_benchmark_kernels_are_memory_bound():
    em = ExecutionModel(CLUSTER_A.node.cpu)
    assert em.memory_bound(TEALEAF_CG, 18)
    assert em.memory_bound(POT3D_CG, 18)


def test_soma_mc_is_scalar_and_slow():
    em = ExecutionModel(CLUSTER_A.node.cpu)
    assert MC_MOVE.simd_fraction < 0.05
    # per-move time far above one SIMD kernel's
    t = em.phase_cost(MC_MOVE, 1000, 1).seconds / 1000
    assert t > 100e-9


def test_soma_field_units_independent_of_rank_count():
    """The replication invariant: the field work per rank is the same at
    any process count (the aggregate grows linearly)."""
    soma = get_benchmark("soma")
    cells = soma.workload("tiny").params["field_cells"]
    assert cells == 600_000  # constant, not divided by nprocs anywhere


def test_intensity_ordering_matches_classification():
    """Memory-bound benchmarks have low arithmetic intensity, the
    compute-bound ones high."""
    low = [TEALEAF_CG.intensity, POT3D_CG.intensity]
    high = [COLLIDE.intensity]
    assert max(low) < 1.0
    assert min(high) > 10.0


# --- step scaling ----------------------------------------------------------------------------


def test_workload_total_iterations():
    tealeaf = get_benchmark("tealeaf")
    wl = tealeaf.workload("tiny")
    assert wl.total_iterations == wl.steps * wl.inner_iterations
    lbm = get_benchmark("lbm")
    assert lbm.workload("tiny").total_iterations == 600


def test_default_sim_steps_positive():
    for b in all_benchmarks():
        for suite in ("tiny", "small"):
            assert b.default_sim_steps(suite) >= 1


def test_dims_create_minisweep_bad_counts_from_paper():
    """The paper lists {9, 26, 34, 51, 69} and primes as detrimental —
    all of them decompose into long chains (largest factor >= 3x the
    balanced value)."""
    for n in (9, 26, 34, 51, 69, 59, 53):
        chain = dims_create(n, 2)[0]
        balanced = n**0.5
        assert chain >= 3 or chain >= 2.5 * balanced, (n, chain)
