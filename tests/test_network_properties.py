"""Property tests for the network cost models and placement edge cases."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import CLUSTER_A, CLUSTER_B
from repro.machine.network import NetworkSpec
from repro.smpi.collectives import (
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    gather_cost,
    reduce_cost,
    scatter_cost,
)

NET = NetworkSpec()

ALL_COSTS = [
    lambda p, n, b: barrier_cost(NET, p, n),
    lambda p, n, b: allreduce_cost(NET, p, n, b),
    lambda p, n, b: bcast_cost(NET, p, n, b),
    lambda p, n, b: reduce_cost(NET, p, n, b),
    lambda p, n, b: allgather_cost(NET, p, n, b),
    lambda p, n, b: scatter_cost(NET, p, n, b),
    lambda p, n, b: gather_cost(NET, p, n, b),
    lambda p, n, b: alltoall_cost(NET, p, n, b),
]


@given(
    p=st.integers(min_value=1, max_value=2048),
    n=st.integers(min_value=1, max_value=32),
    b=st.integers(min_value=0, max_value=1 << 24),
)
def test_all_collective_costs_nonnegative_and_finite(p, n, b):
    n = min(n, p)
    for fn in ALL_COSTS:
        c = fn(p, n, b)
        assert c >= 0.0
        assert c < 60.0  # nothing takes a virtual minute


@given(
    p=st.integers(min_value=2, max_value=1024),
    b1=st.integers(min_value=0, max_value=1 << 22),
    b2=st.integers(min_value=0, max_value=1 << 22),
)
def test_collective_costs_monotone_in_bytes(p, b1, b2):
    lo, hi = sorted((b1, b2))
    for fn in ALL_COSTS[1:]:
        assert fn(p, 2, lo) <= fn(p, 2, hi) + 1e-15


@given(
    p1=st.integers(min_value=1, max_value=512),
    p2=st.integers(min_value=1, max_value=512),
)
def test_barrier_monotone_in_ranks(p1, p2):
    lo, hi = sorted((p1, p2))
    assert barrier_cost(NET, lo, 1) <= barrier_cost(NET, hi, 1) + 1e-15


@given(nbytes=st.integers(min_value=0, max_value=1 << 26))
def test_ptp_time_positive_and_ordered(nbytes):
    intra = NET.ptp_time(nbytes, intra_node=True)
    inter = NET.ptp_time(nbytes, intra_node=False)
    assert 0 < intra
    assert inter > 0
    # inter-node latency dominates for small, bandwidth for large; both
    # are never cheaper than the pure transfer term
    assert inter >= nbytes / NET.effective_bandwidth


def test_network_validation():
    with pytest.raises(ValueError):
        NetworkSpec(link_bandwidth=0.0)
    with pytest.raises(ValueError):
        NetworkSpec(efficiency=1.5)
    with pytest.raises(ValueError):
        NET.transfer_time(-1, intra_node=True)


def test_eager_threshold_boundary():
    assert NET.is_eager(NET.eager_threshold)
    assert not NET.is_eager(NET.eager_threshold + 1)


@given(rank=st.integers(min_value=0, max_value=1663))
def test_cluster_b_placement_roundtrip(rank):
    node, loc = CLUSTER_B.place(rank)
    assert 0 <= node < CLUSTER_B.max_nodes
    assert node * CLUSTER_B.node.cores + loc.core == rank
    assert 0 <= loc.domain < CLUSTER_B.node.numa_domains


@given(nprocs=st.integers(min_value=1, max_value=1728))
def test_ranks_per_node_partition(nprocs):
    counts = CLUSTER_A.ranks_per_node(nprocs)
    assert sum(counts) == nprocs
    assert all(0 < c <= CLUSTER_A.node.cores for c in counts)
    assert all(c == CLUSTER_A.node.cores for c in counts[:-1])


def test_faster_network_variant_reduces_costs():
    """A hypothetical NDR fabric (4x bandwidth) cuts large-message
    collective costs but not the latency-bound barrier much."""
    ndr = dataclasses.replace(NET, link_bandwidth=4 * NET.link_bandwidth)
    big = 1 << 24
    # inter-node-dominated pattern (one rank per node): most rounds ride
    # the fabric, so the 4x link shows up strongly
    assert allreduce_cost(ndr, 256, 256, big) < 0.6 * allreduce_cost(
        NET, 256, 256, big
    )
    assert barrier_cost(ndr, 256, 4) == pytest.approx(
        barrier_cost(NET, 256, 4), rel=0.01
    )
