"""Tests for the alignment-penalty model and the unit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.alignment import alignment_penalty
from repro.units import (
    GB,
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_energy,
    fmt_power,
    fmt_rate,
    fmt_time,
)


# --- alignment model ---------------------------------------------------------


def test_penalty_at_least_one():
    assert alignment_penalty(100, 100) >= 1.0


@given(
    rows=st.integers(min_value=1, max_value=65536),
    elems=st.integers(min_value=1, max_value=65536),
)
def test_penalty_bounded_and_deterministic(rows, elems):
    p1 = alignment_penalty(rows, elems)
    p2 = alignment_penalty(rows, elems)
    assert p1 == p2
    assert 1.0 <= p1 <= 2.5


def test_power_of_two_slabs_penalized():
    """A 2^22-byte-aligned slab is worse than a nearby odd one."""
    aligned = alignment_penalty(1024, 4096)      # 1024*4096*8 = 2^25
    odd = alignment_penalty(1021, 4093)
    assert aligned > odd


def test_penalty_varies_across_local_sizes():
    """Different decompositions hit different penalties — the source of
    lbm's fluctuating scaling curve."""
    values = {alignment_penalty(16384 // p + 1, 4096) for p in range(40, 72)}
    assert len(values) > 1


def test_penalty_validation():
    with pytest.raises(ValueError):
        alignment_penalty(0, 10)
    with pytest.raises(ValueError):
        alignment_penalty(10, 0)


def test_tlb_pressure_for_wide_rows():
    wide = alignment_penalty(11, 1_000_001, n_streams=37)
    narrow = alignment_penalty(11, 13, n_streams=37)
    assert wide >= narrow


# --- units ----------------------------------------------------------------------


def test_byte_constants():
    assert KiB == 1024
    assert MiB == 1024**2
    assert GiB == 1024**3
    assert GB == 1e9


def test_fmt_bytes():
    assert fmt_bytes(2.5e9) == "2.50 GB"
    assert fmt_bytes(54 * MiB, binary=True) == "54.00 MiB"
    assert fmt_bytes(10) == "10 B"


def test_fmt_rate():
    assert fmt_rate(102.4e9) == "102.40 GB/s"
    assert fmt_rate(4.2e9, "flop/s") == "4.20 Gflop/s"


def test_fmt_time():
    assert fmt_time(1.5) == "1.500 s"
    assert fmt_time(0.0042) == "4.20 ms"
    assert fmt_time(3e-6) == "3.00 us"
    assert fmt_time(5e-9) == "5.00 ns"


def test_fmt_power_and_energy():
    assert fmt_power(250.0) == "250.0 W"
    assert fmt_power(8000.0) == "8.00 kW"
    assert fmt_energy(500.0) == "500.0 J"
    assert fmt_energy(21_950.0) == "21.95 kJ"
    assert fmt_energy(3.2e6) == "3.20 MJ"
