"""Failure-tolerant harness: validation, retries, timeouts, checkpoints,
deadlock/leftover diagnostics, and pool-death fallback.

The benchmark doubles live at module scope so they pickle by reference
into worker processes.
"""

import json
import os
import time

import pytest

from repro.des import DeadlockError
from repro.harness import (
    FailedRun,
    RunFailedError,
    RunSpec,
    run,
    run_many,
    scaling_sweep,
)
from repro.harness.export import records_to_jsonl, series_to_json
from repro.machine import CLUSTER_A
from repro.smpi import MpiRuntime
from repro.spechpc import get_benchmark
from repro.spechpc.base import Benchmark, BenchmarkInfo, Workload


def _info(name):
    return BenchmarkInfo(
        name=name,
        benchmark_id=99,
        language="py",
        loc=1,
        collective="-",
        numerics="-",
        domain="test double",
        memory_bound=False,
    )


class _DoubleBase(Benchmark):
    workloads = {"tiny": Workload(suite="tiny", steps=1)}

    def local_units(self, ctx, rank):
        return 1.0

    def default_sim_steps(self, suite):
        return 1


class QuickBenchmark(_DoubleBase):
    info = _info("quick")

    def make_body(self, ctx):
        def body(comm):
            yield comm.compute(1.0, flops=1e6)

        return body


class CrashingBenchmark(_DoubleBase):
    """Raises only when launched at ``bad_nprocs`` ranks."""

    info = _info("crashing")

    def __init__(self, bad_nprocs=2):
        self.bad_nprocs = bad_nprocs

    def make_body(self, ctx):
        if ctx.nprocs == self.bad_nprocs:
            raise RuntimeError(f"injected benchmark bug at nprocs={ctx.nprocs}")

        def body(comm):
            yield comm.compute(1.0, flops=1e6)

        return body


class FlakyBenchmark(_DoubleBase):
    """Fails the first ``fail_times`` attempts, counted in a file so the
    count survives process boundaries."""

    info = _info("flaky")

    def __init__(self, counter_path, fail_times):
        self.counter_path = counter_path
        self.fail_times = fail_times

    def make_body(self, ctx):
        n = 0
        if os.path.exists(self.counter_path):
            with open(self.counter_path) as fh:
                n = int(fh.read() or 0)
        with open(self.counter_path, "w") as fh:
            fh.write(str(n + 1))
        if n < self.fail_times:
            raise RuntimeError(f"flaky failure #{n + 1}")

        def body(comm):
            yield comm.compute(1.0, flops=1e6)

        return body


class SleepyBenchmark(_DoubleBase):
    """Burns real wall-clock time inside the worker (a hung point)."""

    info = _info("sleepy")

    def __init__(self, seconds=5.0):
        self.seconds = seconds

    def make_body(self, ctx):
        time.sleep(self.seconds)

        def body(comm):
            yield comm.compute(1.0, flops=1e6)

        return body


class UnpicklableErrorBenchmark(_DoubleBase):
    """Raises an exception object that cannot cross a process boundary."""

    info = _info("unpicklable")

    def make_body(self, ctx):
        exc = RuntimeError("error with an unpicklable payload")
        exc.payload = lambda: None  # lambdas do not pickle
        raise exc


class HangingBenchmark(_DoubleBase):
    """Livelocks: the ranks trade events forever without finishing."""

    info = _info("hanging")

    def make_body(self, ctx):
        def body(comm):
            while True:
                yield comm.compute(1e-3, flops=1.0)

        return body


def _spec(bench, nprocs=1, **kw):
    return RunSpec(benchmark=bench, cluster=CLUSTER_A, nprocs=nprocs, **kw)


# --- upfront validation (satellite: fail fast on bad parameters) ------------


def test_runner_rejects_negative_noise_sigma():
    with pytest.raises(ValueError, match="noise_sigma"):
        run(get_benchmark("lbm"), CLUSTER_A, 2, noise_sigma=-0.1)


def test_runner_rejects_non_positive_sim_steps():
    with pytest.raises(ValueError, match="sim_steps"):
        run(get_benchmark("lbm"), CLUSTER_A, 2, sim_steps=0)


def test_runner_rejects_bad_watchdogs():
    with pytest.raises(ValueError, match="max_events"):
        run(get_benchmark("lbm"), CLUSTER_A, 2, max_events=0)
    with pytest.raises(ValueError, match="sim_time_limit"):
        run(get_benchmark("lbm"), CLUSTER_A, 2, sim_time_limit=0.0)


def test_run_many_rejects_bad_knobs():
    spec = _spec(QuickBenchmark())
    with pytest.raises(ValueError, match="workers"):
        run_many([spec], workers=0)
    with pytest.raises(ValueError, match="retries"):
        run_many([spec], retries=-1)
    with pytest.raises(ValueError, match="timeout"):
        run_many([spec], timeout=0.0)
    with pytest.raises(ValueError, match="trace"):
        run_many([_spec(QuickBenchmark(), trace=True)], workers=2)


# --- structured failures and retries ----------------------------------------


def test_tolerated_failure_returns_failed_run():
    specs = [_spec(CrashingBenchmark(bad_nprocs=2), n) for n in (1, 2, 4)]
    results = run_many(specs, tolerate_failures=True)
    assert [r.failed for r in results] == [False, True, False]
    failure = results[1]
    assert isinstance(failure, FailedRun)
    assert failure.nprocs == 2
    assert failure.error_type == "RuntimeError"
    assert "injected benchmark bug" in failure.error_message
    assert "injected benchmark bug" in failure.traceback
    jsonl = records_to_jsonl(results)
    docs = [json.loads(line) for line in jsonl.splitlines()]
    assert [d["status"] for d in docs] == ["ok", "failed", "ok"]


def test_untolerated_serial_failure_raises_original_exception():
    specs = [_spec(CrashingBenchmark(bad_nprocs=2), n) for n in (1, 2, 4)]
    with pytest.raises(RuntimeError, match="injected benchmark bug"):
        run_many(specs)


def test_untolerated_pool_failure_raises_with_spec_identity():
    specs = [_spec(CrashingBenchmark(bad_nprocs=2), n) for n in (1, 2, 4)]
    with pytest.raises(RunFailedError, match="nprocs=2") as excinfo:
        run_many(specs, workers=2)
    assert excinfo.value.failure.error_type == "RuntimeError"
    assert "injected benchmark bug" in excinfo.value.failure.traceback


def test_retries_eventually_succeed(tmp_path):
    flaky = FlakyBenchmark(str(tmp_path / "count"), fail_times=2)
    [result] = run_many([_spec(flaky)], retries=2, backoff=0.0)
    assert not result.failed
    assert result.elapsed > 0


def test_exhausted_retries_report_attempts(tmp_path):
    flaky = FlakyBenchmark(str(tmp_path / "count"), fail_times=10)
    [result] = run_many(
        [_spec(flaky)], retries=1, backoff=0.0, tolerate_failures=True
    )
    assert result.failed
    assert result.attempts == 2  # the first try plus one retry


def test_pool_retries_count_across_processes(tmp_path):
    flaky = FlakyBenchmark(str(tmp_path / "count"), fail_times=1)
    results = run_many(
        [_spec(flaky), _spec(QuickBenchmark())],
        workers=2,
        retries=1,
        backoff=0.0,
    )
    assert [r.failed for r in results] == [False, False]


# --- unpicklable worker errors ----------------------------------------------


def test_unpicklable_worker_error_surfaces_structured():
    specs = [_spec(UnpicklableErrorBenchmark()), _spec(QuickBenchmark())]
    results = run_many(specs, workers=2, tolerate_failures=True)
    assert results[0].failed
    assert results[0].error_type == "RuntimeError"
    assert "unpicklable payload" in results[0].error_message
    assert not results[1].failed


# --- per-point timeout ------------------------------------------------------


def test_timeout_records_failure_and_later_points_complete():
    specs = [_spec(SleepyBenchmark(seconds=8.0)), _spec(QuickBenchmark())]
    results = run_many(specs, timeout=1.0, tolerate_failures=True)
    assert results[0].failed
    assert results[0].error_type == "TimeoutError"
    assert "timeout" in results[0].error_message
    assert not results[1].failed


# --- hang watchdogs through the harness -------------------------------------


def test_livelocked_benchmark_fails_with_hang_error():
    [result] = run_many(
        [_spec(HangingBenchmark(), max_events=2_000)], tolerate_failures=True
    )
    assert result.failed
    assert result.error_type == "HangError"


# --- checkpoint / resume ----------------------------------------------------


def test_checkpoint_resume_skips_completed_points(tmp_path, monkeypatch):
    lbm = get_benchmark("lbm")
    specs = [_spec(lbm, n, sim_steps=1) for n in (1, 2)]
    path = str(tmp_path / "sweep.jsonl")
    first = run_many(specs, checkpoint=path)

    import repro.harness.runner as runner_mod

    def forbidden(*args, **kwargs):
        raise AssertionError("a checkpointed point was re-simulated")

    monkeypatch.setattr(runner_mod, "run", forbidden)
    second = run_many(specs, checkpoint=path)
    for a, b in zip(first, second):
        assert b.elapsed == a.elapsed
        assert b.counters == a.counters
        assert b.time_by_kind == a.time_by_kind


def test_checkpoint_reruns_changed_and_corrupt_entries(tmp_path):
    lbm = get_benchmark("lbm")
    path = str(tmp_path / "sweep.jsonl")
    run_many([_spec(lbm, 1, sim_steps=1)], checkpoint=path)
    # a truncated trailing line (killed writer) must not poison the file
    with open(path, "a") as fh:
        fh.write('{"version": 1, "key": "dead')
    results = run_many(
        [_spec(lbm, 1, sim_steps=1), _spec(lbm, 2, sim_steps=1)],
        checkpoint=path,
    )
    assert [r.nprocs for r in results] == [1, 2]
    assert all(not r.failed for r in results)


# --- pool death fallback ----------------------------------------------------


class _BrokenFuture:
    def result(self, timeout=None):
        from concurrent.futures.process import BrokenProcessPool

        raise BrokenProcessPool("a child process terminated abruptly")


class _BrokenPool:
    def __init__(self, max_workers=None):
        pass

    def submit(self, fn, *args, **kwargs):
        return _BrokenFuture()

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_broken_pool_falls_back_to_serial(monkeypatch):
    from repro.harness.executors import LocalPoolExecutor
    from repro.harness.parallel import run_many as rm

    monkeypatch.setattr(LocalPoolExecutor, "pool_factory", _BrokenPool)
    specs = [_spec(QuickBenchmark()), _spec(QuickBenchmark(), 2)]
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        results = rm(specs, workers=2)
    assert [r.failed for r in results] == [False, False]
    assert all(r.elapsed > 0 for r in results)


def test_broken_pool_fallback_still_enforces_timeout(monkeypatch):
    """Satellite: the post-BrokenProcessPool serial fallback must keep
    the per-point timeout semantics of the pool path (it used to drop
    them silently) — slow points still fail, quick points still run."""
    from repro.harness.executors import LocalPoolExecutor
    from repro.harness.parallel import run_many as rm

    monkeypatch.setattr(LocalPoolExecutor, "pool_factory", _BrokenPool)
    specs = [_spec(SleepyBenchmark(seconds=8.0)), _spec(QuickBenchmark(), 2)]
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        results = rm(specs, workers=2, timeout=1.0, tolerate_failures=True)
    assert results[0].failed
    assert results[0].error_type == "TimeoutError"
    assert not results[1].failed


def test_fully_broken_isolation_degrades_to_in_process(monkeypatch):
    """When even one-shot subprocesses cannot be created, the serial
    floor warns that the timeout is unenforceable and still completes
    the work in-process — degraded, never dead."""
    from repro.harness.executors import LocalPoolExecutor, SerialExecutor
    from repro.harness.parallel import run_many as rm

    monkeypatch.setattr(LocalPoolExecutor, "pool_factory", _BrokenPool)
    monkeypatch.setattr(SerialExecutor, "pool_factory", _BrokenPool)
    specs = [_spec(QuickBenchmark()), _spec(QuickBenchmark(), 2)]
    with pytest.warns(RuntimeWarning) as caught:
        results = rm(specs, workers=2, timeout=5.0, tolerate_failures=True)
    messages = [str(w.message) for w in caught]
    assert any("falling back to serial" in m for m in messages)
    assert any("timeout unenforced" in m for m in messages)
    assert [r.failed for r in results] == [False, False]


# --- failure-tolerant sweeps -------------------------------------------------


def test_sweep_with_crashing_point_keeps_survivors():
    series = scaling_sweep(
        CrashingBenchmark(bad_nprocs=2),
        CLUSTER_A,
        [1, 2, 4],
        sim_steps=1,
        tolerate_failures=True,
    )
    assert series.proc_counts == [1, 4]
    assert len(series.failures) == 1
    assert series.failures[0].nprocs == 2
    doc = json.loads(series_to_json(series))
    assert doc["failures"][0]["nprocs"] == 2
    assert doc["failures"][0]["error_type"] == "RuntimeError"


def test_sweep_losing_every_point_raises():
    with pytest.raises(RuntimeError, match="lost\\s+every point"):
        scaling_sweep(
            CrashingBenchmark(bad_nprocs=2),
            CLUSTER_A,
            [2],
            sim_steps=1,
            tolerate_failures=True,
        )


def test_sweep_resume_uses_checkpoint(tmp_path, monkeypatch):
    lbm = get_benchmark("lbm")
    path = str(tmp_path / "sweep.jsonl")
    first = scaling_sweep(lbm, CLUSTER_A, [1, 2], sim_steps=1, checkpoint=path)

    import repro.harness.runner as runner_mod

    monkeypatch.setattr(
        runner_mod,
        "run",
        lambda *a, **k: (_ for _ in ()).throw(AssertionError("re-simulated")),
    )
    second = scaling_sweep(lbm, CLUSTER_A, [1, 2], sim_steps=1, checkpoint=path)
    assert second.speedups() == first.speedups()


# --- deadlock & leftover diagnostics (satellite) -----------------------------


def test_mismatched_recvs_deadlock_names_guilty_ranks():
    def body(comm):
        # each rank waits for a message the other never sends
        yield comm.recv((comm.rank + 1) % 2, tag=5)

    rt = MpiRuntime(CLUSTER_A, 2)
    with pytest.raises(DeadlockError) as excinfo:
        rt.launch(body)
    msg = str(excinfo.value)
    assert "rank 0" in msg and "rank 1" in msg
    assert "MPI_Recv" in msg
    assert "tag=5" in msg


def test_leftover_sends_reported_with_peer_tag_and_size():
    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=256, tag=9)
        else:
            yield comm.compute(1e-3)

    rt = MpiRuntime(CLUSTER_A, 2)
    with pytest.raises(RuntimeError, match="unmatched") as excinfo:
        rt.launch(body)
    msg = str(excinfo.value)
    assert "rank 1" in msg          # the mailbox holding the leftover
    assert "from rank 0" in msg     # who sent it
    assert "tag=9" in msg
    assert "256 B" in msg


def test_leftover_recv_posts_reported():
    def body(comm):
        if comm.rank == 0:
            req = comm.irecv(1, tag=3)  # never completed, never matched
            yield comm.compute(1e-3)
            del req
        else:
            yield comm.compute(1e-3)

    rt = MpiRuntime(CLUSTER_A, 2)
    with pytest.raises(RuntimeError, match="unmatched") as excinfo:
        rt.launch(body)
    assert "recv posted" in str(excinfo.value)
    assert "tag=3" in str(excinfo.value)
