"""Distributed real-numerics on the simulated MPI: correctness vs the
sequential kernels, and payload-carrying message semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CLUSTER_A
from repro.smpi import MpiRuntime
from repro.spechpc.distributed import (
    _row_slabs,
    advection_body,
    solve_heat_distributed,
)
from repro.spechpc.kernels import heat_conduction_step
from repro.spechpc.kernels.fv_weather import _advect_1d


# --- payload plumbing -----------------------------------------------------------


def test_payload_travels_with_message():
    got = {}

    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=800, payload=np.arange(100.0))
        else:
            data = yield comm.recv(0)
            got["data"] = data

    MpiRuntime(CLUSTER_A, 2).launch(body)
    assert np.array_equal(got["data"], np.arange(100.0))


def test_payload_travels_on_rendezvous_path():
    got = {}
    big = 5 * 1024 * 1024

    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=big, payload="rendezvous-data")
        else:
            got["data"] = yield comm.recv(0)

    MpiRuntime(CLUSTER_A, 2).launch(body)
    assert got["data"] == "rendezvous-data"


def test_sendrecv_returns_payload():
    got = {}

    def body(comm):
        peer = 1 - comm.rank
        received = yield comm.sendrecv(
            peer, 64, peer, payload=f"from-{comm.rank}"
        )
        got[comm.rank] = received

    MpiRuntime(CLUSTER_A, 2).launch(body)
    assert got == {0: "from-1", 1: "from-0"}


def test_allreduce_data_sums_scalars():
    got = {}

    def body(comm):
        total = yield comm.allreduce_data(float(comm.rank + 1))
        got[comm.rank] = total

    MpiRuntime(CLUSTER_A, 4).launch(body)
    assert all(v == pytest.approx(10.0) for v in got.values())


def test_allreduce_data_sums_arrays():
    got = {}

    def body(comm):
        local = np.full(5, float(comm.rank))
        red = yield comm.allreduce_data(local)
        got[comm.rank] = red

    MpiRuntime(CLUSTER_A, 3).launch(body)
    for v in got.values():
        assert np.array_equal(v, np.full(5, 3.0))


def test_allreduce_data_custom_op():
    got = {}

    def body(comm):
        red = yield comm.allreduce_data(float(comm.rank), op=np.maximum)
        got[comm.rank] = red

    MpiRuntime(CLUSTER_A, 5).launch(body)
    assert all(v == 4.0 for v in got.values())


def test_send_without_payload_receives_none():
    got = {}

    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=16)
        else:
            got["data"] = yield comm.recv(0)

    MpiRuntime(CLUSTER_A, 2).launch(body)
    assert got["data"] is None


# --- decomposition helper ---------------------------------------------------------


@given(
    ny=st.integers(min_value=1, max_value=500),
    p=st.integers(min_value=1, max_value=32),
)
def test_row_slabs_partition(ny, p):
    if p > ny:
        p = ny
    slabs = _row_slabs(ny, p)
    assert slabs[0][0] == 0
    assert sum(ext for _, ext in slabs) == ny
    for (s1, e1), (s2, _e2) in zip(slabs, slabs[1:]):
        assert s2 == s1 + e1


# --- distributed heat CG ---------------------------------------------------------------


def test_distributed_heat_matches_sequential():
    u0 = np.zeros((40, 32))
    u0[15:25, 10:22] = 2.0
    seq, _ = heat_conduction_step(u0, dt=0.3, tol=1e-12)
    dist, elapsed = solve_heat_distributed(u0, 0.3, CLUSTER_A, nprocs=5,
                                           iterations=400)
    assert np.abs(seq - dist).max() < 1e-10
    assert elapsed > 0


def test_distributed_heat_independent_of_rank_count():
    rng = np.random.default_rng(3)
    u0 = rng.random((36, 24))
    d2, _ = solve_heat_distributed(u0, 0.2, CLUSTER_A, 2, iterations=300)
    d6, _ = solve_heat_distributed(u0, 0.2, CLUSTER_A, 6, iterations=300)
    assert np.abs(d2 - d6).max() < 1e-9


def test_distributed_heat_conserves_energy():
    u0 = np.zeros((30, 30))
    u0[10:20, 10:20] = 1.0
    dist, _ = solve_heat_distributed(u0, 0.5, CLUSTER_A, 3, iterations=400)
    assert dist.sum() == pytest.approx(u0.sum(), rel=1e-9)


def test_distributed_heat_validation():
    u0 = np.zeros((4, 4))
    with pytest.raises(ValueError):
        solve_heat_distributed(u0, 0.1, CLUSTER_A, nprocs=8)
    with pytest.raises(ValueError):
        solve_heat_distributed(np.zeros(4), 0.1, CLUSTER_A, nprocs=2)


# --- distributed advection -----------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_distributed_advection_bit_exact(nprocs):
    rng = np.random.default_rng(7)
    q0 = rng.random((10, 64))
    dt_dx, steps = 0.4, 7
    seq = q0.copy()
    for _ in range(steps):
        seq = _advect_1d(seq, 1.0, dt_dx)
    results = {}
    MpiRuntime(CLUSTER_A, nprocs).launch(
        advection_body(q0, 1.0, dt_dx, steps, results)
    )
    dist = np.hstack([results[r] for r in range(nprocs)])
    assert np.array_equal(seq, dist)


def test_distributed_advection_conserves():
    q0 = np.ones((6, 32)) + np.arange(32) / 32.0
    results = {}
    MpiRuntime(CLUSTER_A, 4).launch(advection_body(q0, 1.0, 0.3, 10, results))
    dist = np.hstack([results[r] for r in range(4)])
    assert dist.sum() == pytest.approx(q0.sum(), rel=1e-12)


def test_distributed_advection_rejects_negative_wind():
    with pytest.raises(ValueError):
        advection_body(np.ones((4, 8)), -1.0, 0.1, 1, {})
