"""Hand-computed checks for analysis/comparison.py and perfmon/roofline.py.

The existing suites assert relations (hot > cool, band contains measured);
these tests pin the arithmetic itself to values worked out by hand, so a
silent formula change (a dropped socket factor, a GB/GiB slip, a flipped
ratio) fails with an exact number instead of surviving as a plausible
trend.
"""

import pytest

from repro.analysis.comparison import (
    acceleration_factor,
    dram_power_per_socket,
    expected_acceleration_band,
    is_hot,
    tdp_fraction,
)
from repro.harness.results import RunResult
from repro.machine.registry import CLUSTER_A, CLUSTER_B
from repro.perfmon.rapl import EnergyReading
from repro.perfmon.roofline import RooflinePoint, RooflineSample


def _result(benchmark="lbm", suite="tiny", elapsed=10.0, nnodes=1,
            chip_energy=0.0, dram_energy=0.0, cluster="ClusterA"):
    return RunResult(
        benchmark=benchmark,
        cluster=cluster,
        suite=suite,
        nprocs=8,
        nnodes=nnodes,
        elapsed=elapsed,
        sim_elapsed=elapsed,
        step_scale=1.0,
        counters={"flops": 0.0},
        time_by_kind={"compute": elapsed},
        energy=EnergyReading(
            elapsed=elapsed,
            chip_energy=chip_energy,
            dram_energy=dram_energy,
            nnodes=nnodes,
        ),
    )


# --- comparison.py ----------------------------------------------------------


def test_acceleration_factor_exact():
    # A takes 12 s, B takes 8 s -> B is 12/8 = 1.5x faster
    ra = _result(elapsed=12.0)
    rb = _result(elapsed=8.0, cluster="ClusterB")
    assert acceleration_factor(ra, rb) == pytest.approx(1.5)
    assert acceleration_factor(rb, ra) == pytest.approx(8.0 / 12.0)


def test_tdp_fraction_exact():
    # 2 nodes x 2 sockets x 250 W TDP (Ice Lake 8360Y) = 1000 W envelope;
    # 9000 J of chip energy over 10 s = 900 W average -> fraction 0.90
    tdp = CLUSTER_A.node.cpu.tdp_w
    r = _result(elapsed=10.0, nnodes=2, chip_energy=4 * tdp * 10.0 * 0.90)
    assert tdp_fraction(r, CLUSTER_A) == pytest.approx(0.90)
    # 0.90 < default hot threshold 0.92 < 0.95
    assert not is_hot(r, CLUSTER_A)
    hot = _result(elapsed=10.0, nnodes=2, chip_energy=4 * tdp * 10.0 * 0.95)
    assert is_hot(hot, CLUSTER_A)


def test_dram_power_per_socket_exact():
    # 1 node x 2 sockets, 600 J DRAM over 10 s = 60 W -> 30 W per socket
    r = _result(elapsed=10.0, nnodes=1, dram_energy=600.0)
    assert dram_power_per_socket(r, CLUSTER_A) == pytest.approx(30.0)


def test_expected_acceleration_band_from_table3():
    # the band is (min, max) of the peak-flops and sustained-BW ratios,
    # computed straight from the node specs
    peak = CLUSTER_B.node.peak_flops / CLUSTER_A.node.peak_flops
    bw = (
        CLUSTER_B.node.sustained_memory_bw
        / CLUSTER_A.node.sustained_memory_bw
    )
    lo, hi = expected_acceleration_band(CLUSTER_A, CLUSTER_B)
    assert (lo, hi) == (min(peak, bw), max(peak, bw))
    # the paper's headline numbers: ~1.2 compute-bound, ~1.5 memory-bound
    assert 1.0 < lo < 1.4
    assert 1.4 < hi < 1.7


# --- roofline.py -------------------------------------------------------------


def test_roofline_point_hand_computed():
    # ceilings: 100 Gflop/s, 100 GB/s -> knee at 1 flop/B.
    # At intensity 0.5 the bandwidth roof allows 100e9 * 0.5 / 1e9 = 50
    # Gflop/s; achieving 25 is 50% efficiency and memory-bound.
    p = RooflinePoint(
        intensity=0.5, gflops=25.0, peak_gflops=100.0, peak_bw=100e9
    )
    assert p.knee_intensity == pytest.approx(1.0)
    assert p.attainable_gflops == pytest.approx(50.0)
    assert p.efficiency == pytest.approx(0.5)
    assert p.memory_bound


def test_roofline_point_compute_bound_side():
    # intensity 4 flop/B is right of the knee: the compute roof (100)
    # caps attainment even though the bandwidth roof would allow 400
    p = RooflinePoint(
        intensity=4.0, gflops=80.0, peak_gflops=100.0, peak_bw=100e9
    )
    assert p.attainable_gflops == pytest.approx(100.0)
    assert p.efficiency == pytest.approx(0.8)
    assert not p.memory_bound


def test_roofline_point_infinite_intensity():
    # no memory traffic at all: the compute roof is the only ceiling
    p = RooflinePoint(
        intensity=float("inf"), gflops=50.0, peak_gflops=100.0, peak_bw=100e9
    )
    assert p.attainable_gflops == pytest.approx(100.0)
    assert not p.memory_bound


def test_roofline_sample_intensity_hand_computed():
    # 50 Gflop/s against 25 GB/s = 50e9 / 25e9 = 2 flop/B
    s = RooflineSample(t0=0.0, t1=1.0, gflops=50.0, mem_bw=25e9)
    assert s.intensity == pytest.approx(2.0)
    # zero bandwidth -> infinite intensity, not a ZeroDivisionError
    assert RooflineSample(0.0, 1.0, 50.0, 0.0).intensity == float("inf")
