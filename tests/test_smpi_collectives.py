"""Collective semantics and cost-model behavior."""

import math

import pytest

from repro.machine import CLUSTER_A, CLUSTER_B
from repro.machine.network import NetworkSpec
from repro.smpi import MpiRuntime
from repro.smpi.collectives import (
    allgather_cost,
    allreduce_cost,
    barrier_cost,
    bcast_cost,
    reduce_cost,
)

NET = NetworkSpec()


def run_job(nprocs, factory, cluster=CLUSTER_A):
    return MpiRuntime(cluster, nprocs).launch(factory)


# --- cost-model unit tests ------------------------------------------------------


def test_single_rank_collectives_free():
    assert barrier_cost(NET, 1, 1) == 0.0
    assert allreduce_cost(NET, 1, 1, 8) == 0.0
    assert bcast_cost(NET, 1, 1, 8) == 0.0
    assert reduce_cost(NET, 1, 1, 8) == 0.0
    assert allgather_cost(NET, 1, 1, 8) == 0.0


def test_allreduce_cost_grows_logarithmically():
    c4 = allreduce_cost(NET, 4, 1, 8)
    c16 = allreduce_cost(NET, 16, 1, 8)
    c256 = allreduce_cost(NET, 256, 4, 8)
    assert c4 < c16 < c256
    # log growth: doubling rounds, not doubling per rank
    assert c16 < 3 * c4


def test_internode_rounds_cost_more():
    intra = allreduce_cost(NET, 64, 1, 8)
    inter = allreduce_cost(NET, 64, 8, 8)
    assert inter > intra


def test_allreduce_cost_grows_with_bytes():
    small = allreduce_cost(NET, 16, 2, 8)
    big = allreduce_cost(NET, 16, 2, 8 * 1024 * 1024)
    assert big > small * 10


def test_barrier_cheaper_than_allreduce_payload():
    assert barrier_cost(NET, 64, 4) <= allreduce_cost(NET, 64, 4, 1024)


def test_allgather_scales_linearly_in_ranks():
    c8 = allgather_cost(NET, 8, 1, 8 * 1024)
    c64 = allgather_cost(NET, 64, 1, 64 * 1024)
    assert c64 > c8


# --- runtime semantics ------------------------------------------------------------


def test_barrier_synchronizes_all_ranks():
    arrivals = {}
    departures = {}

    def body(comm):
        yield comm.compute(0.1 * comm.rank)
        arrivals[comm.rank] = comm.now
        yield comm.barrier()
        departures[comm.rank] = comm.now

    run_job(4, body)
    # nobody leaves before the last arrival
    latest_arrival = max(arrivals.values())
    assert all(d >= latest_arrival for d in departures.values())
    # all leave at the same instant
    assert len({round(d, 12) for d in departures.values()}) == 1


def test_barrier_wait_time_reflects_skew():
    def body(comm):
        yield comm.compute(1.0 if comm.rank == 0 else 0.0)
        yield comm.barrier()

    job = run_job(4, body)
    # rank 0 arrives last: nearly zero barrier time
    assert job.stats[0].time_by_kind.get("MPI_Barrier", 0.0) < 0.01
    # the others waited ~1 s
    for r in (1, 2, 3):
        assert job.stats[r].time_by_kind["MPI_Barrier"] == pytest.approx(1.0, rel=0.05)


def test_allreduce_every_iteration():
    iters = 5

    def body(comm):
        for _ in range(iters):
            yield comm.compute(0.01)
            yield comm.allreduce(8)

    job = run_job(8, body)
    for s in job.stats:
        assert s.time_by_kind.get("MPI_Allreduce", 0.0) > 0.0
    assert job.elapsed > iters * 0.01


def test_collective_sequence_mismatch_detected():
    def body(comm):
        if comm.rank == 0:
            yield comm.barrier()
            yield comm.barrier()
        else:
            yield comm.barrier()

    with pytest.raises(Exception):
        run_job(2, body)


def test_bcast_and_reduce_complete():
    def body(comm):
        yield comm.bcast(4096, root=0)
        yield comm.reduce(4096, root=0)
        yield comm.allgather(8 * comm.size)

    job = run_job(6, body)
    kinds = set(job.breakdown())
    assert {"MPI_Bcast", "MPI_Reduce", "MPI_Allgather"} <= kinds


def test_multinode_allreduce_slower_than_single_node(cluster=CLUSTER_B):
    def body(comm):
        yield comm.allreduce(8)

    cores = cluster.node.cores
    t_single = run_job(cores, body, cluster).elapsed
    t_multi = run_job(2 * cores, body, cluster).elapsed
    assert t_multi > t_single


def test_elapsed_equals_max_rank_total():
    def body(comm):
        yield comm.compute(0.2 + 0.05 * comm.rank)
        yield comm.barrier()

    job = run_job(4, body)
    slowest = max(s.total_time for s in job.stats)
    assert job.elapsed == pytest.approx(slowest, rel=1e-9)
