"""Time-resolved Roofline sampling (ClusterCockpit-style monitoring)."""

import pytest

from repro.harness import run
from repro.machine import CLUSTER_A
from repro.perfmon import TraceCollector
from repro.perfmon.roofline import RooflineSample, timeline_samples
from repro.smpi import MpiRuntime
from repro.spechpc import get_benchmark


def test_samples_capture_phase_structure():
    """A job alternating hot-compute and idle-MPI phases shows the
    alternation in its Roofline time series."""
    tc = TraceCollector()
    rt = MpiRuntime(CLUSTER_A, 2, trace=tc)

    def body(comm):
        for _ in range(3):
            yield comm.compute(0.1, flops=1e9, mem_bytes=1e8)
            yield comm.compute(0.1, flops=0.0, mem_bytes=2e9)

    rt.launch(body)
    samples = timeline_samples(tc, buckets=12)
    assert len(samples) == 12
    g = [s.gflops for s in samples]
    # hot and cold buckets alternate: spread between them is large
    assert max(g) > 3 * (min(g) + 1e-9)


def test_samples_conserve_totals():
    tc = TraceCollector()
    rt = MpiRuntime(CLUSTER_A, 3, trace=tc)

    def body(comm):
        yield comm.compute(0.2, flops=5e8, mem_bytes=1e9)
        yield comm.barrier()

    rt.launch(body)
    samples = timeline_samples(tc, buckets=7)
    total_flops = sum(s.gflops * (s.t1 - s.t0) * 1e9 for s in samples)
    total_mem = sum(s.mem_bw * (s.t1 - s.t0) for s in samples)
    assert total_flops == pytest.approx(3 * 5e8, rel=1e-6)
    assert total_mem == pytest.approx(3 * 1e9, rel=1e-6)


def test_samples_from_real_benchmark():
    r = run(get_benchmark("tealeaf"), CLUSTER_A, 8, trace=True)
    samples = timeline_samples(r.trace, buckets=20)
    assert len(samples) == 20
    # a memory-bound code: intensity below 1 flop/B everywhere it computes
    busy = [s for s in samples if s.mem_bw > 0]
    assert busy
    assert all(s.intensity < 1.0 for s in busy)


def test_zero_duration_intervals_keep_their_counters():
    """Regression: a zero-duration interval carrying counters (a
    replayed or aggregated phase deposited at an instant) used to lose
    its flops/bytes entirely — its bucket overlap is zero, so the
    proportional spreading skipped it.  The counters must instead land
    whole in the bucket containing t0, keeping the series conservative."""
    tc = TraceCollector()
    tc.record(0, 0.0, 0.5, "compute", flops=1e9, mem_bytes=1e8)
    tc.record(0, 0.3, 0.3, "compute", flops=7e9, mem_bytes=3e8)
    tc.record(0, 1.0, 1.0, "compute", flops=2e9, mem_bytes=4e8)  # at t_max
    samples = timeline_samples(tc, buckets=5)
    total_flops = sum(s.gflops * (s.t1 - s.t0) * 1e9 for s in samples)
    total_mem = sum(s.mem_bw * (s.t1 - s.t0) for s in samples)
    assert total_flops == pytest.approx(1e10, rel=1e-6)
    assert total_mem == pytest.approx(8e8, rel=1e-6)
    # and the instantaneous counters land where they happened, not at 0
    # bucket 1 = [0.2, 0.4): the whole 7e9 instant plus the spread
    # interval's share, (0.2 / 0.5) * 1e9
    assert samples[1].gflops * (samples[1].t1 - samples[1].t0) * 1e9 == (
        pytest.approx(7e9 + 0.4e9, rel=1e-6)
    )


def test_zero_duration_trace_is_empty_not_crashing():
    """A trace whose whole span is a single instant has no time axis to
    bucket over: the series is empty, not a ZeroDivisionError."""
    tc = TraceCollector()
    tc.record(0, 0.2, 0.2, "compute", flops=1e9, mem_bytes=1e8)
    assert timeline_samples(tc, buckets=4) == []


def test_sample_intensity_and_validation():
    s = RooflineSample(0.0, 1.0, gflops=2.0, mem_bw=1e9)
    assert s.intensity == pytest.approx(2.0)
    s0 = RooflineSample(0.0, 1.0, gflops=2.0, mem_bw=0.0)
    assert s0.intensity == float("inf")
    tc = TraceCollector()
    with pytest.raises(ValueError):
        timeline_samples(tc, buckets=0)
    assert timeline_samples(tc, buckets=5) == []
