"""Tests for the likwid-style formatted reports."""

from repro.harness import run
from repro.machine import CLUSTER_A
from repro.perfmon.likwid_report import (
    cache_report,
    energy_report,
    full_report,
    mem_dp_report,
)
from repro.spechpc import get_benchmark


def _result():
    return run(get_benchmark("pot3d"), CLUSTER_A, 18)


def test_mem_dp_report_contents():
    text = mem_dp_report(_result(), CLUSTER_A)
    assert "Group MEM_DP" in text
    assert "DP [MFLOP/s]" in text
    assert "Vectorization ratio" in text
    assert "pot3d" in text


def test_cache_report_contents():
    text = cache_report(_result())
    assert "L3 bandwidth" in text
    assert "L2 data volume" in text


def test_energy_report_contents():
    text = energy_report(_result())
    assert "Energy PKG [J]" in text
    assert "Power DRAM [W]" in text


def test_full_report_is_three_boxes():
    text = full_report(_result(), CLUSTER_A)
    assert text.count("Group MEM_DP") == 1
    assert text.count("Group ENERGY") == 1
    # box borders align (every line starts with | or +)
    for line in text.splitlines():
        if line:
            assert line[0] in "+|"


def test_report_box_alignment():
    text = mem_dp_report(_result(), CLUSTER_A)
    widths = {len(line) for line in text.splitlines() if line}
    assert len(widths) == 1
