"""Harness tests: runner, sweeps, result records, reporting."""

import json

import pytest

from repro.harness import (
    ascii_plot,
    ascii_table,
    domain_fill_counts,
    fmt_float,
    node_counts,
    run,
    scaling_sweep,
)
from repro.harness.results import ScalingPoint, ScalingSeries
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.spechpc import get_benchmark


@pytest.fixture(scope="module")
def tealeaf_series():
    return scaling_sweep(
        get_benchmark("tealeaf"), CLUSTER_A, [1, 4, 9, 18], repeats=2,
        noise_sigma=0.02,
    )


def test_run_result_fields():
    r = run(get_benchmark("tealeaf"), CLUSTER_A, 4)
    assert r.benchmark == "tealeaf"
    assert r.cluster == "ClusterA"
    assert r.suite == "tiny"
    assert r.nprocs == 4 and r.nnodes == 1
    assert r.elapsed > 0 and r.sim_elapsed > 0
    assert r.gflops > 0
    assert 0 <= r.mpi_fraction < 1
    assert r.total_energy > 0
    assert r.edp == pytest.approx(r.total_energy * r.elapsed)


def test_run_result_json_roundtrip():
    r = run(get_benchmark("soma"), CLUSTER_A, 2)
    d = json.loads(r.to_json())
    assert d["benchmark"] == "soma"
    assert d["nprocs"] == 2
    assert d["energy_kj"] > 0


def test_sweep_statistics_ordering(tealeaf_series):
    for p in tealeaf_series.points:
        assert p.elapsed_min <= p.elapsed_avg <= p.elapsed_max
        assert p.best.elapsed == p.elapsed_min


def test_sweep_speedup_baseline(tealeaf_series):
    sp = tealeaf_series.speedups()
    assert sp[1] == pytest.approx(1.0)
    assert sp[18] > sp[4] > sp[1]


def test_speedup_stats_bracket_average(tealeaf_series):
    stats = tealeaf_series.speedup_stats()
    for n, (lo, avg, hi) in stats.items():
        assert lo <= avg <= hi


def test_series_point_lookup(tealeaf_series):
    assert tealeaf_series.point(9).nprocs == 9
    with pytest.raises(KeyError):
        tealeaf_series.point(999)


def test_sweep_validation():
    with pytest.raises(ValueError):
        scaling_sweep(get_benchmark("lbm"), CLUSTER_A, [1], repeats=0)
    with pytest.raises(ValueError):
        ScalingPoint(nprocs=1, runs=())
    with pytest.raises(ValueError):
        ScalingSeries("x", "A", "tiny", ())


def test_domain_fill_and_node_counts():
    assert domain_fill_counts(CLUSTER_A)[:3] == [1, 2, 3]
    assert domain_fill_counts(CLUSTER_A)[-1] == 72
    assert node_counts(CLUSTER_B) == [1, 2, 4, 8, 16]
    assert node_counts(CLUSTER_A, max_nodes=5) == [1, 2, 4]


def test_sim_steps_override_changes_resolution():
    b = get_benchmark("cloverleaf")
    r2 = run(b, CLUSTER_A, 4, sim_steps=2)
    r4 = run(b, CLUSTER_A, 4, sim_steps=4)
    # scaled results agree regardless of the simulated step count
    assert r2.elapsed == pytest.approx(r4.elapsed, rel=1e-6)
    assert r2.counters["flops"] == pytest.approx(r4.counters["flops"], rel=1e-6)


def test_counters_scale_with_steps():
    b = get_benchmark("tealeaf")
    r = run(b, CLUSTER_A, 4)
    wl = b.workload("tiny")
    per_iter_flops = r.counters["flops"] / wl.total_iterations
    # 16 flops per cell per CG iteration over the whole grid
    assert per_iter_flops == pytest.approx(16 * 8192 * 8192, rel=0.01)


# --- reporting helpers ------------------------------------------------------------


def test_ascii_table_alignment():
    out = ascii_table(["a", "bb"], [(1, 22), (333, 4)], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert len({len(l) for l in lines[1:]}) == 1  # all rows equal width


def test_ascii_plot_basic():
    out = ascii_plot([1, 2, 3], {"s": [1.0, 2.0, 3.0]}, width=20, height=5)
    assert "s=s" not in out  # legend well-formed
    assert "o" in out


def test_ascii_plot_log_scale():
    out = ascii_plot([1, 2], {"s": [1.0, 1000.0]}, width=10, height=4, logy=True)
    assert "1000" in out


def test_ascii_plot_log_rejects_nonpositive():
    with pytest.raises(ValueError):
        ascii_plot([1], {"s": [0.0]}, logy=True)


def test_ascii_plot_empty():
    assert ascii_plot([], {}, width=10, height=3) == "(no data)"


def test_fmt_float_widths():
    assert len(fmt_float(1.2345)) == 8
    assert "e" in fmt_float(1.23e12)
    assert fmt_float(0.0).strip() == "0.00"
