"""Chaos battery for the content-addressed result store.

The store's one invariant: **corruption degrades to a cache miss,
never to a wrong answer**.  Whatever happens to the backing file — a
torn tail from a crash mid-append, a truncated or interrupted
compaction, concurrent writers, a stale schema stamp, or a tampered
result — every entry the store *does* return must still reproduce its
recorded golden fingerprint, and everything else must simply miss (the
server then recomputes and rewrites).

Also here: the regression tests for the fsync-after-rename durability
fix (``fsync_dir``) shared by the result store, the harness checkpoint
and the prediction corpus — a crash right after ``os.replace`` must not
resurrect the pre-compact file, which requires fsyncing the *directory*
entry, not just the file data.
"""

import json
import os
import stat
import threading

import pytest

from repro.harness.results import RunResult
from repro.perfmon.rapl import EnergyReading
from repro.serve.store import STORE_SCHEMA, ResultStore, StoreEntry

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # optional test dependency
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)


# ----------------------------------------------------------------------
# synthetic results
# ----------------------------------------------------------------------


def synth_result(tag: int, elapsed: float = 1.0) -> RunResult:
    """A small, fully synthetic RunResult that fingerprints cleanly."""
    return RunResult(
        benchmark=f"synthetic-{tag}",
        cluster="A",
        suite="tiny",
        nprocs=2,
        nnodes=1,
        elapsed=elapsed,
        sim_elapsed=elapsed / 2.0,
        step_scale=4.0,
        counters={"flops": 1e9 + tag, "simd_flops": 5e8,
                  "mem_bytes": 1e8, "l2_bytes": 2e8, "l3_bytes": 1.5e8},
        time_by_kind={"compute": 0.8 * elapsed, "MPI_Allreduce": 0.2 * elapsed},
        energy=EnergyReading(elapsed=elapsed, chip_energy=100.0 + tag,
                             dram_energy=10.0, nnodes=1),
        rank_times=({"compute": 0.8 * elapsed, "MPI_Allreduce": 0.2 * elapsed},
                    {"compute": 0.7 * elapsed, "MPI_Allreduce": 0.3 * elapsed}),
    )


def synth_entry(tag: int, elapsed: float = 1.0) -> StoreEntry:
    from repro.validate.golden import fingerprint

    result = synth_result(tag, elapsed)
    return StoreEntry(
        key=f"{tag:064d}",
        spec={"benchmark": result.benchmark, "cluster": "A"},
        result=result,
        fingerprint=fingerprint(result).digest,
    )


def assert_never_wrong(store: ResultStore) -> None:
    """The invariant: every returned entry reproduces its fingerprint."""
    from repro.validate.golden import fingerprint

    for key in store.keys():
        entry = store.get(key)
        assert fingerprint(entry.result).digest == entry.fingerprint


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------


def test_persistence_round_trip(tmp_path):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    entries = [synth_entry(i) for i in range(5)]
    for e in entries:
        store.put(e)
    reloaded = ResultStore(path)
    assert len(reloaded) == 5
    assert reloaded.rejected_lines == 0
    for e in entries:
        got = reloaded.get(e.key)
        assert got is not None
        assert got.fingerprint == e.fingerprint
        assert got.result == e.result
    assert_never_wrong(reloaded)


def test_last_record_wins(tmp_path):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    first = synth_entry(1, elapsed=1.0)
    second = synth_entry(1, elapsed=2.0)  # same key, newer answer
    store.put(first)
    store.put(second)
    reloaded = ResultStore(path)
    assert reloaded.get(first.key).result.elapsed == 2.0
    assert reloaded.compact() == 1
    assert len(ResultStore(path)) == 1


def test_memory_only_store_compact_noops():
    store = ResultStore(None)
    store.put(synth_entry(1))
    assert store.compact() == 1
    assert store.get(synth_entry(1).key) is not None


# ----------------------------------------------------------------------
# corruption
# ----------------------------------------------------------------------


def test_torn_tail_loses_only_the_last_append(tmp_path):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    kept, torn = synth_entry(1), synth_entry(2)
    store.put(kept)
    store.put(torn)
    # crash mid-append: cut the file inside the last record
    with open(path) as fh:
        lines = fh.readlines()
    with open(path, "w") as fh:
        fh.write(lines[0])
        fh.write(lines[1][: len(lines[1]) // 2])
    reloaded = ResultStore(path)
    assert reloaded.get(kept.key) is not None
    assert reloaded.get(torn.key) is None  # a miss, not garbage
    assert reloaded.rejected_lines == 1
    assert_never_wrong(reloaded)
    # the server's recovery: recompute, rewrite, compact to clean
    reloaded.put(torn)
    reloaded.compact()
    final = ResultStore(path)
    assert final.rejected_lines == 0
    assert len(final) == 2


def test_tampered_result_is_discarded_not_served(tmp_path):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    honest, tampered = synth_entry(1), synth_entry(2)
    store.put(honest)
    store.put(tampered)
    # bit rot / malice: valid JSON, wrong physics — elapsed edited
    # without updating the fingerprint
    with open(path) as fh:
        lines = [json.loads(line) for line in fh]
    lines[1]["result"]["elapsed"] = 123.456
    with open(path, "w") as fh:
        for doc in lines:
            fh.write(json.dumps(doc) + "\n")
    reloaded = ResultStore(path)
    assert reloaded.get(honest.key) is not None
    assert reloaded.get(tampered.key) is None
    assert reloaded.rejected_lines == 1
    assert_never_wrong(reloaded)


def test_stale_schema_degrades_to_recompute(tmp_path):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    entry = synth_entry(1)
    store.put(entry)
    with open(path) as fh:
        docs = [json.loads(line) for line in fh]
    for doc in docs:
        doc["schema"] = STORE_SCHEMA + 98
    with open(path, "w") as fh:
        for doc in docs:
            fh.write(json.dumps(doc) + "\n")
    reloaded = ResultStore(path)
    assert len(reloaded) == 0  # all records ignored: recompute
    assert reloaded.rejected_lines == 1
    reloaded.put(entry)  # the rewrite wins on the next load
    assert ResultStore(path).get(entry.key) is not None


def test_leftover_compact_tmp_is_harmless(tmp_path):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    store.put(synth_entry(1))
    # a crash between writing the temp file and os.replace leaves this
    with open(path + ".compact.tmp", "w") as fh:
        fh.write('{"half a rec')
    reloaded = ResultStore(path)
    assert len(reloaded) == 1
    assert reloaded.compact() == 1
    assert len(ResultStore(path)) == 1


def test_failed_compact_keeps_the_original_file(tmp_path, monkeypatch):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    for i in range(3):
        store.put(synth_entry(i))

    def exploding_replace(src, dst):
        raise OSError("disk went away")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        store.compact()
    monkeypatch.undo()
    reloaded = ResultStore(path)
    assert len(reloaded) == 3
    assert reloaded.rejected_lines == 0


def test_concurrent_writers_interleave_safely(tmp_path):
    path = str(tmp_path / "store.jsonl")
    writers = [ResultStore(path) for _ in range(2)]
    per_writer = 8

    def write(widx: int) -> None:
        for i in range(per_writer):
            writers[widx].put(synth_entry(widx * 1000 + i))

    threads = [threading.Thread(target=write, args=(w,)) for w in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    reloaded = ResultStore(path)
    assert len(reloaded) == 2 * per_writer
    assert reloaded.rejected_lines == 0
    assert_never_wrong(reloaded)


@needs_hypothesis
@settings(max_examples=25, deadline=None)
@given(
    tags=st.lists(st.integers(0, 9), min_size=1, max_size=6, unique=True),
    garbage=st.binary(min_size=1, max_size=200),
    cut=st.floats(0.0, 1.0),
)
def test_any_tail_garbage_never_yields_a_wrong_answer(
    tmp_path_factory, tags, garbage, cut
):
    """Property: valid appends + arbitrary trailing bytes + an arbitrary
    truncation point -> every surviving entry is verified, every lost
    entry is a miss."""
    tmp = tmp_path_factory.mktemp("chaos")
    path = str(tmp / "store.jsonl")
    store = ResultStore(path)
    entries = [synth_entry(t) for t in tags]
    for e in entries:
        store.put(e)
    with open(path, "ab") as fh:
        fh.write(garbage)
    size = os.path.getsize(path)
    keep = max(0, round(size * cut))
    with open(path, "rb+") as fh:
        fh.truncate(keep)
    reloaded = ResultStore(path)
    assert_never_wrong(reloaded)
    for e in entries:
        got = reloaded.get(e.key)
        if got is not None:  # survived -> must be the exact answer
            assert got.fingerprint == e.fingerprint
            assert got.result == e.result


# ----------------------------------------------------------------------
# fsync-after-rename durability (the shared fix)
# ----------------------------------------------------------------------


class FsyncSpy:
    """Records fsync/replace ordering; tells directory fds from files."""

    def __init__(self, monkeypatch):
        self.events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            kind = "dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file"
            self.events.append(("fsync", kind))
            return real_fsync(fd)

        def spy_replace(src, dst):
            self.events.append(("replace", None))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)

    def dir_fsync_after_replace(self) -> bool:
        try:
            idx = self.events.index(("replace", None))
        except ValueError:
            return False
        return ("fsync", "dir") in self.events[idx + 1:]


@pytest.mark.skipif(not hasattr(os, "O_DIRECTORY"),
                    reason="directory fsync is POSIX-only")
def test_store_compact_fsyncs_directory_after_replace(tmp_path, monkeypatch):
    path = str(tmp_path / "store.jsonl")
    store = ResultStore(path)
    store.put(synth_entry(1))
    spy = FsyncSpy(monkeypatch)
    store.compact()
    assert spy.dir_fsync_after_replace(), spy.events


@pytest.mark.skipif(not hasattr(os, "O_DIRECTORY"),
                    reason="directory fsync is POSIX-only")
def test_checkpoint_compact_fsyncs_directory_after_replace(
    tmp_path, monkeypatch
):
    from repro.harness.checkpoint import append_checkpoint, compact

    path = str(tmp_path / "ckpt.jsonl")
    append_checkpoint(path, "k1", synth_result(1))
    append_checkpoint(path, "k1", synth_result(2))
    spy = FsyncSpy(monkeypatch)
    assert compact(path) == 1
    assert spy.dir_fsync_after_replace(), spy.events


@pytest.mark.skipif(not hasattr(os, "O_DIRECTORY"),
                    reason="directory fsync is POSIX-only")
def test_corpus_compact_fsyncs_directory_after_replace(tmp_path, monkeypatch):
    from repro.predict.corpus import CorpusSample, PredictionCorpus

    path = str(tmp_path / "corpus.jsonl")
    corpus = PredictionCorpus(path)
    corpus.add(CorpusSample(benchmark="lbm", cluster="ClusterA", suite="tiny",
                            nnodes=1, nprocs=72, threads=1,
                            elapsed=10.0, total_energy=1000.0))
    spy = FsyncSpy(monkeypatch)
    corpus.compact()
    assert spy.dir_fsync_after_replace(), spy.events


def test_fsync_dir_handles_relative_paths(tmp_path, monkeypatch):
    from repro.harness.checkpoint import fsync_dir

    monkeypatch.chdir(tmp_path)
    (tmp_path / "file.jsonl").write_text("{}\n")
    fsync_dir("file.jsonl")  # must not raise on a bare filename
