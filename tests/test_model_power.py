"""Power-model tests against the paper's RAPL observations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import (
    CLUSTER_A,
    CLUSTER_B,
    ICE_LAKE_8360Y,
    SANDY_BRIDGE_NODE,
    SAPPHIRE_RAPIDS_8470,
)
from repro.model import ChipPowerModel, DramPowerModel, NodePowerModel

CHIP_A = ChipPowerModel(ICE_LAKE_8360Y)
CHIP_B = ChipPowerModel(SAPPHIRE_RAPIDS_8470)
DRAM_A = DramPowerModel(ICE_LAKE_8360Y)
DRAM_B = DramPowerModel(SAPPHIRE_RAPIDS_8470)


def test_zero_core_power_is_idle_baseline():
    assert CHIP_A.socket_power(0) == pytest.approx(98.0)
    assert CHIP_B.socket_power(0) == pytest.approx(178.0)


def test_hot_code_reaches_98_percent_tdp():
    # sph-exa: 244 W on A (98 % of 250), 333 W on B (97 % of 350)
    p_a = CHIP_A.socket_power(36, heat=1.0, utilization=1.0)
    p_b = CHIP_B.socket_power(52, heat=1.0, utilization=1.0)
    assert p_a / 250.0 == pytest.approx(0.98, abs=0.01)
    assert p_b / 350.0 == pytest.approx(0.98, abs=0.015)


def test_cool_code_well_below_tdp():
    # soma: 89 % on A, 85 % on B
    p_a = CHIP_A.socket_power(36, heat=0.80, utilization=1.0)
    p_b = CHIP_B.socket_power(52, heat=0.80, utilization=1.0)
    assert 0.82 <= p_a / 250.0 <= 0.92
    assert 0.80 <= p_b / 350.0 <= 0.92


def test_power_grows_linearly_with_cores():
    p10 = CHIP_A.socket_power(10)
    p20 = CHIP_A.socket_power(20)
    slope1 = p10 - CHIP_A.socket_power(0)
    slope2 = p20 - p10
    assert slope1 == pytest.approx(slope2, rel=1e-9)


def test_stalled_cores_burn_less_but_not_nothing():
    busy = CHIP_A.core_power(heat=1.0, utilization=1.0)
    stalled = CHIP_A.core_power(heat=1.0, utilization=0.0)
    assert 0.4 * busy < stalled < 0.7 * busy


def test_memory_bound_socket_power_below_hot():
    hot = CHIP_A.socket_power(36, heat=1.0, utilization=1.0)
    membound = CHIP_A.socket_power(36, heat=0.75, utilization=0.25)
    assert membound < hot
    assert membound > ICE_LAKE_8360Y.idle_power_w  # but far above idle


def test_idle_fraction_matches_paper_claims():
    assert CHIP_A.idle_fraction_of_tdp() == pytest.approx(0.40, abs=0.03)
    assert CHIP_B.idle_fraction_of_tdp() == pytest.approx(0.50, abs=0.03)
    sandy = ChipPowerModel(SANDY_BRIDGE_NODE.cpu)
    assert sandy.idle_fraction_of_tdp() < 0.20


def test_tdp_cap_enforced():
    # even absurd inputs cannot exceed TDP
    assert CHIP_A.socket_power(36, heat=1.0, utilization=1.0) <= 250.0


@given(
    n=st.integers(min_value=0, max_value=36),
    heat=st.floats(min_value=0.1, max_value=1.0),
    util=st.floats(min_value=0.0, max_value=1.0),
)
def test_socket_power_bounded(n, heat, util):
    p = CHIP_A.socket_power(n, heat, util)
    assert ICE_LAKE_8360Y.idle_power_w <= p <= ICE_LAKE_8360Y.tdp_w


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        CHIP_A.socket_power(37)
    with pytest.raises(ValueError):
        CHIP_A.core_power(heat=0.0, utilization=0.5)
    with pytest.raises(ValueError):
        CHIP_A.core_power(heat=1.0, utilization=1.5)
    with pytest.raises(ValueError):
        DRAM_A.socket_power(-1.0)


# --- DRAM ---------------------------------------------------------------------


def test_dram_one_saturated_domain_matches_paper():
    # Paper: 16 W DRAM reading with one saturated ccNUMA domain on A,
    # 10-13 W on B.
    dom_a = ICE_LAKE_8360Y.domain_memory_bw
    dom_b = SAPPHIRE_RAPIDS_8470.domain_memory_bw
    assert DRAM_A.socket_power(dom_a) == pytest.approx(16.0, abs=1.0)
    assert 10.0 <= DRAM_B.socket_power(dom_b) <= 13.0


def test_dram_power_floor_for_compute_bound():
    # soma reads ~9.5 W on A: the 8 W floor plus its modest bandwidth
    assert DRAM_A.socket_power(0.0) == pytest.approx(8.0)
    assert DRAM_A.socket_power(15e9) == pytest.approx(9.5, abs=0.3)


def test_dram_power_clamps_at_sustained_bw():
    over = DRAM_A.socket_power(10 * ICE_LAKE_8360Y.sustained_memory_bw)
    assert over == pytest.approx(DRAM_A.saturated_power())


def test_ddr5_cooler_per_byte():
    """DDR5 (B) contributes a smaller share of node power than DDR4 (A)."""
    node_a = NodePowerModel(CLUSTER_A.node)
    node_b = NodePowerModel(CLUSTER_B.node)
    bw_a = ICE_LAKE_8360Y.sustained_memory_bw
    bw_b = SAPPHIRE_RAPIDS_8470.sustained_memory_bw
    chip_a, dram_a = node_a.power([36, 36], 0.75, 0.25, [bw_a, bw_a])
    chip_b, dram_b = node_b.power([52, 52], 0.75, 0.25, [bw_b, bw_b])
    assert dram_b / (chip_b + dram_b) < dram_a / (chip_a + dram_a)


# --- node model --------------------------------------------------------------------


def test_node_idle_and_max_power():
    node = NodePowerModel(CLUSTER_A.node)
    assert node.idle_power() == pytest.approx(2 * (98.0 + 8.0))
    assert node.max_power() > 2 * 250.0


def test_node_power_both_sockets_idle_counted():
    node = NodePowerModel(CLUSTER_A.node)
    # ranks only on socket 0: socket 1 still contributes idle power
    chip, dram = node.power([18, 0], 1.0, 1.0, [50e9, 0.0])
    assert chip > ICE_LAKE_8360Y.idle_power_w * 2


def test_node_power_input_validation():
    node = NodePowerModel(CLUSTER_A.node)
    with pytest.raises(ValueError):
        node.power([36], 1.0, 1.0, [0.0, 0.0])
    with pytest.raises(ValueError):
        node.power([36, 36], 1.0, 1.0, [0.0])


def test_one_ccnuma_domain_cpu_dominates_dram():
    """Paper: with one domain populated, CPU takes 90-95 % of node power."""
    node_a = NodePowerModel(CLUSTER_A.node)
    chip, dram = node_a.power([18, 0], 0.85, 0.5, [76e9, 0.0])
    assert chip / (chip + dram) > 0.85
