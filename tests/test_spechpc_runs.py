"""Integration tests: every benchmark runs end-to-end on the simulator
and reproduces its paper-documented node-level characteristics."""

import pytest

from repro.harness import run
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.spechpc import all_benchmarks, get_benchmark


@pytest.mark.parametrize("bench", [b.name for b in all_benchmarks()])
@pytest.mark.parametrize("cluster", [CLUSTER_A, CLUSTER_B], ids=["A", "B"])
def test_runs_on_one_rank(bench, cluster):
    r = run(get_benchmark(bench), cluster, 1)
    assert r.elapsed > 0
    assert r.counters["flops"] > 0
    assert r.nnodes == 1


@pytest.mark.parametrize("bench", [b.name for b in all_benchmarks()])
def test_runs_on_full_node_a(bench):
    r = run(get_benchmark(bench), CLUSTER_A, 72)
    assert r.elapsed > 0
    assert r.gflops > 0
    # full node is faster than one core
    r1 = run(get_benchmark(bench), CLUSTER_A, 1)
    assert r.elapsed < r1.elapsed


@pytest.mark.parametrize("bench", [b.name for b in all_benchmarks()])
def test_small_suite_runs_on_two_nodes(bench):
    r = run(get_benchmark(bench), CLUSTER_A, 144, suite="small", sim_steps=2)
    assert r.nnodes == 2
    assert r.elapsed > 0


def test_memory_bound_codes_saturate_node_bandwidth():
    """Paper Fig. 2(a): tealeaf/cloverleaf/pot3d reach the saturated
    bandwidth of the node (~306 GB/s on ClusterA)."""
    for name in ("tealeaf", "cloverleaf", "pot3d"):
        r = run(get_benchmark(name), CLUSTER_A, 72)
        sat = CLUSTER_A.node.sustained_memory_bw
        assert r.mem_bandwidth > 0.93 * sat, name


def test_non_memory_bound_codes_draw_less_bandwidth():
    for name in ("lbm", "soma", "minisweep", "sph-exa"):
        r = run(get_benchmark(name), CLUSTER_A, 72)
        sat = CLUSTER_A.node.sustained_memory_bw
        assert r.mem_bandwidth < 0.5 * sat, name


def test_acceleration_factors_in_paper_bands():
    """Sect. 4.1.2: node-level B/A speedups — memory-bound codes near the
    bandwidth ratio (~1.56), compute-bound near the peak ratio (~1.2),
    weather the largest."""
    accel = {}
    for b in all_benchmarks():
        ra = run(b, CLUSTER_A, 72)
        rb = run(b, CLUSTER_B, 104)
        accel[b.name] = ra.elapsed / rb.elapsed
    # every benchmark gains at least the peak ratio, at most ~2x
    for name, a in accel.items():
        assert 1.15 <= a <= 2.1, (name, a)
    # memory-bound codes sit in the bandwidth-ratio band
    for name in ("tealeaf", "cloverleaf", "pot3d", "hpgmgfv"):
        assert 1.45 <= accel[name] <= 1.75, (name, accel[name])
    # lbm (compute bound) has the smallest factor of the suite
    assert accel["lbm"] == min(accel.values())
    # weather has the largest (cache-driven)
    assert accel["weather"] == max(accel.values())
    assert accel["weather"] > 1.7


def test_vectorization_ratios_match_paper_ordering():
    """Sect. 4.1.3: cloverleaf/pot3d ~fully vectorized, lbm high,
    tealeaf poor, soma worst."""
    vec = {
        b.name: run(b, CLUSTER_A, 72).vectorization_ratio for b in all_benchmarks()
    }
    assert vec["cloverleaf"] > 0.9
    assert vec["pot3d"] > 0.9
    assert vec["lbm"] > 0.85
    assert vec["tealeaf"] < 0.15
    assert vec["soma"] < 0.05
    assert vec["soma"] == min(vec.values())


def test_bandwidth_saturates_within_ccnuma_domain():
    """Paper Fig. 2(a): memory-bound codes saturate a domain's bandwidth
    with fewer cores than the domain has."""
    tealeaf = get_benchmark("tealeaf")
    bw6 = run(tealeaf, CLUSTER_A, 6).mem_bandwidth
    bw18 = run(tealeaf, CLUSTER_A, 18).mem_bandwidth
    dom = CLUSTER_A.node.cpu.domain_memory_bw
    assert bw6 > 0.85 * dom
    assert bw18 == pytest.approx(dom, rel=0.1)


def test_speedup_across_domains_near_ideal_for_memory_bound():
    """Sect. 4.1.1: with a one-domain baseline, tealeaf/pot3d scale ~100 %
    across ClusterA's four domains."""
    for name in ("tealeaf", "pot3d", "cloverleaf"):
        b = get_benchmark(name)
        t_dom = run(b, CLUSTER_A, 18).elapsed
        t_full = run(b, CLUSTER_A, 72).elapsed
        eff = (t_dom / t_full) / 4
        assert 0.9 <= eff <= 1.1, (name, eff)


def test_weather_superlinear_across_domains_on_b():
    """Sect. 4.1.1: weather exceeds 100 % efficiency across ClusterB's
    domains (cache effect), and more so than on ClusterA."""
    w = get_benchmark("weather")
    eff_b = (run(w, CLUSTER_B, 13).elapsed / run(w, CLUSTER_B, 104).elapsed) / 8
    eff_a = (run(w, CLUSTER_A, 18).elapsed / run(w, CLUSTER_A, 72).elapsed) / 4
    assert eff_b > 1.1
    assert eff_b > eff_a


def test_minisweep_prime_process_count_penalty():
    """Sect. 4.1.5: prime process counts serialize the sweep chain —
    59 processes are much slower than 58 despite one more core."""
    ms = get_benchmark("minisweep")
    t58 = run(ms, CLUSTER_A, 58).elapsed
    t59 = run(ms, CLUSTER_A, 59).elapsed
    assert t59 > 1.2 * t58
    # MPI share at the bad count is substantial
    r59 = run(ms, CLUSTER_A, 59)
    assert r59.mpi_fraction > 0.3


def test_minisweep_mpi_time_is_p2p_only():
    r = run(get_benchmark("minisweep"), CLUSTER_A, 32)
    kinds = {k for k in r.time_by_kind if k.startswith("MPI_")}
    assert "MPI_Allreduce" not in kinds
    assert "MPI_Barrier" not in kinds


def test_lbm_fluctuations_have_envelope():
    """Sect. 4.1.6: lbm performance fluctuates with process count between
    clear upper and lower limits (alignment pathologies)."""
    lbm = get_benchmark("lbm")
    perf = {}
    for n in range(40, 73, 2):
        r = run(lbm, CLUSTER_A, n)
        perf[n] = r.gflops / n  # per-core performance
    vals = sorted(perf.values())
    # spread between slowest and fastest per-core points is significant
    assert vals[-1] / vals[0] > 1.1


def test_soma_allreduce_dominates_mpi():
    r = run(get_benchmark("soma"), CLUSTER_A, 144, suite="small")
    mpi = {k: v for k, v in r.time_by_kind.items() if k.startswith("MPI_")}
    assert max(mpi, key=mpi.get) == "MPI_Allreduce"


def test_lbm_barrier_dominates_mpi():
    r = run(get_benchmark("lbm"), CLUSTER_A, 71)
    mpi = {k: v for k, v in r.time_by_kind.items() if k.startswith("MPI_")}
    assert "MPI_Barrier" in mpi


def test_results_scale_to_full_iterations():
    b = get_benchmark("tealeaf")
    r = run(b, CLUSTER_A, 18)
    wl = b.workload("tiny")
    assert r.step_scale == pytest.approx(wl.total_iterations / r.meta["sim_steps"])
    assert r.elapsed == pytest.approx(r.sim_elapsed * r.step_scale)


def test_noise_produces_run_to_run_variation():
    b = get_benchmark("cloverleaf")
    r1 = run(b, CLUSTER_A, 18, noise_sigma=0.02, seed=1)
    r2 = run(b, CLUSTER_A, 18, noise_sigma=0.02, seed=2)
    assert r1.elapsed != r2.elapsed
    # and determinism per seed
    r1b = run(b, CLUSTER_A, 18, noise_sigma=0.02, seed=1)
    assert r1.elapsed == r1b.elapsed


def test_trace_collection_works_for_benchmarks():
    r = run(get_benchmark("minisweep"), CLUSTER_A, 12, trace=True)
    assert r.trace is not None and len(r.trace) > 0
    kinds = set(r.trace.time_by_kind())
    assert "compute" in kinds
    assert any(k.startswith("MPI_") for k in kinds)
