"""Tests for the wavefront replay tier (precomputed KBA dependency DAG
with vectorized level-set replay, :mod:`repro.spechpc.wavefront`).

Four layers of evidence:

* a hand-computed 3-rank DAG whose level-set clocks are derived inline
  with the engine's documented arithmetic and compared to the bit;
* property-based minisweep configurations (rank count => chain length,
  block count, send/recv ordering) that must be fingerprint-identical
  with the tier on and off;
* eligibility: anything that perturbs or observes individual steps
  declines the tier, with the decline reason surfaced as a metric;
* the golden-corpus grid replayed with the tier *forced* on
  (``fast_forward=False`` leaves only the wavefront tier) against the
  full-fidelity reference.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan, SlowRank
from repro.harness import run
from repro.machine import CLUSTER_A
from repro.machine.registry import get_cluster
from repro.spechpc import get_benchmark
from repro.spechpc.fastforward import Replayer, ReplayUnsupported
from repro.spechpc.minisweep import Minisweep
from repro.spechpc.wavefront import WavefrontProgram
from repro.validate.golden import fingerprint, golden_cases


# --------------------------------------------------------------------------
# hand-computed level-set replay
# --------------------------------------------------------------------------

# a 3-rank pipeline exercising every wait shape: an eager send 0 -> 1, a
# rendezvous send 1 -> 2, and a closing full-communicator collective
E_XF, E_OV = 0.5, 0.125                              # eager: transfer, overhead
R_RTS, R_HS, R_LAT, R_XF, R_OV = 0.03125, 0.0625, 0.03125, 2.0, 0.125
C0, C1, C2 = 1.0, 2.0, 0.5                           # compute seconds
COLL_COST = 0.25

_JOURNALS = [
    [  # rank 0: compute, eager send to 1, wait, collective
        ("compute", C0, 10.0, 5.0, 100.0, 50.0, 25.0, 0.9, 0.8, 0.7),
        ("isend", 11, 1, 0, 4096, ("e", E_XF, E_OV)),
        ("wait", 11, "MPI_Wait"),
        ("coll", "MPI_Allreduce", 0, COLL_COST, 8.0),
    ],
    [  # rank 1: recv from 0, compute, rendezvous send to 2, collective
        ("irecv", 21, 0, 0),
        ("compute", C1, 20.0, 9.0, 200.0, 80.0, 40.0, 1.8, 1.7, 1.6),
        ("wait", 21, "MPI_Recv"),
        ("isend", 22, 2, 0, 65536, ("r", R_RTS, R_HS, R_LAT, R_XF, R_OV)),
        ("wait", 22, "MPI_Wait"),
        ("coll", "MPI_Allreduce", 0, COLL_COST, 8.0),
    ],
    [  # rank 2: recv from 1, compute, collective
        ("irecv", 31, 1, 0),
        ("compute", C2, 5.0, 2.0, 50.0, 20.0, 10.0, 0.45, 0.4, 0.35),
        ("wait", 31, "MPI_Recv"),
        ("coll", "MPI_Allreduce", 0, COLL_COST, 8.0),
    ],
]


def _ws(t: float, fire: float, fin: float) -> float:
    """The engine's ``_wait_step``: resume at the fire time, then pay
    the remaining completion delta — written out so the expected values
    below share no code with the module under test."""
    resume = fire if fire > t else t
    return resume + (fin - resume) if fin > resume else resume


def _hand_step(t0: float, t1: float, t2: float) -> list[float]:
    """One step of the pipeline above, computed scalar-by-scalar with
    the engine's exact expressions (left-associated sums, max-then-add
    — never precomputed path weights)."""
    # rank 0: compute, post the eager send (arrival = post + transfer),
    # wait completes locally at post + overhead
    a = t0 + C0
    arr0 = a + E_XF
    t0 = _ws(a, a, a + E_OV)

    # rank 1: the receive posts at its own clock *before* computing;
    # the wait starts at max(post, arrival) and costs the sender overhead
    post1 = t1
    b = t1 + C1
    start = post1 if post1 > arr0 else arr0
    t1 = _ws(b, start, start + E_OV)
    # rendezvous send to rank 2: posts now, RTS arrives after the wire
    # latency; completion needs rank 2's receive post
    arr1 = t1 + R_RTS

    # rank 2 posts its receive at its own clock, then computes
    post2 = t2
    d = t2 + C2

    # both rendezvous halves complete at the same left-associated sum
    start_r = post2 if post2 > arr1 else arr1
    fin_r = start_r + R_HS + R_LAT + R_XF + R_OV
    t1 = _ws(t1, start_r, fin_r)
    t2 = _ws(d, start_r, fin_r)

    # the collective gate fires at the last arrival, costs the max cost
    t_fire = max(t0, t1, t2)
    finish = t_fire + COLL_COST
    return [_ws(t0, t_fire, finish), _ws(t1, t_fire, finish),
            _ws(t2, t_fire, finish)]


def test_hand_computed_dag_bitwise():
    """Four steps from skewed start clocks: the vectorized level-set
    program must land on the hand-derived clocks to the bit, and the
    scalar replayer must agree."""
    prog = WavefrontProgram.compile(_JOURNALS, 3)
    t_start = [0.0, 0.375, 0.8125]

    expected = list(t_start)
    for _ in range(4):
        expected = _hand_step(*expected)

    assert prog.run(t_start, 4) == expected
    assert Replayer(_JOURNALS, 3).run(t_start, 4) == expected


def test_hand_computed_dag_levels():
    """The leveling is the hand-derived antidiagonal schedule: rank 1's
    rendezvous wait levels after rank 2's receive post, the gate one
    past the deepest arrival."""
    prog = WavefrontProgram.compile(_JOURNALS, 3)
    assert prog.nlevels == 6
    assert prog.total_ops == sum(len(ops) for ops in _JOURNALS)


def test_compile_rejects_unbalanced_channels():
    """A send whose matching receive is missing within the step means
    the FIFO pairing would cross the step boundary — the tier declines
    at compile time rather than replaying a lie."""
    journals = [
        [("isend", 1, 1, 0, 64, ("e", 0.1, 0.01)), ("wait", 1, "MPI_Wait")],
        [("compute", 1.0, 0, 0, 0, 0, 0, 0, 0, 0)],
    ]
    with pytest.raises(ReplayUnsupported, match="cross"):
        WavefrontProgram.compile(journals, 2)


def test_compile_rejects_cyclic_structure():
    """Two ranks each waiting on the other's un-postable receive stall
    the work list: compile must raise, not loop."""
    journals = [
        [
            ("irecv", 1, 1, 0),
            ("wait", 1, "MPI_Recv"),
            ("isend", 2, 1, 0, 64, ("e", 0.1, 0.01)),
            ("wait", 2, "MPI_Wait"),
        ],
        [
            ("irecv", 1, 0, 0),
            ("wait", 1, "MPI_Recv"),
            ("isend", 2, 0, 0, 64, ("e", 0.1, 0.01)),
            ("wait", 2, "MPI_Wait"),
        ],
    ]
    with pytest.raises(ReplayUnsupported, match="cyclic|stall"):
        WavefrontProgram.compile(journals, 2)


# --------------------------------------------------------------------------
# property-based: minisweep configurations, tier on vs. off
# --------------------------------------------------------------------------


def _minisweep(blocks: int, recv_first: bool) -> Minisweep:
    bench = Minisweep(recv_first=recv_first)
    tiny = Minisweep.workloads["tiny"]
    bench.workloads = {
        "tiny": replace(tiny, params={**tiny.params, "blocks": blocks})
    }
    return bench


@settings(max_examples=10, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=10),
    blocks=st.sampled_from([1, 2, 4]),
    recv_first=st.booleans(),
)
def test_minisweep_configs_fingerprint_identical(nprocs, blocks, recv_first):
    """Random rank counts (=> chain lengths via the decomposition),
    block counts, and send/recv orderings: the wavefront tier engages
    and reproduces the full-fidelity reference fingerprint exactly."""
    on = run(_minisweep(blocks, recv_first), CLUSTER_A, nprocs, sim_steps=6)
    off = run(
        _minisweep(blocks, recv_first), CLUSTER_A, nprocs, sim_steps=6,
        fast_forward=False, wavefront=False, matcher="linear", memoize=False,
    )
    assert on.meta["wavefront"] is True
    assert off.meta["wavefront"] is False
    assert fingerprint(on) == fingerprint(off)


# --------------------------------------------------------------------------
# eligibility
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("kwargs", "code"),
    [
        (dict(noise_sigma=0.02), "noise"),
        (dict(faults=FaultPlan(slow_ranks=(SlowRank(rank=1, factor=2.0),))),
         "faults"),
        (dict(trace=True), "tracing"),
        (dict(memoize=False), "nomemo"),
        (dict(sim_steps=4), "steps"),
        (dict(fast_forward=False, wavefront=False), "disabled"),
    ],
    ids=["noise", "faults", "tracing", "no-memoize", "short", "disabled"],
)
def test_wavefront_declines(kwargs, code):
    """Perturbing or observing individual steps forces full fidelity;
    the decline reason is surfaced as a ``wavefront.declined.<code>``
    metric for ``repro sweep --metrics``."""
    kwargs.setdefault("sim_steps", 6)
    r = run(get_benchmark("minisweep"), CLUSTER_A, 8, **kwargs)
    assert r.meta["wavefront"] is False
    assert r.meta["fast_forward"] is False
    assert r.meta["metrics"]["wavefront"] == {f"declined.{code}": 1.0}


def test_wavefront_engaged_metrics():
    """An engaged run reports eligibility, the DAG depth, and the event
    count the level-set replay avoided."""
    r = run(get_benchmark("minisweep"), CLUSTER_A, 8, sim_steps=8)
    assert r.meta["wavefront"] is True
    wf = r.meta["metrics"]["wavefront"]
    assert wf["eligible"] == 1.0
    assert wf["levels"] > 0
    assert wf["events_saved"] > 0


# --------------------------------------------------------------------------
# golden corpus with the tier forced on
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "case", list(golden_cases(scales=(1,))), ids=lambda c: c.slug
)
def test_golden_corpus_tier_forced_on(case):
    """Every corpus benchmark on both clusters: ``fast_forward=False``
    disables the synchronized tier, so the wavefront DAG alone must
    carry the run — and land bit-identical to the full-fidelity
    reference."""
    bench = get_benchmark(case.benchmark)
    cluster = get_cluster(case.cluster)
    ref = run(bench, cluster, case.nprocs, sim_steps=8,
              fast_forward=False, wavefront=False)
    forced = run(bench, cluster, case.nprocs, sim_steps=8,
                 fast_forward=False)
    assert forced.meta["wavefront"] is True
    assert ref.meta["wavefront"] is False
    assert fingerprint(forced) == fingerprint(ref)
