"""Tests for the kernel-model extension fields: fixed working sets,
non-overlapped memory time, per-kernel cache sharpness."""

import dataclasses

import pytest

from repro.machine import ICE_LAKE_8360Y, SAPPHIRE_RAPIDS_8470
from repro.model import ExecutionModel, KernelModel

EM_A = ExecutionModel(ICE_LAKE_8360Y)
EM_B = ExecutionModel(SAPPHIRE_RAPIDS_8470)

BASE = KernelModel(
    name="base",
    flops_per_unit=50.0,
    simd_fraction=0.5,
    mem_bytes_per_unit=100.0,
    l3_bytes_per_unit=120.0,
    l2_bytes_per_unit=140.0,
    working_set_bytes_per_unit=40.0,
)


def test_fixed_working_set_overrides_per_unit():
    fixed = dataclasses.replace(BASE, fixed_working_set_bytes=1e3)
    # tiny fixed set: cached regardless of unit count
    few = EM_A.phase_cost(fixed, 100, 1)
    many = EM_A.phase_cost(fixed, 10_000_000, 1)
    frac_few = few.mem_bytes / (BASE.mem_bytes_per_unit * 100)
    frac_many = many.mem_bytes / (BASE.mem_bytes_per_unit * 10_000_000)
    assert frac_few == pytest.approx(frac_many, rel=1e-6)
    assert frac_many < 0.15


def test_fixed_working_set_is_cache_sensitive_not_scalable():
    """A 3.4 MB fixed hot set fits ClusterB's per-rank outer cache at
    full occupancy but not ClusterA's — the sph-exa/soma mechanism."""
    k = dataclasses.replace(
        BASE, fixed_working_set_bytes=3.4e6, cache_sharpness=3.5
    )
    a = EM_A.phase_cost(k, 10_000, 18)  # A: 18 ranks/domain
    b = EM_B.phase_cost(k, 10_000, 13)  # B: 13 ranks/domain
    assert b.mem_bytes < 0.62 * a.mem_bytes


def test_mem_overlap_zero_serializes():
    """With no overlap, memory time adds to compute time even when the
    kernel is nominally compute-bound."""
    compute_heavy = dataclasses.replace(
        BASE, flops_per_unit=5000.0, mem_overlap=1.0
    )
    serialized = dataclasses.replace(
        BASE, flops_per_unit=5000.0, mem_overlap=0.0
    )
    units = 1_000_000
    t_overlap = EM_A.phase_cost(compute_heavy, units, 18).seconds
    t_serial = EM_A.phase_cost(serialized, units, 18).seconds
    assert t_serial > t_overlap


def test_mem_overlap_partial_between_extremes():
    units = 1_000_000
    heavy = dataclasses.replace(BASE, flops_per_unit=5000.0)
    t = {
        ov: EM_A.phase_cost(
            dataclasses.replace(heavy, mem_overlap=ov), units, 18
        ).seconds
        for ov in (0.0, 0.5, 1.0)
    }
    assert t[1.0] <= t[0.5] <= t[0.0]


def test_cache_sharpness_controls_transition():
    """Sharper kernels transition faster around the capacity point."""
    soft = dataclasses.replace(BASE, cache_sharpness=1.0)
    sharp = dataclasses.replace(BASE, cache_sharpness=6.0)
    # working set ~2x the outer share: sharp kernel -> nearly full traffic,
    # soft kernel -> still partially cached
    share = EM_A.outer_cache_share_bytes(18)
    units = 2.0 * share / BASE.working_set_bytes_per_unit
    f_soft = EM_A.phase_cost(soft, units, 18).mem_bytes
    f_sharp = EM_A.phase_cost(sharp, units, 18).mem_bytes
    assert f_sharp > f_soft


def test_validation_of_new_fields():
    with pytest.raises(ValueError):
        dataclasses.replace(BASE, fixed_working_set_bytes=-1.0)
    with pytest.raises(ValueError):
        dataclasses.replace(BASE, mem_overlap=1.5)
    with pytest.raises(ValueError):
        dataclasses.replace(BASE, cache_sharpness=0.0)


def test_phase_cost_heat_weighted_addition():
    from repro.model.kernel import PhaseCost

    a = PhaseCost(1.0, 10, 5, 0, 0, 0, busy_seconds=1.0, heat=1.0)
    b = PhaseCost(3.0, 10, 5, 0, 0, 0, busy_seconds=3.0, heat=0.6)
    s = a + b
    assert s.heat == pytest.approx((1.0 * 1.0 + 0.6 * 3.0) / 4.0)
    assert s.busy_seconds == pytest.approx(4.0)


def test_phase_cost_busy_may_exceed_duration_for_hybrid():
    """busy_seconds is in core-seconds: a 4-thread phase can execute 4
    core-seconds per wall second."""
    from repro.model.kernel import PhaseCost

    c = PhaseCost(1.0, 0, 0, 0, 0, 0, busy_seconds=4.0)
    assert c.busy_seconds == 4.0


def test_busy_seconds_default_is_duration():
    from repro.model.kernel import PhaseCost

    c = PhaseCost(2.0, 0, 0, 0, 0, 0)
    assert c.busy_seconds == 2.0


def test_utilization_feeds_power_model():
    """A memory-bound phase reports low busy fraction -> lower chip
    power than a compute-bound phase of the same duration."""
    mem_k = dataclasses.replace(BASE, flops_per_unit=1.0)
    cpu_k = dataclasses.replace(
        BASE, flops_per_unit=50_000.0, mem_bytes_per_unit=1.0
    )
    units = 1_000_000
    c_mem = EM_A.phase_cost(mem_k, units, 18)
    c_cpu = EM_A.phase_cost(cpu_k, units, 18)
    assert c_mem.busy_seconds / c_mem.seconds < 0.3
    assert c_cpu.busy_seconds / c_cpu.seconds > 0.95
