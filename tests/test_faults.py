"""Fault-injection subsystem: plans, the injector, and end-to-end runs.

Covers the acceptance bar of the robustness work: an empty plan is
bit-identical to no plan at all, a slow rank skews its peers' collective
wait (the paper's lbm barrier phenomenon), link and noise faults slow
communication/compute monotonically, and planned crashes surface as
structured errors — never silent hangs.
"""

import pytest

from repro.des import DeadlockError
from repro.faults import (
    DegradedLink,
    FaultInjector,
    FaultPlan,
    OsNoise,
    RankCrash,
    SlowRank,
)
from repro.harness import run
from repro.machine import CLUSTER_A
from repro.model.execution import ExecutionModel
from repro.smpi import MpiRuntime
from repro.smpi.diagnostics import RankCrashedError
from repro.spechpc import all_benchmarks, get_benchmark
from repro.spechpc.base import RunContext

ALL_NAMES = [b.name for b in all_benchmarks()]


# --- plan validation and (de)serialization ----------------------------------


def test_plan_json_round_trip():
    plan = FaultPlan(
        slow_ranks=(SlowRank(rank=2, factor=3.0, t_start=1.0, t_end=9.0),),
        os_noise=(OsNoise(period=0.01, duration=0.001, factor=50.0, rank=1),),
        links=(DegradedLink(src_node=0, dst_node=1, bandwidth_factor=0.25,
                            latency_factor=4.0, extra_latency=1e-6),),
        crashes=(RankCrash(rank=3, time=5.0),),
    )
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert not clone.empty
    assert FaultPlan().empty
    assert FaultPlan.from_dict({}).empty


def test_plan_rejects_bad_values():
    with pytest.raises(ValueError):
        SlowRank(rank=0, factor=0.5)  # speedups are not faults
    with pytest.raises(ValueError):
        OsNoise(period=1.0, duration=2.0, factor=10.0)  # duration > period
    with pytest.raises(ValueError):
        DegradedLink(bandwidth_factor=0.0)
    with pytest.raises(ValueError):
        FaultPlan(crashes=(RankCrash(0, 1.0), RankCrash(0, 2.0)))
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"tyops": []})
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"slow_ranks": [{"rnk": 1, "factor": 2.0}]})


def test_plan_validates_rank_bounds():
    plan = FaultPlan(slow_ranks=(SlowRank(rank=7, factor=2.0),))
    plan.validate_for(8)
    with pytest.raises(ValueError, match="rank 7"):
        plan.validate_for(4)
    with pytest.raises(ValueError, match="rank 7"):
        run(get_benchmark("lbm"), CLUSTER_A, 4, sim_steps=1, faults=plan)


# --- injector math ----------------------------------------------------------


def test_compute_seconds_piecewise_integration():
    plan = FaultPlan(slow_ranks=(SlowRank(rank=0, factor=4.0, t_start=2.0,
                                          t_end=6.0),))
    inj = FaultInjector(plan)
    # entirely before the window: untouched
    assert inj.compute_seconds(0, 0.0, 1.0) == 1.0
    # entirely inside: stretched by the factor
    assert inj.compute_seconds(0, 3.0, 0.5) == pytest.approx(2.0)
    # straddling the start: 2s clean + remaining 1s at 4x
    assert inj.compute_seconds(0, 0.0, 3.0) == pytest.approx(2.0 + 4.0)
    # other ranks: untouched
    assert inj.compute_seconds(1, 3.0, 1.0) == 1.0


def test_os_noise_bursts_are_periodic():
    plan = FaultPlan(os_noise=(OsNoise(period=1.0, duration=0.25, factor=3.0),))
    inj = FaultInjector(plan)
    # from t=0: burst [0,0.25) at 3x progresses 1/12 of the work, the gap
    # [0.25,1.0) progresses 3/4, burst [1.0,1.25) another 1/12, and the
    # remaining 1/12 finishes clean -> 4/3 s wall in total
    assert inj.compute_seconds(0, 0.0, 1.0) == pytest.approx(4.0 / 3.0)
    # starting mid-gap, a short phase finishes before the next burst
    assert inj.compute_seconds(0, 0.5, 0.25) == pytest.approx(0.25)


def test_degraded_link_prices_worse_than_clean():
    net = CLUSTER_A.network
    plan = FaultPlan(links=(DegradedLink(src_node=0, dst_node=1,
                                         bandwidth_factor=0.5,
                                         latency_factor=2.0),))
    inj = FaultInjector(plan)
    clean = net.transfer_time(1 << 20, intra_node=False)
    faulty = inj.transfer_time(net, 0, 1, 1 << 20, intra=False, now=0.0)
    assert faulty > clean
    # symmetric by default; unrelated paths stay clean
    assert inj.transfer_time(net, 1, 0, 1 << 20, intra=False, now=0.0) == faulty
    assert inj.transfer_time(net, 2, 3, 1 << 20, intra=False, now=0.0) == (
        pytest.approx(clean)
    )


# --- bit-identity of the empty plan ----------------------------------------


@pytest.mark.parametrize("bench", ALL_NAMES)
def test_empty_plan_is_bit_identical(bench):
    b = get_benchmark(bench)
    clean = run(b, CLUSTER_A, 4, sim_steps=2)
    empty = run(b, CLUSTER_A, 4, sim_steps=2, faults=FaultPlan())
    assert empty.elapsed == clean.elapsed
    assert empty.counters == clean.counters
    assert empty.time_by_kind == clean.time_by_kind
    assert empty.energy == clean.energy


# --- the paper's slow-rank phenomenon on lbm --------------------------------


def _launch_lbm(nprocs, faults=None, sim_steps=2):
    bench = get_benchmark("lbm")
    ctx = RunContext(
        cluster=CLUSTER_A,
        nprocs=nprocs,
        workload=bench.workload("tiny"),
        exec_model=ExecutionModel(CLUSTER_A.node.cpu),
        sim_steps=sim_steps,
    )
    injector = None if faults is None else FaultInjector(faults, nprocs)
    rt = MpiRuntime(CLUSTER_A, nprocs, faults=injector)
    ctx.runtime = rt
    return rt.launch(bench.make_body(ctx))


def test_slow_rank_inflates_peer_barrier_wait_on_lbm():
    """One throttled rank makes every *other* rank wait at the barrier —
    the skew mechanism behind the paper's lbm MPI_Barrier share."""
    nprocs = 8
    plan = FaultPlan(slow_ranks=(SlowRank(rank=0, factor=4.0),))
    clean = _launch_lbm(nprocs)
    faulty = _launch_lbm(nprocs, faults=plan)
    assert faulty.elapsed > clean.elapsed
    for rank in range(1, nprocs):
        clean_wait = clean.stats[rank].time_by_kind.get("MPI_Barrier", 0.0)
        faulty_wait = faulty.stats[rank].time_by_kind.get("MPI_Barrier", 0.0)
        assert faulty_wait > clean_wait, f"rank {rank} barrier wait not inflated"


def test_slow_rank_inflates_job_elapsed_via_run():
    plan = FaultPlan(slow_ranks=(SlowRank(rank=0, factor=3.0),))
    clean = run(get_benchmark("lbm"), CLUSTER_A, 4, sim_steps=2)
    faulty = run(get_benchmark("lbm"), CLUSTER_A, 4, sim_steps=2, faults=plan)
    assert faulty.elapsed > 1.5 * clean.elapsed
    assert faulty.mpi_fraction > clean.mpi_fraction
    # counters stay nominal: the work done is the same, only slower
    assert faulty.counters["flops"] == clean.counters["flops"]


# --- chaos: every benchmark survives a seeded multi-fault plan --------------


CHAOS_PLAN = FaultPlan(
    slow_ranks=(SlowRank(rank=1, factor=2.5, t_start=0.0),),
    os_noise=(OsNoise(period=0.5, duration=0.05, factor=8.0),),
    links=(DegradedLink(bandwidth_factor=0.5, latency_factor=3.0,
                        extra_latency=2e-6),),
)


@pytest.mark.parametrize("bench", ALL_NAMES)
def test_chaos_plan_slows_every_benchmark_without_hanging(bench):
    """Slow rank + OS noise + degraded links: each benchmark still runs
    to completion (under a generous event budget, so a regression hangs
    the test instead of the suite) and only ever gets slower."""
    b = get_benchmark(bench)
    clean = run(b, CLUSTER_A, 4, sim_steps=2)
    chaotic = run(b, CLUSTER_A, 4, sim_steps=2, faults=CHAOS_PLAN,
                  max_events=5_000_000)
    assert chaotic.elapsed >= clean.elapsed
    assert chaotic.counters["flops"] == clean.counters["flops"]


# --- crashes ----------------------------------------------------------------


def test_rank_crash_deadlocks_peers_with_diagnosis():
    plan = FaultPlan(crashes=(RankCrash(rank=1, time=0.0),))
    with pytest.raises((DeadlockError, RankCrashedError)) as excinfo:
        run(get_benchmark("lbm"), CLUSTER_A, 4, sim_steps=2, faults=plan)
    msg = str(excinfo.value)
    assert "CRASHED" in msg or "crashed" in msg


def test_crash_after_completion_still_fails_the_job():
    # crash far in the future: the job's survivors finish first, but MPI
    # semantics say a lost rank fails the job
    plan = FaultPlan(crashes=(RankCrash(rank=0, time=1e-9),))

    def body(comm):
        yield comm.compute(1.0)

    rt = MpiRuntime(CLUSTER_A, 2, faults=FaultInjector(plan, 2))
    with pytest.raises(RankCrashedError, match="rank 0"):
        rt.launch(body)


# --- fingerprint-level fault regression (validation subsystem) --------------


def test_degraded_link_moves_only_wait_components():
    """A communication fault must show up *only* where communication is
    accounted: per-rank compute (and all counters) are bit-identical to
    the clean run, MPI wait components grow, the makespan grows, and the
    steady-state fast-forward declines (faults force full fidelity)."""
    from repro.validate.golden import canonical_record

    plan = FaultPlan(
        links=(DegradedLink(bandwidth_factor=0.25, extra_latency=5e-6),)
    )
    bench = get_benchmark("minisweep")
    clean = run(bench, CLUSTER_A, 4, sim_steps=4)
    faulty = run(bench, CLUSTER_A, 4, sim_steps=4, faults=plan)

    rec_clean = canonical_record(clean)
    rec_faulty = canonical_record(faulty)

    assert rec_faulty["rank_compute"] == rec_clean["rank_compute"]
    assert rec_faulty["counters"] == rec_clean["counters"]
    assert rec_faulty["rank_wait"] != rec_clean["rank_wait"]
    assert faulty.elapsed > clean.elapsed
    assert faulty.mpi_time > clean.mpi_time
    assert faulty.meta["fast_forward"] is False

    # every per-rank difference is confined to MPI_* kinds
    for per_clean, per_faulty in zip(clean.rank_times, faulty.rank_times):
        for kind in set(per_clean) | set(per_faulty):
            if not kind.startswith("MPI_"):
                assert per_faulty.get(kind, 0.0) == per_clean.get(kind, 0.0)


def test_empty_fault_plan_is_fingerprint_identical():
    """FaultPlan() must be indistinguishable from no plan at the
    fingerprint level — the strongest equality the repo can express."""
    from repro.validate.golden import fingerprint

    bench = get_benchmark("tealeaf")
    no_plan = run(bench, CLUSTER_A, 4, sim_steps=4)
    empty_plan = run(bench, CLUSTER_A, 4, sim_steps=4, faults=FaultPlan())
    assert fingerprint(no_plan) == fingerprint(empty_plan)
