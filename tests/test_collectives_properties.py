"""Property tests for the collective cost models and the gate.

Two families:

* the log2-round tree costs must equal the closed-form Hockney
  expressions for any (P, nnodes, nbytes) — the loop/helper structure in
  ``collectives.py`` is an implementation detail, the formula is the
  contract;
* the :class:`~repro.smpi.collectives.CollectiveGate` must be
  rank-permutation invariant: the finish time is ``max(arrival) +
  max(cost)`` regardless of the order ranks arrive in, bitwise (max is
  commutative and associative in IEEE-754 — unlike sum, which is why the
  gate's payload reduction is *not* asserted bitwise for float sums).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.network import NetworkSpec
from repro.smpi.collectives import (
    REDUCE_GAMMA,
    CollectiveGate,
    allgather_cost,
    allreduce_cost,
    barrier_cost,
    bcast_cost,
    reduce_cost,
)

NET = NetworkSpec()

procs = st.integers(min_value=2, max_value=1024)
sizes = st.integers(min_value=0, max_value=64 * 1024 * 1024)


def _closed_form_rounds(p):
    return math.ceil(math.log2(p))


def _closed_form_round_cost(p, nnodes, nbytes):
    total = _closed_form_rounds(p)
    inter = min(total, _closed_form_rounds(nnodes) if nnodes > 1 else 0)
    intra = total - inter
    return inter * (NET.latency + nbytes / NET.effective_bandwidth) + intra * (
        NET.intra_node_latency + nbytes / NET.intra_node_bandwidth
    )


@given(p=procs)
def test_barrier_matches_closed_form_single_node(p):
    expected = (
        _closed_form_rounds(p) * NET.intra_node_latency
        + NET.per_message_overhead
    )
    assert barrier_cost(NET, p, 1) == expected


@given(p=procs, nnodes=st.integers(min_value=2, max_value=64), nbytes=sizes)
def test_allreduce_matches_closed_form(p, nnodes, nbytes):
    expected = (
        _closed_form_round_cost(p, min(nnodes, p), nbytes)
        + _closed_form_rounds(p) * nbytes * REDUCE_GAMMA
        + NET.per_message_overhead
    )
    assert allreduce_cost(NET, p, min(nnodes, p), nbytes) == expected


@given(p=procs, nbytes=sizes)
def test_bcast_and_reduce_share_the_tree(p, nbytes):
    """Reduce = bcast + the per-byte reduction term (to float association)."""
    tree = bcast_cost(NET, p, 1, nbytes)
    assert math.isclose(
        reduce_cost(NET, p, 1, nbytes),
        tree + _closed_form_rounds(p) * nbytes * REDUCE_GAMMA,
        rel_tol=1e-12,
    )


@given(p=procs, nbytes=sizes)
def test_allgather_matches_closed_form_single_node(p, nbytes):
    expected = (p - 1) * (
        NET.intra_node_latency + (nbytes / p) / NET.intra_node_bandwidth
    ) + NET.per_message_overhead
    assert allgather_cost(NET, p, 1, nbytes) == expected


@given(p=procs, nbytes=sizes)
def test_costs_scale_log2_with_doubling(p, nbytes):
    """Doubling P past a power of two adds exactly one tree round."""
    p_pow = 1 << max(1, p.bit_length() - 1)  # largest power of two <= p
    one_round = NET.intra_node_latency + nbytes / NET.intra_node_bandwidth
    delta = bcast_cost(NET, 2 * p_pow, 1, nbytes) - bcast_cost(
        NET, p_pow, 1, nbytes
    )
    assert math.isclose(delta, one_round, rel_tol=1e-12, abs_tol=1e-30)


@given(
    p=st.integers(min_value=2, max_value=512),
    nnodes=st.integers(min_value=1, max_value=16),
)
def test_single_proc_is_free_and_costs_positive(p, nnodes):
    nn = min(nnodes, p)
    assert barrier_cost(NET, 1, 1) == 0.0
    assert allreduce_cost(NET, 1, 1, 1024) == 0.0
    assert barrier_cost(NET, p, nn) > 0.0
    assert allreduce_cost(NET, p, nn, 1024) > barrier_cost(NET, p, nn)


# --- gate permutation invariance --------------------------------------------


arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    min_size=1,
    max_size=24,
)


class _CaptureSignal:
    """Stands in for a DES Signal: records the fired value instead of
    waking simulated processes (the gate only calls ``fire``)."""

    def __init__(self):
        self.fired = []

    def fire(self, value):
        self.fired.append(value)


def _drive_gate(arrivals, order):
    gate = CollectiveGate(op="MPI_Barrier", expected=len(arrivals))
    gate.signal = _CaptureSignal()
    for rank in order:
        now, cost = arrivals[rank]
        last = gate.arrive(rank, now, cost)
        assert last == (len(gate.signal.fired) == 1)
    assert len(gate.signal.fired) == 1
    return gate.signal.fired[0]


@settings(max_examples=60)
@given(arrivals=arrival_lists, data=st.data())
def test_gate_finish_is_rank_permutation_invariant(arrivals, data):
    n = len(arrivals)
    order = data.draw(st.permutations(range(n)))
    finish = _drive_gate(arrivals, list(order))
    baseline = _drive_gate(arrivals, list(range(n)))
    assert finish == baseline  # bitwise: max is order-insensitive
    assert finish == max(now for now, _ in arrivals) + max(
        cost for _, cost in arrivals
    )


@settings(max_examples=40)
@given(
    payloads=st.lists(
        st.integers(min_value=-(2**40), max_value=2**40),
        min_size=1,
        max_size=16,
    ),
    data=st.data(),
)
def test_gate_payload_max_reduction_is_permutation_invariant(payloads, data):
    n = len(payloads)
    order = data.draw(st.permutations(range(n)))

    def reduce_with(perm):
        gate = CollectiveGate(op="MPI_Allreduce", expected=n)
        gate.signal = _CaptureSignal()
        for rank in perm:
            gate.arrive(rank, 0.0, 0.0, payload=payloads[rank], op=max)
        return gate.payload_acc

    assert reduce_with(list(order)) == reduce_with(range(n)) == max(payloads)
