"""Observability layer: classification boundaries, pattern detectors,
the metrics registry, and the zero-perturbation guarantee."""

import json
import os

import pytest

from repro.machine import CLUSTER_A
from repro.machine.network import NetworkSpec
from repro.obs import (
    COLLECTIVE_WAIT,
    COMPUTE,
    EAGER_SEND,
    NETWORK_TRANSFER,
    RECV_WAIT,
    RENDEZVOUS_WAIT,
    MetricsRegistry,
    Segment,
    Timelines,
    aggregate_metrics,
    analyze_waiting,
    build_timelines,
    classify_kind,
    detect_collective_skew,
    detect_ripples,
    observe,
)
from repro.obs.timeline import RankTimeline, eager_send_bound, recv_wait_floor

NET = NetworkSpec()
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


# --- classification boundaries (hand-computed from NetworkSpec) --------------
#
# per_message_overhead = 0.4e-6, latency = 1.3e-6,
# rendezvous_handshake = 2.0e-6
#   eager bound     = 0.4e-6 * (1 + 1e-9)
#   recv-wait floor = 2.0e-6 + 1.3e-6 + 2 * 0.4e-6 = 4.1e-6


def test_eager_send_bound_value():
    assert eager_send_bound(NET) == pytest.approx(0.4e-6, rel=1e-6)


def test_recv_wait_floor_value():
    assert recv_wait_floor(NET) == pytest.approx(4.1e-6, rel=1e-12)


def test_compute_kinds_are_compute():
    assert classify_kind("compute", 1.0, NET) == COMPUTE
    # custom compute labels (Roofline phases etc.) are still compute
    assert classify_kind("stream_triad", 0.5, NET) == COMPUTE


def test_collectives_are_collective_wait():
    for kind in ("MPI_Barrier", "MPI_Allreduce", "MPI_Bcast", "MPI_Reduce"):
        assert classify_kind(kind, 1e-6, NET) == COLLECTIVE_WAIT


def test_send_boundary():
    pmo = NET.per_message_overhead
    # an eager blocking send costs exactly per_message_overhead
    assert classify_kind("MPI_Send", pmo, NET) == EAGER_SEND
    # just above the tolerance band: must have blocked in rendezvous
    assert classify_kind("MPI_Send", pmo * 1.001, NET) == RENDEZVOUS_WAIT


def test_recv_boundary():
    floor = 4.1e-6
    assert classify_kind("MPI_Recv", floor, NET) == NETWORK_TRANSFER
    assert classify_kind("MPI_Recv", floor * 1.001, NET) == RECV_WAIT
    assert classify_kind("MPI_Wait", 1.0, NET) == RECV_WAIT
    assert classify_kind("MPI_Sendrecv", 1e-9, NET) == NETWORK_TRANSFER


def test_unknown_mpi_kind_defaults_to_recv_side():
    # waiting is the conservative default for future MPI kinds
    assert classify_kind("MPI_Exotic", 1.0, NET) == RECV_WAIT
    assert classify_kind("MPI_Exotic", 1e-9, NET) == NETWORK_TRANSFER


# --- synthetic timelines ------------------------------------------------------


def _timelines(segments):
    by_rank = {}
    for s in sorted(segments, key=lambda s: (s.rank, s.t0)):
        by_rank.setdefault(s.rank, []).append(s)
    return Timelines(
        by_rank={
            r: RankTimeline(rank=r, segments=tuple(segs))
            for r, segs in by_rank.items()
        },
        network=NET,
    )


def _seg(rank, t0, t1, category, kind="MPI_Send"):
    return Segment(rank=rank, t0=t0, t1=t1, category=category, kind=kind)


def test_ripple_detects_staircase():
    # 5 ranks, each starts blocking while its predecessor still is
    segs = [
        _seg(r, 0.1 * r, 0.1 * r + 0.25, RENDEZVOUS_WAIT) for r in range(5)
    ]
    # some compute so the run has a baseline
    segs += [_seg(r, 1.0, 1.5, COMPUTE, kind="compute") for r in range(5)]
    rep = detect_ripples(_timelines(segs), min_depth=4)
    assert rep.detected
    assert rep.dominant.depth == 5
    assert rep.dominant.ranks == (0, 1, 2, 3, 4)
    assert rep.dominant.serialized_wait == pytest.approx(5 * 0.25)
    assert rep.wait_by_rank == {r: pytest.approx(0.25) for r in range(5)}


def test_ripple_requires_overlap():
    # disjoint waits: each rank blocks after the previous one finished
    segs = [_seg(r, r * 1.0, r * 1.0 + 0.2, RECV_WAIT) for r in range(5)]
    rep = detect_ripples(_timelines(segs), min_depth=4)
    assert not rep.detected


def test_ripple_requires_min_depth():
    segs = [_seg(r, 0.1 * r, 0.1 * r + 0.25, RENDEZVOUS_WAIT) for r in range(3)]
    rep = detect_ripples(_timelines(segs), min_depth=4)
    assert not rep.detected
    # the chain is still reported, just below the detection bar
    assert rep.chains and rep.chains[0].depth == 3


def test_ripple_significance_gate():
    # a geometric staircase of microsecond waits in an hour of compute is
    # protocol jitter, not a pathology
    segs = [
        _seg(r, 1e-7 * r, 1e-7 * r + 2.5e-7, RENDEZVOUS_WAIT)
        for r in range(5)
    ]
    segs += [_seg(r, 1.0, 3601.0, COMPUTE, kind="compute") for r in range(5)]
    rep = detect_ripples(_timelines(segs), min_depth=4)
    assert not rep.detected


def test_skew_single_slow_rank():
    segs = []
    for r in range(4):
        if r == 2:
            segs.append(_seg(r, 0.0, 2.0, COMPUTE, kind="compute"))
            segs.append(_seg(r, 2.0, 2.0 + 1e-6, COLLECTIVE_WAIT,
                             kind="MPI_Barrier"))
        else:
            segs.append(_seg(r, 0.0, 1.0, COMPUTE, kind="compute"))
            segs.append(_seg(r, 1.0, 2.0, COLLECTIVE_WAIT,
                             kind="MPI_Barrier"))
    rep = detect_collective_skew(_timelines(segs))
    assert rep.detected
    assert rep.slow_ranks == (2,)
    assert rep.skew_ratio == pytest.approx(2.0)
    assert rep.absorbed_wait == pytest.approx(3.0)
    assert "rank(s) 2" in rep.summary()


def test_skew_slow_majority_fast_minority():
    # lbm's natural alignment penalty: most ranks are slow, a fast
    # minority absorbs the wait
    segs = []
    for r in range(5):
        if r < 4:
            segs.append(_seg(r, 0.0, 1.2, COMPUTE, kind="compute"))
        else:
            segs.append(_seg(r, 0.0, 1.0, COMPUTE, kind="compute"))
            segs.append(_seg(r, 1.0, 1.2, COLLECTIVE_WAIT,
                             kind="MPI_Barrier"))
    rep = detect_collective_skew(_timelines(segs))
    assert rep.detected
    assert rep.slow_ranks == (0, 1, 2, 3)
    assert rep.skew_ratio == pytest.approx(1.2)


def test_skew_uniform_ranks_not_detected():
    segs = [_seg(r, 0.0, 1.0, COMPUTE, kind="compute") for r in range(4)]
    rep = detect_collective_skew(_timelines(segs))
    assert not rep.detected
    assert rep.slow_ranks == ()


def test_skew_below_ratio_threshold_not_detected():
    segs = []
    for r in range(4):
        dur = 1.0 + (0.005 if r == 0 else 0.0)  # 0.5 % skew: noise
        segs.append(_seg(r, 0.0, dur, COMPUTE, kind="compute"))
        segs.append(_seg(r, dur, 1.01, COLLECTIVE_WAIT, kind="MPI_Barrier"))
    rep = detect_collective_skew(_timelines(segs))
    assert not rep.detected


def test_analyze_waiting_composes_both():
    segs = [_seg(r, 0.1 * r, 0.1 * r + 0.25, RENDEZVOUS_WAIT) for r in range(5)]
    segs += [_seg(r, 1.0, 1.5, COMPUTE, kind="compute") for r in range(5)]
    analysis = analyze_waiting(_timelines(segs))
    assert analysis.ripple.detected
    assert not analysis.skew.detected
    assert analysis.wait_fraction == pytest.approx(
        (5 * 0.25) / (5 * 0.25 + 5 * 0.5)
    )
    assert any("ripple" in f for f in analysis.findings())


# --- metrics registry ---------------------------------------------------------


def test_registry_snapshot_and_query():
    reg = MetricsRegistry()
    reg.register("b_source", lambda: {"x": 2})
    reg.register("a_source", lambda: {"y": 1.5})
    snap = reg.snapshot()
    assert list(snap) == ["a_source", "b_source"]  # deterministic order
    assert reg.query("b_source", "x") == 2
    assert json.loads(reg.to_json()) == snap
    reg.unregister("b_source")
    assert reg.sources == ["a_source"]


def test_registry_rejects_non_callable():
    reg = MetricsRegistry()
    with pytest.raises(TypeError):
        reg.register("bad", {"not": "callable"})


def test_run_result_carries_metrics(small_run):
    m = small_run.metrics
    assert m["engine"]["events"] > 0
    assert m["mailboxes"]["matching_ops"] > 0
    # finished runs have drained queues
    assert m["mailboxes"]["pending_arrivals"] == 0
    assert m["mailboxes"]["pending_posts"] == 0
    # metrics survive the JSON checkpoint round-trip
    from repro.harness.results import RunResult

    back = RunResult.from_checkpoint_dict(
        json.loads(json.dumps(small_run.to_checkpoint_dict()))
    )
    assert back.metrics == m


def test_traced_run_has_trace_source(traced_run):
    m = traced_run.metrics
    assert m["trace"]["intervals_recorded"] == len(traced_run.trace)
    assert m["trace"]["streaming"] == 0


def test_aggregate_metrics_sums_and_maxes():
    from repro.harness import scaling_sweep
    from repro.spechpc import get_benchmark

    series = scaling_sweep(
        get_benchmark("lbm"), CLUSTER_A, [2, 4], suite="tiny", sim_steps=3
    )
    agg = aggregate_metrics(series)
    per_run = [
        r.metrics for p in series.points for r in p.runs
    ]
    assert agg["engine"]["events"] == sum(
        m["engine"]["events"] for m in per_run
    )
    assert agg["engine"]["peak_heap_size"] == max(
        m["engine"]["peak_heap_size"] for m in per_run
    )


# --- observe() / timelines from real runs ------------------------------------


@pytest.fixture(scope="module")
def small_run():
    from repro.harness import run
    from repro.spechpc import get_benchmark

    return run(get_benchmark("lbm"), CLUSTER_A, 4, sim_steps=3)


@pytest.fixture(scope="module")
def traced_run():
    from repro.harness import run
    from repro.spechpc import get_benchmark

    return run(get_benchmark("lbm"), CLUSTER_A, 4, sim_steps=3, trace=True)


def test_observe_requires_trace(small_run):
    with pytest.raises(ValueError, match="no trace"):
        observe(small_run)


def test_observe_builds_bundle(traced_run):
    obs = observe(traced_run)
    assert obs.timelines.nranks == 4
    assert obs.timelines.time_by_category()[COMPUTE] > 0
    # timeline totals agree with the raw trace aggregates
    total = sum(obs.timelines.time_by_category().values())
    raw = sum(traced_run.trace.time_by_kind().values())
    assert total == pytest.approx(raw)
    assert "Waiting-time report" in obs.report()


def test_observe_rank_subset(traced_run):
    obs = observe(traced_run, ranks=[0, 2])
    assert obs.timelines.ranks == [0, 2]


def test_streaming_trace_without_intervals_rejected():
    from repro.harness import run
    from repro.spechpc import get_benchmark

    res = run(get_benchmark("lbm"), CLUSTER_A, 4, sim_steps=3,
              trace="streaming")
    with pytest.raises(ValueError, match="retained no intervals"):
        build_timelines(res.trace, NET)


def test_bundle_write(tmp_path, traced_run):
    obs = observe(traced_run)
    paths = obs.write(str(tmp_path / "lbm4"))
    assert sorted(paths) == ["chrome", "markdown", "svg"]
    for p in paths.values():
        assert os.path.exists(p)
    doc = json.loads(open(paths["chrome"]).read())
    assert doc["otherData"]["ranks"] == 4


# --- zero-perturbation guarantee ---------------------------------------------


@pytest.mark.parametrize("bench", ["minisweep", "lbm"])
def test_observability_is_zero_perturbation(bench):
    """Golden fingerprints are bit-identical with the full observability
    pipeline attached — including against the checked-in corpus."""
    from repro.validate import observability_differential

    rep = observability_differential(
        bench, "A", 72, golden_dir=GOLDEN_DIR
    )
    assert rep.ok, rep.summary()
    assert rep.observed_digest == rep.plain_digest
    # the 1-node corpus point must have been consulted
    assert rep.golden_digest == rep.observed_digest
