"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.des import DeadlockError, Delay, Signal, Simulator, Wait


def test_single_process_delay():
    sim = Simulator()
    log = []

    def body():
        yield Delay(1.5)
        log.append(sim.now)
        yield Delay(0.5)
        log.append(sim.now)

    sim.spawn("p", body())
    end = sim.run()
    assert log == [1.5, 2.0]
    assert end == 2.0


def test_two_processes_interleave():
    sim = Simulator()
    order = []

    def worker(name, dt):
        yield Delay(dt)
        order.append((name, sim.now))

    sim.spawn("a", worker("a", 2.0))
    sim.spawn("b", worker("b", 1.0))
    sim.run()
    assert order == [("b", 1.0), ("a", 2.0)]


def test_signal_wakes_waiter_with_value():
    sim = Simulator()
    sig = Signal("test")
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append((value, sim.now))

    def firer():
        yield Delay(3.0)
        sig.fire(42)

    sim.spawn("w", waiter())
    sim.spawn("f", firer())
    sim.run()
    assert got == [(42, 3.0)]


def test_wait_on_already_fired_signal_is_immediate():
    sim = Simulator()
    sig = Signal()
    sig.fire("x")
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append((value, sim.now))

    sim.spawn("w", waiter())
    sim.run()
    assert got == [("x", 0.0)]


def test_signal_fires_once():
    sig = Signal("once")
    sig.fire(1)
    with pytest.raises(RuntimeError):
        sig.fire(2)


def test_subcoroutine_return_value():
    sim = Simulator()
    results = []

    def inner():
        yield Delay(1.0)
        return "inner-result"

    def outer():
        val = yield inner()
        results.append((val, sim.now))

    sim.spawn("o", outer())
    sim.run()
    assert results == [("inner-result", 1.0)]


def test_nested_subcoroutines():
    sim = Simulator()

    def leaf():
        yield Delay(0.25)
        return 1

    def mid():
        a = yield leaf()
        b = yield leaf()
        return a + b

    def top():
        total = yield mid()
        return total * 10

    proc = sim.spawn("t", top())
    sim.run()
    assert proc.result == 20
    assert sim.now == 0.5


def test_deadlock_detection():
    sim = Simulator()
    sig = Signal("never")

    def stuck():
        yield Wait(sig)

    sim.spawn("s", stuck())
    with pytest.raises(DeadlockError):
        sim.run()


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-0.1)


def test_bad_yield_type_rejected():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn("bad", bad())
    with pytest.raises(TypeError):
        sim.run()


def test_call_at_callback():
    sim = Simulator()
    fired = []

    def body():
        yield Delay(5.0)

    sim.spawn("p", body())
    sim.call_at(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]


def test_call_at_in_past_rejected():
    sim = Simulator()

    def body():
        yield Delay(1.0)
        sim.call_at(0.5, lambda: None)

    sim.spawn("p", body())
    with pytest.raises(ValueError):
        sim.run()


def test_run_until_pauses():
    sim = Simulator()
    log = []

    def body():
        for _ in range(5):
            yield Delay(1.0)
            log.append(sim.now)

    sim.spawn("p", body())
    sim.run(until=2.5)
    assert log == [1.0, 2.0]
    assert sim.now == 2.5
    sim.run()
    assert log == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_process_exception_propagates():
    sim = Simulator()

    def boom():
        yield Delay(1.0)
        raise ValueError("boom")

    sim.spawn("b", boom())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def body(i):
        yield Delay(float(i % 7) * 0.1)
        done.append(i)

    for i in range(500):
        sim.spawn(f"p{i}", body(i))
    sim.run()
    assert len(done) == 500


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn("notgen", lambda: None)  # type: ignore[arg-type]


# --- hang watchdogs (max_events / deadline) and process kill ----------------


def _spinner():
    while True:
        yield Delay(1.0)


def test_max_events_budget_raises_hang_error():
    from repro.des import HangError

    sim = Simulator()
    sim.spawn("spin", _spinner())
    with pytest.raises(HangError, match="event budget"):
        sim.run(max_events=100)


def test_deadline_raises_hang_error():
    from repro.des import HangError

    sim = Simulator()
    sim.spawn("spin", _spinner())
    with pytest.raises(HangError, match="deadline"):
        sim.run(deadline=50.0)


@pytest.mark.parametrize("fast_path", [True, False])
def test_generous_budgets_do_not_trip(fast_path):
    sim = Simulator(fast_path=fast_path)
    log = []

    def body():
        yield Delay(1.0)
        log.append(sim.now)

    sim.spawn("p", body())
    assert sim.run(max_events=10_000, deadline=100.0) == 1.0
    assert log == [1.0]


def test_deadlock_error_carries_blocked_names():
    sim = Simulator()
    sig = Signal("never")

    def stuck():
        yield Wait(sig)

    sim.spawn("victim-a", stuck())
    sim.spawn("victim-b", stuck())
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    assert "victim-a" in str(excinfo.value)
    assert {p.name for p in excinfo.value.blocked} == {"victim-a", "victim-b"}


def test_kill_terminates_process_mid_wait():
    sim = Simulator()
    sig = Signal("never")
    cleaned = []

    def stuck():
        try:
            yield Wait(sig)
        finally:
            cleaned.append("closed")

    victim = sim.spawn("victim", stuck())

    def killer():
        yield Delay(2.0)
        victim.kill()

    sim.spawn("killer", killer())
    assert sim.run() == 2.0
    assert victim.done
    assert cleaned == ["closed"]
