"""Executor protocol: capability flags, backend parity, seeded backoff,
serial timeout isolation, and checkpoint schema-2 behavior.

Fabric-specific behavior (wire protocol, leases, chaos) lives in
``tests/test_fabric.py``; this file covers the protocol layer shared by
every backend.
"""

import json

import pytest

from repro.harness import (
    FailedRun,
    LocalPoolExecutor,
    RunSpec,
    SerialExecutor,
    compact,
    load_checkpoint,
    load_journal,
    run_many,
    spec_key,
)
from repro.harness.checkpoint import append_checkpoint, append_event
from repro.harness.executors import backoff_delay
from repro.harness.fabric import FabricExecutor
from repro.machine import CLUSTER_A
from repro.spechpc import get_benchmark
from repro.validate.golden import fingerprint

from tests.test_robust_harness import QuickBenchmark, SleepyBenchmark


def _spec(bench, nprocs=1, **kw):
    return RunSpec(benchmark=bench, cluster=CLUSTER_A, nprocs=nprocs, **kw)


def _specs(n=3):
    b = get_benchmark("lbm")
    return [
        _spec(b, nprocs=k, sim_steps=1, seed=1000 * k) for k in (1, 2, 4)[:n]
    ]


# --- capability flags -------------------------------------------------------


def test_capability_flags_state_the_contract():
    s = SerialExecutor.capabilities
    assert not s.parallel and not s.distributed and not s.retries_timeouts
    l = LocalPoolExecutor.capabilities
    assert l.parallel and l.isolated and not l.elastic and not l.distributed
    assert not l.retries_timeouts  # timeout stays terminal, as before
    f = FabricExecutor.capabilities
    assert f.parallel and f.isolated and f.elastic and f.distributed
    assert f.retries_timeouts  # there *is* another worker to retry on


# --- backend parity ---------------------------------------------------------


def test_explicit_serial_matches_default():
    specs = _specs()
    ref = [fingerprint(r) for r in run_many(specs)]
    out = [fingerprint(r) for r in run_many(specs, executor="serial")]
    assert out == ref


def test_explicit_local_matches_default_pool():
    specs = _specs()
    ref = [fingerprint(r) for r in run_many(specs, workers=2)]
    out = [fingerprint(r) for r in run_many(specs, workers=2, executor="local")]
    assert out == ref


def test_executor_instance_is_accepted():
    specs = _specs(2)
    ref = [fingerprint(r) for r in run_many(specs)]
    out = [fingerprint(r) for r in run_many(specs, executor=SerialExecutor())]
    assert out == ref


def test_executor_differential_conformant():
    from repro.validate import executor_differential

    # fabric parity is covered (with chaos) in test_fabric.py; keep this
    # one to the process-local backends so it stays fast
    assert executor_differential(executors=("serial", "local")) == []


# --- executor selection errors ----------------------------------------------


def test_fabric_by_name_needs_an_address():
    with pytest.raises(ValueError, match="listen address"):
        run_many(_specs(1), executor="fabric")


def test_unknown_executor_name_rejected():
    with pytest.raises(ValueError, match="unknown executor"):
        run_many(_specs(1), executor="cloud")


def test_trace_rejected_on_parallel_executors():
    b = get_benchmark("lbm")
    spec = _spec(b, sim_steps=1, trace=True)
    with pytest.raises(ValueError, match="serial"):
        run_many([spec], executor="local")


# --- deterministic seeded backoff -------------------------------------------


def test_backoff_delay_is_a_pure_function():
    a = backoff_delay(0.05, 2, key="abc")
    b = backoff_delay(0.05, 2, key="abc")
    assert a == b


def test_backoff_delay_decorrelates_by_key_and_attempt():
    delays = {
        backoff_delay(0.05, att, key=key)
        for att in (1, 2, 3)
        for key in ("k1", "k2", "k3")
    }
    assert len(delays) == 9  # every (key, attempt) pair jitters apart


def test_backoff_delay_bounds_and_growth():
    base = 0.1
    for attempt in (1, 2, 3):
        nominal = base * 2 ** (attempt - 1)
        d = backoff_delay(base, attempt, key=spec_key(_specs(1)[0]))
        assert 0.5 * nominal <= d < 1.5 * nominal
    assert backoff_delay(0.0, 3, key="k") == 0.0
    assert backoff_delay(0.1, 2) == 0.2  # keyless: no jitter


# --- serial timeout isolation (satellite 3) ---------------------------------


def test_serial_executor_enforces_timeout():
    sleepy = SleepyBenchmark(seconds=30.0)
    quick = QuickBenchmark()
    out = run_many(
        [_spec(sleepy), _spec(quick)],
        executor="serial",
        timeout=1.0,
        tolerate_failures=True,
    )
    assert isinstance(out[0], FailedRun)
    assert out[0].error_type == "TimeoutError"
    assert out[1].benchmark == "quick"


# --- checkpoint schema 2 ----------------------------------------------------


def test_checkpoint_writes_schema_2(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    run_many(_specs(1), checkpoint=path)
    doc = json.loads(open(path).readline())
    assert doc["schema"] == 2
    assert doc["kind"] == "result"


def test_checkpoint_schema_1_still_loads(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    specs = _specs(1)
    (result,) = run_many(specs)
    key = spec_key(specs[0])
    v1 = {"version": 1, "key": key, "result": result.to_checkpoint_dict()}
    with open(path, "w") as fh:
        fh.write(json.dumps(v1) + "\n")
    saved = load_checkpoint(path)
    assert fingerprint(saved[key]) == fingerprint(result)
    # and a resume run re-simulates nothing
    out = run_many(specs, checkpoint=path)
    assert fingerprint(out[0]) == fingerprint(result)


def test_compact_folds_duplicates_and_drops_events(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    specs = _specs(2)
    results = run_many(specs)
    keys = [spec_key(s) for s in specs]
    # stale first write, events, then the record that should win
    append_checkpoint(path, keys[0], results[1])
    append_event(path, "lease", keys[0], worker="w0")
    append_checkpoint(path, keys[0], results[0])
    append_checkpoint(path, keys[1], results[1])
    append_event(path, "complete", keys[1], worker="w0")
    assert len(load_journal(path)) == 2
    kept = compact(path)
    assert kept == 2
    lines = [json.loads(l) for l in open(path)]
    assert len(lines) == 2  # one line per key, no events
    assert all(d["kind"] == "result" for d in lines)
    saved = load_checkpoint(path)
    assert fingerprint(saved[keys[0]]) == fingerprint(results[0])  # last wins
    assert load_journal(path) == []


def test_compact_tolerates_corrupt_tail(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    specs = _specs(1)
    run_many(specs, checkpoint=path)
    with open(path, "a") as fh:
        fh.write('{"schema": 2, "kind": "result", "key": "tr')  # torn write
    assert compact(path) == 1
    assert spec_key(specs[0]) in load_checkpoint(path)


def test_compact_missing_file_is_noop(tmp_path):
    assert compact(str(tmp_path / "never-written.jsonl")) == 0


def test_resume_compacts_the_file(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    specs = _specs(2)
    results = run_many(specs, checkpoint=path)
    keys = [spec_key(s) for s in specs]
    append_event(path, "lease", keys[0], worker="w0")
    append_checkpoint(path, keys[0], results[0])  # duplicate line
    assert len(open(path).readlines()) == 4
    out = run_many(specs, checkpoint=path)  # resume: nothing re-runs
    assert [fingerprint(r) for r in out] == [fingerprint(r) for r in results]
    assert len(open(path).readlines()) == 2  # compacted on the way in
