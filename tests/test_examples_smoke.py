"""Smoke tests: the example scripts run end to end.

Each example's ``main`` is imported and driven with small arguments so
the whole gallery stays executable as the library evolves.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def run_main(name, argv, capsys):
    mod = load_example(name)
    old = sys.argv
    sys.argv = [name] + argv
    try:
        mod.main()
    finally:
        sys.argv = old
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_main("quickstart.py", ["soma", "8"], capsys)
    assert "performance" in out
    assert "energy to solution" in out


def test_mini_kernels_demo(capsys):
    out = run_main("mini_kernels_demo.py", [], capsys)
    assert "lbm" in out and "pot3d" in out and "weather" in out


def test_distributed_numerics(capsys):
    out = run_main("distributed_numerics.py", ["3"], capsys)
    assert "max |distributed - sequential|" in out


def test_multinode_study(capsys):
    out = run_main("multinode_study.py", ["A", "soma"], capsys)
    assert "case" in out


def test_energy_study_runs(capsys):
    out = run_main("energy_study.py", [], capsys)
    assert "race-to-idle holds: True" in out


def test_minisweep_serialization_example(capsys):
    out = run_main("minisweep_serialization.py", [], capsys)
    assert "chain length" in out
    assert "59" in out


def test_node_scaling_study(capsys):
    mod = load_example("node_scaling_study.py")
    mod.study("tealeaf")
    out = capsys.readouterr().out
    assert "saturation ratio" in out


def test_cluster_design_study(capsys):
    out = run_main("cluster_design_study.py", [], capsys)
    assert "DDR5" in out


def test_make_artifact(tmp_path, capsys):
    mod = load_example("make_artifact.py")
    old = sys.argv
    sys.argv = ["make_artifact.py", str(tmp_path), "--fast"]
    try:
        mod.main()
    finally:
        sys.argv = old
    assert (tmp_path / "all_runs.csv").exists()
    assert any(p.name.startswith("tiny_lbm") for p in tmp_path.iterdir())
