"""Point-to-point semantics of the simulated MPI runtime."""

import pytest

from repro.machine import CLUSTER_A
from repro.smpi import MpiRuntime


def run_job(nprocs, factory, cluster=CLUSTER_A, trace=None):
    rt = MpiRuntime(cluster, nprocs, trace=trace)
    return rt.launch(factory)


def test_eager_send_recv_completes():
    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=1024)
        else:
            yield comm.recv(0)

    job = run_job(2, body)
    assert job.elapsed > 0
    # eager: the sender does not wait for the receiver
    assert job.stats[0].time_by_kind.get("MPI_Send", 0.0) < 1e-5


def test_rendezvous_sender_blocks_until_recv_posted():
    big = 10 * 1024 * 1024  # well above eager threshold
    recv_delay = 0.5

    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=big)
        else:
            yield comm.compute(recv_delay)
            yield comm.recv(0)

    job = run_job(2, body)
    # the sender was stuck in MPI_Send for at least the receiver's delay
    assert job.stats[0].time_by_kind["MPI_Send"] >= recv_delay
    # both finish at the same transfer-end time
    assert job.elapsed > recv_delay


def test_eager_message_before_recv_is_buffered():
    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=64)
        else:
            yield comm.compute(1.0)
            yield comm.recv(0)

    job = run_job(2, body)
    # receiver picks the buffered message up immediately after computing
    assert job.elapsed == pytest.approx(1.0, abs=1e-4)
    assert job.stats[1].time_by_kind.get("MPI_Recv", 0.0) < 1e-4


def test_recv_waits_for_late_sender():
    def body(comm):
        if comm.rank == 0:
            yield comm.compute(2.0)
            yield comm.send(1, nbytes=64)
        else:
            yield comm.recv(0)

    job = run_job(2, body)
    assert job.stats[1].time_by_kind["MPI_Recv"] >= 2.0


def test_message_ordering_fifo_same_tag():
    order = []

    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=10, tag=7)
            yield comm.send(1, nbytes=20, tag=7)
        else:
            r1 = comm.irecv(0, tag=7)
            r2 = comm.irecv(0, tag=7)
            yield comm.wait(r1)
            order.append(r1.done_signal.value)
            yield comm.wait(r2)
            order.append(r2.done_signal.value)

    run_job(2, body)
    assert order[0] <= order[1]


def test_tag_matching_selects_correct_message():
    done = []

    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=10, tag=1)
            yield comm.send(1, nbytes=10, tag=2)
        else:
            # receive tag 2 first: must match the second message
            yield comm.recv(0, tag=2)
            yield comm.recv(0, tag=1)
            done.append(True)

    run_job(2, body)
    assert done == [True]


def test_any_source_wildcard():
    def body(comm):
        if comm.rank == 0:
            yield comm.recv()  # ANY_SOURCE
            yield comm.recv()
        else:
            yield comm.send(0, nbytes=8)

    run_job(3, body)


def test_isend_wait_overlap_with_compute():
    big = 5 * 1024 * 1024

    def body(comm):
        if comm.rank == 0:
            req = comm.isend(1, nbytes=big)
            yield comm.compute(1.0)  # overlap
            yield comm.wait(req)
        else:
            yield comm.recv(0)

    job = run_job(2, body)
    # with overlap, total time ~ max(compute, transfer), not the sum
    assert job.elapsed < 1.0 + 0.5


def test_sendrecv_pair_no_deadlock():
    def body(comm):
        peer = 1 - comm.rank
        big = 1024 * 1024
        for _ in range(3):
            yield comm.sendrecv(peer, big, peer, big)

    job = run_job(2, body)
    assert job.elapsed > 0


def test_ring_exchange_many_ranks():
    n = 8

    def body(comm):
        right = (comm.rank + 1) % n
        left = (comm.rank - 1) % n
        yield comm.sendrecv(right, 4096, left, 4096)

    job = run_job(n, body)
    assert job.elapsed > 0
    assert all(s.counters["messages"] >= 1 for s in job.stats)


def test_unmatched_send_detected_at_finalize():
    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=16)  # eager, never received
        else:
            yield comm.compute(0.1)

    with pytest.raises(RuntimeError, match="unmatched"):
        run_job(2, body)


def test_self_send_rejected():
    def body(comm):
        yield comm.send(comm.rank, nbytes=8)

    with pytest.raises(ValueError, match="self-send"):
        run_job(2, body)


def test_invalid_dest_rejected():
    def body(comm):
        yield comm.send(99, nbytes=8)

    with pytest.raises(ValueError, match="invalid destination"):
        run_job(2, body)


def test_intra_vs_inter_node_latency():
    """A message between nodes must be slower than within a node."""
    nbytes = 16 * 1024

    def make(recvr):
        def body(comm):
            if comm.rank == 0:
                yield comm.send(recvr, nbytes=nbytes)
            elif comm.rank == recvr:
                yield comm.recv(0)
            else:
                return
                yield  # pragma: no cover

        return body

    cores = CLUSTER_A.node.cores
    job_intra = run_job(2, make(1))
    job_inter = run_job(cores + 1, make(cores))
    t_intra = job_intra.elapsed
    t_inter = job_inter.elapsed
    assert t_inter > t_intra


def test_counters_accumulate_messages():
    def body(comm):
        if comm.rank == 0:
            yield comm.send(1, nbytes=100)
            yield comm.send(1, nbytes=200)
        else:
            yield comm.recv(0)
            yield comm.recv(0)

    job = run_job(2, body)
    assert job.stats[0].counters["messages"] == 2
    assert job.stats[0].counters["msg_bytes"] == 300
