"""Serving differential: the HTTP service is bit-transparent.

Two layers of proof:

* :func:`repro.validate.serving.serving_differential` replays golden
  specs through a real loopback server and diffs every ladder path
  (cold DES, cache hit, band-negotiated prediction) against direct
  runs.  Tier-1 runs a fast benchmark subset; the full checked-in
  corpus (both scales) runs under the ``golden`` marker in the CI
  serving lane.
* Unit checks on :class:`repro.serve.spec.ServeSpec` pin the
  content-address contract: aliases collapse to one key, every
  result-changing axis moves the key, and nothing else does.
"""

import pytest

from repro.serve import ServeSpec, SpecError
from repro.validate.serving import serving_differential

#: cheapest three benchmarks at scale 1 — the tier-1 lane
FAST_BENCHMARKS = ("soma", "tealeaf", "minisweep")


def test_serving_differential_fast_subset():
    failures = serving_differential(benchmarks=FAST_BENCHMARKS, scales=(1,))
    assert failures == [], "\n".join(failures)


@pytest.mark.golden
def test_serving_differential_full_corpus():
    """Every checked-in golden spec, both node scales, all three paths."""
    failures = serving_differential(scales=(1, 4))
    assert failures == [], "\n".join(failures)


# ----------------------------------------------------------------------
# canonical spec identity
# ----------------------------------------------------------------------


def _key(**fields):
    return ServeSpec.from_request(
        {"benchmark": "lbm", "cluster": "A", **fields}
    ).key


def test_cluster_aliases_share_one_key():
    assert _key(cluster="A") == _key(cluster="ClusterA")
    assert _key(cluster="B") == _key(cluster="ClusterB")
    assert _key(cluster="A") != _key(cluster="B")


def test_default_nprocs_materialized_into_key():
    # nprocs=None means fully populated nodes; the resolved rank count
    # is part of the identity, so the explicit spelling is the same key
    from repro.machine.registry import get_cluster

    cores = get_cluster("A").cores_per_node
    assert _key(nnodes=2) == _key(nnodes=2, nprocs=2 * cores)
    assert _key(nnodes=2) != _key(nnodes=2, nprocs=2 * cores - 1)


def test_every_result_changing_axis_moves_the_key():
    base = _key()
    assert _key(benchmark="tealeaf") != base
    assert _key(nnodes=2) != base
    assert _key(suite="small") != base
    assert _key(threads=2) != base
    assert _key(seed=7) != base
    assert _key(noise_sigma=0.01) != base
    assert _key(sim_steps=3) != base
    assert _key(faults={"slow_ranks": [{"rank": 0, "factor": 2.0}]}) != base
    # ...but an *empty* fault plan is the same run, hence the same key
    assert _key(faults={}) == base


def test_request_round_trip_preserves_key():
    spec = ServeSpec.from_request({
        "benchmark": "pot3d", "cluster": "B", "nnodes": 4,
        "suite": "tiny", "threads": 2, "seed": 3, "noise_sigma": 0.02,
    })
    assert ServeSpec.from_request(spec.to_request()).key == spec.key


@pytest.mark.parametrize("doc,fragment", [
    ({"benchmark": "lbm"}, "cluster"),
    ({"cluster": "A"}, "benchmark"),
    ({"benchmark": "nope", "cluster": "A"}, "unknown benchmark"),
    ({"benchmark": "lbm", "cluster": "Z"}, "unknown cluster"),
    ({"benchmark": "lbm", "cluster": "A", "node": 4}, "unknown spec field"),
    ({"benchmark": "lbm", "cluster": "A", "nnodes": 0}, "nnodes"),
    ({"benchmark": "lbm", "cluster": "A", "nnodes": "four"}, "malformed"),
    ({"benchmark": "lbm", "cluster": "A", "suite": "huge"}, "workload"),
    ({"benchmark": "lbm", "cluster": "A", "noise_sigma": -1.0},
     "noise_sigma"),
    ({"benchmark": "lbm", "cluster": "A", "faults": {"bogus": 1}},
     "fault plan"),
])
def test_malformed_specs_rejected_loudly(doc, fragment):
    with pytest.raises(SpecError, match=fragment):
        ServeSpec.from_request(doc)


def test_des_only_axes_disable_prediction():
    clean = ServeSpec.from_request({"benchmark": "lbm", "cluster": "A"})
    assert clean.prediction_spec() is not None
    for axis in ({"noise_sigma": 0.05}, {"sim_steps": 2},
                 {"faults": {}}):
        spec = ServeSpec.from_request(
            {"benchmark": "lbm", "cluster": "A", **axis}
        )
        assert spec.prediction_spec() is None, axis
