"""Execution-model unit and property tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import ICE_LAKE_8360Y, SAPPHIRE_RAPIDS_8470
from repro.model import ExecutionModel, KernelModel, cache_fit_factor
from repro.model.kernel import PhaseCost

EM_A = ExecutionModel(ICE_LAKE_8360Y)
EM_B = ExecutionModel(SAPPHIRE_RAPIDS_8470)

STREAM = KernelModel(
    name="stream-like",
    flops_per_unit=2.0,
    simd_fraction=0.9,
    mem_bytes_per_unit=24.0,
    l3_bytes_per_unit=24.0,
    l2_bytes_per_unit=24.0,
    working_set_bytes_per_unit=24.0,
)

COMPUTE = KernelModel(
    name="dgemm-like",
    flops_per_unit=5000.0,
    simd_fraction=0.95,
    mem_bytes_per_unit=8.0,
    l3_bytes_per_unit=16.0,
    l2_bytes_per_unit=64.0,
    working_set_bytes_per_unit=8.0,
    compute_efficiency=0.7,
)


# --- cache_fit_factor -------------------------------------------------------


def test_cache_fit_limits():
    assert cache_fit_factor(1.0, 1e9) == pytest.approx(0.08, abs=0.02)
    assert cache_fit_factor(1e12, 1e6) == pytest.approx(1.0, abs=0.02)


def test_cache_fit_midpoint():
    f = cache_fit_factor(1e6, 1e6)
    assert 0.4 < f < 0.7


@given(
    ws=st.floats(min_value=1.0, max_value=1e15),
    cache=st.floats(min_value=1.0, max_value=1e12),
)
def test_cache_fit_bounded(ws, cache):
    f = cache_fit_factor(ws, cache)
    assert 0.0 < f <= 1.0


@given(
    cache=st.floats(min_value=1e3, max_value=1e12),
    ws1=st.floats(min_value=1.0, max_value=1e15),
    ws2=st.floats(min_value=1.0, max_value=1e15),
)
def test_cache_fit_monotone_in_working_set(cache, ws1, ws2):
    lo, hi = sorted((ws1, ws2))
    assert cache_fit_factor(lo, cache) <= cache_fit_factor(hi, cache) + 1e-12


# --- bandwidth sharing --------------------------------------------------------


def test_single_rank_gets_single_core_bw():
    assert EM_A.memory_bw_share(1) == pytest.approx(16e9)


def test_full_domain_shares_saturated_bw():
    n = ICE_LAKE_8360Y.cores_per_domain
    share = EM_A.memory_bw_share(n)
    assert share * n == pytest.approx(ICE_LAKE_8360Y.domain_memory_bw)


def test_saturation_knee_around_five_cores():
    assert 4.0 < EM_A.saturation_cores() < 6.0
    assert 4.0 < EM_B.saturation_cores() < 6.0


@given(n=st.integers(min_value=1, max_value=64))
def test_aggregate_bw_never_exceeds_domain_bw(n):
    agg = EM_A.memory_bw_share(n) * n
    assert agg <= ICE_LAKE_8360Y.domain_memory_bw * (1 + 1e-12)


@given(n1=st.integers(min_value=1, max_value=64), n2=st.integers(min_value=1, max_value=64))
def test_per_rank_share_monotone_decreasing(n1, n2):
    lo, hi = sorted((n1, n2))
    assert EM_A.memory_bw_share(lo) >= EM_A.memory_bw_share(hi)


# --- phase cost ------------------------------------------------------------------


def test_memory_bound_kernel_time_scales_with_contention():
    units = 50_000_000  # 1.2 GB working set, far out of cache
    t1 = EM_A.phase_cost(STREAM, units, ranks_in_domain=1).seconds
    t18 = EM_A.phase_cost(STREAM, units, ranks_in_domain=18).seconds
    # with 18 ranks the per-rank share drops 16 -> 4.25 GB/s
    assert t18 > 3 * t1


def test_compute_bound_kernel_immune_to_contention():
    units = 1_000_000
    t1 = EM_A.phase_cost(COMPUTE, units, 1).seconds
    t18 = EM_A.phase_cost(COMPUTE, units, 18).seconds
    assert t18 == pytest.approx(t1, rel=1e-9)


def test_cache_fit_reduces_memory_traffic_and_time():
    # small working set: fits into the outer cache of one rank
    small_units = 10_000       # 240 kB
    large_units = 100_000_000  # 2.4 GB
    c_small = EM_A.phase_cost(STREAM, small_units, 1)
    c_large = EM_A.phase_cost(STREAM, large_units, 1)
    frac_small = c_small.mem_bytes / (STREAM.mem_bytes_per_unit * small_units)
    frac_large = c_large.mem_bytes / (STREAM.mem_bytes_per_unit * large_units)
    assert frac_small < 0.25
    assert frac_large > 0.9


def test_traffic_moves_inward_when_cached():
    units = 10_000
    c = EM_A.phase_cost(STREAM, units, 1)
    nominal_l3 = STREAM.l3_bytes_per_unit * units
    nominal_l2 = STREAM.l2_bytes_per_unit * units
    # what left DRAM shows up in the caches instead
    assert c.l3_bytes + c.l2_bytes > nominal_l3 + nominal_l2 * 0.99


def test_zero_units_zero_cost():
    c = EM_A.phase_cost(STREAM, 0, 1)
    assert c == PhaseCost.zero()


def test_penalty_multiplies_time_only():
    units = 1_000_000
    base = EM_A.phase_cost(STREAM, units, 4)
    slow = EM_A.phase_cost(STREAM, units, 4, penalty=1.5)
    assert slow.seconds == pytest.approx(1.5 * base.seconds)
    assert slow.flops == base.flops
    assert slow.mem_bytes == base.mem_bytes


def test_penalty_below_one_rejected():
    with pytest.raises(ValueError):
        EM_A.phase_cost(STREAM, 10, 1, penalty=0.5)


def test_latency_bound_factor_slows_memory():
    sparse = KernelModel(
        name="sparse",
        flops_per_unit=STREAM.flops_per_unit,
        simd_fraction=STREAM.simd_fraction,
        mem_bytes_per_unit=STREAM.mem_bytes_per_unit,
        l3_bytes_per_unit=STREAM.l3_bytes_per_unit,
        l2_bytes_per_unit=STREAM.l2_bytes_per_unit,
        working_set_bytes_per_unit=STREAM.working_set_bytes_per_unit,
        latency_bound_factor=2.0,
    )
    units = 50_000_000
    assert (
        EM_A.phase_cost(sparse, units, 1).seconds
        > 1.8 * EM_A.phase_cost(STREAM, units, 1).seconds
    )


def test_simd_fraction_controls_counters():
    c = EM_A.phase_cost(COMPUTE, 1000, 1)
    assert c.simd_flops == pytest.approx(c.flops * COMPUTE.simd_fraction)


def test_scalar_code_much_slower_than_simd():
    scalar = KernelModel(
        name="scalar",
        flops_per_unit=COMPUTE.flops_per_unit,
        simd_fraction=0.0,
        mem_bytes_per_unit=COMPUTE.mem_bytes_per_unit,
        l3_bytes_per_unit=COMPUTE.l3_bytes_per_unit,
        l2_bytes_per_unit=COMPUTE.l2_bytes_per_unit,
        working_set_bytes_per_unit=COMPUTE.working_set_bytes_per_unit,
        compute_efficiency=COMPUTE.compute_efficiency,
    )
    t_simd = EM_A.phase_cost(COMPUTE, 1000, 1).seconds
    t_scalar = EM_A.phase_cost(scalar, 1000, 1).seconds
    assert t_scalar > 5 * t_simd


@settings(max_examples=50)
@given(
    units=st.integers(min_value=1, max_value=10**9),
    ranks=st.integers(min_value=1, max_value=18),
)
def test_phase_cost_always_positive(units, ranks):
    c = EM_A.phase_cost(STREAM, units, ranks)
    assert c.seconds > 0
    assert c.flops == pytest.approx(STREAM.flops_per_unit * units)


@settings(max_examples=30)
@given(ranks=st.integers(min_value=1, max_value=18))
def test_phase_time_monotone_in_contention(ranks):
    units = 10_000_000
    t = EM_A.phase_cost(STREAM, units, ranks).seconds
    t_next = EM_A.phase_cost(STREAM, units, min(18, ranks + 1)).seconds
    assert t_next >= t - 1e-12


# --- classification & utilization ------------------------------------------------


def test_memory_bound_classification():
    assert EM_A.memory_bound(STREAM, ranks_in_domain=18)
    assert not EM_A.memory_bound(COMPUTE, ranks_in_domain=18)


def test_utilization_low_for_memory_bound():
    u = EM_A.compute_utilization(STREAM, 50_000_000, 18)
    assert u < 0.4


def test_utilization_one_for_compute_bound():
    u = EM_A.compute_utilization(COMPUTE, 1_000_000, 18)
    assert u == pytest.approx(1.0)


def test_phase_cost_addition_and_scaling():
    a = EM_A.phase_cost(STREAM, 1000, 1)
    b = EM_A.phase_cost(COMPUTE, 1000, 1)
    s = a + b
    assert s.seconds == pytest.approx(a.seconds + b.seconds)
    assert s.flops == pytest.approx(a.flops + b.flops)
    doubled = a.scaled(2.0)
    assert doubled.mem_bytes == pytest.approx(2 * a.mem_bytes)


def test_kernel_validation():
    with pytest.raises(ValueError):
        KernelModel("bad", -1, 0.5, 1, 1, 1, 1)
    with pytest.raises(ValueError):
        KernelModel("bad", 1, 1.5, 1, 1, 1, 1)
    with pytest.raises(ValueError):
        KernelModel("bad", 1, 0.5, 1, 1, 1, 1, compute_efficiency=0.0)
    with pytest.raises(ValueError):
        KernelModel("bad", 1, 0.5, 1, 1, 1, 1, heat=0.0)


def test_kernel_intensity():
    assert STREAM.intensity == pytest.approx(2.0 / 24.0)
    nomem = KernelModel("x", 10, 0.5, 0, 1, 1, 1)
    assert math.isinf(nomem.intensity)
