"""Tests for suite base machinery: decomposition, workloads, registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spechpc import (
    SUITE_ORDER,
    Workload,
    all_benchmarks,
    dims_create,
    get_benchmark,
    grid_coords,
    grid_rank,
    split_extent,
)


# --- dims_create ---------------------------------------------------------------


def test_dims_create_balanced():
    assert dims_create(12, 2) == (4, 3)
    assert dims_create(72, 2) == (9, 8)
    assert dims_create(64, 2) == (8, 8)
    assert dims_create(64, 3) == (4, 4, 4)


def test_dims_create_prime_degenerates_to_chain():
    assert dims_create(59, 2) == (59, 1)
    assert dims_create(13, 2) == (13, 1)


def test_dims_create_one():
    assert dims_create(1, 2) == (1, 1)
    assert dims_create(7, 1) == (7,)


@given(n=st.integers(min_value=1, max_value=2000), d=st.integers(min_value=1, max_value=4))
def test_dims_create_product_invariant(n, d):
    dims = dims_create(n, d)
    prod = 1
    for x in dims:
        prod *= x
    assert prod == n
    assert list(dims) == sorted(dims, reverse=True)


def test_dims_create_invalid():
    with pytest.raises(ValueError):
        dims_create(0, 2)
    with pytest.raises(ValueError):
        dims_create(4, 0)


# --- split_extent ---------------------------------------------------------------


@given(
    total=st.integers(min_value=1, max_value=10**6),
    parts=st.integers(min_value=1, max_value=500),
)
def test_split_extent_partitions_exactly(total, parts):
    chunks = [split_extent(total, parts, i) for i in range(parts)]
    assert sum(chunks) == total
    assert max(chunks) - min(chunks) <= 1


def test_split_extent_bounds():
    with pytest.raises(ValueError):
        split_extent(10, 3, 3)
    with pytest.raises(ValueError):
        split_extent(10, 3, -1)


# --- grid coords ------------------------------------------------------------------


@given(
    dims=st.tuples(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    )
)
def test_grid_rank_roundtrip(dims):
    total = dims[0] * dims[1] * dims[2]
    for rank in range(0, total, max(1, total // 17)):
        coords = grid_coords(rank, dims)
        assert grid_rank(coords, dims) == rank
        assert all(0 <= c < d for c, d in zip(coords, dims))


def test_grid_rank_out_of_range():
    with pytest.raises(ValueError):
        grid_rank((3, 0), (3, 2))


# --- workloads -------------------------------------------------------------------


def test_workload_validation():
    with pytest.raises(ValueError):
        Workload(suite="gigantic")
    with pytest.raises(ValueError):
        Workload(suite="tiny", steps=0)


def test_all_benchmarks_present_in_paper_order():
    names = [b.name for b in all_benchmarks()]
    assert names == list(SUITE_ORDER)
    assert len(names) == 9


def test_every_benchmark_has_tiny_and_small():
    for b in all_benchmarks():
        assert b.supports("tiny")
        assert b.supports("small")
        assert b.workload("tiny").suite == "tiny"


def test_get_benchmark_aliases():
    assert get_benchmark("sphexa").name == "sph-exa"
    assert get_benchmark("clvleaf").name == "cloverleaf"
    assert get_benchmark("miniswp").name == "minisweep"
    assert get_benchmark("LBM").name == "lbm"
    with pytest.raises(KeyError):
        get_benchmark("nonesuch")


def test_unknown_workload_raises():
    # soma is one of the three benchmarks without medium/large suites
    with pytest.raises(KeyError, match="medium"):
        get_benchmark("soma").workload("medium")


def test_table1_metadata():
    lbm = get_benchmark("lbm")
    assert lbm.info.language == "C"
    assert lbm.info.collective == "Barrier"
    assert get_benchmark("pot3d").info.language == "Fortran"
    assert get_benchmark("pot3d").info.loc == 495000
    assert get_benchmark("minisweep").info.collective == "-"
    assert get_benchmark("weather").info.collective == "-"
    for name in ("soma", "tealeaf", "cloverleaf", "pot3d", "sph-exa", "hpgmgfv"):
        assert get_benchmark(name).info.collective == "Allreduce"


def test_memory_bound_classification_matches_paper():
    memory_bound = {b.name for b in all_benchmarks() if b.info.memory_bound}
    assert memory_bound == {"tealeaf", "cloverleaf", "pot3d", "hpgmgfv"}


def test_table1_workload_parameters():
    assert get_benchmark("lbm").workload("tiny").params["nx"] == 4096
    assert get_benchmark("lbm").workload("small").params["ny"] == 48000
    assert get_benchmark("soma").workload("tiny").params["polymers"] == 14_000_000
    assert get_benchmark("tealeaf").workload("tiny").params["nx"] == 8192
    assert get_benchmark("cloverleaf").workload("small").params["nx"] == 61440
    assert get_benchmark("minisweep").workload("tiny").params["groups"] == 64
    assert get_benchmark("pot3d").workload("tiny").params["np"] == 1171
    assert get_benchmark("sph-exa").workload("tiny").params["particles"] == 210**3
    assert get_benchmark("hpgmgfv").workload("small").params["n_side"] == 1024
    assert get_benchmark("weather").workload("small").params["nx"] == 192000
