"""Tests for the validation subsystem: perturbation sanitizer,
cross-mode differential runner, and inline MPI invariants."""

import random

import pytest

from repro.des.simulator import Delay, Simulator
from repro.harness.runner import run
from repro.machine.registry import get_cluster
from repro.smpi.mailbox import ANY_SOURCE, Mailbox, RecvPost, SendArrival
from repro.spechpc.suite import get_benchmark
from repro.validate.differential import (
    REFERENCE_MODE,
    bandwidth_scheduler_differential,
    differential_run,
    flag_matrix,
)
from repro.validate.golden import fingerprint
from repro.validate.invariants import InvariantChecker, InvariantViolation
from repro.validate.perturb import _first_event_diff, sanitize


# --- the perturbation hooks actually perturb --------------------------------


def _dispatch_order(tie_seed, n=12):
    """Order in which n processes woken at the same timestamp run."""
    order = []
    sim = Simulator(fast_path=False, tie_seed=tie_seed)

    def mk(i):
        def body():
            yield Delay(1.0)
            order.append(i)

        return body

    for i in range(n):
        sim.spawn(f"p{i}", mk(i)())
    sim.run()
    return order


def test_simulator_tie_seed_reorders_same_time_events():
    identity = _dispatch_order(None)
    assert identity == list(range(12))  # unperturbed: insertion order
    orders = [_dispatch_order(seed) for seed in range(1, 6)]
    for order in orders:
        assert sorted(order) == list(range(12))  # a permutation, no loss
    assert any(order != identity for order in orders)  # ties really move
    assert _dispatch_order(3) == _dispatch_order(3)  # per-seed determinism


def test_simulator_tie_seed_never_crosses_timestamps():
    """Only *same-time* order is shuffled; causality is untouched."""
    events = []
    sim = Simulator(fast_path=False, tie_seed=7)

    def mk(i, delay):
        def body():
            yield Delay(delay)
            events.append((sim.now, i))

        return body

    for i in range(6):
        sim.spawn(f"p{i}", mk(i, 1.0 + (i % 3))())
    sim.run()
    times = [t for t, _ in events]
    assert times == sorted(times)
    assert {t for t in times} == {1.0, 2.0, 3.0}


def _arr(src, tag, t=0.0):
    return SendArrival(
        src=src, tag=tag, nbytes=8, arrival_time=t, rendezvous=False,
        intra_node=True,
    )


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "linear"])
def test_mailbox_shuffle_preserves_per_channel_fifo(indexed):
    """Same-channel messages match in send order under every shuffle."""
    for seed in range(8):
        mb = Mailbox(0, indexed=indexed, tie_shuffle=random.Random(seed))
        first, second = _arr(1, 7, t=1.0), _arr(1, 7, t=1.0)
        assert mb.deliver(first) is None
        assert mb.deliver(_arr(2, 7, t=1.0)) is None  # interloper channel
        assert mb.deliver(second) is None
        got1, _ = mb.post_recv(1, 7, now=1.0)
        got2, _ = mb.post_recv(1, 7, now=1.0)
        assert got1 is first and got2 is second


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "linear"])
def test_mailbox_shuffle_varies_cross_channel_ties(indexed):
    """A wildcard receive sees same-time cross-channel arrivals in an
    order that genuinely depends on the shuffle seed."""
    winners = set()
    for seed in range(16):
        mb = Mailbox(0, indexed=indexed, tie_shuffle=random.Random(seed))
        mb.deliver(_arr(1, 7, t=1.0))
        mb.deliver(_arr(2, 7, t=1.0))
        got, _ = mb.post_recv(ANY_SOURCE, 7, now=1.0)
        winners.add(got.src)
    assert winners == {1, 2}


def test_mailbox_shuffle_respects_arrival_time():
    """Shuffling never lets a later arrival beat an earlier one on a
    wildcard receive (only *ties* are legal freedom)."""
    for seed in range(8):
        mb = Mailbox(0, indexed=True, tie_shuffle=random.Random(seed))
        mb.deliver(_arr(1, 7, t=2.0))
        mb.deliver(_arr(2, 7, t=1.0))
        got, _ = mb.post_recv(ANY_SOURCE, 7, now=2.0)
        assert got.src == 2


# --- sanitizer ---------------------------------------------------------------


def test_sanitize_clean_benchmark_is_invariant():
    rep = sanitize("lbm", "A", 8, shuffles=5)
    assert rep.ok
    assert rep.shuffles == 5
    assert "invariant" in rep.summary()
    # the baseline is the production configuration
    base = run(get_benchmark("lbm"), get_cluster("A"), 8)
    assert fingerprint(base).digest == rep.baseline_digest


def test_perturbed_run_is_full_fidelity():
    r = run(get_benchmark("lbm"), get_cluster("A"), 8, perturb_seed=1)
    assert r.meta["fast_forward"] is False
    assert r.meta["perturb_seed"] == 1


def test_first_event_diff_reports_rank_and_time():
    class FakeTrace:
        def __init__(self, intervals):
            self.intervals = intervals

    class IV:
        def __init__(self, rank, t0, t1, kind):
            self.rank, self.t0, self.t1, self.kind = rank, t0, t1, kind

    a = FakeTrace([IV(0, 0.0, 1.0, "compute"), IV(1, 0.0, 2.0, "MPI_Wait")])
    b = FakeTrace([IV(0, 0.0, 1.0, "compute"), IV(1, 0.0, 2.5, "MPI_Wait")])
    msg = _first_event_diff(a, b)
    assert "rank=1" in msg and "2.5" in msg
    assert _first_event_diff(a, a) is None
    short = FakeTrace([IV(0, 0.0, 1.0, "compute")])
    assert "1 vs 2" in _first_event_diff(short, a)


def test_sanitize_rejects_bad_args():
    with pytest.raises(ValueError, match="shuffles"):
        sanitize("lbm", "A", 4, shuffles=0)


# --- differential ------------------------------------------------------------


def test_flag_matrix_shape():
    modes = flag_matrix()
    assert len(modes) == 24
    assert len(set(modes)) == 24
    assert modes[0] == REFERENCE_MODE
    labels = {m.label for m in modes}
    assert "heap+linear+nomemo+noff" in labels
    assert "fastpath+indexed+memo+ff" in labels
    assert "fastpath+indexed+memo+wf" in labels


def test_differential_run_conformant():
    rep = differential_run("soma", "A", 8, workers=False)
    assert rep.ok
    assert rep.modes == 24
    assert "conformant" in rep.summary()


def test_differential_run_workers_axis():
    rep = differential_run(
        "lbm", "A", 4, trace_diff=False, workers=True
    )
    assert rep.ok
    assert rep.modes == 25  # 24 engine modes + the workers=2 sweep


def test_bandwidth_scheduler_differential_clean():
    assert bandwidth_scheduler_differential(flows=48, seed=2) == []


# --- invariants --------------------------------------------------------------


def test_invariants_pass_on_real_run():
    r = run(get_benchmark("tealeaf"), get_cluster("A"), 8, invariants=True)
    summary = r.meta["invariants"]
    assert summary["sends"] == summary["matches"] > 0
    assert summary["collectives"] > 0
    assert summary["clock_checks"] > 0
    assert r.meta["fast_forward"] is False  # checker forces full fidelity


def test_invariants_bit_identical_to_unchecked_run():
    bench, cluster = get_benchmark("tealeaf"), get_cluster("A")
    plain = run(bench, cluster, 8)
    checked = run(bench, cluster, 8, invariants=True)
    assert fingerprint(plain) == fingerprint(checked)


def test_invariant_non_overtaking():
    c = InvariantChecker(2)
    first, second = _arr(0, 5), _arr(0, 5)
    c.on_send(first, 0, 1)
    c.on_send(second, 0, 1)
    post = RecvPost(src=0, tag=5, posted_time=0.0)
    with pytest.raises(InvariantViolation, match="non-overtaking"):
        c.on_match(second, post, 1, 1.0)


def test_invariant_conservation_unknown_message():
    c = InvariantChecker(2)
    with pytest.raises(InvariantViolation, match="conservation"):
        c.on_match(_arr(0, 5), RecvPost(0, 5, 0.0), 1, 1.0)


def test_invariant_wildcard_match_validity():
    c = InvariantChecker(2)
    a = _arr(0, 5)
    c.on_send(a, 0, 1)
    wrong_post = RecvPost(src=3, tag=5, posted_time=0.0)
    with pytest.raises(InvariantViolation, match="matching"):
        c.on_match(a, wrong_post, 1, 1.0)


def test_invariant_causality():
    c = InvariantChecker(2)
    a = _arr(0, 5, t=5.0)
    c.on_send(a, 0, 1)
    with pytest.raises(InvariantViolation, match="causality"):
        c.on_match(a, RecvPost(0, 5, 0.0), 1, 1.0)


def test_invariant_collective_sequence():
    c = InvariantChecker(2)
    c.on_collective(0, "MPI_Barrier", 0, 0.0)
    with pytest.raises(InvariantViolation, match="sequence"):
        c.on_collective(0, "MPI_Barrier", 5, 1.0)


def test_invariant_collective_completeness_at_finalize():
    c = InvariantChecker(2)
    c.on_collective(0, "MPI_Barrier", 0, 0.0)  # rank 1 never shows up
    with pytest.raises(InvariantViolation, match="completeness"):
        c.finalize(1.0)


def test_invariant_clock_monotonicity():
    c = InvariantChecker(1)
    c.on_clock(0, 1.0)
    with pytest.raises(InvariantViolation, match="clock"):
        c.on_clock(0, 0.5)


def test_invariant_clock_within_makespan():
    c = InvariantChecker(1)
    c.on_clock(0, 2.0)
    with pytest.raises(InvariantViolation, match="makespan"):
        c.finalize(1.0)


def test_invariant_unmatched_send_at_finalize():
    c = InvariantChecker(2)
    c.on_send(_arr(0, 5), 0, 1)
    with pytest.raises(InvariantViolation, match="never matched"):
        c.finalize(1.0)


def test_invariant_checker_composes_with_perturbation():
    """The sanitizer's shuffles stay MPI-legal: every perturbed schedule
    passes the conformance audit."""
    bench, cluster = get_benchmark("soma"), get_cluster("A")
    for seed in (1, 2, 3):
        r = run(bench, cluster, 8, perturb_seed=seed, invariants=True)
        assert r.meta["invariants"]["sends"] == r.meta["invariants"]["matches"]
