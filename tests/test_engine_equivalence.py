"""Differential tests for the paper-scale engine optimizations.

Every fast path added for paper-scale runs (indexed message matching,
virtual-clock bandwidth sharing, steady-state fast-forward, streaming
trace aggregation) ships with a reference mode; these tests drive both
implementations through the same randomized or benchmark workloads and
demand equivalent behavior — bitwise-equal where the contract is
bitwise (matching order, fast-forward statistics), order/value-equal
where the schedulers use different but equivalent arithmetic.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Simulator
from repro.des.resources import BandwidthResource
from repro.faults.plan import FaultPlan, SlowRank
from repro.harness import run
from repro.machine import CLUSTER_A
from repro.perfmon.trace import TraceCollector
from repro.smpi.mailbox import ANY_SOURCE, ANY_TAG, Mailbox, SendArrival
from repro.spechpc import get_benchmark


# --------------------------------------------------------------------------
# indexed vs. linear message matching
# --------------------------------------------------------------------------

# op: (is_post, src, tag) — src/tag -1 on a post means wildcard
_ops = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=-1, max_value=3),
        st.integers(min_value=-1, max_value=2),
    ),
    min_size=1,
    max_size=60,
)


def _drive(indexed: bool, ops) -> list:
    """Run one op sequence through a mailbox; return the match trace."""
    box = Mailbox(rank=0, indexed=indexed)
    trace = []
    for i, (is_post, src, tag) in enumerate(ops):
        if is_post:
            arr, _post = box.post_recv(src, tag, now=float(i))
            trace.append(("post", i, None if arr is None else arr.nbytes))
        else:
            # arrivals always carry a concrete source and tag
            arrival = SendArrival(
                src=max(src, 0), tag=max(tag, 0), nbytes=i,
                arrival_time=float(i), rendezvous=False, intra_node=True,
            )
            post = box.deliver(arrival)
            trace.append(
                ("deliver", i, None if post is None else post.posted_time)
            )
    trace.append(("left-arr", [a.nbytes for a in box.iter_arrivals()]))
    trace.append(("left-post", [p.posted_time for p in box.iter_posts()]))
    trace.append(("pending", box.pending_arrivals, box.pending_posts))
    return trace


@settings(max_examples=300, deadline=None)
@given(_ops)
def test_indexed_matcher_equals_linear_scan(ops):
    """Identical match pairs, in identical order, for any interleaving of
    posts (incl. ANY_SOURCE/ANY_TAG) and arrivals."""
    assert _drive(True, ops) == _drive(False, ops)


def test_wildcard_picks_earliest_arrival_across_keys():
    """A wildcard receive must take the earliest-stamped arrival even when
    several per-key queues are non-empty (the indexed matcher's scan)."""
    ops = [
        (False, 2, 1),           # arrival #0
        (False, 0, 0),           # arrival #1
        (False, 2, 1),           # arrival #2
        (True, ANY_SOURCE, ANY_TAG),   # must match arrival #0
        (True, ANY_SOURCE, 0),         # must match arrival #1
        (True, 2, ANY_TAG),            # must match arrival #2
    ]
    trace = _drive(True, ops)
    assert trace[3] == ("post", 3, 0)
    assert trace[4] == ("post", 4, 1)
    assert trace[5] == ("post", 5, 2)
    assert trace == _drive(False, ops)


def test_wildcard_posts_compete_by_stamp_order():
    """An arrival matching both a wildcard and an exact post must take the
    earlier-posted one, whichever shape it is."""
    ops = [
        (True, ANY_SOURCE, ANY_TAG),   # post @ t=0
        (True, 1, 0),                  # post @ t=1
        (False, 1, 0),                 # matches the wildcard (older stamp)
        (False, 1, 0),                 # then the exact post
    ]
    trace = _drive(True, ops)
    assert trace[2] == ("deliver", 2, 0.0)
    assert trace[3] == ("deliver", 3, 1.0)
    assert trace == _drive(False, ops)


# --------------------------------------------------------------------------
# virtual-clock vs. reference bandwidth sharing
# --------------------------------------------------------------------------

_flows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),    # start delay
        st.floats(min_value=0.1, max_value=100.0),  # amount
    ),
    min_size=1,
    max_size=12,
)


def _share(scheduler: str, flows) -> list[tuple[int, float]]:
    """Finish (flow_index, time) pairs in completion order."""
    sim = Simulator()
    res = BandwidthResource(sim, capacity=10.0, scheduler=scheduler)
    finished: list[tuple[int, float]] = []

    def user(i, start, amount):
        from repro.des import Delay

        if start > 0:
            yield Delay(start)
        yield res.transfer(amount)
        finished.append((i, sim.now))

    for i, (start, amount) in enumerate(flows):
        sim.spawn(f"flow{i}", user(i, start, amount))
    sim.run()
    return finished


@settings(max_examples=150, deadline=None)
@given(_flows)
def test_virtual_clock_matches_reference_sharing(flows):
    """Same completion order and (to float noise) same completion times
    for arbitrary overlapping flow sets."""
    vc = _share("virtual-clock", flows)
    ref = _share("reference", flows)
    assert [i for i, _ in vc] == [i for i, _ in ref]
    for (_, t_vc), (_, t_ref) in zip(vc, ref):
        assert math.isclose(t_vc, t_ref, rel_tol=1e-9, abs_tol=1e-9)


def test_bandwidth_epoch_guard_ignores_stale_callbacks():
    """A rebalance between scheduling and firing a completion must void
    the stale callback (epoch token, not float time comparison)."""
    sim = Simulator()
    res = BandwidthResource(sim, capacity=1.0)
    done = []

    def first():
        yield res.transfer(1.0)
        done.append(("first", sim.now))

    def second():
        from repro.des import Delay

        yield Delay(0.5)           # rebalances mid-flight of ``first``
        yield res.transfer(1.0)
        done.append(("second", sim.now))

    sim.spawn("a", first())
    sim.spawn("b", second())
    sim.run()
    # fair sharing: first gets 0.5 exclusive + shares until 1.5, second
    # finishes its remaining 0.5 exclusively at 2.0
    assert done[0][0] == "first" and math.isclose(done[0][1], 1.5)
    assert done[1][0] == "second" and math.isclose(done[1][1], 2.0)


# --------------------------------------------------------------------------
# steady-state fast-forward
# --------------------------------------------------------------------------

_REF = dict(fast_forward=False, matcher="linear", fast_path=False, memoize=False)


def _fields(r):
    return (r.elapsed, r.sim_elapsed, r.counters, r.time_by_kind, r.energy)


@pytest.mark.parametrize("name", ["lbm", "tealeaf", "cloverleaf"])
def test_fast_forward_engages_bit_identical(name):
    bench = get_benchmark(name)
    fast = run(bench, CLUSTER_A, 24, sim_steps=10)
    ref = run(bench, CLUSTER_A, 24, sim_steps=10, **_REF)
    assert fast.meta["fast_forward"] is True
    assert ref.meta["fast_forward"] is False
    assert _fields(fast) == _fields(ref)


def test_fast_forward_ineligible_structure_falls_back():
    """minisweep has no collective, so step boundaries never synchronize:
    the *synchronized* tier must decline (wavefront disabled) and the run
    stays bit-identical; with the wavefront tier allowed (the default)
    the same structure engages and is still bit-identical."""
    bench = get_benchmark("minisweep")
    sync_only = run(bench, CLUSTER_A, 12, sim_steps=6, wavefront=False)
    ref = run(bench, CLUSTER_A, 12, sim_steps=6, **_REF)
    assert sync_only.meta["fast_forward"] is False
    assert _fields(sync_only) == _fields(ref)
    wf = run(bench, CLUSTER_A, 12, sim_steps=6)
    assert wf.meta["wavefront"] is True
    assert _fields(wf) == _fields(ref)


@pytest.mark.parametrize(
    "flags",
    [
        dict(fast_forward=False),
        dict(matcher="linear"),
        dict(fast_path=False),
        dict(memoize=False),
    ],
    ids=lambda f: next(iter(f)),
)
def test_reference_flags_independently_bit_identical(flags):
    """Each reference flag alone restores the old code path and must not
    change a single bit of the result."""
    bench = get_benchmark("lbm")
    fast = run(bench, CLUSTER_A, 24, sim_steps=10)
    ref = run(bench, CLUSTER_A, 24, sim_steps=10, **flags)
    assert _fields(fast) == _fields(ref)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(noise_sigma=0.02),
        dict(trace=True),
        dict(trace="streaming"),
        dict(memoize=False),
        dict(sim_steps=4),
        dict(faults=FaultPlan(slow_ranks=(SlowRank(rank=1, factor=2.0),))),
    ],
    ids=["noise", "trace", "streaming-trace", "no-memoize", "short", "faults"],
)
def test_fast_forward_forced_off(kwargs):
    """Anything that perturbs or observes individual steps forces full
    event-level fidelity."""
    kwargs.setdefault("sim_steps", 8)
    r = run(get_benchmark("lbm"), CLUSTER_A, 12, **kwargs)
    assert r.meta["fast_forward"] is False


def test_fast_forward_noisy_run_unchanged_by_flag():
    """With noise the flag is inert: identical results either way."""
    bench = get_benchmark("lbm")
    a = run(bench, CLUSTER_A, 12, sim_steps=8, noise_sigma=0.02, seed=7)
    b = run(bench, CLUSTER_A, 12, sim_steps=8, noise_sigma=0.02, seed=7,
            fast_forward=False)
    assert _fields(a) == _fields(b)


# --------------------------------------------------------------------------
# streaming trace collection
# --------------------------------------------------------------------------

def test_streaming_trace_aggregates_exactly():
    bench = get_benchmark("lbm")
    full = run(bench, CLUSTER_A, 12, sim_steps=4, trace=True)
    stream = run(bench, CLUSTER_A, 12, sim_steps=4, trace="streaming")
    tf, ts = full.trace, stream.trace
    assert ts.streaming and not tf.streaming
    assert len(ts) == len(tf)                      # every interval counted
    assert ts.intervals == ()                      # but none retained
    assert ts.span() == tf.span()
    assert ts.time_by_kind() == tf.time_by_kind()
    for rank in range(12):
        assert ts.time_by_kind(rank) == tf.time_by_kind(rank)
    assert ts.fractions() == tf.fractions()
    assert ts.dominant_mpi_kind() == tf.dominant_mpi_kind()
    # simulation outcome is unaffected by the collection mode
    assert _fields(full) == _fields(stream)


def test_streaming_ascii_timeline_degrades_gracefully():
    stream = run(get_benchmark("lbm"), CLUSTER_A, 8, sim_steps=3,
                 trace="streaming").trace
    art = stream.ascii_timeline()
    assert "aggregated" in art and "%" in art      # summary, not a crash


def test_streaming_ring_keeps_tail():
    tc = TraceCollector(streaming=True, ring=3)
    for i in range(7):
        tc.record(rank=i % 2, t0=float(i), t1=float(i + 1), kind="compute")
    assert len(tc) == 7
    assert [iv.t0 for iv in tc.intervals] == [4.0, 5.0, 6.0]
    assert [iv.t0 for iv in tc.for_rank(0)] == [4.0, 6.0]
    art = tc.ascii_timeline()
    assert "3 most recent" in art and "7" in art
    # aggregates still cover all recorded intervals
    assert tc.time_by_kind() == {"compute": 7.0}
    assert tc.span() == (0.0, 7.0)


def test_for_rank_uses_per_rank_index():
    tc = TraceCollector()
    tc.record(rank=1, t0=2.0, t1=3.0, kind="compute")
    tc.record(rank=0, t0=0.0, t1=1.0, kind="MPI_Send")
    tc.record(rank=1, t0=0.5, t1=1.0, kind="MPI_Recv")
    ivs = tc.for_rank(1)
    assert [iv.t0 for iv in ivs] == [0.5, 2.0]     # sorted by start
    assert tc.for_rank(2) == []
    assert tc.time_by_kind(0) == {"MPI_Send": 1.0}
