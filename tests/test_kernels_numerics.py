"""Validation tests for the executable NumPy mini-kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spechpc.kernels import (
    LbmD2Q9,
    PolymerSystem,
    advect_2d,
    cg_solve,
    cubic_lattice,
    gaussian_blob,
    heat_conduction_step,
    laplacian_5pt,
    hydro_step,
    sod_initial_state,
    solve_laplace_spherical,
    sph_density,
    sph_forces,
    transport_sweep,
)
from repro.spechpc.kernels.fv_weather import injection_scenario
from repro.spechpc.kernels.multigrid import poisson_residual, solve_poisson, v_cycle
from repro.spechpc.kernels.sweep import sweep_residual


# --- tealeaf: CG heat conduction ------------------------------------------------


def test_cg_solves_spd_system():
    rng = np.random.default_rng(0)
    m = rng.random((20, 20))
    a = m @ m.T + 20 * np.eye(20)
    b = rng.random(20)
    x, iters, res = cg_solve(lambda v: a @ v, b, tol=1e-12)
    assert np.allclose(a @ x, b, atol=1e-8)
    assert iters <= 20 + 1


def test_cg_rejects_indefinite_operator():
    with pytest.raises(RuntimeError, match="positive definite"):
        cg_solve(lambda v: -v, np.ones(4))


def test_heat_step_conserves_energy():
    u = np.zeros((24, 24))
    u[8:16, 8:16] = 3.0
    u2, _ = heat_conduction_step(u, dt=0.25)
    assert u2.sum() == pytest.approx(u.sum(), rel=1e-10)


def test_heat_step_smooths_peaks():
    u = np.zeros((24, 24))
    u[12, 12] = 1.0
    u2, _ = heat_conduction_step(u, dt=1.0)
    assert u2.max() < u.max()
    assert u2.min() >= -1e-10


def test_heat_uniform_field_is_fixed_point():
    u = np.full((16, 16), 2.5)
    u2, iters = heat_conduction_step(u, dt=0.7)
    assert np.allclose(u2, u)


def test_variable_conductivity_shape_checked():
    u = np.zeros((8, 8))
    with pytest.raises(ValueError):
        heat_conduction_step(u, 0.1, conductivity=np.ones((4, 4)))


def test_laplacian_zero_flux_rows_sum_zero():
    """Neumann: the operator conserves the mean (row sums of A are 0)."""
    rng = np.random.default_rng(1)
    u = rng.random((12, 12))
    kx = np.ones((12, 13))
    ky = np.ones((13, 12))
    assert laplacian_5pt(u, kx, ky).sum() == pytest.approx(0.0, abs=1e-10)


@settings(max_examples=20, deadline=None)
@given(dt=st.floats(min_value=0.01, max_value=2.0))
def test_heat_conservation_property(dt):
    rng = np.random.default_rng(7)
    u = rng.random((12, 12))
    u2, _ = heat_conduction_step(u, dt=dt)
    assert u2.sum() == pytest.approx(u.sum(), rel=1e-9)


# --- lbm ---------------------------------------------------------------------------


def test_lbm_mass_conservation():
    lbm = LbmD2Q9(24, 24)
    lbm.taylor_green_init()
    m0 = lbm.total_mass()
    lbm.step(40)
    assert lbm.total_mass() == pytest.approx(m0, rel=1e-12)


def test_lbm_taylor_green_decay_rate():
    """KE of the Taylor-Green vortex decays ~exp(-4 nu k^2 t)."""
    lbm = LbmD2Q9(48, 48, tau=0.8)
    lbm.taylor_green_init(u0=0.01)
    e0 = lbm.kinetic_energy()
    steps = 200
    lbm.step(steps)
    e1 = lbm.kinetic_energy()
    k = 2 * np.pi / 48
    expected = np.exp(-4 * lbm.viscosity * k**2 * steps)
    assert e1 / e0 == pytest.approx(expected, rel=0.05)


def test_lbm_equilibrium_is_steady():
    lbm = LbmD2Q9(16, 16)
    rho0, ux0, uy0 = lbm.macroscopic()
    lbm.step(10)
    rho1, ux1, uy1 = lbm.macroscopic()
    assert np.allclose(rho0, rho1)
    assert np.allclose(ux1, 0.0, atol=1e-12)


def test_lbm_validation_checks():
    with pytest.raises(ValueError):
        LbmD2Q9(2, 2)
    with pytest.raises(ValueError):
        LbmD2Q9(16, 16, tau=0.5)


# --- cloverleaf: hydro ---------------------------------------------------------------


def test_hydro_conservation():
    s = sod_initial_state(96)
    t0 = s.totals()
    for _ in range(25):
        s, _ = hydro_step(s, 1.0 / 96)
    for a, b in zip(s.totals(), t0):
        assert a == pytest.approx(b, abs=1e-9)


def test_hydro_sod_shock_structure():
    """After the diaphragm breaks, a right-moving shock raises the
    density in the initially low-density half."""
    n = 256
    s = sod_initial_state(n)
    t = 0.0
    while t < 0.12:
        s, dt = hydro_step(s, 1.0 / n)
        t += dt
    right = s.rho[0, n // 2 : int(0.85 * n)]
    assert right.max() > 0.2           # compressed above initial 0.125
    assert s.rho.min() > 0.0
    # pressure stays between the initial extremes
    p = s.pressure()
    assert p.max() <= 1.0 + 1e-6


def test_hydro_uniform_state_is_steady():
    ny, nx = 8, 8
    s = sod_initial_state(nx, ny)
    s.rho[:] = 1.0
    s.energy[:] = 2.5
    s2, _ = hydro_step(s, 0.01)
    assert np.allclose(s2.rho, 1.0)
    assert np.allclose(s2.mom_x, 0.0, atol=1e-12)


def test_hydro_rejects_negative_density():
    with pytest.raises(ValueError):
        from repro.spechpc.kernels.hydro import HydroState

        HydroState(
            np.full((4, 4), -1.0),
            np.zeros((4, 4)),
            np.zeros((4, 4)),
            np.ones((4, 4)),
        )


# --- minisweep: transport sweep -------------------------------------------------------


@pytest.mark.parametrize(
    "direction",
    [(1, 1, 1), (-1, 1, 1), (1, -1, 1), (1, 1, -1), (-1, -1, -1)],
)
def test_sweep_satisfies_transport_equation(direction):
    rng = np.random.default_rng(3)
    q = rng.random((9, 8, 7))
    psi = transport_sweep(q, sigma=1.5, direction=direction)
    assert sweep_residual(psi, q, 1.5, direction) < 1e-12


def test_sweep_positivity():
    """Positive source + positive inflow -> positive flux everywhere."""
    q = np.ones((6, 6, 6))
    psi = transport_sweep(q, sigma=2.0, inflow=0.5)
    assert (psi > 0).all()


def test_sweep_uniform_limit():
    """For an infinite uniform medium psi -> q / sigma; deep inside the
    grid the sweep approaches that limit."""
    q = np.full((30, 30, 30), 2.0)
    sigma = 1.0
    psi = transport_sweep(q, sigma=sigma, inflow=2.0 / sigma)
    assert psi[-1, -1, -1] == pytest.approx(2.0 / sigma, rel=1e-6)


def test_sweep_validation():
    q = np.ones((4, 4, 4))
    with pytest.raises(ValueError):
        transport_sweep(q, sigma=0.0)
    with pytest.raises(ValueError):
        transport_sweep(q, sigma=1.0, direction=(1, 2, 1))
    with pytest.raises(ValueError):
        transport_sweep(np.ones((4, 4)), sigma=1.0)


# --- hpgmgfv: multigrid -----------------------------------------------------------------


def test_multigrid_contracts_residual():
    n, h = 63, 1.0 / 64
    x = np.linspace(h, 1 - h, n)
    f = 2 * np.pi**2 * np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
    u = np.zeros_like(f)
    r0 = np.linalg.norm(poisson_residual(u, f, h))
    u = v_cycle(u, f, h)
    r1 = np.linalg.norm(poisson_residual(u, f, h))
    assert r1 < 0.25 * r0  # textbook V-cycle contraction


def test_multigrid_solves_poisson_to_discretization_error():
    n, h = 63, 1.0 / 64
    x = np.linspace(h, 1 - h, n)
    exact = np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
    f = 2 * np.pi**2 * exact
    u, hist = solve_poisson(f, h, cycles=15)
    assert np.abs(u - exact).max() < 5e-4
    assert hist[-1] < 1e-6 * hist[0]


def test_multigrid_contraction_grid_independent():
    rates = []
    for n in (31, 63):
        h = 1.0 / (n + 1)
        rng = np.random.default_rng(5)
        f = rng.random((n, n))
        u = np.zeros_like(f)
        r0 = np.linalg.norm(poisson_residual(u, f, h))
        u = v_cycle(u, f, h)
        u2 = v_cycle(u, f, h)
        r2 = np.linalg.norm(poisson_residual(u2, f, h))
        rates.append((r2 / r0) ** 0.5)
    assert abs(rates[0] - rates[1]) < 0.15


# --- sph-exa ----------------------------------------------------------------------------


def test_sph_uniform_lattice_density():
    pos = cubic_lattice(6)
    rho = sph_density(pos, mass=1.0, h=2.2, box=6.0)
    assert rho.std() / rho.mean() < 1e-10
    assert rho.mean() == pytest.approx(1.0, rel=0.05)  # ~1 particle/volume


def test_sph_forces_conserve_momentum():
    rng = np.random.default_rng(11)
    pos = cubic_lattice(5) + 0.05 * rng.standard_normal((125, 3))
    rho = sph_density(pos, 1.0, 2.0, box=5.0)
    p = rho**1.4
    acc = sph_forces(pos, rho, p, 1.0, 2.0, box=5.0)
    assert np.abs(acc.sum(axis=0)).max() < 1e-9


def test_sph_perturbed_particle_pushed_back():
    """A particle squeezed toward a neighbor feels a repulsive pressure
    force along the separation axis."""
    pos = cubic_lattice(4).astype(float)
    pos[0, 0] += 0.4  # push particle 0 toward its +x neighbor
    rho = sph_density(pos, 1.0, 1.8, box=4.0)
    p = np.full_like(rho, 1.0)
    acc = sph_forces(pos, rho, p, 1.0, 1.8, box=4.0)
    assert acc[0, 0] < 0  # pushed back in -x


def test_cubic_lattice_validation():
    with pytest.raises(ValueError):
        cubic_lattice(1)


# --- soma: MC polymers -------------------------------------------------------------------


def test_polymer_acceptance_in_sane_band():
    ps = PolymerSystem(100, 12, seed=1)
    for _ in range(20):
        ps.mc_sweep()
    assert 0.3 < ps.acceptance_ratio < 0.95


def test_polymer_bond_statistics_match_theory():
    """Equilibrium <b^2> of harmonic bonds = 3/k (detailed balance)."""
    ps = PolymerSystem(300, 12, bond_k=2.0, seed=2)
    for _ in range(80):
        ps.mc_sweep()
    samples = []
    for _ in range(40):
        ps.mc_sweep()
        samples.append(ps.mean_squared_bond())
    assert np.mean(samples) == pytest.approx(ps.theoretical_msd_bond(), rel=0.1)


def test_polymer_density_field_counts_all_monomers():
    ps = PolymerSystem(50, 8, seed=3)
    ps.mc_sweep()
    assert ps.density_field().sum() == 50 * 8


def test_polymer_validation():
    with pytest.raises(ValueError):
        PolymerSystem(0, 8)
    with pytest.raises(ValueError):
        PolymerSystem(5, 1)


def test_polymer_reproducible_by_seed():
    a = PolymerSystem(20, 6, seed=9)
    b = PolymerSystem(20, 6, seed=9)
    a.mc_sweep()
    b.mc_sweep()
    assert np.array_equal(a.pos, b.pos)


# --- weather: FV advection ------------------------------------------------------------------


def test_advection_conserves_tracer():
    q0 = gaussian_blob(48, 48)
    q = q0.copy()
    for _ in range(30):
        q = advect_2d(q, 1.0, -0.5, 1 / 48, 1 / 48, 0.005)
    assert q.sum() == pytest.approx(q0.sum(), rel=1e-12)


def test_advection_no_new_extrema():
    """The MC limiter keeps the scheme monotone."""
    q0 = gaussian_blob(48, 48)
    q = q0.copy()
    for _ in range(50):
        q = advect_2d(q, 0.7, 0.7, 1 / 48, 1 / 48, 0.008)
    assert q.max() <= q0.max() + 1e-12
    assert q.min() >= q0.min() - 1e-12


def test_advection_translates_blob():
    """Constant wind moves the tracer's center of mass at wind speed."""
    nx = nz = 64
    q0 = gaussian_blob(nx, nz, x0=0.3, z0=0.5, width=0.08)
    dt = 0.004
    steps = 25
    q = q0.copy()
    for _ in range(steps):
        q = advect_2d(q, 1.0, 0.0, 1 / nx, 1 / nz, dt)
    x = (np.arange(nx) + 0.5) / nx
    com0 = (q0.sum(axis=0) * x).sum() / q0.sum()
    com1 = (q.sum(axis=0) * x).sum() / q.sum()
    assert com1 - com0 == pytest.approx(steps * dt * 1.0, abs=2e-3)


def test_advection_cfl_guard():
    q = gaussian_blob(16, 16)
    with pytest.raises(ValueError, match="CFL"):
        advect_2d(q, 10.0, 0.0, 1 / 16, 1 / 16, 0.1)


def test_injection_scenario_runs():
    q0, q = injection_scenario(32, 32, steps=10)
    assert q.shape == q0.shape
    assert q.sum() == pytest.approx(q0.sum(), rel=1e-12)


# --- pot3d: spherical Laplace -----------------------------------------------------------------


def test_spherical_laplace_matches_analytic_harmonic():
    u, exact, iters = solve_laplace_spherical(24, 24)
    assert np.abs(u - exact).max() < 2e-3
    assert iters < 5000


def test_spherical_laplace_second_order_convergence():
    e1 = np.abs(np.subtract(*solve_laplace_spherical(16, 16)[:2])).max()
    e2 = np.abs(np.subtract(*solve_laplace_spherical(32, 32)[:2])).max()
    assert e1 / e2 > 3.0  # ~4x for 2nd order


def test_spherical_grid_validation():
    from repro.spechpc.kernels.laplace_sph import SphericalGrid

    with pytest.raises(ValueError):
        SphericalGrid(2, 2)
    with pytest.raises(ValueError):
        SphericalGrid(8, 8, theta_min=-0.1)
