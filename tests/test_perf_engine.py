"""Performance-engine tests: DES fast path, memoization, parallel harness.

The optimizations must be invisible in the results: every test here pins
the optimized paths (run-queue fast path, phase-cost memoization, process
-pool sweeps, repeat deduplication) against the reference flavors
(``fast_path=False``, ``memoize=False``, ``workers=1``,
``reuse_identical_repeats=False``) and demands *bit-identical* output.
"""

import pickle

import pytest

from repro.des import Delay, Signal, SimStats, Simulator, Wait
from repro.harness import RunSpec, run, run_many, scaling_sweep
from repro.harness.parallel import execute
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.model.execution import ExecutionModel, MemoizedExecutionModel
from repro.model.kernel import KernelModel
from repro.spechpc import get_benchmark

ALL_BENCH_NAMES = (
    "lbm", "soma", "tealeaf", "cloverleaf", "minisweep",
    "pot3d", "sph-exa", "hpgmgfv", "weather",
)


# --- DES fast path ----------------------------------------------------------


def _fanout_scenario(fast_path):
    """Signal fan-out + mixed delays: heavy same-timestamp traffic."""
    sim = Simulator(fast_path=fast_path)
    log = []
    gate = Signal("gate")

    def waiter(i):
        v = yield Wait(gate)
        log.append(("woke", i, v, sim.now))
        yield Delay(0.25 if i % 2 else 0.5)
        log.append(("done", i, sim.now))

    def firer():
        yield Delay(1.0)
        log.append(("firing", sim.now))
        gate.fire("go")
        yield Delay(0.25)
        log.append(("firer-done", sim.now))

    def ticker():
        for k in range(4):
            yield Delay(0.5)
            log.append(("tick", k, sim.now))

    for i in range(5):
        sim.spawn(f"w{i}", waiter(i))
    sim.spawn("firer", firer())
    sim.spawn("ticker", ticker())
    end = sim.run()
    return log, end, sim.stats


def test_fast_path_event_order_matches_pure_heap():
    fast_log, fast_end, fast_stats = _fanout_scenario(True)
    ref_log, ref_end, ref_stats = _fanout_scenario(False)
    assert fast_log == ref_log
    assert fast_end == ref_end
    # the fast engine actually took the run-queue (spawns + signal fan-out)
    assert fast_stats.runq_events > 0
    assert ref_stats.runq_events == 0
    assert fast_stats.heap_pushes < ref_stats.heap_pushes
    # same number of dispatched events either way
    assert fast_stats.events == ref_stats.events


def _epsilon_past_callback_scenario(fast_path):
    """A call_at epsilon before ``now`` must beat current-time runq entries.

    ``call_at`` tolerates times up to 1e-15 in the past; such an event has
    ``time < now``, so the pure-heap engine runs it before any
    current-time event regardless of insertion counter — even one that
    landed on the run-queue earlier.
    """
    sim = Simulator(fast_path=fast_path)
    log = []
    gate = Signal("gate")

    def waiter():
        yield Wait(gate)
        log.append("waiter")

    def driver():
        yield Delay(1.0)
        gate.fire(None)  # waiter -> runq (fast path), smaller counter
        sim.call_at(sim.now - 5e-16, lambda: log.append("callback"))

    sim.spawn("waiter", waiter())
    sim.spawn("driver", driver())
    sim.run()
    return log


def test_epsilon_past_callback_beats_current_time_runq():
    fast = _epsilon_past_callback_scenario(True)
    ref = _epsilon_past_callback_scenario(False)
    assert fast == ref == ["callback", "waiter"]


@pytest.mark.parametrize("fast_path", [True, False])
def test_zero_delay_semantics(fast_path):
    def body(n):
        total = 0
        for _ in range(n):
            yield Delay(0.0)
            total += 1
        yield Delay(1.0)
        return total

    sim = Simulator(fast_path=fast_path)
    proc = sim.spawn("z", body(10))
    end = sim.run()
    assert end == 1.0
    assert proc.result == 10
    if fast_path:
        assert sim.stats.zero_delay_continues == 10
    else:
        assert sim.stats.zero_delay_continues == 0


def _zero_delay_contention_scenario(fast_path):
    """One signal wakes two waiters; the first yields Delay(0).

    The pure-heap engine re-queues the Delay(0) continuation behind the
    second waiter (already scheduled at the same timestamp), so the log
    must be [b-woke, c-woke, b-after-zero-delay] — an in-place continue
    here would jump the queue.
    """
    sim = Simulator(fast_path=fast_path)
    log = []
    gate = Signal("gate")

    def b():
        yield Wait(gate)
        log.append("b-woke")
        yield Delay(0.0)
        log.append("b-after-zero-delay")

    def c():
        yield Wait(gate)
        log.append("c-woke")
        yield Delay(0.0)
        log.append("c-after-zero-delay")

    def firer():
        yield Delay(1.0)
        gate.fire("go")

    sim.spawn("b", b())
    sim.spawn("c", c())
    sim.spawn("firer", firer())
    end = sim.run()
    return log, end


def test_zero_delay_under_contention_matches_pure_heap():
    fast_log, fast_end = _zero_delay_contention_scenario(True)
    ref_log, ref_end = _zero_delay_contention_scenario(False)
    assert fast_log == ref_log
    assert fast_end == ref_end
    assert ref_log == [
        "b-woke", "c-woke", "b-after-zero-delay", "c-after-zero-delay",
    ]


@pytest.mark.parametrize("fast_path", [True, False])
def test_run_until_preserves_fifo_across_pause(fast_path):
    # Two processes wake at the same timestamp; pausing in between used to
    # re-push the popped event with a *fresh* counter, demoting it behind
    # its same-time peer and flipping the FIFO order after resume.
    sim = Simulator(fast_path=fast_path)
    order = []

    def worker(name):
        yield Delay(2.0)
        order.append(name)

    sim.spawn("first", worker("first"))
    sim.spawn("second", worker("second"))
    assert sim.run(until=1.0) == 1.0
    assert sim.now == 1.0
    assert order == []
    sim.run()
    assert order == ["first", "second"]


def test_simulator_stats_exposed():
    sim = Simulator()
    assert isinstance(sim.stats, SimStats)

    def body():
        yield Delay(1.0)

    sim.spawn("p", body())
    sim.run()
    d = sim.stats.as_dict()
    assert d["events"] > 0
    assert set(d) == {
        "events", "heap_pushes", "heap_pops", "runq_events",
        "zero_delay_continues", "peak_heap_size",
    }


# --- phase-cost memoization -------------------------------------------------


class _CountingModel:
    """Delegating wrapper that counts phase_cost evaluations."""

    def __init__(self, base):
        self._base = base
        self.calls = 0

    def phase_cost(self, *args, **kwargs):
        self.calls += 1
        return self._base.phase_cost(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._base, name)


def test_memoized_model_caches_by_value():
    counting = _CountingModel(ExecutionModel(CLUSTER_A.node.cpu))
    model = MemoizedExecutionModel(counting)
    def make_kernel():
        return KernelModel(
            name="k", flops_per_unit=100.0, simd_fraction=0.8,
            mem_bytes_per_unit=64.0, l3_bytes_per_unit=96.0,
            l2_bytes_per_unit=128.0, working_set_bytes_per_unit=24.0,
        )

    # an equal-by-value but distinct kernel object must hit the cache
    k1, k2 = make_kernel(), make_kernel()
    assert k1 is not k2
    c1 = model.phase_cost(k1, 1e6, 4)
    c2 = model.phase_cost(k2, 1e6, 4)
    assert counting.calls == 1
    assert model.cache_size == 1
    assert c1 == c2
    # different occupancy is a different key
    model.phase_cost(k1, 1e6, 8)
    assert counting.calls == 2
    # non-phase_cost attributes delegate to the wrapped model
    assert model.saturation_cores() == counting.saturation_cores()


@pytest.mark.parametrize("bench_name", ALL_BENCH_NAMES)
def test_optimized_run_bit_identical(bench_name):
    """Fast path + memoization must not change a single output bit."""
    bench = get_benchmark(bench_name)
    for cluster, nprocs in ((CLUSTER_A, 1), (CLUSTER_A, 13), (CLUSTER_B, 7)):
        fast = run(bench, cluster, nprocs)
        ref = run(bench, cluster, nprocs, fast_path=False, memoize=False)
        assert fast == ref


def test_optimized_run_bit_identical_with_noise():
    # noise is applied post-pricing (stretched_cost), so cached costs stay
    # noise-free and the jittered results still match exactly
    bench = get_benchmark("tealeaf")
    fast = run(bench, CLUSTER_A, 18, noise_sigma=0.02, seed=42)
    ref = run(bench, CLUSTER_A, 18, noise_sigma=0.02, seed=42,
              fast_path=False, memoize=False)
    assert fast == ref


def test_optimized_run_bit_identical_hybrid():
    # memoization wraps *outside* the hybrid repricing proxy
    bench = get_benchmark("tealeaf")
    fast = run(bench, CLUSTER_A, 6, threads_per_rank=3)
    ref = run(bench, CLUSTER_A, 6, threads_per_rank=3,
              fast_path=False, memoize=False)
    assert fast == ref


# --- parallel sweep harness -------------------------------------------------


def test_parallel_sweep_matches_serial():
    bench = get_benchmark("soma")
    kwargs = dict(
        suite="tiny", repeats=2, noise_sigma=0.01, proc_counts=[1, 3, 6],
    )
    serial = scaling_sweep(bench, CLUSTER_A, workers=1, **kwargs)
    fanned = scaling_sweep(bench, CLUSTER_A, workers=2, **kwargs)
    assert serial == fanned


def test_repeat_dedup_matches_full_repeats():
    bench = get_benchmark("tealeaf")
    kwargs = dict(suite="tiny", repeats=3, noise_sigma=0.0, proc_counts=[1, 4])
    dedup = scaling_sweep(bench, CLUSTER_A, **kwargs)
    full = scaling_sweep(
        bench, CLUSTER_A, reuse_identical_repeats=False, **kwargs
    )
    assert dedup == full
    # the dedup path really does replicate: repeats share everything but
    # carry the seed each repeat would have used
    point = dedup.points[0]
    assert len(point.runs) == 3
    assert [r.meta["seed"] for r in point.runs] == [1000, 1001, 1002]


def test_run_many_rejects_trace_with_workers():
    spec = RunSpec(get_benchmark("soma"), CLUSTER_A, 2, trace=True)
    with pytest.raises(ValueError, match="trace"):
        run_many([spec, spec], workers=2)
    # serial traced runs stay allowed
    (result,) = run_many([spec], workers=1)
    assert result.trace is not None


def test_run_many_rejects_bad_worker_count():
    spec = RunSpec(get_benchmark("soma"), CLUSTER_A, 1)
    with pytest.raises(ValueError, match="workers"):
        run_many([spec], workers=0)


def test_run_spec_execute_equals_direct_run():
    spec = RunSpec(
        get_benchmark("pot3d"), CLUSTER_B, 5, noise_sigma=0.01, seed=7,
    )
    assert execute(spec) == run(
        get_benchmark("pot3d"), CLUSTER_B, 5, noise_sigma=0.01, seed=7,
    )


def test_results_pickle_roundtrip():
    # RunResult and its EnergyReading must survive the process boundary
    result = run(get_benchmark("tealeaf"), CLUSTER_A, 4)
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    assert clone.energy == result.energy
    assert clone.gflops == result.gflops


def test_runner_reports_benchmark_on_empty_stats(monkeypatch):
    # A degenerate runtime that records no rank statistics must produce a
    # clear error naming the benchmark, not an IndexError on stats[0].
    from repro.harness import runner as runner_mod

    class _EmptyRuntime(runner_mod.MpiRuntime):
        def launch(self, body_factory, **kwargs):
            job = super().launch(body_factory, **kwargs)
            job.stats.clear()
            return job

    monkeypatch.setattr(runner_mod, "MpiRuntime", _EmptyRuntime)
    with pytest.raises(RuntimeError, match="tealeaf"):
        run(get_benchmark("tealeaf"), CLUSTER_A, 2)
