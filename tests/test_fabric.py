"""Fabric chaos suite: framing, handshake, leases, heartbeats, worker
death, duplicate suppression, and manager-crash resume.

Every chaos scenario ends with the same assertion: the surviving sweep
is fingerprint-identical to an uninterrupted local run.  Subprocess
workers are real ``python -m repro worker`` processes; scripted workers
are raw sockets speaking just enough protocol to misbehave on cue.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import replace

import pytest

from repro.harness import (
    FailedRun,
    RunSpec,
    load_checkpoint,
    load_journal,
    run_many,
    spec_key,
)
from repro.harness.fabric import (
    FABRIC_PROTO,
    FabricExecutor,
    FrameError,
    recv_frame,
    send_frame,
    worker_loop,
)
from repro.machine import CLUSTER_A
from repro.spechpc import get_benchmark
from repro.validate.golden import fingerprint

from tests.test_robust_harness import QuickBenchmark, SleepyBenchmark

WORKER_ENV = dict(
    os.environ,
    PYTHONPATH=os.pathsep.join(
        [
            os.path.join(os.path.dirname(__file__), os.pardir, "src"),
            os.path.join(os.path.dirname(__file__), os.pardir),
        ]
    ),
)


def _specs(n=3, sleep=None):
    if sleep is not None:
        return [
            RunSpec(
                benchmark=SleepyBenchmark(sleep), cluster=CLUSTER_A,
                nprocs=k + 1, seed=1000 * (k + 1),
            )
            for k in range(n)
        ]
    b = get_benchmark("lbm")
    return [
        RunSpec(benchmark=b, cluster=CLUSTER_A, nprocs=k + 1, sim_steps=1,
                seed=1000 * (k + 1))
        for k in range(n)
    ]


def _wait(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


class ScriptedWorker:
    """A raw socket speaking just enough fabric protocol to misbehave."""

    def __init__(self, address, name="scripted", heartbeat=None):
        self.sock = socket.create_connection(address, timeout=5.0)
        send_frame(self.sock, {
            "type": "hello", "proto": FABRIC_PROTO, "worker": name,
        })
        self.welcome = recv_frame(self.sock)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        if heartbeat:
            threading.Thread(
                target=self._beat, args=(heartbeat,), daemon=True
            ).start()

    def _beat(self, interval):
        while not self._stop.wait(interval):
            try:
                self.send({"type": "heartbeat"})
            except OSError:
                return

    def recv(self):
        return recv_frame(self.sock)

    def drain(self):
        """Read frames until the manager hangs up; never raises."""
        try:
            while recv_frame(self.sock) is not None:
                pass
        except (OSError, FrameError):
            pass

    def send(self, doc):
        with self._lock:
            send_frame(self.sock, doc)

    def close(self):
        self._stop.set()
        try:
            self.sock.close()
        except OSError:
            pass


# --- framing ----------------------------------------------------------------


def test_frame_roundtrip_and_clean_eof():
    a, b = socket.socketpair()
    try:
        send_frame(a, {"type": "hello", "n": 7})
        assert recv_frame(b) == {"type": "hello", "n": 7}
        a.close()
        assert recv_frame(b) is None  # EOF on a frame boundary
    finally:
        b.close()


def test_torn_frame_raises():
    a, b = socket.socketpair()
    try:
        a.sendall(b"\x00\x00\x00\x10{\"tr")  # promises 16 bytes, sends 4
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(b)
    finally:
        b.close()


def test_oversize_frame_rejected():
    a, b = socket.socketpair()
    try:
        a.sendall(b"\xff\xff\xff\xff")  # 4 GiB announced
        with pytest.raises(FrameError, match="exceeds"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_invalid_payload_rejected():
    a, b = socket.socketpair()
    try:
        payload = b"not json at all"
        a.sendall(len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(FrameError, match="invalid frame payload"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


# --- handshake --------------------------------------------------------------


def test_manager_rejects_protocol_mismatch():
    ex = FabricExecutor(("127.0.0.1", 0))
    try:
        sock = socket.create_connection(ex.address, timeout=5.0)
        send_frame(sock, {"type": "hello", "proto": 99, "worker": "old"})
        reply = recv_frame(sock)
        assert reply["type"] == "reject"
        assert "99" in reply["reason"] and str(FABRIC_PROTO) in reply["reason"]
        sock.close()
    finally:
        ex.shutdown()


def test_worker_loop_exits_1_on_rejection():
    server = socket.create_server(("127.0.0.1", 0))
    host, port = server.getsockname()[:2]

    def fake_manager():
        sock, _ = server.accept()
        recv_frame(sock)  # the hello
        send_frame(sock, {"type": "reject", "reason": "stale build"})
        sock.close()

    t = threading.Thread(target=fake_manager, daemon=True)
    t.start()
    seen = []
    rc = worker_loop(host, port, name="w", echo=seen.append)
    server.close()
    assert rc == 1
    assert any("stale build" in m for m in seen)


def test_worker_loop_exits_1_when_manager_unreachable():
    # a port nothing listens on; no reconnect window
    server = socket.create_server(("127.0.0.1", 0))
    host, port = server.getsockname()[:2]
    server.close()
    assert worker_loop(host, port, name="w", reconnect=0.0) == 1


# --- parity + journal (the no-chaos baseline) -------------------------------


def test_fabric_matches_serial_and_journals(tmp_path):
    specs = _specs()
    ref = [fingerprint(r) for r in run_many(specs)]
    ck = str(tmp_path / "ck.jsonl")
    ex = FabricExecutor(("127.0.0.1", 0), heartbeat_interval=0.2)
    host, port = ex.address
    threads = [
        threading.Thread(
            target=worker_loop, args=(host, port),
            kwargs={"name": f"w{i}", "reconnect": 5.0}, daemon=True,
        )
        for i in range(2)
    ]
    for t in threads:
        t.start()
    out = run_many(specs, executor=ex, checkpoint=ck)
    for t in threads:
        t.join(timeout=10.0)
    assert [fingerprint(r) for r in out] == ref
    events = load_journal(ck)
    assert {e["event"] for e in events} >= {"lease", "complete"}
    assert len(load_checkpoint(ck)) == len(specs)
    # resume re-simulates nothing and compacts the journal away
    again = run_many(specs, executor="serial", checkpoint=ck)
    assert [fingerprint(r) for r in again] == ref
    assert load_journal(ck) == []


def test_truncated_checkpoint_tail_tolerated_on_resume(tmp_path):
    specs = _specs(2)
    ck = str(tmp_path / "ck.jsonl")
    results = run_many(specs, checkpoint=ck)
    lines = open(ck).readlines()
    with open(ck, "w") as fh:
        fh.writelines(lines[:-1])
        fh.write(lines[-1][: len(lines[-1]) // 2])  # killed mid-append
    out = run_many(specs, checkpoint=ck)  # torn point re-runs, survivor kept
    assert [fingerprint(r) for r in out] == [fingerprint(r) for r in results]
    assert len(load_checkpoint(ck)) == 2


# --- chaos: worker SIGKILL mid-lease ----------------------------------------


def _spawn_worker(port, name, heartbeat=0.2, reconnect=10.0):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"127.0.0.1:{port}", "--name", name,
            "--heartbeat", str(heartbeat), "--reconnect", str(reconnect),
        ],
        env=WORKER_ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def test_worker_sigkill_mid_lease_requeues_to_survivor(tmp_path):
    specs = _specs(4, sleep=0.8)
    ref = [fingerprint(r) for r in run_many(specs, workers=2)]
    ck = str(tmp_path / "ck.jsonl")
    ex = FabricExecutor(("127.0.0.1", 0), heartbeat_interval=0.2)
    port = ex.address[1]
    victim = _spawn_worker(port, "victim")
    survivor = _spawn_worker(port, "survivor")
    out_box = {}

    def sweep():
        out_box["results"] = run_many(specs, executor=ex, checkpoint=ck)

    t = threading.Thread(target=sweep, daemon=True)
    t.start()
    try:
        # kill the victim once it demonstrably holds a lease
        _wait(
            lambda: any(
                e["event"] == "lease" and e.get("worker") == "victim"
                for e in load_journal(ck)
            ),
            what="a lease on the victim worker",
        )
        victim.kill()
        t.join(timeout=30.0)
        assert not t.is_alive(), "sweep did not finish after worker death"
    finally:
        victim.kill()
        survivor.kill()
        victim.wait(timeout=10.0)
        survivor.wait(timeout=10.0)
        ex.shutdown()
    results = out_box["results"]
    assert [fingerprint(r) for r in results] == ref
    events = load_journal(ck)
    assert any(e["event"] == "requeue" for e in events)
    assert any(
        e["event"] == "complete" and e.get("worker") == "survivor"
        for e in events
    )


# --- chaos: heartbeat expiry ------------------------------------------------


def test_silent_worker_dropped_and_lease_requeued(tmp_path):
    specs = _specs(1)
    ref = fingerprint(run_many(specs)[0])
    ck = str(tmp_path / "ck.jsonl")
    ex = FabricExecutor(
        ("127.0.0.1", 0), heartbeat_interval=0.1, heartbeat_grace=0.4
    )
    host, port = ex.address
    got_work = threading.Event()

    def mute_script():
        w = ScriptedWorker(ex.address, name="mute")  # never heartbeats
        frame = w.recv()
        if frame and frame.get("type") == "work":
            got_work.set()
        # ... then goes silent; the manager must declare it lost
        w.drain()

    def rescue_script():
        got_work.wait(10.0)
        worker_loop(host, port, name="rescue", reconnect=5.0)

    threading.Thread(target=mute_script, daemon=True).start()
    rescue = threading.Thread(target=rescue_script, daemon=True)
    rescue.start()
    out = run_many(specs, executor=ex, checkpoint=ck)
    rescue.join(timeout=10.0)
    assert fingerprint(out[0]) == ref
    events = load_journal(ck)
    requeues = [e for e in events if e["event"] == "requeue"]
    assert requeues and "no heartbeat" in requeues[0]["reason"]
    assert any(
        e["event"] == "complete" and e.get("worker") == "rescue"
        for e in events
    )


# --- chaos: late duplicate result -------------------------------------------


def test_stale_result_after_lease_timeout_is_dropped(tmp_path):
    spec = RunSpec(benchmark=QuickBenchmark(), cluster=CLUSTER_A, nprocs=1)
    real = run_many([spec])[0]
    forged = replace(real, elapsed=999.0).to_checkpoint_dict()
    ck = str(tmp_path / "ck.jsonl")
    ex = FabricExecutor(("127.0.0.1", 0), heartbeat_interval=0.2)
    ex.journal_path = ck
    host, port = ex.address
    send_stale = threading.Event()
    done = threading.Event()

    def laggard_script():
        w = ScriptedWorker(ex.address, name="laggard", heartbeat=0.1)
        frame = w.recv()  # the work frame; then sit on it past the timeout
        send_stale.wait(15.0)
        w.send({
            "type": "result", "item": frame["item"], "lease": frame["lease"],
            "status": "ok", "result": forged,
        })
        w.close()  # and never come back for more
        done.set()

    threading.Thread(target=laggard_script, daemon=True).start()
    try:
        ex.prepare([spec], timeout=0.8)
        ex.submit(0, spec)
        out1 = ex.collect()  # the manager-side lease expiry
        assert out1.kind == "timeout" and out1.worker == "laggard"
        # the driver's retry: resubmit, on a fresh worker
        threading.Thread(
            target=worker_loop, args=(host, port),
            kwargs={"name": "honest", "reconnect": 5.0}, daemon=True,
        ).start()
        ex.submit(0, spec)
        send_stale.set()
        _wait(done.is_set, what="the stale result send")
        out2 = ex.collect()
    finally:
        ex.shutdown()
    assert out2.kind == "ok" and out2.worker == "honest"
    assert out2.result.elapsed != 999.0
    assert fingerprint(out2.result) == fingerprint(real)
    events = [e["event"] for e in load_journal(ck)]
    assert "timeout" in events and "duplicate" in events
    assert events.count("complete") == 1


# --- chaos: a spec that keeps killing workers -------------------------------


def test_requeue_limit_terminalizes_worker_killer(tmp_path):
    specs = _specs(1)
    ck = str(tmp_path / "ck.jsonl")
    ex = FabricExecutor(
        ("127.0.0.1", 0), heartbeat_interval=0.2, requeue_limit=1
    )
    stop = threading.Event()

    def doomed_workers():
        # an endless supply of workers that die the moment they get work
        while not stop.is_set():
            try:
                w = ScriptedWorker(ex.address, name="doomed", heartbeat=0.1)
                frame = w.recv()
            except (OSError, FrameError):
                return  # manager gone or shutting down
            if frame is None or stop.is_set():
                w.close()
                return
            w.close()  # dies holding the lease

    t = threading.Thread(target=doomed_workers, daemon=True)
    t.start()
    try:
        out = run_many(
            specs, executor=ex, checkpoint=ck, tolerate_failures=True
        )
    finally:
        stop.set()
        ex.shutdown()
    assert isinstance(out[0], FailedRun)
    assert out[0].error_type == "WorkerLostError"
    assert "requeue_limit" in out[0].error_message
    requeues = [e for e in load_journal(ck) if e["event"] == "requeue"]
    assert len(requeues) == 2  # limit 1 + the terminal strike
    assert len(load_checkpoint(ck)) == 0  # nothing falsely committed


# --- acceptance: manager crash + resume, end to end -------------------------


MANAGER_SCRIPT = """
import json, sys
from repro.harness import RunSpec, run_many
from repro.harness.fabric import FabricExecutor
from repro.machine import CLUSTER_A
from repro.validate.golden import fingerprint
from tests.test_robust_harness import SleepyBenchmark

port, ck, out = int(sys.argv[1]), sys.argv[2], sys.argv[3]
specs = [
    RunSpec(benchmark=SleepyBenchmark(0.4), cluster=CLUSTER_A, nprocs=n,
            seed=1000 * n)
    for n in range(1, 7)
]
results = run_many(
    specs,
    executor=FabricExecutor(("127.0.0.1", port), heartbeat_interval=0.2),
    checkpoint=ck,
)
with open(out, "w") as fh:
    json.dump([fingerprint(r).digest for r in results], fh)
"""


def _free_port():
    server = socket.create_server(("127.0.0.1", 0))
    port = server.getsockname()[1]
    server.close()
    return port


def _result_count(ck):
    try:
        return len(load_checkpoint(ck))
    except OSError:
        return 0


def test_manager_crash_resume_is_fingerprint_identical(tmp_path):
    specs = [
        RunSpec(benchmark=SleepyBenchmark(0.4), cluster=CLUSTER_A, nprocs=n,
                seed=1000 * n)
        for n in range(1, 7)
    ]
    ref = [fingerprint(r).digest for r in run_many(specs, workers=2)]

    port = _free_port()
    ck = str(tmp_path / "ck.jsonl")
    out = str(tmp_path / "digests.json")
    script = str(tmp_path / "manager.py")
    with open(script, "w") as fh:
        fh.write(MANAGER_SCRIPT)

    # workers outlive the manager: their reconnect window covers the
    # crash-and-restart
    workers = [_spawn_worker(port, f"w{i}", reconnect=60.0) for i in range(2)]
    manager_cmd = [sys.executable, script, str(port), ck, out]
    first = subprocess.Popen(manager_cmd, env=WORKER_ENV)
    try:
        # let it commit some — but not all — points, then kill it cold
        _wait(
            lambda: _result_count(ck) >= 2,
            timeout=30.0, what="two checkpointed results",
        )
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=10.0)
        assert not os.path.exists(out), "manager died before finishing"
        resumed_from = _result_count(ck)
        assert resumed_from >= 2

        second = subprocess.run(
            manager_cmd, env=WORKER_ENV, timeout=60.0,
            capture_output=True, text=True,
        )
        assert second.returncode == 0, second.stderr
        for w in workers:
            assert w.wait(timeout=10.0) == 0  # clean fabric shutdown
    finally:
        for w in workers:
            w.kill()
            w.wait(timeout=10.0)

    digests = json.load(open(out))
    assert digests == ref
    saved = load_checkpoint(ck)
    assert {spec_key(s) for s in specs} <= set(saved)
