"""Scenario subsystem tests: format round-trips, digest identities, the
cluster zoo, reference resolution, serve-spec integration, and the
``repro scenarios`` CLI surface.

The load-bearing property throughout is that a scenario *names* a
configuration without *changing* it — the deep fingerprint-level form
of that claim lives in :mod:`repro.validate.scenario` (exercised via
``repro validate --scenarios`` and its own test below); this file covers
the format and plumbing edges around it.
"""

import json

import pytest

from repro.cli import main
from repro.machine.registry import CLUSTER_A, CLUSTER_B, get_cluster
from repro.scenarios import (
    FrequencyPlan,
    FrequencySegment,
    Scenario,
    ScenarioError,
    cluster_from_dict,
    cluster_to_dict,
    library_names,
    load_scenario,
    load_zoo_cluster,
    scenario_names,
    zoo_names,
    zoo_provenance,
)


# --- Scenario format ---------------------------------------------------------


def test_scenario_round_trips_through_json():
    sc = Scenario(
        name="roundtrip",
        description="a kitchen-sink scenario",
        cluster="zoo/broadwell",
        suite="small",
        benchmarks=("lbm", "weather"),
        frequency=FrequencyPlan.fixed(2.0e9),
        sweep={"nodes": [1, 2, 4]},
    )
    again = Scenario.from_json(sc.to_json())
    assert again == sc
    assert again.digest == sc.digest


def test_scenario_rejects_unknown_keys():
    with pytest.raises(ScenarioError, match="unknown"):
        Scenario.from_dict({"name": "x", "cluster": "A", "turbo": True})


def test_scenario_requires_cluster_xor_spec():
    with pytest.raises(ScenarioError):
        Scenario(name="none")
    with pytest.raises(ScenarioError):
        Scenario(
            name="both",
            cluster="A",
            cluster_spec=cluster_to_dict(CLUSTER_A),
        )


def test_sweep_axes_nodes_xor_counts():
    with pytest.raises(ScenarioError):
        Scenario(name="x", cluster="A", sweep={"nodes": [1], "counts": [4]})


def test_frequency_shorthand_bare_number_is_fixed_ghz():
    sc = Scenario.from_dict({"name": "x", "cluster": "A", "frequency": 2.0})
    assert sc.frequency.is_fixed
    assert sc.frequency.frequency_hz == pytest.approx(2.0e9)


def test_validate_rejects_out_of_range_frequency():
    sc = Scenario(name="x", cluster="A", frequency=FrequencyPlan.fixed(9.9e9))
    with pytest.raises(ScenarioError):
        sc.validate()


def test_validate_rejects_unknown_benchmark():
    sc = Scenario(name="x", cluster="A", benchmarks=("not-a-code",))
    with pytest.raises(ScenarioError):
        sc.validate()


# --- digest identities -------------------------------------------------------


def test_digest_covers_parameters_not_labels():
    """Identical machine parameters digest identically regardless of how
    the scenario spells them (registry name, zoo ref, inline spec) or
    what the scenario/cluster is called."""
    by_registry = Scenario(name="a", cluster="A")
    by_zoo = Scenario(name="b", cluster="zoo/icelake")
    spec = cluster_to_dict(CLUSTER_A)
    inline = Scenario(name="c", cluster_spec=spec)
    spec_renamed = dict(spec, name="SomethingElse")
    renamed = Scenario(name="d", cluster_spec=spec_renamed)
    assert by_registry.digest == by_zoo.digest == inline.digest
    assert renamed.digest == inline.digest


def test_nominal_frequency_plan_does_not_move_the_digest():
    nominal = CLUSTER_A.node.cpu.nominal_clock_hz
    bare = Scenario(name="x", cluster="A")
    pinned = Scenario(
        name="x", cluster="A", frequency=FrequencyPlan.fixed(nominal)
    )
    clocked = Scenario(
        name="x", cluster="A", frequency=FrequencyPlan.fixed(2.0e9)
    )
    assert pinned.digest == bare.digest
    assert clocked.digest != bare.digest


def test_digest_sensitive_to_any_machine_parameter():
    spec = cluster_to_dict(CLUSTER_A)
    spec["network"]["latency_s"] *= 2
    assert (
        Scenario(name="x", cluster_spec=spec).digest
        != Scenario(name="x", cluster="A").digest
    )


# --- frequency plans ---------------------------------------------------------


def test_fixed_plan_properties():
    plan = FrequencyPlan.fixed(2.2e9)
    assert plan.is_fixed
    assert plan.frequency_hz == 2.2e9


def test_segmented_plan_has_no_single_frequency():
    plan = FrequencyPlan(
        (FrequencySegment(2.0e9, iterations=2), FrequencySegment(2.4e9))
    )
    assert not plan.is_fixed
    with pytest.raises(ScenarioError):
        plan.frequency_hz


def test_open_segment_only_legal_last():
    with pytest.raises(ScenarioError):
        FrequencyPlan(
            (FrequencySegment(2.0e9), FrequencySegment(2.4e9, iterations=2))
        )


def test_zero_iteration_segments_drop_out_of_active():
    plan = FrequencyPlan(
        (
            FrequencySegment(3.0e9, iterations=0),
            FrequencySegment(2.0e9, iterations=2),
            FrequencySegment(2.4e9),
        )
    )
    assert [s.frequency_hz for s in plan.active_segments] == [2.0e9, 2.4e9]


# --- the zoo -----------------------------------------------------------------


def test_zoo_has_all_six_machines():
    assert set(zoo_names()) == {
        "broadwell",
        "cascadelake",
        "icelake",
        "nextgen",
        "raspberrypi",
        "sapphirerapids",
    }


def test_zoo_paper_machines_equal_registry():
    assert load_zoo_cluster("icelake") == CLUSTER_A
    assert load_zoo_cluster("sapphirerapids") == CLUSTER_B


def test_zoo_files_round_trip_exactly():
    for name in zoo_names():
        cluster = load_zoo_cluster(name)
        assert cluster_from_dict(cluster_to_dict(cluster)) == cluster
        assert zoo_provenance(name)  # every machine cites its source


def test_registry_resolves_zoo_refs():
    assert get_cluster("zoo/cascadelake").name == "Cascadelake"
    with pytest.raises(KeyError):
        get_cluster("zoo/not-a-machine")


# --- reference resolution ----------------------------------------------------


def test_load_scenario_zoo_ref_synthesizes_a_scenario():
    sc = load_scenario("zoo/broadwell")
    assert sc.cluster == "zoo/broadwell"
    assert not sc.validate()


def test_load_scenario_library_by_name():
    sc = load_scenario("dvfs_lbm_clockdown")
    assert sc.benchmarks == ("lbm",)
    assert sc.frequency.frequency_hz == pytest.approx(2.0e9)


def test_load_scenario_from_file_path(tmp_path):
    path = tmp_path / "mine.json"
    Scenario(name="mine", cluster="B", suite="small").save(path)
    sc = load_scenario(str(path))
    assert sc.name == "mine" and sc.cluster == "B"


def test_load_scenario_unknown_ref_lists_names():
    with pytest.raises(ScenarioError) as err:
        load_scenario("nope")
    assert "zoo/icelake" in str(err.value)
    assert "dvfs_lbm_clockdown" in str(err.value)


def test_scenario_names_lists_zoo_and_library():
    names = scenario_names()
    assert "icelake" in names["zoo"]
    assert set(library_names()) == set(names["library"])


def test_library_scenarios_all_validate():
    for name in library_names():
        assert load_scenario(name).validate() is None


# --- serve-spec integration --------------------------------------------------


def test_serve_spec_accepts_scenario_ref():
    from repro.serve.spec import ServeSpec

    spec = ServeSpec.from_request(
        {"benchmark": "lbm", "scenario": "zoo/cascadelake"}
    )
    spec.validate()
    _, cluster, _ = spec.resolve()
    assert cluster.name == "Cascadelake"
    # zoo machines have no surrogate corpus — DES only, no prediction
    assert spec.prediction_spec() is None


def test_serve_spec_scenario_digest_in_canonical_record():
    from repro.serve.spec import ServeSpec

    spec = ServeSpec.from_request(
        {"benchmark": "lbm", "scenario": "zoo/icelake"}
    )
    rec = spec.canonical_record()
    assert rec["scenario"] == load_scenario("zoo/icelake").digest[:16]


def test_serve_spec_rejects_cluster_plus_scenario():
    from repro.serve.spec import ServeSpec, SpecError

    with pytest.raises(SpecError):
        ServeSpec.from_request(
            {"benchmark": "lbm", "cluster": "A", "scenario": "zoo/icelake"}
        )


def test_serve_spec_rejects_segmented_plan():
    from repro.serve.spec import ServeSpec, SpecError

    with pytest.raises(SpecError, match="segmented"):
        ServeSpec.from_request(
            {
                "benchmark": "lbm",
                "scenario": {
                    "name": "seg",
                    "cluster": "A",
                    "frequency": {
                        "segments": [
                            {"frequency_ghz": 2.0, "iterations": 2},
                            {"frequency_ghz": 2.4},
                        ]
                    },
                },
            }
        )


def test_serve_spec_scenario_round_trips_to_request():
    from repro.serve.spec import ServeSpec

    spec = ServeSpec.from_request(
        {"benchmark": "lbm", "scenario": "zoo/raspberrypi", "nnodes": 2}
    )
    again = ServeSpec.from_request(spec.to_request())
    assert again.key == spec.key


# --- CLI surface -------------------------------------------------------------


def test_cli_scenarios_list(capsys):
    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    assert "zoo/cascadelake" in out
    assert "dvfs_lbm_clockdown" in out


def test_cli_scenarios_show_emits_json_and_digest(capsys):
    assert main(["scenarios", "show", "zoo/broadwell"]) == 0
    out = capsys.readouterr().out
    doc = json.loads(out[: out.index("\ndigest")])
    assert doc["cluster"] == "zoo/broadwell"
    assert load_scenario("zoo/broadwell").digest in out


def test_cli_scenarios_validate_all(capsys):
    assert main(["scenarios", "validate"]) == 0
    out = capsys.readouterr().out
    assert "valid" in out


def test_cli_scenarios_unknown_ref_fails(capsys):
    assert main(["scenarios", "show", "zoo/tpu"]) == 2


def test_cli_sweep_with_scenario(capsys):
    assert main(["sweep", "--scenario", "dvfs_lbm_clockdown"]) == 0
    out = capsys.readouterr().out
    assert "lbm" in out
    assert "EDP" in out


def test_cli_explicit_flag_beats_scenario(capsys):
    assert main(
        ["sweep", "--scenario", "dvfs_lbm_clockdown", "--counts", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "4" in out


def test_cli_validate_scenarios(capsys):
    assert main(["validate", "--scenarios"]) == 0
    out = capsys.readouterr().out.lower()
    assert "scenario" in out


# --- validator module --------------------------------------------------------


def test_zoo_validation_green():
    from repro.validate.scenario import zoo_validation

    assert zoo_validation() == []
