"""Property-based tests of the simulation and MPI layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Delay, Simulator
from repro.machine import CLUSTER_A
from repro.smpi import MpiRuntime
from repro.smpi.mailbox import ANY_SOURCE, Mailbox, SendArrival


# --- simulator time properties --------------------------------------------------


@settings(max_examples=40)
@given(
    delays=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=5),
        min_size=1,
        max_size=6,
    )
)
def test_simulated_time_is_sum_of_longest_chain(delays):
    """The makespan equals the longest per-process delay sum."""
    sim = Simulator()

    def body(ds):
        for d in ds:
            yield Delay(d)

    for i, ds in enumerate(delays):
        sim.spawn(f"p{i}", body(ds))
    end = sim.run()
    assert end == pytest.approx(max(sum(ds) for ds in delays))


@settings(max_examples=30)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=2, max_value=12),
)
def test_observed_times_never_decrease(seed, n):
    """Every process observes monotonically non-decreasing virtual time."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    observations = []

    def body(i):
        for d in rng.random(4) * 2:
            yield Delay(float(d))
            observations.append(sim.now)

    for i in range(n):
        sim.spawn(f"p{i}", body(i))
    sim.run()
    # the global observation sequence is sorted (event order == time order)
    assert observations == sorted(observations)


# --- mailbox matching properties ----------------------------------------------------


def _arrival(src, tag, t=0.0):
    return SendArrival(
        src=src, tag=tag, nbytes=10, arrival_time=t,
        rendezvous=False, intra_node=True,
    )


@settings(max_examples=50)
@given(tags=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=10))
def test_mailbox_fifo_per_tag(tags):
    """Matching respects arrival order within each (src, tag) class."""
    mbox = Mailbox(rank=0)
    for i, tag in enumerate(tags):
        mbox.deliver(_arrival(src=1, tag=tag, t=float(i)))
    for tag in tags:
        # post receives in the same tag order: each must match the
        # earliest remaining arrival with that tag
        arr, _post = mbox.post_recv(src=1, tag=tag, now=100.0)
        assert arr is not None
        assert arr.tag == tag
    assert mbox.idle()


@settings(max_examples=50)
@given(
    srcs=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=12)
)
def test_mailbox_any_source_drains_everything(srcs):
    mbox = Mailbox(rank=9)
    for i, s in enumerate(srcs):
        mbox.deliver(_arrival(src=s, tag=0, t=float(i)))
    seen = []
    for _ in srcs:
        arr, _ = mbox.post_recv(src=ANY_SOURCE, tag=0, now=50.0)
        assert arr is not None
        seen.append(arr.arrival_time)
    assert seen == sorted(seen)  # FIFO across sources by arrival order
    assert mbox.idle()


def test_mailbox_post_before_arrival_matches_on_delivery():
    mbox = Mailbox(rank=0)
    _, post = mbox.post_recv(src=1, tag=7, now=0.0)
    assert mbox.pending_posts == 1
    matched = mbox.deliver(_arrival(src=1, tag=7))
    assert matched is post
    assert mbox.idle()


# --- end-to-end conservation properties ----------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=10),
    nbytes=st.integers(min_value=8, max_value=2_000_000),
)
def test_every_send_is_received(nprocs, nbytes):
    """Ring exchange: total messages sent == total received, any size
    (eager and rendezvous paths)."""
    rt = MpiRuntime(CLUSTER_A, nprocs)

    def body(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        rreq = comm.irecv(left, tag=0)
        yield comm.send(right, nbytes, tag=0)
        yield comm.wait(rreq)

    job = rt.launch(body)
    assert job.total_counter("messages") == nprocs
    assert job.total_counter("msg_bytes") == nprocs * nbytes


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    nprocs=st.integers(min_value=2, max_value=8),
)
def test_compute_time_accounted_exactly(seed, nprocs):
    rng = np.random.default_rng(seed)
    durations = rng.random(nprocs)
    rt = MpiRuntime(CLUSTER_A, nprocs)

    def body(comm):
        yield comm.compute(float(durations[comm.rank]))
        yield comm.barrier()

    job = rt.launch(body)
    for r, s in enumerate(job.stats):
        assert s.compute_time == pytest.approx(durations[r])
    # job elapsed >= slowest compute
    assert job.elapsed >= max(durations) - 1e-12


@settings(max_examples=10, deadline=None)
@given(nprocs=st.integers(min_value=2, max_value=16))
def test_collective_finish_identical_for_all_ranks(nprocs):
    rt = MpiRuntime(CLUSTER_A, nprocs)
    finishes = []

    def body(comm):
        yield comm.compute(0.01 * comm.rank)
        yield comm.allreduce(64)
        finishes.append(comm.now)

    rt.launch(body)
    assert len(set(round(f, 12) for f in finishes)) == 1
