"""Machine-model unit tests (Table 3 consistency)."""

import pytest

from repro.machine import (
    CLUSTER_A,
    CLUSTER_B,
    ICE_LAKE_8360Y,
    SANDY_BRIDGE_NODE,
    SAPPHIRE_RAPIDS_8470,
    CacheLevel,
    MemoryHierarchy,
    get_cluster,
)
from repro.machine.registry import theoretical_ratio_summary
from repro.units import GB, KiB, MiB


# --- CPU spec ------------------------------------------------------------------


def test_ice_lake_table3_values():
    cpu = ICE_LAKE_8360Y
    assert cpu.cores == 36
    assert cpu.base_clock_hz == 2.4e9
    assert cpu.numa_domains == 2
    assert cpu.cores_per_domain == 18
    assert cpu.tdp_w == 250.0
    # 8 channels DDR4-3200 x 8 B = 204.8 GB/s per socket
    assert cpu.theoretical_memory_bw == pytest.approx(204.8 * GB)


def test_sapphire_rapids_table3_values():
    cpu = SAPPHIRE_RAPIDS_8470
    assert cpu.cores == 52
    assert cpu.base_clock_hz == 2.0e9
    assert cpu.numa_domains == 4
    assert cpu.cores_per_domain == 13
    assert cpu.tdp_w == 350.0
    # 8 channels DDR5-4800 x 8 B = 307.2 GB/s per socket
    assert cpu.theoretical_memory_bw == pytest.approx(307.2 * GB)


def test_peak_flops_per_core_avx512():
    # 2.4 GHz * 8 DP lanes * 2 FMA units * 2 flops = 76.8 Gflop/s
    assert ICE_LAKE_8360Y.peak_flops_per_core == pytest.approx(76.8e9)


def test_domain_bandwidth_matches_paper_saturation():
    # Paper: 75-78 GB/s per ccNUMA domain on ClusterA
    assert 75e9 <= ICE_LAKE_8360Y.domain_memory_bw <= 78e9
    # Paper: 58-62 GB/s per ccNUMA domain on ClusterB
    assert 58e9 <= SAPPHIRE_RAPIDS_8470.domain_memory_bw <= 62e9


def test_idle_power_fractions_match_paper():
    # ~40 % of 250 W TDP on Ice Lake, ~50 % of 350 W on Sapphire Rapids
    a = ICE_LAKE_8360Y.idle_power_w / ICE_LAKE_8360Y.tdp_w
    b = SAPPHIRE_RAPIDS_8470.idle_power_w / SAPPHIRE_RAPIDS_8470.tdp_w
    assert 0.35 <= a <= 0.45
    assert 0.45 <= b <= 0.55
    # Sandy Bridge: below 20 %
    sb = SANDY_BRIDGE_NODE.cpu
    assert sb.idle_power_w / sb.tdp_w < 0.20


def test_headline_hardware_ratios():
    r = theoretical_ratio_summary()
    assert r["peak_flops"] == pytest.approx(1.204, abs=0.01)
    assert r["memory_bw"] == pytest.approx(1.5, abs=0.01)
    assert r["l2_per_core"] == pytest.approx(1.6, abs=0.01)
    assert r["l3_per_core"] > 1.3


def test_cpu_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        ICE_LAKE_8360Y.__class__(
            name="x",
            model="y",
            base_clock_hz=2e9,
            cores=7,
            numa_domains=2,  # 7 doesn't divide by 2
            hierarchy=ICE_LAKE_8360Y.hierarchy,
        )


# --- cache hierarchy ---------------------------------------------------------------


def test_cache_capacities():
    h = ICE_LAKE_8360Y.hierarchy
    assert h.l1.capacity_bytes == 48 * KiB
    assert h.l2.capacity_bytes == 1.25 * MiB
    assert h.l3.capacity_bytes == 54 * MiB
    assert h.l3.victim


def test_effective_llc_grows_with_cores():
    h = SAPPHIRE_RAPIDS_8470.hierarchy
    assert h.effective_llc_bytes(1) < h.effective_llc_bytes(13)
    assert h.effective_llc_bytes(13) < h.effective_llc_bytes(52)


def test_effective_llc_caps_at_socket():
    h = ICE_LAKE_8360Y.hierarchy
    assert h.effective_llc_bytes(36) == h.effective_llc_bytes(100)


def test_cluster_b_more_cache_per_core():
    a = ICE_LAKE_8360Y.hierarchy.per_core_llc_bytes()
    b = SAPPHIRE_RAPIDS_8470.hierarchy.per_core_llc_bytes()
    assert b > 1.3 * a


def test_cache_level_validation():
    with pytest.raises(ValueError):
        CacheLevel("L1", -1.0)
    with pytest.raises(ValueError):
        CacheLevel("L1", 100.0, shared_by_cores=0)
    with pytest.raises(ValueError):
        MemoryHierarchy(
            l1=CacheLevel("L1", 1024 * KiB),
            l2=CacheLevel("L2", 1 * KiB),
            l3=CacheLevel("L3", 1 * MiB),
        )


# --- node topology -----------------------------------------------------------------


def test_node_core_counts():
    assert CLUSTER_A.node.cores == 72
    assert CLUSTER_A.node.numa_domains == 4
    assert CLUSTER_B.node.cores == 104
    assert CLUSTER_B.node.numa_domains == 8


def test_consecutive_pinning_fills_domains_in_order():
    node = CLUSTER_A.node
    # 18 cores per domain: core 17 in domain 0, core 18 in domain 1
    assert node.locate(17).domain == 0
    assert node.locate(18).domain == 1
    assert node.locate(35).domain == 1
    assert node.locate(36).socket == 1
    assert node.locate(36).domain == 2


def test_active_cores_per_domain():
    node = CLUSTER_A.node
    assert node.active_cores_per_domain(18) == [18, 0, 0, 0]
    assert node.active_cores_per_domain(20) == [18, 2, 0, 0]
    assert node.active_cores_per_domain(72) == [18, 18, 18, 18]
    assert node.domains_in_use(19) == 2


def test_node_locate_bounds():
    with pytest.raises(ValueError):
        CLUSTER_A.node.locate(72)
    with pytest.raises(ValueError):
        CLUSTER_A.node.locate(-1)


# --- cluster placement ----------------------------------------------------------------


def test_cluster_placement_compact():
    c = CLUSTER_A
    assert c.nodes_for(72) == 1
    assert c.nodes_for(73) == 2
    node, loc = c.place(72)
    assert node == 1 and loc.core == 0
    assert c.same_node(0, 71)
    assert not c.same_node(71, 72)


def test_ranks_per_node():
    assert CLUSTER_A.ranks_per_node(100) == [72, 28]
    assert CLUSTER_B.ranks_per_node(104) == [104]


def test_cluster_capacity_enforced():
    with pytest.raises(ValueError):
        CLUSTER_B.place(CLUSTER_B.max_ranks())


def test_get_cluster_lookup():
    assert get_cluster("A") is CLUSTER_A
    assert get_cluster("ClusterB") is CLUSTER_B
    with pytest.raises(KeyError):
        get_cluster("C")


def test_network_protocol_threshold():
    net = CLUSTER_A.network
    assert net.is_eager(1024)
    assert not net.is_eager(10 * 1024 * 1024)
    assert net.ptp_time(10**6, intra_node=False) > net.ptp_time(10**6, intra_node=True)


def test_describe_strings():
    text = CLUSTER_A.describe()
    assert "Ice Lake" in text and "ClusterA" in text
    assert "104" in CLUSTER_B.node.describe()
