#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation surface.

Walks the checked-in markdown (README.md, DESIGN.md, EXPERIMENTS.md,
CHANGES.md, docs/*.md), extracts every inline link, and verifies:

* relative file links resolve to an existing file or directory;
* fragment links (``file.md#section`` or ``#section``) match a heading
  in the target file, using GitHub's anchor slugging;
* external links are syntactically sane (``http(s)://`` — never
  fetched; CI must not depend on the network).

Exit code 0 when every link resolves, 1 with a ``file:line`` listing
otherwise.

Usage:
    python tools/check_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md",
             "ROADMAP.md", "docs/*.md")

#: inline links: [text](target) — images share the syntax via ![
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor transformation."""
    # drop inline code/emphasis markers and links' URL part
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", "_")
    text = text.strip().lower()
    # keep word chars, spaces and hyphens; spaces become hyphens
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    anchors: dict[str, int] = {}
    out: set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = anchors.get(slug, 0)
        anchors[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def iter_links(path: Path):
    """Yield (lineno, target) for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    errors: list[str] = []
    for lineno, target in iter_links(path):
        where = f"{path.relative_to(root)}:{lineno}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("<") or "://" in target:
            errors.append(f"{where}: malformed link target {target!r}")
            continue
        file_part, _, fragment = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{where}: broken link -> {target} "
                          f"(no such file {file_part})")
            continue
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                continue  # anchors into non-markdown are out of scope
            if fragment not in heading_anchors(dest):
                errors.append(f"{where}: broken anchor -> {target} "
                              f"(no heading slugs to '#{fragment}')")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    if not files:
        print(f"check_links: no markdown found under {root}", file=sys.stderr)
        return 1
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, root))
    if errors:
        print(f"check_links: {len(errors)} broken link(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    nlinks = sum(1 for p in files for _ in iter_links(p))
    print(f"check_links: OK — {nlinks} link(s) across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
