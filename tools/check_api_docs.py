#!/usr/bin/env python3
"""Docstring cross-reference checker for the ``repro`` public API.

Scans every source file under ``src/repro/`` for Sphinx-style roles
(``:class:`...```, ``:mod:`...```, ``:func:`...```, ``:meth:`...```,
``:attr:`...```, ``:data:`...```, ``:exc:`...```) and verifies that
each fully-qualified ``repro.*`` target actually imports/resolves.
Dangling references rot silently otherwise — a rename breaks dozens of
docstrings with no test noticing — and they render as broken links in
the generated API docs (the CI docs job builds them with pdoc).

References may wrap across docstring lines (whitespace inside the
backticks is normalized away) and may use the Sphinx ``~`` shortening
prefix.  Unqualified targets (no ``repro.`` prefix) are skipped: they
are resolved relative to their module by Sphinx and are not checkable
without a full build.

Exit code 0 when every reference resolves, 1 with a ``file:line``
listing otherwise.

Usage:
    PYTHONPATH=src python tools/check_api_docs.py [src_root]
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

ROLE_RE = re.compile(
    r":(?:class|mod|func|meth|attr|data|exc|obj):`([^`]+)`", re.DOTALL
)


def normalize(ref: str) -> str:
    """Strip the ``~`` prefix and any whitespace/newlines (wrapped
    references like ``repro.faults.plan.\\nDegradedLink``)."""
    ref = ref.strip().lstrip("~")
    ref = re.sub(r"\s+", "", ref)
    return ref.rstrip("().")


def resolves(ref: str) -> bool:
    """True when ``ref`` names an importable module or an attribute
    chain hanging off one."""
    parts = ref.split(".")
    for i in range(len(parts), 0, -1):
        modname = ".".join(parts[:i])
        try:
            mod = importlib.import_module(modname)
        except ImportError:
            continue
        obj = mod
        for attr in parts[i:]:
            try:
                obj = getattr(obj, attr)
            except AttributeError:
                return False
        return True
    return False


def iter_refs(path: Path):
    """Yield (lineno, raw_ref) for every role reference in the file."""
    text = path.read_text()
    for m in ROLE_RE.finditer(text):
        lineno = text.count("\n", 0, m.start()) + 1
        yield lineno, m.group(1)


def main(argv: list[str]) -> int:
    src = Path(argv[1]).resolve() if len(argv) > 1 else Path("src").resolve()
    pkg_root = src / "repro"
    if not pkg_root.is_dir():
        print(f"check_api_docs: no package at {pkg_root}", file=sys.stderr)
        return 1
    sys.path.insert(0, str(src))

    checked = 0
    skipped = 0
    errors: list[str] = []
    for path in sorted(pkg_root.rglob("*.py")):
        for lineno, raw in iter_refs(path):
            ref = normalize(raw)
            if not ref.startswith("repro."):
                skipped += 1
                continue
            checked += 1
            if not resolves(ref):
                rel = path.relative_to(src)
                errors.append(f"{rel}:{lineno}: dangling reference "
                              f":role:`{ref}`")
    if errors:
        print(f"check_api_docs: {len(errors)} dangling reference(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"check_api_docs: OK — {checked} qualified reference(s) resolve "
          f"({skipped} unqualified skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
