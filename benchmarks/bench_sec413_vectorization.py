"""Sect. 4.1.3: vectorization (SIMD) ratios.

The ratio of flops executed with AVX-512 instructions to all flops, per
benchmark — similar on both CPUs; cloverleaf/pot3d/lbm highest, tealeaf
and soma poorly vectorized.
"""

from _shared import ALL_BENCH_NAMES, PAPER_VECTORIZATION, full_node_run
from repro.harness.report import ascii_table


def test_vectorization_ratios(benchmark):
    def build():
        out = {}
        for b in ALL_BENCH_NAMES:
            out[b] = (
                full_node_run("ClusterA", b).vectorization_ratio,
                full_node_run("ClusterB", b).vectorization_ratio,
            )
        return out

    vec = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for b in ALL_BENCH_NAMES:
        paper = PAPER_VECTORIZATION.get(b)
        rows.append(
            (
                b,
                f"{100 * vec[b][0]:.1f}",
                f"{100 * vec[b][1]:.1f}",
                f"{100 * paper:.1f}" if paper is not None else "(n/a)",
            )
        )
    print()
    print(
        ascii_table(
            ["Benchmark", "ClusterA %", "ClusterB %", "paper %"],
            rows,
            title="Sect. 4.1.3 vectorization ratios (SIMD flops / all flops)",
        )
    )
    a = {b: v[0] for b, v in vec.items()}
    # similar on both systems
    assert all(abs(v[0] - v[1]) < 0.02 for v in vec.values())
    # ordering: cloverleaf/pot3d ~full, lbm high; tealeaf poor; soma worst
    assert a["cloverleaf"] > 0.9 and a["pot3d"] > 0.9 and a["lbm"] > 0.85
    assert a["tealeaf"] < 0.15
    assert a["soma"] == min(a.values()) and a["soma"] < 0.05
