"""Table 3: hardware and software attributes of ClusterA and ClusterB.

Prints the machine-model registry in Table 3's layout and checks the
headline derived ratios the paper builds its expectations on (peak ~1.2x,
bandwidth ~1.5x, caches per core larger on Sapphire Rapids).
"""

from repro.harness.report import ascii_table
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.machine.registry import theoretical_ratio_summary
from repro.units import GB, GiB, MiB


def _rows():
    rows = []
    for label, getter in [
        ("Processor", lambda c: f"{c.node.cpu.name}"),
        ("Processor model", lambda c: c.node.cpu.model),
        ("Base clock speed", lambda c: f"{c.node.cpu.base_clock_hz / 1e9:.1f} GHz"),
        ("Physical cores per node", lambda c: c.node.cores),
        ("ccNUMA domains per node", lambda c: c.node.numa_domains),
        ("Sockets per node", lambda c: c.node.sockets),
        (
            "Per-core L1/L2 cache",
            lambda c: f"{c.node.cpu.hierarchy.l1.capacity_bytes / 1024:.0f} KiB / "
            f"{c.node.cpu.hierarchy.l2.capacity_bytes / MiB:.2f} MiB",
        ),
        (
            "Shared LLC (L3)",
            lambda c: f"{c.node.cpu.hierarchy.l3.capacity_bytes / MiB:.0f} MiB",
        ),
        ("Memory per node", lambda c: f"{c.node.memory_bytes / GiB:.0f} GiB"),
        ("Socket memory type", lambda c: c.node.cpu.extras["ddr"]),
        (
            "Theor. socket memory bandwidth",
            lambda c: f"{c.node.cpu.theoretical_memory_bw / GB:.1f} GB/s",
        ),
        ("Thermal design power", lambda c: f"{c.node.cpu.tdp_w:.0f} W"),
        ("Node interconnect", lambda c: c.network.name),
        ("Interconnect topology", lambda c: c.network.topology),
        (
            "Raw bandwidth per link+direction",
            lambda c: f"{c.network.link_bandwidth * 8 / 1e9:.0f} Gbit/s",
        ),
    ]:
        rows.append((label, getter(CLUSTER_A), getter(CLUSTER_B)))
    return rows


def test_table3_attributes(benchmark):
    rows = benchmark(_rows)
    print()
    print(
        ascii_table(
            ["Attribute", "ClusterA", "ClusterB"],
            rows,
            title="Table 3: key hardware and software attributes",
        )
    )
    ratios = theoretical_ratio_summary()
    print()
    print(
        ascii_table(
            ["Derived B/A ratio", "value", "paper expectation"],
            [
                ("peak performance", f"{ratios['peak_flops']:.2f}", "~1.2"),
                ("memory bandwidth", f"{ratios['memory_bw']:.2f}", "~1.5"),
                ("L2 per core", f"{ratios['l2_per_core']:.2f}", "1.6 (60% more)"),
                ("L3 per core", f"{ratios['l3_per_core']:.2f}", "1.45 (45% more)"),
            ],
        )
    )
    assert abs(ratios["peak_flops"] - 1.2) < 0.05
    assert abs(ratios["memory_bw"] - 1.5) < 0.05
