"""Scenario frequency-sweep bench: the DVFS grid priced through Tier A.

Prices the full 9-point 1.2-3.2 GHz ClusterA frequency grid for four
benchmarks (two clock-down, two race-to-idle) through the analytic
prediction tier and asserts both the latency budget and the physics:

* the whole 36-point sweep costs **under one second** — pricing a DVFS
  what-if must never require the event-level simulator;
* weather (1 node) and soma (4 nodes) reproduce the *interior* EDP
  minimum at 2.20 GHz with the energy minimum at 1.45 GHz (clock-down:
  memory-bound runtime barely follows the clock, so dropping it saves
  energy up to the point where stretched runtime wins);
* lbm and minisweep keep both minima at the 3.2 GHz top of the grid
  (race-to-idle: finish fast, stop burning the idle baseline).

Run with ``--json BENCH_scenarios.json`` to emit the sweep artifact
(per-benchmark optima + per-point energy/EDP curves) that CI commits.
"""

import time

import pytest

from repro.analysis.energy import (
    dvfs_policy,
    edp_optimal_frequency,
    energy_optimal_frequency,
    frequency_sweep,
)
from repro.machine.registry import CLUSTER_A
from repro.spechpc.suite import get_benchmark

#: the four headline codes and the optima docs/scenarios.md documents
CASES = [
    # (benchmark, nnodes, E-opt GHz, EDP-opt GHz, policy)
    ("weather", 1, 1.45, 2.20, "clock-down"),
    ("soma", 4, 1.45, 2.20, "clock-down"),
    ("lbm", 1, 3.20, 3.20, "race-to-idle"),
    ("minisweep", 1, 3.20, 3.20, "race-to-idle"),
]

#: wall-clock budget for pricing every grid of every case [seconds]
SWEEP_BUDGET_S = 1.0


def test_frequency_sweep_grid_under_budget(perf_records):
    t0 = time.perf_counter()
    sweeps = {
        (name, nnodes): frequency_sweep(
            get_benchmark(name), CLUSTER_A, nnodes=nnodes
        )
        for name, nnodes, _, _, _ in CASES
    }
    elapsed = time.perf_counter() - t0
    n_points = sum(len(p) for p in sweeps.values())
    assert elapsed < SWEEP_BUDGET_S, (
        f"pricing {n_points} Tier A grid points took {elapsed:.2f}s "
        f"(budget {SWEEP_BUDGET_S}s)"
    )

    cases = []
    for name, nnodes, e_opt_ghz, edp_opt_ghz, policy in CASES:
        points = sweeps[(name, nnodes)]
        e_opt = energy_optimal_frequency(points)
        edp_opt = edp_optimal_frequency(points)
        assert e_opt.frequency_ghz == pytest.approx(e_opt_ghz, abs=0.005)
        assert edp_opt.frequency_ghz == pytest.approx(edp_opt_ghz, abs=0.005)
        assert dvfs_policy(points) == policy
        cases.append({
            "benchmark": name,
            "nnodes": nnodes,
            "policy": policy,
            "energy_optimal_ghz": round(e_opt.frequency_ghz, 3),
            "energy_optimal_kj": round(e_opt.total_energy / 1e3, 3),
            "edp_optimal_ghz": round(edp_opt.frequency_ghz, 3),
            "edp_optimal_kjs": round(edp_opt.edp / 1e3, 3),
            "grid": [
                {
                    "frequency_ghz": round(p.frequency_ghz, 3),
                    "elapsed_s": round(p.elapsed, 3),
                    "total_energy_kj": round(p.total_energy / 1e3, 3),
                    "edp_kjs": round(p.edp / 1e3, 3),
                }
                for p in points
            ],
        })

    perf_records.append({
        "bench": "scenario_frequency_sweep",
        "tier": "analytic",
        "cluster": "A",
        "grid_points": n_points,
        "sweep_seconds": round(elapsed, 4),
        "cases": cases,
    })
