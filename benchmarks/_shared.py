"""Shared, cached experiment data for the bench suite.

Figures 1-4 all consume the same node-level sweep and Figs. 5-6 the same
multi-node sweep, so each is computed once per (cluster, benchmark) and
memoized for the whole pytest-benchmark session.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.harness import run, scaling_sweep
from repro.harness.results import RunResult, ScalingSeries
from repro.machine import get_cluster
from repro.spechpc import get_benchmark

#: Run-to-run jitter used for min/max/avg statistics (the paper repeats
#: every measurement; Sect. 3).
NOISE_SIGMA = 0.015
REPEATS = 3

#: Worker processes for the sweeps feeding the bench suite.  Sweep points
#: are independent and deterministically seeded, so parallel results are
#: identical to serial ones.  Override with REPRO_BENCH_WORKERS=1 to pin
#: the suite to one core (e.g. while profiling).
WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", str(min(8, os.cpu_count() or 1)))
)

#: Paper-reported values used for paper-vs-measured tables.
PAPER_EFFICIENCY = {
    "ClusterA": {
        "lbm": 130, "soma": 93, "tealeaf": 100, "cloverleaf": 98,
        "minisweep": 73, "pot3d": 100, "sph-exa": 80, "hpgmgfv": 95,
        "weather": 95,
    },
    "ClusterB": {
        "lbm": 95, "soma": 86, "tealeaf": 100, "cloverleaf": 96,
        "minisweep": 80, "pot3d": 104, "sph-exa": 79, "hpgmgfv": 98,
        "weather": 121,
    },
}

PAPER_ACCELERATION = {
    "lbm": 1.21, "soma": 1.35, "minisweep": 1.39, "sph-exa": 1.48,
    "weather": 2.03, "tealeaf": 1.66, "cloverleaf": 1.57, "pot3d": 1.63,
    "hpgmgfv": 1.65,
}

#: Sect. 4.1.3 (values readable from the paper's text/table; lbm/clover/
#: pot3d "highest", tealeaf 8.8 %, soma 2.2 %).
PAPER_VECTORIZATION = {
    "lbm": 0.92, "soma": 0.022, "tealeaf": 0.088, "cloverleaf": 0.99,
    "pot3d": 0.99,
}

PAPER_SCALING_CASES = {
    "ClusterA": {
        "pot3d": "A", "weather": "B", "tealeaf": "B", "hpgmgfv": "C",
        "cloverleaf": "D", "soma": "POOR", "lbm": "POOR",
        "sph-exa": "POOR", "minisweep": "POOR",
    },
    "ClusterB": {
        "pot3d": "A", "weather": "A", "tealeaf": "B", "hpgmgfv": "C",
        "cloverleaf": "D", "soma": "POOR", "lbm": "POOR",
        "sph-exa": "POOR", "minisweep": "POOR",
    },
}


@lru_cache(maxsize=None)
def node_sweep(cluster_name: str, bench_name: str, stride: int = 1) -> ScalingSeries:
    """Tiny-workload sweep over 1..cores-per-node processes."""
    cluster = get_cluster(cluster_name)
    counts = list(range(1, cluster.node.cores + 1, stride))
    if counts[-1] != cluster.node.cores:
        counts.append(cluster.node.cores)
    return scaling_sweep(
        get_benchmark(bench_name),
        cluster,
        counts,
        suite="tiny",
        repeats=REPEATS,
        noise_sigma=NOISE_SIGMA,
        workers=WORKERS,
    )


@lru_cache(maxsize=None)
def domain_sweep(cluster_name: str, bench_name: str) -> ScalingSeries:
    """Tiny-workload sweep over the first ccNUMA domain only."""
    cluster = get_cluster(cluster_name)
    counts = list(range(1, cluster.node.cores_per_domain + 1))
    return scaling_sweep(
        get_benchmark(bench_name),
        cluster,
        counts,
        suite="tiny",
        repeats=REPEATS,
        noise_sigma=NOISE_SIGMA,
        workers=WORKERS,
    )


@lru_cache(maxsize=None)
def multinode_sweep(cluster_name: str, bench_name: str) -> ScalingSeries:
    """Small-workload sweep over 1, 2, 4, 8, 16 full nodes."""
    cluster = get_cluster(cluster_name)
    cores = cluster.node.cores
    counts = [n * cores for n in (1, 2, 4, 8, 16)]
    return scaling_sweep(
        get_benchmark(bench_name),
        cluster,
        counts,
        suite="small",
        repeats=1,
        noise_sigma=NOISE_SIGMA,
        workers=WORKERS,
    )


@lru_cache(maxsize=None)
def full_node_run(cluster_name: str, bench_name: str) -> RunResult:
    """Tiny workload on one full node."""
    cluster = get_cluster(cluster_name)
    return run(get_benchmark(bench_name), cluster, cluster.node.cores)


@lru_cache(maxsize=None)
def domain_run(cluster_name: str, bench_name: str) -> RunResult:
    """Tiny workload on one ccNUMA domain."""
    cluster = get_cluster(cluster_name)
    return run(get_benchmark(bench_name), cluster, cluster.node.cores_per_domain)


ALL_BENCH_NAMES = (
    "lbm", "soma", "tealeaf", "cloverleaf", "minisweep",
    "pot3d", "sph-exa", "hpgmgfv", "weather",
)
