"""Ablation studies for the design choices DESIGN.md calls out.

The paper's analysis sections *suggest* several what-ifs without measuring
them; the simulator can:

1. **minisweep, receive-first ordering** — Sect. 4.1.5 identifies the
   send-before-recv ordering as the root cause of the serialization
   ripple. Pre-posting the receive removes the pathology at prime counts.
2. **lbm without the barrier** — Sect. 5 notes the end-of-iteration
   MPI_Barrier "could be avoided". Removing it decouples the slow rank
   class from the others.
3. **Sub-NUMA Clustering off** — the saturation analysis hinges on the
   ccNUMA domain being the fundamental scaling unit; with SNC off, the
   bandwidth saturation knee moves from the quarter/half socket to the
   full socket.
4. **2012-era idle power** — Sect. 4.3 attributes race-to-idle to the
   high baseline; with Sandy-Bridge-like idle power, concurrency
   throttling of memory-bound codes becomes worthwhile again.
5. **Hybrid MPI+OpenMP** — the paper's future-work mode: at the same
   core count, fewer ranks shrink soma's replicated field and its
   allreduce tree.
"""

import dataclasses

import pytest

from repro.analysis.energy import concurrency_throttling_saves, zplot
from repro.harness import run, scaling_sweep
from repro.harness.report import ascii_table
from repro.machine import CLUSTER_A
from repro.machine.cluster import ClusterSpec
from repro.machine.node import NodeSpec
from repro.spechpc import get_benchmark
from repro.spechpc.lbm import Lbm
from repro.spechpc.minisweep import Minisweep


def test_ablation_minisweep_recv_first(benchmark):
    """The fixed ordering removes the prime-count serialization."""

    def build():
        buggy = Minisweep(recv_first=False)
        fixed = Minisweep(recv_first=True)
        out = {}
        for n in (58, 59, 64):
            out[n] = (
                run(buggy, CLUSTER_A, n).elapsed,
                run(fixed, CLUSTER_A, n).elapsed,
            )
        return out

    times = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (n, f"{t_bug:.2f}", f"{t_fix:.2f}", f"{t_bug / t_fix:.2f}x")
        for n, (t_bug, t_fix) in times.items()
    ]
    print()
    print(
        ascii_table(
            ["procs", "send-first (SPEC) [s]", "recv-first (fixed) [s]", "gain"],
            rows,
            title="Ablation: minisweep communication ordering on ClusterA",
        )
    )
    # the fix removes the rendezvous ripple (one chain-unwind per octant);
    # the rest of the 59-proc penalty is the 1D decomposition itself
    # (double-size faces and the inherent wavefront pipeline)
    assert times[59][1] < 0.95 * times[59][0]
    # the gain is concentrated at the bad count, not the benign ones
    gain59 = times[59][0] / times[59][1]
    gain64 = times[64][0] / times[64][1]
    assert gain59 > gain64
    # at a benign count the orderings are comparable
    assert times[64][1] < 1.1 * times[64][0] + 1e-9


def test_ablation_lbm_no_barrier(benchmark):
    """Removing the avoidable barrier reduces the penalty of slow-rank
    classes (they only couple through the halo now)."""

    def build():
        with_b = Lbm(use_barrier=True)
        without_b = Lbm(use_barrier=False)
        out = {}
        for n in (71, 72):
            out[n] = (
                run(with_b, CLUSTER_A, n).elapsed,
                run(without_b, CLUSTER_A, n).elapsed,
            )
        return out

    times = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (n, f"{a:.1f}", f"{b:.1f}", f"{100 * (a - b) / a:.1f}%")
        for n, (a, b) in times.items()
    ]
    print()
    print(
        ascii_table(
            ["procs", "with barrier [s]", "without [s]", "saved"],
            rows,
            title="Ablation: lbm end-of-iteration MPI_Barrier on ClusterA",
        )
    )
    # the barrier is redundant with the halo coupling: removing it never
    # hurts, and it costs nothing because the slow rank class already
    # paces its neighbors through the halo waits — which is exactly why
    # the paper calls it avoidable
    for n, (a, b) in times.items():
        assert b <= a * (1 + 1e-9), n


def test_ablation_snc_off(benchmark):
    """With SNC disabled the whole socket is one NUMA domain: the
    bandwidth saturation knee moves outward and the half-socket speedup
    of a memory-bound code drops."""
    cpu_snc_off = dataclasses.replace(CLUSTER_A.node.cpu, numa_domains=1)
    cluster_off = ClusterSpec(
        name="ClusterA-snc-off",
        node=NodeSpec(
            cpu=cpu_snc_off,
            sockets=2,
            memory_bytes=CLUSTER_A.node.memory_bytes,
        ),
        network=CLUSTER_A.network,
        max_nodes=CLUSTER_A.max_nodes,
    )
    tealeaf = get_benchmark("tealeaf")

    def build():
        counts = [1, 4, 9, 18, 36]
        on = scaling_sweep(tealeaf, CLUSTER_A, counts)
        off = scaling_sweep(tealeaf, cluster_off, counts)
        return on.speedups(), off.speedups()

    sp_on, sp_off = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [(n, f"{sp_on[n]:.2f}", f"{sp_off[n]:.2f}") for n in sp_on]
    print()
    print(
        ascii_table(
            ["procs", "SNC on (2 domains/socket)", "SNC off (1 domain)"],
            rows,
            title="Ablation: Sub-NUMA Clustering, tealeaf on ClusterA",
        )
    )
    # identical saturated speedup at the full socket...
    assert sp_off[36] == pytest.approx(sp_on[36], rel=0.1)
    # ...but inside the first 18 cores SNC-off keeps scaling further
    # (one shared pool saturates later), SNC-on has already flattened
    assert sp_off[18] > sp_on[18] * 1.2


def test_ablation_low_idle_power_restores_throttling(benchmark):
    """With a 2012-grade idle power, concurrency throttling of a
    memory-bound code saves real energy again (Sect. 4.3's contrast)."""
    cpu_low_idle = dataclasses.replace(
        CLUSTER_A.node.cpu, idle_power_w=22.0
    )
    cluster_low = ClusterSpec(
        name="ClusterA-low-idle",
        node=NodeSpec(
            cpu=cpu_low_idle, sockets=2, memory_bytes=CLUSTER_A.node.memory_bytes
        ),
        network=CLUSTER_A.network,
        max_nodes=CLUSTER_A.max_nodes,
    )
    tealeaf = get_benchmark("tealeaf")
    # concurrency throttling operates WITHIN one ccNUMA domain: fewer
    # active cores, same saturated bandwidth, same runtime
    counts = list(range(3, 19))

    def build():
        modern = concurrency_throttling_saves(
            zplot(scaling_sweep(tealeaf, CLUSTER_A, counts))
        )
        vintage = concurrency_throttling_saves(
            zplot(scaling_sweep(tealeaf, cluster_low, counts))
        )
        return modern, vintage

    modern, vintage = benchmark.pedantic(build, rounds=1, iterations=1)
    print(
        f"\nthrottling saving, tealeaf on one ccNUMA domain: "
        f"modern idle (98 W) {100 * modern:.1f}%  vs  "
        f"2012-grade idle (22 W) {100 * vintage:.1f}%"
    )
    # low idle power makes throttling clearly more attractive
    assert vintage > 1.5 * modern
    assert vintage > 0.12      # worthwhile on the old power envelope
    assert modern < 0.12       # minor on the new one (the paper's point)


def test_ablation_hybrid_mpi_openmp(benchmark):
    """Future work, implemented: at 72 cores of ClusterA, 18 ranks x 4
    threads cut soma's replicated memory traffic and reduction time."""
    from repro.harness import run as run_one
    from repro.units import GB

    def build():
        out = {}
        for name in ("soma", "tealeaf"):
            b = get_benchmark(name)
            pure = run_one(b, CLUSTER_A, 72)
            hybrid = run_one(b, CLUSTER_A, 18, threads_per_rank=4)
            out[name] = (pure, hybrid)
        return out

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, (pure, hybrid) in results.items():
        rows.append(
            (
                name,
                f"{pure.elapsed:.1f}",
                f"{hybrid.elapsed:.1f}",
                f"{pure.mem_volume / GB:.0f}",
                f"{hybrid.mem_volume / GB:.0f}",
            )
        )
    print()
    print(
        ascii_table(
            ["benchmark", "72 ranks [s]", "18r x 4t [s]",
             "MPI-only volume [GB]", "hybrid volume [GB]"],
            rows,
            title="Ablation: hybrid MPI+OpenMP on 72 ClusterA cores",
        )
    )
    soma_pure, soma_hybrid = results["soma"]
    assert soma_hybrid.mem_volume < 0.7 * soma_pure.mem_volume
    assert soma_hybrid.elapsed < soma_pure.elapsed
    # tealeaf (no replication): roughly unchanged
    t_pure, t_hybrid = results["tealeaf"]
    assert t_hybrid.elapsed == pytest.approx(t_pure.elapsed, rel=0.25)
