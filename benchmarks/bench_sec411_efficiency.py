"""Sect. 4.1.1: parallel efficiency across ccNUMA domains (tiny suite).

Regenerates the paper's efficiency table — speedup of the full node over
one ccNUMA domain, divided by the domain count — for all nine benchmarks
on both clusters, printed next to the paper's measured percentages.
"""

import pytest

from _shared import ALL_BENCH_NAMES, PAPER_EFFICIENCY, domain_run, full_node_run
from repro.analysis import domain_efficiency
from repro.harness.report import ascii_table
from repro.machine import get_cluster


def _efficiency_row(cluster_name: str, bench: str) -> float:
    cluster = get_cluster(cluster_name)
    return 100 * domain_efficiency(
        domain_run(cluster_name, bench),
        full_node_run(cluster_name, bench),
        cluster.node.numa_domains,
    )


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_domain_efficiency_table(benchmark, cluster_name):
    def build():
        return {b: _efficiency_row(cluster_name, b) for b in ALL_BENCH_NAMES}

    effs = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (b, f"{effs[b]:.0f}", PAPER_EFFICIENCY[cluster_name][b])
        for b in ALL_BENCH_NAMES
    ]
    print()
    print(
        ascii_table(
            ["Benchmark", "measured eff. %", "paper eff. %"],
            rows,
            title=f"Sect. 4.1.1 parallel efficiency, {cluster_name} "
            "(ccNUMA-domain baseline)",
        )
    )
    # shape assertions: the strongly memory-bound codes scale ~ideally
    for name in ("tealeaf", "pot3d", "cloverleaf"):
        assert 85 <= effs[name] <= 115, name
    # weather is superlinear on ClusterB
    if cluster_name == "ClusterB":
        assert effs["weather"] > 105
        assert effs["weather"] == max(effs.values())
