"""Fig. 1: tiny-suite node-level scaling and performance.

(a, d) Speedup (min/avg/max over repeated runs) versus process count with
ccNUMA-domain boundaries; lbm and minisweep fluctuate reproducibly.
(b-c, e-f) DP performance and its vectorized-only part (DP-AVX) for the
memory-bound and non-memory-bound groups.
"""

import pytest

from _shared import ALL_BENCH_NAMES, node_sweep
from repro.analysis.speedup import speedup_table
from repro.harness.report import ascii_plot, ascii_table
from repro.machine import get_cluster
from repro.spechpc import get_benchmark


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig1_speedup_curves(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    dom = cluster.node.cores_per_domain

    def build():
        return {b: node_sweep(cluster_name, b) for b in ALL_BENCH_NAMES}

    sweeps = benchmark.pedantic(build, rounds=1, iterations=1)

    # table: min/avg/max speedup at domain multiples
    marks = [1, dom, 2 * dom, cluster.node.cores // 2, cluster.node.cores]
    rows = []
    for b in ALL_BENCH_NAMES:
        stats = dict(
            (n, (lo, avg, hi)) for n, lo, avg, hi in speedup_table(sweeps[b])
        )
        cells = [
            f"{stats[n][1]:.1f} [{stats[n][0]:.1f},{stats[n][2]:.1f}]"
            if n in stats
            else "-"
            for n in marks
        ]
        rows.append((b, *cells))
    print()
    print(
        ascii_table(
            ["Benchmark"] + [f"n={n}" for n in marks],
            rows,
            title=f"Fig. 1({'a' if cluster_name == 'ClusterA' else 'd'}) "
            f"{cluster_name} speedup avg [min,max] "
            f"(domain = {dom} cores)",
        )
    )

    # plot: saturating vs scalable vs fluctuating codes
    xs = sweeps["tealeaf"].proc_counts
    series = {
        name: [sweeps[name].speedups()[n] for n in xs]
        for name in ("tealeaf", "lbm", "minisweep", "sph-exa")
    }
    print()
    print(
        ascii_plot(
            xs,
            series,
            title=f"Fig. 1 {cluster_name}: speedup vs processes",
            ylabel="speedup",
        )
    )

    # shape assertions
    sat = sweeps["tealeaf"].speedups()
    assert sat[dom] < 0.6 * dom          # saturates inside the domain
    full = cluster.node.cores
    assert sat[full] > 3.0 * sat[dom] * 0.9  # but scales across domains
    lbm_percore = [
        sweeps["lbm"].speedups()[n] / n for n in xs if n >= dom
    ]
    assert max(lbm_percore) / min(lbm_percore) > 1.08  # fluctuations


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig1_dp_vs_dpavx_performance(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    full = cluster.node.cores

    def build():
        out = {}
        for b in ALL_BENCH_NAMES:
            best = node_sweep(cluster_name, b).point(full).best
            out[b] = (best.gflops, best.gflops_avx)
        return out

    perf = benchmark.pedantic(build, rounds=1, iterations=1)
    groups = {
        "memory-bound": [b for b in ALL_BENCH_NAMES if get_benchmark(b).info.memory_bound],
        "non-memory-bound": [
            b for b in ALL_BENCH_NAMES if not get_benchmark(b).info.memory_bound
        ],
    }
    for gname, members in groups.items():
        rows = [
            (b, f"{perf[b][0]:.1f}", f"{perf[b][1]:.1f}",
             f"{100 * perf[b][1] / perf[b][0]:.0f}%")
            for b in members
        ]
        print()
        print(
            ascii_table(
                ["Benchmark", "DP Gflop/s", "DP-AVX Gflop/s", "SIMD share"],
                rows,
                title=f"Fig. 1(b-c/e-f) {cluster_name} full node, {gname} codes",
            )
        )
    # a well-vectorized code has a small DP vs DP-AVX difference
    assert perf["cloverleaf"][1] / perf["cloverleaf"][0] > 0.9
    assert perf["soma"][1] / perf["soma"][0] < 0.1
