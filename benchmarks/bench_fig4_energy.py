"""Fig. 4 + Sect. 4.3: energy to solution and energy-delay product.

(a, b) Z-plots — CPU+DRAM energy versus speedup with the core count as
parameter.  On these CPUs the baseline power dominates, so energy falls
monotonically with speedup, the E and EDP minima (nearly) coincide at the
fastest point, and concurrency throttling saves almost nothing:
**race-to-idle**.
(c) Total energy versus process count — fluctuating codes (lbm,
minisweep) must avoid their low-performance operating points.
"""

import pytest

from _shared import ALL_BENCH_NAMES, node_sweep
from repro.analysis.energy import (
    concurrency_throttling_saves,
    edp_minimum,
    energy_minimum,
    race_to_idle_holds,
    zplot,
)
from repro.harness.report import ascii_plot, ascii_table
from repro.machine import get_cluster


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig4_zplot_race_to_idle(benchmark, cluster_name):
    def build():
        return {b: zplot(node_sweep(cluster_name, b)) for b in ALL_BENCH_NAMES}

    plots = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for b in ALL_BENCH_NAMES:
        pts = plots[b]
        emin = energy_minimum(pts)
        edpmin = edp_minimum(pts)
        fastest = max(pts, key=lambda p: p.speedup)
        saving = concurrency_throttling_saves(pts)
        rows.append(
            (
                b,
                emin.nprocs,
                edpmin.nprocs,
                fastest.nprocs,
                f"{100 * saving:.1f}%",
                "yes" if race_to_idle_holds(pts) else "NO",
            )
        )
    print()
    print(
        ascii_table(
            ["Benchmark", "E-min @n", "EDP-min @n", "fastest @n",
             "throttling saving", "race-to-idle"],
            rows,
            title=f"Fig. 4(a/b) {cluster_name}: energy/EDP minima "
            "(paper: minima practically identical, throttling saves little)",
        )
    )

    # Z-plot for one memory-bound code (the classic throttling candidate)
    pts = plots["pot3d"]
    print()
    print(
        ascii_plot(
            [p.speedup for p in pts],
            {"pot3d": [p.energy / 1e3 for p in pts]},
            width=60,
            height=12,
            title=f"{cluster_name} pot3d Z-plot: energy [kJ] vs speedup",
        )
    )

    # the paper's headline: race-to-idle holds for every benchmark
    for b in ALL_BENCH_NAMES:
        assert race_to_idle_holds(plots[b]), b
    # and throttling saves only a minor amount even for memory-bound codes
    for b in ("tealeaf", "cloverleaf", "pot3d", "hpgmgfv"):
        assert concurrency_throttling_saves(plots[b]) < 0.12, b


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig4_total_energy_vs_processes(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)

    def build():
        return {
            b: node_sweep(cluster_name, b)
            for b in ("lbm", "minisweep", "tealeaf")
        }

    sweeps = benchmark.pedantic(build, rounds=1, iterations=1)
    xs = list(sweeps["lbm"].proc_counts)
    series = {
        b: [sweeps[b].point(n).best.total_energy / 1e3 for n in xs]
        for b in sweeps
    }
    print()
    print(
        ascii_plot(
            xs,
            series,
            title=f"Fig. 4(c) {cluster_name}: total energy [kJ] vs processes",
            ylabel="kJ",
            logy=True,
        )
    )
    # energy decreases strongly toward full node for all three
    for b, ys in series.items():
        assert ys[-1] < 0.5 * ys[0], b
    # fluctuating codes: energy at bad counts pops above the envelope
    lbm = series["lbm"][len(xs) // 2 :]
    assert max(lbm) / min(lbm) > 1.05
