"""Bench-suite conftest: shared-data imports and the perf-trajectory
artifact (``--json``)."""

import json
import os
import platform
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        nargs="?",
        const="BENCH_engine.json",
        metavar="PATH",
        help="write engine-microbench records to a perf-trajectory JSON "
        "artifact (default path: BENCH_engine.json)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "paperscale: full 64-node paper-scale engine cases (minutes-long; "
        "deselect with -m 'not paperscale')",
    )
    config._engine_records = []


@pytest.fixture
def perf_records(request):
    """Append dict records here; they land in the ``--json`` artifact."""
    return request.config._engine_records


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json")
    records = getattr(session.config, "_engine_records", [])
    if path is None or not records:
        return
    artifact = {
        "schema": "repro-engine-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cases": records,
    }
    with open(path, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {len(records)} engine-bench record(s) to {path}")
