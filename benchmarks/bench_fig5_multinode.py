"""Fig. 5: small-suite multi-node strong scaling.

(a, d) Speedup versus node count, (b, e) per-node memory bandwidth
(horizontal = perfect scaling, declining = communication or cache
effects, rising = soma's replication anomaly), (c, f) aggregate memory
data volume (drop = cache effect, rise = replication).
Also checks the Sect. 5.1.3 cluster-comparison statements.
"""

import pytest

from _shared import ALL_BENCH_NAMES, multinode_sweep
from repro.harness.report import ascii_plot, ascii_table
from repro.machine import get_cluster
from repro.units import GB

NODES = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig5_multinode_scaling(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    cores = cluster.node.cores

    def build():
        return {b: multinode_sweep(cluster_name, b) for b in ALL_BENCH_NAMES}

    sweeps = benchmark.pedantic(build, rounds=1, iterations=1)

    # (a/d) speedup table
    rows = []
    for b in ALL_BENCH_NAMES:
        sp = sweeps[b].speedups()
        rows.append((b, *(f"{sp[n * cores]:.1f}" for n in NODES)))
    print()
    print(
        ascii_table(
            ["Benchmark"] + [f"{n} nodes" for n in NODES],
            rows,
            title=f"Fig. 5(a/d) {cluster_name} speedup (small suite, ideal = node count)",
        )
    )

    # (b/e) per-node memory bandwidth
    rows = []
    for b in ALL_BENCH_NAMES:
        rows.append(
            (
                b,
                *(
                    f"{sweeps[b].point(n * cores).best.per_node_bandwidth / GB:.0f}"
                    for n in NODES
                ),
            )
        )
    print()
    print(
        ascii_table(
            ["Benchmark"] + [f"{n} nodes" for n in NODES],
            rows,
            title=f"Fig. 5(b/e) {cluster_name} per-node memory bandwidth [GB/s]",
        )
    )

    # (c/f) aggregate memory data volume
    rows = []
    for b in ALL_BENCH_NAMES:
        rows.append(
            (
                b,
                *(
                    f"{sweeps[b].point(n * cores).best.mem_volume / 1e12:.2f}"
                    for n in NODES
                ),
            )
        )
    print()
    print(
        ascii_table(
            ["Benchmark"] + [f"{n} nodes" for n in NODES],
            rows,
            title=f"Fig. 5(c/f) {cluster_name} total memory data volume [TB]",
        )
    )

    sp16 = {b: sweeps[b].speedups()[16 * cores] for b in ALL_BENCH_NAMES}
    # pot3d superlinear; weather superlinear-to-linear; poor trio below 8x
    assert sp16["pot3d"] > 16.3
    assert sp16["weather"] > 12.0
    for b in ("soma", "sph-exa"):
        assert sp16[b] < 9.0, b
    assert sp16["minisweep"] < 11.5
    # soma's aggregate volume rises ~linearly with nodes (replication)
    soma_vol = [
        sweeps["soma"].point(n * cores).best.mem_volume for n in NODES
    ]
    assert soma_vol[-1] > 5 * soma_vol[0]
    # all codes except soma have non-increasing per-node bandwidth trend
    soma_bw = [
        sweeps["soma"].point(n * cores).best.per_node_bandwidth for n in NODES
    ]
    assert soma_bw[-1] > 1.3 * soma_bw[0]


def test_sec513_cluster_comparison(benchmark):
    """Sect. 5.1.3: qualitative consistency across clusters; weather's
    superlinearity stronger on B at intermediate scales; cloverleaf and
    sph-exa scale slightly worse on B due to higher single-node baselines."""

    def build():
        out = {}
        for cl in ("ClusterA", "ClusterB"):
            cores = get_cluster(cl).node.cores
            out[cl] = {
                b: multinode_sweep(cl, b).speedups()
                for b in ("weather", "cloverleaf", "sph-exa")
            }
        return out

    sp = benchmark.pedantic(build, rounds=1, iterations=1)
    ca, cb = get_cluster("ClusterA"), get_cluster("ClusterB")
    rows = []
    for b in ("weather", "cloverleaf", "sph-exa"):
        a8 = sp["ClusterA"][b][8 * ca.node.cores]
        b8 = sp["ClusterB"][b][8 * cb.node.cores]
        rows.append((b, f"{a8:.2f}", f"{b8:.2f}"))
    print()
    print(
        ascii_table(
            ["Benchmark", "A speedup @8 nodes", "B speedup @8 nodes"],
            rows,
            title="Sect. 5.1.3 cluster comparison (small suite)",
        )
    )
    # weather superlinear on both, stronger on B at 8 nodes
    assert sp["ClusterB"]["weather"][8 * cb.node.cores] > sp["ClusterA"]["weather"][
        8 * ca.node.cores
    ]
    # sph-exa scales worse on B (higher single-node baseline)
    assert (
        sp["ClusterB"]["sph-exa"][16 * cb.node.cores]
        < sp["ClusterA"]["sph-exa"][16 * ca.node.cores]
    )
