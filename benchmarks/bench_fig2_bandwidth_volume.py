"""Fig. 2: node-level bandwidth and data-volume behavior (tiny suite).

(a-b) Memory bandwidth versus process count — hpgmgfv, cloverleaf,
tealeaf, pot3d (and partly weather) draw a significant fraction of the
node bandwidth; the first four saturate each ccNUMA domain.
(c-d) L3 and L2 bandwidths — on a victim-cache CPU, L3 traffic can exceed
L2 traffic (pot3d).
(e-h) Memory/L3/L2 data volumes.
"""

import pytest

from _shared import ALL_BENCH_NAMES, node_sweep
from repro.harness.report import ascii_plot, ascii_table
from repro.machine import get_cluster
from repro.units import GB


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig2_memory_bandwidth(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    dom = cluster.node.cores_per_domain
    full = cluster.node.cores

    def build():
        return {b: node_sweep(cluster_name, b) for b in ALL_BENCH_NAMES}

    sweeps = benchmark.pedantic(build, rounds=1, iterations=1)

    xs = list(sweeps["tealeaf"].proc_counts)
    series = {
        b: [sweeps[b].point(n).best.mem_bandwidth / GB for n in xs]
        for b in ("tealeaf", "pot3d", "hpgmgfv", "weather", "lbm", "soma")
    }
    print()
    print(
        ascii_plot(
            xs,
            series,
            title=f"Fig. 2(a-b) {cluster_name} memory bandwidth [GB/s] vs processes",
            ylabel="GB/s",
        )
    )

    rows = []
    for b in ALL_BENCH_NAMES:
        bw_dom = sweeps[b].point(dom).best.mem_bandwidth / GB
        bw_full = sweeps[b].point(full).best.mem_bandwidth / GB
        rows.append((b, f"{bw_dom:.1f}", f"{bw_full:.1f}"))
    sat_dom = cluster.node.cpu.domain_memory_bw / GB
    sat_full = cluster.node.sustained_memory_bw / GB
    print()
    print(
        ascii_table(
            ["Benchmark", f"BW @ 1 domain (sat {sat_dom:.0f})",
             f"BW @ full node (sat {sat_full:.0f})"],
            rows,
            title=f"{cluster_name} memory bandwidth [GB/s]",
        )
    )

    # the paper's saturation statement: tealeaf/cloverleaf/pot3d saturate
    # the domain; hpgmgfv weakly; the rest stay well below
    for b in ("tealeaf", "cloverleaf", "pot3d"):
        assert sweeps[b].point(dom).best.mem_bandwidth >= 0.9 * sat_dom * GB
    for b in ("lbm", "soma", "minisweep", "sph-exa"):
        assert sweeps[b].point(dom).best.mem_bandwidth < 0.75 * sat_dom * GB


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig2_cache_bandwidth_and_volumes(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    full = cluster.node.cores

    def build():
        out = {}
        for b in ALL_BENCH_NAMES:
            best = node_sweep(cluster_name, b).point(full).best
            out[b] = (
                best.mem_bandwidth / GB,
                best.l3_bandwidth / GB,
                best.l2_bandwidth / GB,
                best.mem_volume / GB,
                best.counters["l3_bytes"] / GB,
                best.counters["l2_bytes"] / GB,
            )
        return out

    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (b, *(f"{v:.0f}" for v in data[b]))
        for b in ALL_BENCH_NAMES
    ]
    print()
    print(
        ascii_table(
            ["Benchmark", "mem GB/s", "L3 GB/s", "L2 GB/s",
             "mem vol GB", "L3 vol GB", "L2 vol GB"],
            rows,
            title=f"Fig. 2(c-h) {cluster_name} full-node cache/memory traffic",
        )
    )
    # victim-L3 signature: pot3d's L3 traffic exceeds its L2 traffic
    assert data["pot3d"][1] > data["pot3d"][2]
