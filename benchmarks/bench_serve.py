"""Serving load smoke: the answer ladder under a mixed request stream.

Drives ≥200 requests at a loopback ``repro serve`` instance — a
deterministic mix of warm-cache repeats, band-negotiated predictions
and a trickle of cold specs — and holds the service to its operational
contract:

* after warmup, ≥95% of the stream is answered **without** a DES
  execution (the whole point of the cache + predictor front);
* warm-cache repeats cost **zero** engine executions (ground truth:
  :func:`repro.harness.runner.engine_run_count`, not server
  bookkeeping) with a p99 under the 50 ms budget;
* ``/metrics`` accounting matches what the client observed.

Run with ``--json BENCH_serve.json`` to emit the per-ladder-level
latency artifact the CI serving job uploads.
"""

import os
import time

from repro.harness.runner import engine_run_count
from repro.serve import ServeApp, ServeClient, loopback_server

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "tests", "golden")

#: the mixed stream: 200 requests, ≤5% of them cold DES
N_WARM_SPECS = 6
N_STREAM = 200
N_COLD = 6
N_PREDICT = 24

#: warm-repeat latency budget (loopback p99, milliseconds)
WARM_P99_BUDGET_MS = 50.0

#: post-warmup floor on answers that needed no fresh DES execution
HIT_RATE_FLOOR = 0.95

WARM_SPECS = [
    {"benchmark": b, "cluster": c, "nnodes": 1}
    for b in ("soma", "tealeaf", "minisweep")
    for c in ("A", "B")
][:N_WARM_SPECS]


def _percentile(samples, q):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def test_serve_load_smoke(perf_records):
    app = ServeApp(workers=2, golden_dir=GOLDEN_DIR)
    with loopback_server(app) as (host, port):
        client = ServeClient(host, port)

        # --- warmup: populate the store with the repeat set ------------
        base_runs = engine_run_count()
        for spec in WARM_SPECS:
            assert client.run(spec).source == "des"
        assert engine_run_count() - base_runs == N_WARM_SPECS

        # --- the mixed stream ------------------------------------------
        # deterministic interleave: mostly warm repeats, a predict
        # request every ~8th slot, a cold spec every ~33rd
        latencies: dict[str, list[float]] = {}
        sources = {"store": 0, "predict": 0, "des": 0, "coalesced": 0}
        cold_used = predict_used = 0
        runs_before = engine_run_count()
        for i in range(N_STREAM):
            if i % 33 == 5 and cold_used < N_COLD:
                spec = {**WARM_SPECS[cold_used], "seed": 9000 + cold_used}
                band = None
                cold_used += 1
            elif i % 8 == 3 and predict_used < N_PREDICT:
                spec = {**WARM_SPECS[predict_used % N_WARM_SPECS],
                        "seed": 100 + predict_used}
                band = 0.25
                predict_used += 1
            else:
                spec = WARM_SPECS[i % N_WARM_SPECS]
                band = None
            t0 = time.perf_counter()
            answer = client.run(spec, max_band=band)
            dt = time.perf_counter() - t0
            sources[answer.source] += 1
            latencies.setdefault(answer.source, []).append(dt)
        stream_des = engine_run_count() - runs_before

        assert cold_used == N_COLD and predict_used == N_PREDICT
        assert sources["des"] == stream_des == N_COLD
        hit_rate = 1.0 - sources["des"] / N_STREAM
        assert hit_rate >= HIT_RATE_FLOOR, (
            f"only {100 * hit_rate:.1f}% of the stream avoided the engine"
        )

        # --- warm-repeat latency: zero DES, p99 inside the budget ------
        runs_before = engine_run_count()
        warm_lat = []
        for i in range(100):
            t0 = time.perf_counter()
            answer = client.run(WARM_SPECS[i % N_WARM_SPECS])
            warm_lat.append(time.perf_counter() - t0)
            assert answer.source == "store"
        assert engine_run_count() == runs_before, (
            "a warm-cache repeat invoked the engine"
        )
        warm_p99_ms = 1e3 * _percentile(warm_lat, 0.99)
        assert warm_p99_ms < WARM_P99_BUDGET_MS, (
            f"warm-repeat p99 {warm_p99_ms:.2f} ms over the "
            f"{WARM_P99_BUDGET_MS:.0f} ms budget"
        )

        # --- the server's own accounting must agree --------------------
        metrics = client.metrics()
        assert metrics["des_runs"] == N_WARM_SPECS + N_COLD
        assert engine_run_count() - base_runs == N_WARM_SPECS + N_COLD
        assert metrics["answers"]["store"] == sources["store"] + 100
        assert metrics["answers"]["predict"] == N_PREDICT
        assert metrics["store"]["entries"] == N_WARM_SPECS + N_COLD

        record = {
            "case": "serve_load_smoke",
            "requests": N_STREAM + N_WARM_SPECS + 100,
            "stream_hit_rate": hit_rate,
            "des_runs": metrics["des_runs"],
            "warm_p99_ms": warm_p99_ms,
            "levels": {},
        }
        for source, samples in latencies.items():
            record["levels"][source] = {
                "count": len(samples),
                "p50_ms": 1e3 * _percentile(samples, 0.50),
                "p99_ms": 1e3 * _percentile(samples, 0.99),
            }
        perf_records.append(record)

        print()
        print(f"  stream: {N_STREAM} requests, hit rate "
              f"{100 * hit_rate:.1f}%, {stream_des} DES run(s)")
        for source in ("store", "predict", "des"):
            if source in latencies:
                lvl = record["levels"][source]
                print(f"  {source:8s} n={lvl['count']:3d}  "
                      f"p50={lvl['p50_ms']:7.2f} ms  "
                      f"p99={lvl['p99_ms']:7.2f} ms")
        print(f"  warm-repeat p99: {warm_p99_ms:.2f} ms "
              f"(budget {WARM_P99_BUDGET_MS:.0f} ms)")
