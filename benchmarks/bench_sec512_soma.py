"""Sect. 5.1.2: the intriguing non-memory-bound case of soma.

soma spends the majority of its communication time in MPI reductions,
stops scaling beyond a few nodes, yet its *per-node* memory bandwidth
rises with node count before flattening at a plateau far below the
machine limit — because every rank updates a replicated density field
whose traffic does not strong-scale.
"""

from _shared import multinode_sweep
from repro.harness.report import ascii_plot, ascii_table
from repro.machine import get_cluster
from repro.units import GB

NODES = (1, 2, 4, 8, 16)


def test_soma_replication_anomaly(benchmark):
    def build():
        return {cl: multinode_sweep(cl, "soma") for cl in ("ClusterA", "ClusterB")}

    sweeps = benchmark.pedantic(build, rounds=1, iterations=1)
    for cl, sweep in sweeps.items():
        cores = get_cluster(cl).node.cores
        rows = []
        for n in NODES:
            best = sweep.point(n * cores).best
            mpi = {
                k: v for k, v in best.time_by_kind.items() if k.startswith("MPI_")
            }
            dominant = max(mpi, key=mpi.get) if mpi else "-"
            rows.append(
                (
                    n,
                    f"{sweep.speedups()[n * cores]:.2f}",
                    f"{best.per_node_bandwidth / GB:.0f}",
                    f"{best.mem_volume / GB:.0f}",
                    f"{100 * best.mpi_fraction:.0f}%",
                    dominant,
                )
            )
        print()
        print(
            ascii_table(
                ["Nodes", "speedup", "per-node BW [GB/s]", "total volume [GB]",
                 "MPI share", "dominant MPI call"],
                rows,
                title=f"Sect. 5.1.2 soma on {cl}",
            )
        )

    a = sweeps["ClusterA"]
    cores_a = get_cluster("ClusterA").node.cores
    bw = [a.point(n * cores_a).best.per_node_bandwidth for n in NODES]
    vol = [a.point(n * cores_a).best.mem_volume for n in NODES]
    sp = a.speedups()

    # per-node bandwidth rises, then flattens far below the ~307 GB/s limit
    assert bw[2] > 1.2 * bw[0]
    assert bw[-1] < 0.75 * get_cluster("ClusterA").node.sustained_memory_bw
    assert bw[-1] / bw[-2] < 1.5  # flattening
    # aggregate traffic rises ~linearly with node count (replicated data)
    assert 0.45 * 16 < vol[-1] / vol[0] <= 16.5
    # scaling is poor and the dominant MPI call is the reduction
    assert sp[16 * cores_a] < 8
    last = a.point(16 * cores_a).best
    mpi = {k: v for k, v in last.time_by_kind.items() if k.startswith("MPI_")}
    assert max(mpi, key=mpi.get) == "MPI_Allreduce"
    # the paper's question: does soma become memory bound? No — the
    # per-node bandwidth stalls around the plateau while scaling stops.
    print(
        f"\nClusterA plateau: {bw[-1] / GB:.0f} GB/s of "
        f"{get_cluster('ClusterA').node.sustained_memory_bw / GB:.0f} GB/s node limit"
    )
