"""Tables 1 & 2: the SPEChpc 2021 suite registry.

Regenerates the static benchmark-attribute tables of the paper from the
modeled suite: names, language, LOC, dominant collective, key workload
parameters (Table 1) and the numerics/domain summary (Table 2).
"""

from repro.harness.report import ascii_table
from repro.spechpc import all_benchmarks


def _table1_rows():
    rows = []
    for b in all_benchmarks():
        tiny = b.workload("tiny")
        small = b.workload("small")
        key_t = ", ".join(f"{k}={v}" for k, v in list(tiny.params.items())[:3])
        key_s = ", ".join(f"{k}={v}" for k, v in list(small.params.items())[:3])
        rows.append(
            (
                b.name,
                b.info.benchmark_id,
                b.info.language,
                b.info.loc,
                b.info.collective,
                f"{key_t} ({tiny.steps} steps)",
                f"{key_s} ({small.steps} steps)",
            )
        )
    return rows


def test_table1_attributes(benchmark):
    rows = benchmark(_table1_rows)
    print()
    print(
        ascii_table(
            ["Name", "ID", "Language", "LOC", "Collective", "Tiny", "Small"],
            rows,
            title="Table 1: key attributes of the SPEChpc 2021 parallel benchmarks",
        )
    )
    assert len(rows) == 9


def test_table2_numerics(benchmark):
    def build():
        return [
            (b.name, b.info.numerics[:58], b.info.domain)
            for b in all_benchmarks()
        ]

    rows = benchmark(build)
    print()
    print(
        ascii_table(
            ["Name", "Numerical brief information", "Application domain"],
            rows,
            title="Table 2: numeric and domain data of the SPEChpc 2021 suite",
        )
    )
    assert {r[0] for r in rows} == {
        "lbm", "soma", "tealeaf", "cloverleaf", "minisweep",
        "pot3d", "sph-exa", "hpgmgfv", "weather",
    }
