"""Engine microbenchmark: DES fast path, memoization, matching, sweeps,
and the paper-scale replay tiers.

Quantifies the performance work on the simulation engine itself (not a
paper figure): event throughput of the run-queue fast path versus the
pure-heap reference engine, the per-run phase-cost cache, the combined
effect on a full-node tiny sweep, and — with ``-m paperscale`` — full
64-node jobs (the scale of the paper's Figs. 5-6) comparing the
optimized engine (indexed matching + steady-state fast-forward + the
wavefront level-set tier) against the pre-PR reference flags.  Run with
``--json`` to emit the ``BENCH_engine.json`` perf-trajectory artifact.
"""

import os
import time
from dataclasses import replace

import pytest

from _shared import WORKERS
from repro.des import Delay, Signal, Simulator, Wait
from repro.harness import ascii_table, run, scaling_sweep
from repro.machine import get_cluster
from repro.spechpc import get_benchmark

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "tests", "golden")

#: Reference flags restoring the pre-optimization engine end to end
#: (``fast_forward=False`` alone would force the wavefront tier, so the
#: reference must disable both replay tiers explicitly).
PRE_PR_FLAGS = dict(fast_forward=False, matcher="linear", wavefront=False)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _identical(a, b) -> bool:
    """Bit-identical simulation outcome (meta records flag settings, so
    it is excluded; everything physical must match exactly)."""
    return (
        a.elapsed == b.elapsed
        and a.sim_elapsed == b.sim_elapsed
        and a.step_scale == b.step_scale
        and a.counters == b.counters
        and a.time_by_kind == b.time_by_kind
        and a.energy == b.energy
    )


def _barrier_workload(fast_path, nprocs=128, steps=40):
    """Pure-DES BSP skeleton: compute-delay, barrier, repeat.

    Every barrier release is a same-timestamp fan-out to ``nprocs``
    waiters — exactly the traffic the run-queue fast path targets.
    """
    sim = Simulator(fast_path=fast_path)
    state = {"arrived": 0, "gate": Signal()}

    def worker(r):
        for s in range(steps):
            yield Delay(1.0)
            yield Delay(0.0)  # exercises the in-place continuation
            state["arrived"] += 1
            if state["arrived"] == nprocs:
                gate, state["gate"] = state["gate"], Signal()
                state["arrived"] = 0
                gate.fire(s)
            else:
                yield Wait(state["gate"])

    for r in range(nprocs):
        sim.spawn(f"w{r}", worker(r))
    sim.run()
    return sim


def test_des_event_throughput(benchmark):
    def compare():
        t_fast, fast = min(
            (_timed(lambda: _barrier_workload(True)) for _ in range(3)),
            key=lambda tr: tr[0],
        )
        t_ref, ref = min(
            (_timed(lambda: _barrier_workload(False)) for _ in range(3)),
            key=lambda tr: tr[0],
        )
        return fast, t_fast, ref, t_ref

    fast, t_fast, ref, t_ref = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    fs, rs = fast.stats, ref.stats
    rows = [
        ("fast path", fs.events, fs.heap_pushes, fs.runq_events,
         fs.zero_delay_continues, f"{fs.events / t_fast / 1e3:.0f}"),
        ("pure heap", rs.events, rs.heap_pushes, rs.runq_events,
         rs.zero_delay_continues, f"{rs.events / t_ref / 1e3:.0f}"),
    ]
    print()
    print(ascii_table(
        ["engine", "events", "heap pushes", "runq events", "Delay(0)",
         "kEvents/s"],
        rows,
        title="DES engine: 128-rank x 40-step barrier workload",
    ))
    print(f"wall-clock speedup: {t_ref / t_fast:.2f}x")
    # identical virtual outcome ...
    assert fast.now == ref.now
    # ... with most events never touching the heap
    assert fs.runq_events + fs.zero_delay_continues > 0.5 * fs.events
    assert fs.heap_pushes < 0.5 * rs.heap_pushes


def test_memoized_single_run(benchmark):
    cluster = get_cluster("ClusterA")
    bench = get_benchmark("pot3d")
    n = cluster.node.cores

    def compare():
        run(bench, cluster, n)  # warm caches/allocators
        t_fast = min(
            _timed(lambda: run(bench, cluster, n))[0] for _ in range(3)
        )
        fast = run(bench, cluster, n)
        t_ref = min(
            _timed(
                lambda: run(bench, cluster, n, fast_path=False, memoize=False)
            )[0]
            for _ in range(3)
        )
        ref = run(bench, cluster, n, fast_path=False, memoize=False)
        return fast, t_fast, ref, t_ref

    fast, t_fast, ref, t_ref = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print()
    print(f"pot3d full node: optimized {t_fast * 1e3:.1f} ms, "
          f"reference {t_ref * 1e3:.1f} ms "
          f"({t_ref / t_fast:.2f}x)")
    assert fast == ref  # bit-identical results


def test_full_node_sweep_speedup(benchmark):
    """Acceptance target: >= 3x on a full-node tiny sweep with repeats
    for at least one bandwidth-bound code (pot3d / tealeaf).

    Optimized = fast path + memoization + repeat deduplication + worker
    pool; reference = pure-heap engine, no cache, every repeat simulated,
    serial.  With ``noise_sigma == 0`` the repeats are provably identical,
    so the dedup factor (x repeats) is exact, and the worker pool adds
    whatever the host's cores allow on top.
    """
    cluster = get_cluster("ClusterA")
    dom = cluster.node.cores_per_domain
    counts = sorted({1, 2, 4, dom, 2 * dom, cluster.node.cores})
    repeats = 3

    def timed(fn, rounds=3):
        # min over a few rounds: scheduler noise only ever adds time
        best, result = None, None
        for _ in range(rounds):
            dt, result = _timed(fn)
            best = dt if best is None else min(best, dt)
        return best, result

    def one(bench):
        t_opt, opt = timed(lambda: scaling_sweep(
            bench, cluster, counts, repeats=repeats, noise_sigma=0.0,
            workers=WORKERS,
        ))
        t_ref, ref = timed(lambda: scaling_sweep(
            bench, cluster, counts, repeats=repeats, noise_sigma=0.0,
            workers=1, fast_path=False, memoize=False,
            reuse_identical_repeats=False,
        ))
        assert opt == ref  # field-for-field identical series
        return t_opt, t_ref

    def compare():
        out = {}
        for name in ("pot3d", "tealeaf"):
            bench = get_benchmark(name)
            run(bench, cluster, counts[-1])  # warm caches/allocators
            out[name] = one(bench)
        return out

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        (name, f"{t_opt:.2f}", f"{t_ref:.2f}", f"{t_ref / t_opt:.1f}x")
        for name, (t_opt, t_ref) in timings.items()
    ]
    print()
    print(ascii_table(
        ["benchmark", "optimized [s]", "serial/unmemoized [s]", "speedup"],
        rows,
        title=f"Full-node tiny sweep {counts} x {repeats} repeats "
        f"(workers={WORKERS})",
    ))
    best = max(t_ref / t_opt for t_opt, t_ref in timings.values())
    assert best >= 3.0


def test_fast_engine_equivalence_smoke(benchmark, perf_records):
    """CI smoke case: one-node lbm with enough steps for the
    fast-forward to engage; the optimized engine must agree bit-for-bit
    with the pre-PR reference flags (and with each flag individually)."""
    cluster = get_cluster("ClusterA")
    bench = get_benchmark("lbm")
    n = cluster.node.cores
    steps = 12

    def compare():
        run(bench, cluster, n, sim_steps=steps)  # warm caches/allocators
        t_fast, fast = _timed(lambda: run(bench, cluster, n, sim_steps=steps))
        t_ref, ref = _timed(
            lambda: run(bench, cluster, n, sim_steps=steps, **PRE_PR_FLAGS)
        )
        return fast, t_fast, ref, t_ref

    fast, t_fast, ref, t_ref = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert fast.meta["fast_forward"] is True
    assert _identical(fast, ref), "optimized engine diverged from reference"
    for flag in (
        dict(fast_forward=False),           # forces the wavefront tier
        dict(fast_forward=False, wavefront=False),
        dict(matcher="linear"),
        dict(fast_path=False),
        dict(memoize=False),
    ):
        single = run(bench, cluster, n, sim_steps=steps, **flag)
        assert _identical(fast, single), f"divergence under {flag}"
    print()
    print(f"lbm 1-node x {steps} steps: optimized {t_fast:.2f}s, "
          f"pre-PR flags {t_ref:.2f}s ({t_ref / t_fast:.2f}x), bit-identical")
    perf_records.append({
        "case": "smoke_lbm_1node",
        "nprocs": n,
        "sim_steps": steps,
        "optimized_s": round(t_fast, 4),
        "reference_s": round(t_ref, 4),
        "speedup": round(t_ref / t_fast, 3),
        "identical": True,
        "fast_forward_engaged": True,
    })
    assert t_ref / t_fast >= 1.0, "engine regression: smoke case below 1x"


def test_wavefront_smoke(benchmark, perf_records):
    """CI smoke case for the wavefront tier: one-node minisweep — no
    collective, skewed step boundaries — with enough steps for the DAG
    replay to engage; must agree bit-for-bit with the pre-PR reference
    and never regress below it."""
    cluster = get_cluster("ClusterA")
    bench = get_benchmark("minisweep")
    n = cluster.node.cores
    steps = 12

    def compare():
        run(bench, cluster, n, sim_steps=steps)  # warm caches/allocators
        t_fast, fast = _timed(lambda: run(bench, cluster, n, sim_steps=steps))
        t_ref, ref = _timed(
            lambda: run(bench, cluster, n, sim_steps=steps, **PRE_PR_FLAGS)
        )
        return fast, t_fast, ref, t_ref

    fast, t_fast, ref, t_ref = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert fast.meta["wavefront"] is True
    assert ref.meta["wavefront"] is False
    assert _identical(fast, ref), "wavefront tier diverged from reference"
    wf = fast.meta["metrics"]["wavefront"]
    print()
    print(f"minisweep 1-node x {steps} steps: optimized {t_fast:.2f}s, "
          f"pre-PR flags {t_ref:.2f}s ({t_ref / t_fast:.2f}x), "
          f"levels={wf['levels']:.0f}, events_saved={wf['events_saved']:.0f}")
    perf_records.append({
        "case": "smoke_minisweep_1node_wavefront",
        "nprocs": n,
        "sim_steps": steps,
        "optimized_s": round(t_fast, 4),
        "reference_s": round(t_ref, 4),
        "speedup": round(t_ref / t_fast, 3),
        "identical": True,
        "wavefront_engaged": True,
        "dag_levels": wf["levels"],
        "events_saved": wf["events_saved"],
    })
    assert t_ref / t_fast >= 1.0, "engine regression: wavefront smoke below 1x"


def test_paper_scale_grid_predict(benchmark, perf_records):
    """Acceptance gate for the tiered predictor: Tier A answers the full
    paper grid — 9 benchmarks x 2 clusters x {1..64} power-of-two node
    counts, 126 queries — in **under one second total**, every
    golden-covered point within its stated band.  Also records the
    per-benchmark latency and golden-relative error of all three tiers
    (the DES rows make the screening ratio visible in the artifact)."""
    from repro.predict import (
        PredictionSpec,
        SurrogatePredictionTier,
        corpus_from_golden,
        predict,
    )
    from repro.spechpc import SUITE_ORDER

    node_grid = (1, 2, 4, 8, 16, 32, 64)
    corpus = corpus_from_golden(GOLDEN_DIR)
    truth = {(s.benchmark, s.cluster, s.nnodes): s for s in corpus}

    def grid_pass():
        t0 = time.perf_counter()
        out = {}
        for name in SUITE_ORDER:
            for cl in ("A", "B"):
                for nnodes in node_grid:
                    out[name, cl, nnodes] = predict(
                        PredictionSpec(name, cl, nnodes), tier="analytic"
                    )
        return time.perf_counter() - t0, out

    def compare():
        grid_pass()  # warm caches/allocators
        return min((grid_pass() for _ in range(2)), key=lambda tr: tr[0])

    t_grid, preds = benchmark.pedantic(compare, rounds=1, iterations=1)

    rows = []
    for name in SUITE_ORDER:
        # analytic: latency re-measured per benchmark, error vs golden
        t0 = time.perf_counter()
        for cl in ("A", "B"):
            for nnodes in node_grid:
                predict(PredictionSpec(name, cl, nnodes), tier="analytic")
        t_analytic = (time.perf_counter() - t0) / (2 * len(node_grid))

        gold = [s for s in corpus if s.benchmark == name]
        a_err = s_err = 0.0
        tier_b = SurrogatePredictionTier(corpus)
        t_surr = 0.0
        for s in gold:
            spec = PredictionSpec(
                name, s.cluster, s.nnodes, suite=s.suite, nprocs=s.nprocs
            )
            a = predict(spec, tier="analytic")
            assert abs(a.runtime / s.elapsed - 1.0) <= a.band
            a_err = max(a_err, abs(a.runtime / s.elapsed - 1.0))
            t0 = time.perf_counter()
            b = tier_b.predict(spec)
            t_surr += time.perf_counter() - t0
            s_err = max(s_err, abs(b.runtime / s.elapsed - 1.0))
        t_surr /= len(gold)

        # DES reference latency: one 1-node ground-truth run
        t_des, _ = _timed(lambda: run(
            get_benchmark(name), get_cluster("A"),
            get_cluster("A").cores_per_node,
        ))
        rows.append((name, t_analytic, t_surr, t_des, a_err, s_err))
        perf_records.append({
            "case": f"predict_{name}",
            "analytic_ms": round(1e3 * t_analytic, 3),
            "surrogate_ms": round(1e3 * t_surr, 3),
            "des_ms": round(1e3 * t_des, 1),
            "analytic_rel_err": round(a_err, 4),
            "surrogate_rel_err": round(s_err, 6),
        })

    print()
    print(ascii_table(
        ["benchmark", "analytic [ms]", "surrogate [ms]", "DES [ms]",
         "analytic err", "surrogate err"],
        [(n, f"{a * 1e3:.2f}", f"{s * 1e3:.2f}", f"{d * 1e3:.0f}",
          f"{100 * ae:.1f}%", f"{100 * se:.2g}%")
         for n, a, s, d, ae, se in rows],
        title=f"Tiered prediction vs DES ({len(preds)}-query paper grid "
        f"in {t_grid:.3f}s)",
    ))
    perf_records.append({
        "case": "predict_paper_grid_analytic",
        "queries": len(preds),
        "total_s": round(t_grid, 4),
    })
    assert t_grid < 1.0, (
        f"analytic tier took {t_grid:.2f}s for the paper grid (gate: 1s)"
    )
    # the surrogate is an interpolator: exact at every golden point
    assert all(se < 1e-9 for *_, se in rows)


@pytest.mark.paperscale
def test_paper_scale_64node(benchmark, perf_records):
    """Acceptance targets: >= 5x on the paper-scale 64-node minisweep
    case (the wavefront tier's raison d'être), >= 5x combined, and **no
    case below 1x** — bit-identical throughout.

    lbm (torus halo exchange + allreduce) runs a 128-step slice of its
    600-step tiny workload: its step structure is exactly periodic and
    globally synchronized, so the steady-state fast-forward simulates
    four steps and replays the rest analytically.  minisweep has no
    collective (Table 1) and weather's halo pipeline keeps its step
    boundaries skewed — the synchronized tier declines both, and the
    wavefront tier carries them: the journaled step compiles once into
    a rank x step dependency DAG and the remaining steps replay as
    vectorized level-set relaxation, O(levels) instead of O(events).
    """
    cluster = replace(get_cluster("ClusterA"), max_nodes=64)
    n = 64 * cluster.node.cores
    # (benchmark, sim_steps, expected engaged tier)
    cases = [
        ("lbm", 128, "sync"),
        ("minisweep", 40, "wavefront"),
        ("weather", 128, "wavefront"),
    ]

    def compare():
        out = {}
        for name, steps, tier in cases:
            bench = get_benchmark(name)
            t_fast, fast = _timed(
                lambda: run(bench, cluster, n, sim_steps=steps)
            )
            t_ref, ref = _timed(
                lambda: run(bench, cluster, n, sim_steps=steps, **PRE_PR_FLAGS)
            )
            assert _identical(fast, ref), f"{name} diverged from reference"
            assert fast.meta["fast_forward"] is True, f"{name}: no tier engaged"
            engaged = "wavefront" if fast.meta["wavefront"] else "sync"
            assert engaged == tier, f"{name}: {engaged} engaged, expected {tier}"
            out[name] = (t_fast, t_ref, engaged)
        return out

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        (name, f"{t_fast:.2f}", f"{t_ref:.2f}", f"{t_ref / t_fast:.2f}x", tier)
        for name, (t_fast, t_ref, tier) in timings.items()
    ]
    t_fast_all = sum(v[0] for v in timings.values())
    t_ref_all = sum(v[1] for v in timings.values())
    combined = t_ref_all / t_fast_all
    rows.append(("combined", f"{t_fast_all:.2f}", f"{t_ref_all:.2f}",
                 f"{combined:.2f}x", "-"))
    print()
    print(ascii_table(
        ["case", "optimized [s]", "pre-PR flags [s]", "speedup", "tier"],
        rows,
        title=f"Paper scale: 64 nodes x {cluster.node.cores} ranks "
        f"({n} ranks), bit-identical",
    ))
    for name, (t_fast, t_ref, tier) in timings.items():
        perf_records.append({
            "case": f"paper_scale_{name}_64node",
            "nprocs": n,
            "optimized_s": round(t_fast, 4),
            "reference_s": round(t_ref, 4),
            "speedup": round(t_ref / t_fast, 3),
            "identical": True,
            "tier": tier,
        })
    perf_records.append({
        "case": "paper_scale_combined_64node",
        "optimized_s": round(t_fast_all, 4),
        "reference_s": round(t_ref_all, 4),
        "speedup": round(combined, 3),
    })
    # hard no-regression gate: every case must at least break even
    for name, (t_fast, t_ref, _) in timings.items():
        assert t_ref / t_fast >= 1.0, f"engine regression on {name}"
    assert timings["minisweep"][1] / timings["minisweep"][0] >= 5.0
    assert combined >= 5.0
