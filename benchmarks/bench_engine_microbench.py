"""Engine microbenchmark: DES fast path, memoization, sweep harness.

Quantifies the performance work on the simulation engine itself (not a
paper figure): event throughput of the run-queue fast path versus the
pure-heap reference engine, the per-run phase-cost cache, and the
combined effect on a full-node tiny sweep — the configuration every
figure-producing sweep in this suite runs in.
"""

import time

import pytest

from _shared import WORKERS
from repro.des import Delay, Signal, Simulator, Wait
from repro.harness import ascii_table, run, scaling_sweep
from repro.machine import get_cluster
from repro.spechpc import get_benchmark


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _barrier_workload(fast_path, nprocs=128, steps=40):
    """Pure-DES BSP skeleton: compute-delay, barrier, repeat.

    Every barrier release is a same-timestamp fan-out to ``nprocs``
    waiters — exactly the traffic the run-queue fast path targets.
    """
    sim = Simulator(fast_path=fast_path)
    state = {"arrived": 0, "gate": Signal()}

    def worker(r):
        for s in range(steps):
            yield Delay(1.0)
            yield Delay(0.0)  # exercises the in-place continuation
            state["arrived"] += 1
            if state["arrived"] == nprocs:
                gate, state["gate"] = state["gate"], Signal()
                state["arrived"] = 0
                gate.fire(s)
            else:
                yield Wait(state["gate"])

    for r in range(nprocs):
        sim.spawn(f"w{r}", worker(r))
    sim.run()
    return sim


def test_des_event_throughput(benchmark):
    def compare():
        t_fast, fast = min(
            (_timed(lambda: _barrier_workload(True)) for _ in range(3)),
            key=lambda tr: tr[0],
        )
        t_ref, ref = min(
            (_timed(lambda: _barrier_workload(False)) for _ in range(3)),
            key=lambda tr: tr[0],
        )
        return fast, t_fast, ref, t_ref

    fast, t_fast, ref, t_ref = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    fs, rs = fast.stats, ref.stats
    rows = [
        ("fast path", fs.events, fs.heap_pushes, fs.runq_events,
         fs.zero_delay_continues, f"{fs.events / t_fast / 1e3:.0f}"),
        ("pure heap", rs.events, rs.heap_pushes, rs.runq_events,
         rs.zero_delay_continues, f"{rs.events / t_ref / 1e3:.0f}"),
    ]
    print()
    print(ascii_table(
        ["engine", "events", "heap pushes", "runq events", "Delay(0)",
         "kEvents/s"],
        rows,
        title="DES engine: 128-rank x 40-step barrier workload",
    ))
    print(f"wall-clock speedup: {t_ref / t_fast:.2f}x")
    # identical virtual outcome ...
    assert fast.now == ref.now
    # ... with most events never touching the heap
    assert fs.runq_events + fs.zero_delay_continues > 0.5 * fs.events
    assert fs.heap_pushes < 0.5 * rs.heap_pushes


def test_memoized_single_run(benchmark):
    cluster = get_cluster("ClusterA")
    bench = get_benchmark("pot3d")
    n = cluster.node.cores

    def compare():
        run(bench, cluster, n)  # warm caches/allocators
        t_fast = min(
            _timed(lambda: run(bench, cluster, n))[0] for _ in range(3)
        )
        fast = run(bench, cluster, n)
        t_ref = min(
            _timed(
                lambda: run(bench, cluster, n, fast_path=False, memoize=False)
            )[0]
            for _ in range(3)
        )
        ref = run(bench, cluster, n, fast_path=False, memoize=False)
        return fast, t_fast, ref, t_ref

    fast, t_fast, ref, t_ref = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print()
    print(f"pot3d full node: optimized {t_fast * 1e3:.1f} ms, "
          f"reference {t_ref * 1e3:.1f} ms "
          f"({t_ref / t_fast:.2f}x)")
    assert fast == ref  # bit-identical results


def test_full_node_sweep_speedup(benchmark):
    """Acceptance target: >= 3x on a full-node tiny sweep with repeats
    for at least one bandwidth-bound code (pot3d / tealeaf).

    Optimized = fast path + memoization + repeat deduplication + worker
    pool; reference = pure-heap engine, no cache, every repeat simulated,
    serial.  With ``noise_sigma == 0`` the repeats are provably identical,
    so the dedup factor (x repeats) is exact, and the worker pool adds
    whatever the host's cores allow on top.
    """
    cluster = get_cluster("ClusterA")
    dom = cluster.node.cores_per_domain
    counts = sorted({1, 2, 4, dom, 2 * dom, cluster.node.cores})
    repeats = 3

    def timed(fn, rounds=3):
        # min over a few rounds: scheduler noise only ever adds time
        best, result = None, None
        for _ in range(rounds):
            dt, result = _timed(fn)
            best = dt if best is None else min(best, dt)
        return best, result

    def one(bench):
        t_opt, opt = timed(lambda: scaling_sweep(
            bench, cluster, counts, repeats=repeats, noise_sigma=0.0,
            workers=WORKERS,
        ))
        t_ref, ref = timed(lambda: scaling_sweep(
            bench, cluster, counts, repeats=repeats, noise_sigma=0.0,
            workers=1, fast_path=False, memoize=False,
            reuse_identical_repeats=False,
        ))
        assert opt == ref  # field-for-field identical series
        return t_opt, t_ref

    def compare():
        out = {}
        for name in ("pot3d", "tealeaf"):
            bench = get_benchmark(name)
            run(bench, cluster, counts[-1])  # warm caches/allocators
            out[name] = one(bench)
        return out

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [
        (name, f"{t_opt:.2f}", f"{t_ref:.2f}", f"{t_ref / t_opt:.1f}x")
        for name, (t_opt, t_ref) in timings.items()
    ]
    print()
    print(ascii_table(
        ["benchmark", "optimized [s]", "serial/unmemoized [s]", "speedup"],
        rows,
        title=f"Full-node tiny sweep {counts} x {repeats} repeats "
        f"(workers={WORKERS})",
    ))
    best = max(t_ref / t_opt for t_opt, t_ref in timings.values())
    assert best >= 3.0
