"""Sect. 5.1: the four fundamental multi-node scaling cases.

Classifies every benchmark's small-workload strong scaling (1..16 nodes)
into cases A-D / poor from measured cache-effect (memory-volume drop) and
communication-overhead evidence, next to the paper's table.
"""

import pytest

from _shared import ALL_BENCH_NAMES, PAPER_SCALING_CASES, multinode_sweep
from repro.analysis import classify_scaling
from repro.harness.report import ascii_table


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_scaling_case_table(benchmark, cluster_name):
    def build():
        return {
            b: classify_scaling(multinode_sweep(cluster_name, b))
            for b in ALL_BENCH_NAMES
        }

    evidence = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for b in ALL_BENCH_NAMES:
        ev = evidence[b]
        rows.append(
            (
                b,
                f"{ev.scaling_ratio:.2f}",
                "yes" if ev.cache_effect else "no",
                f"{ev.volume_ratio:.2f}",
                f"{100 * ev.comm_fraction:.1f}%",
                ev.case.name,
                PAPER_SCALING_CASES[cluster_name][b],
            )
        )
    print()
    print(
        ascii_table(
            ["Benchmark", "eff @16 nodes", "cache effect", "vol ratio",
             "MPI share", "measured case", "paper case"],
            rows,
            title=f"Sect. 5.1 scaling cases, {cluster_name} (small suite, "
            "1 -> 16 nodes)",
        )
    )
    cases = {b: evidence[b].case.name for b in ALL_BENCH_NAMES}
    # the anchor classifications of the paper
    assert cases["pot3d"] == "A"
    assert cases["soma"] == "POOR"
    assert cases["sph-exa"] == "POOR"
    assert cases["minisweep"] == "POOR"
    assert cases["cloverleaf"] in ("B", "C", "D")
    assert cases["weather"] in ("A", "B")
    # pot3d shows a real volume drop; cloverleaf does not
    assert evidence["pot3d"].volume_ratio < 0.95
    assert evidence["cloverleaf"].volume_ratio > 0.97
