"""Sect. 4.1.2: node-level acceleration factors ClusterB over ClusterA.

The paper expects ratios between the peak-performance ratio (~1.2,
compute-bound codes) and the memory-bandwidth ratio (~1.5, memory-bound
codes), exceeded where Sapphire Rapids' larger caches help.
"""

from _shared import ALL_BENCH_NAMES, PAPER_ACCELERATION, full_node_run
from repro.analysis import acceleration_factor
from repro.analysis.comparison import expected_acceleration_band
from repro.harness.report import ascii_table
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.spechpc import get_benchmark


def test_acceleration_factors(benchmark):
    def build():
        return {
            b: acceleration_factor(
                full_node_run("ClusterA", b), full_node_run("ClusterB", b)
            )
            for b in ALL_BENCH_NAMES
        }

    accel = benchmark.pedantic(build, rounds=1, iterations=1)
    lo, hi = expected_acceleration_band(CLUSTER_A, CLUSTER_B)
    rows = []
    for b in ALL_BENCH_NAMES:
        kind = "memory-bound" if get_benchmark(b).info.memory_bound else "non-mem-bound"
        rows.append((b, kind, f"{accel[b]:.2f}", f"{PAPER_ACCELERATION[b]:.2f}"))
    print()
    print(
        ascii_table(
            ["Benchmark", "class", "measured B/A", "paper B/A"],
            rows,
            title="Sect. 4.1.2 acceleration factors "
            f"(expected hardware band: {lo:.2f}-{hi:.2f})",
        )
    )
    # shape: every code gains at least ~the peak ratio
    assert all(a >= 0.95 * lo for a in accel.values())
    # memory-bound codes cluster near the bandwidth ratio
    for b in ("tealeaf", "cloverleaf", "pot3d", "hpgmgfv"):
        assert hi * 0.9 <= accel[b] <= hi * 1.15, (b, accel[b])
    # lbm smallest, weather largest — the paper's ordering endpoints
    assert accel["lbm"] == min(accel.values())
    assert accel["weather"] == max(accel.values())
