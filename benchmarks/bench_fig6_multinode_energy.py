"""Fig. 6 + Sect. 5.2: multi-node power and energy scaling (small suite).

Total (chip + DRAM) power approaches a large fraction of the aggregate
TDP; the baseline power of the coolest code dominates its dynamic power
(82 % on ClusterB, 53 % on ClusterA at full scale).  Energy stays ~flat
for scalable codes (tealeaf) and grows with node count for the poorly
scaling ones (minisweep, soma, sph-exa), soma steepening once its
scaling dies.
"""

import pytest

from _shared import ALL_BENCH_NAMES, multinode_sweep
from repro.harness.report import ascii_plot, ascii_table
from repro.machine import get_cluster
from repro.perfmon.rapl import EnergyMeter

NODES = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig6_power_and_energy_scaling(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    cores = cluster.node.cores

    def build():
        return {b: multinode_sweep(cluster_name, b) for b in ALL_BENCH_NAMES}

    sweeps = benchmark.pedantic(build, rounds=1, iterations=1)

    # power table
    rows = []
    for b in ALL_BENCH_NAMES:
        rows.append(
            (
                b,
                *(
                    f"{sweeps[b].point(n * cores).best.avg_power / 1e3:.2f}"
                    for n in NODES
                ),
            )
        )
    tdp16 = 16 * cluster.node.tdp_w / 1e3
    print()
    print(
        ascii_table(
            ["Benchmark"] + [f"{n} nodes [kW]" for n in NODES],
            rows,
            title=f"Fig. 6({'a' if cluster_name == 'ClusterA' else 'c'}) "
            f"{cluster_name} total power (16-node CPU TDP: {tdp16:.1f} kW)",
        )
    )

    # energy table
    rows = []
    for b in ALL_BENCH_NAMES:
        rows.append(
            (
                b,
                *(
                    f"{sweeps[b].point(n * cores).best.total_energy / 1e6:.2f}"
                    for n in NODES
                ),
            )
        )
    print()
    print(
        ascii_table(
            ["Benchmark"] + [f"{n} nodes [MJ]" for n in NODES],
            rows,
            title=f"Fig. 6({'b' if cluster_name == 'ClusterA' else 'd'}) "
            f"{cluster_name} total energy",
        )
    )

    # paper checks -----------------------------------------------------
    p16 = {
        b: sweeps[b].point(16 * cores).best.avg_power for b in ALL_BENCH_NAMES
    }
    tdp = 16 * cluster.node.tdp_w
    fractions = {b: p / tdp for b, p in p16.items()}
    lo, hi = min(fractions.values()), max(fractions.values())
    print(f"\npower band at 16 nodes: {100 * lo:.0f}%-{100 * hi:.0f}% of CPU TDP")
    assert 0.55 <= lo <= hi <= 1.0

    # baseline power share of the coolest code
    baseline = EnergyMeter(cluster).baseline_power(nnodes=16)
    coolest = min(p16.values())
    share = baseline / coolest
    print(f"baseline power share of coolest code: {100 * share:.0f}%")
    if cluster_name == "ClusterB":
        assert share > 0.62   # paper: 82 %
    else:
        assert share > 0.45   # paper: 53 %

    # energy shapes: scalable codes flat, poor scalers rising
    def energy(b, n):
        return sweeps[b].point(n * cores).best.total_energy

    assert energy("tealeaf", 16) < 1.4 * energy("tealeaf", 1)
    for b in ("soma", "sph-exa"):
        assert energy(b, 16) > 1.6 * energy(b, 1), b
    assert energy("minisweep", 16) > 1.35 * energy("minisweep", 1)
    # soma's slope steepens once scaling stops
    e = [energy("soma", n) for n in NODES]
    early_slope = (e[1] - e[0]) / e[0]
    late_slope = (e[4] - e[3]) / e[3]
    assert late_slope > early_slope
