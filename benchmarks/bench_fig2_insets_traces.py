"""Fig. 2 insets: ITAC timelines of the two pathological runs.

* minisweep at 59 processes on ClusterA — the rendezvous serialization
  ripple (the paper: 75 % of time in MPI_Recv, ~5.5 % in MPI_Sendrecv,
  19.5 % computing);
* lbm at 71 processes on ClusterA — slow rank(s) stretching everyone's
  MPI_Barrier/MPI_Wait.

Both runs are pushed through the observability layer (``repro.obs``):
the detectors must *name* the pathology the paper describes, not just
show suggestive fractions.
"""

from repro.harness import run
from repro.harness.report import ascii_table
from repro.machine import CLUSTER_A
from repro.spechpc import get_benchmark


def test_minisweep_59_process_trace(benchmark):
    def build():
        return run(get_benchmark("minisweep"), CLUSTER_A, 59, trace=True)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    frac = result.trace.fractions()
    rows = [(k, f"{100 * v:.1f}%") for k, v in sorted(frac.items(), key=lambda kv: -kv[1])]
    print()
    print(
        ascii_table(
            ["Interval kind", "share of total rank time"],
            rows,
            title="minisweep @ 59 processes on ClusterA "
            "(paper: 75% MPI_Recv, 5.5% MPI_Sendrecv, 19.5% compute)",
        )
    )
    print()
    print(result.trace.ascii_timeline(ranks=[0, 14, 29, 44, 58], width=90))

    # comparison against the good neighbor count
    r58 = run(get_benchmark("minisweep"), CLUSTER_A, 58)
    print(
        f"\nt(58 procs) = {r58.elapsed:.2f} s, t(59 procs) = "
        f"{result.elapsed:.2f} s -> slowdown {result.elapsed / r58.elapsed:.2f}x"
    )
    mpi_kinds = {k: v for k, v in frac.items() if k.startswith("MPI_")}
    # the blocking p2p pair dominates, computation is a minority share
    assert sum(mpi_kinds.values()) > 0.35
    assert result.elapsed > 1.2 * r58.elapsed

    # the observability layer must name the ripple with rank attribution
    obs = result.observability()
    ripple = obs.analysis.ripple
    print(f"\n{ripple.summary()}")
    assert ripple.detected
    # the dominant wait front sweeps across most of the 59-rank chain
    assert ripple.dominant.depth > 40
    assert set(ripple.wait_by_rank) <= set(range(59))


def test_lbm_71_process_trace(benchmark):
    def build():
        return run(get_benchmark("lbm"), CLUSTER_A, 71, trace=True)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    frac = result.trace.fractions()
    rows = [(k, f"{100 * v:.1f}%") for k, v in sorted(frac.items(), key=lambda kv: -kv[1])]
    print()
    print(
        ascii_table(
            ["Interval kind", "share of total rank time"],
            rows,
            title="lbm @ 71 processes on ClusterA "
            "(paper: one slow rank, waiting in MPI_Wait/MPI_Barrier)",
        )
    )
    print()
    print(result.trace.ascii_timeline(ranks=[0, 35, 69, 70], width=90))

    # per-rank compute skew: a slow class of ranks computes measurably
    # longer than the fast class, which then waits in the barrier
    computes = sorted(
        result.trace.time_by_kind(r).get("compute", 0.0) for r in range(71)
    )
    assert computes[-1] > 1.05 * computes[0]
    assert "MPI_Barrier" in frac

    # the observability layer must attribute the skew: the slow class
    # computes longer, the fast ranks absorb the excess as collective wait
    obs = result.observability()
    skew = obs.analysis.skew
    print(f"\n{skew.summary()}")
    assert skew.detected
    assert skew.skew_ratio > 1.05
    assert skew.absorbed_wait > 0.0
    fast = [r for r in range(71) if r not in skew.slow_ranks]
    assert fast, "some ranks must be fast enough to wait"
    wait = skew.collective_wait_by_rank
    mean_fast = sum(wait[r] for r in fast) / len(fast)
    mean_slow = sum(wait[r] for r in skew.slow_ranks) / len(skew.slow_ranks)
    assert mean_fast > mean_slow
