"""Fig. 3 + Sect. 4.2: CPU and DRAM power (tiny suite).

(a, c) Power versus speedup within one ccNUMA domain, with the zero-core
baseline extrapolation (~40 % of TDP on Ice Lake, ~50 % on Sapphire
Rapids, <20 % on 2012-era Sandy Bridge).
(b, d) Full-node power versus process count (doubling from one socket to
two).  Plus the Sect. 4.2.1 hot/cool table: sph-exa reaches ~98 % of TDP,
soma ~85-89 %; memory-bound codes draw the highest DRAM power.
"""

import numpy as np
import pytest

from _shared import ALL_BENCH_NAMES, domain_sweep, node_sweep
from repro.harness.report import ascii_plot, ascii_table
from repro.machine import SANDY_BRIDGE_NODE, get_cluster
from repro.model.power import ChipPowerModel


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig3_domain_power_and_baseline(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    cpu = cluster.node.cpu
    sockets = cluster.node.sockets

    def build():
        return {b: domain_sweep(cluster_name, b) for b in ALL_BENCH_NAMES}

    sweeps = benchmark.pedantic(build, rounds=1, iterations=1)

    # zero-core extrapolation: linear fit of node chip power vs cores
    rows = []
    intercepts = []
    for b in ALL_BENCH_NAMES:
        xs, ys = [], []
        for p in sweeps[b].points:
            xs.append(p.nprocs)
            ys.append(p.best.energy.avg_chip_power)
        slope, intercept = np.polyfit(xs, ys, 1)
        per_socket = intercept / sockets
        intercepts.append(per_socket)
        rows.append(
            (b, f"{ys[-1]:.0f}", f"{per_socket:.0f}",
             f"{100 * per_socket / cpu.tdp_w:.0f}%")
        )
    print()
    print(
        ascii_table(
            ["Benchmark", "chip P @ 1 domain [W]",
             "extrapolated 0-core baseline [W/socket]", "% of TDP"],
            rows,
            title=f"Fig. 3(a/c) {cluster_name} zero-core baseline "
            f"(model idle: {cpu.idle_power_w:.0f} W, TDP {cpu.tdp_w:.0f} W)",
        )
    )
    sandy = SANDY_BRIDGE_NODE.cpu
    print(
        f"\nIdle/TDP: {cluster_name} = "
        f"{100 * cpu.idle_power_w / cpu.tdp_w:.0f}%  vs Sandy Bridge (2012) = "
        f"{100 * sandy.idle_power_w / sandy.tdp_w:.0f}%"
    )

    mean_intercept = float(np.mean(intercepts))
    assert mean_intercept == pytest.approx(cpu.idle_power_w, rel=0.12)
    expected_frac = 0.40 if cluster_name == "ClusterA" else 0.50
    assert mean_intercept / cpu.tdp_w == pytest.approx(expected_frac, abs=0.06)

    # power vs speedup plot for a saturating and a scalable code
    for name in ("pot3d", "sph-exa"):
        sp = sweeps[name].speedups()
        xs = [sp[p.nprocs] for p in sweeps[name].points]
        ys = [p.best.energy.avg_chip_power for p in sweeps[name].points]
        print()
        print(
            ascii_plot(
                xs,
                {name: ys},
                width=60,
                height=12,
                title=f"{cluster_name} {name}: chip power [W] vs speedup (1 domain)",
            )
        )


@pytest.mark.parametrize("cluster_name", ["ClusterA", "ClusterB"])
def test_fig3_hot_cool_and_dram(benchmark, cluster_name):
    cluster = get_cluster(cluster_name)
    cpu = cluster.node.cpu
    sockets = cluster.node.sockets
    full = cluster.node.cores

    def build():
        out = {}
        for b in ALL_BENCH_NAMES:
            best = node_sweep(cluster_name, b).point(full).best
            out[b] = (
                best.energy.avg_chip_power / sockets,
                best.energy.avg_dram_power / sockets,
            )
        return out

    power = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (
            b,
            f"{power[b][0]:.0f}",
            f"{100 * power[b][0] / cpu.tdp_w:.0f}%",
            f"{power[b][1]:.1f}",
        )
        for b in sorted(ALL_BENCH_NAMES, key=lambda x: -power[x][0])
    ]
    print()
    print(
        ascii_table(
            ["Benchmark", "chip W/socket", "% TDP", "DRAM W/socket"],
            rows,
            title=f"Sect. 4.2.1 {cluster_name} hot/cool codes at full node "
            "(paper: sph-exa 98%/97% TDP, soma 89%/85%)",
        )
    )
    chip = {b: v[0] for b, v in power.items()}
    dram = {b: v[1] for b, v in power.items()}
    # sph-exa among the hottest (within 2 % of the suite maximum) and the
    # hot group sits clearly above the cool codes
    assert chip["sph-exa"] >= 0.98 * max(chip.values())
    assert chip["sph-exa"] / cpu.tdp_w > 0.85
    assert chip["soma"] < 0.95 * chip["sph-exa"]
    # memory-bound trio draws the highest DRAM power; soma near the floor
    top_dram = sorted(dram, key=dram.get, reverse=True)[:4]
    assert {"tealeaf", "cloverleaf", "pot3d"} <= set(top_dram)
    assert dram["soma"] <= min(dram[b] for b in ("tealeaf", "pot3d"))


def test_fig3_power_doubles_across_sockets(benchmark):
    def build():
        sw = node_sweep("ClusterA", "sph-exa")
        return (
            sw.point(36).best.energy.avg_chip_power,
            sw.point(72).best.energy.avg_chip_power,
        )

    one_socket_active, two_socket = benchmark.pedantic(build, rounds=1, iterations=1)
    # dynamic power doubles; baseline of the idle second socket is shared
    print(
        f"\nchip power @36 procs: {one_socket_active:.0f} W, "
        f"@72 procs: {two_socket:.0f} W"
    )
    dynamic1 = one_socket_active - 2 * 98.0
    dynamic2 = two_socket - 2 * 98.0
    assert dynamic2 == pytest.approx(2 * dynamic1, rel=0.1)
