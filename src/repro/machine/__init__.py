"""Parametric machine models for the simulated clusters.

This subpackage replaces the paper's physical testbed (Table 3): it describes
CPUs, cache hierarchies, ccNUMA topology, nodes, the InfiniBand fabric, and
whole clusters as plain data objects consumed by the execution, power, and
network models.

The two systems of the paper are available as :data:`repro.machine.CLUSTER_A`
(Ice Lake) and :data:`repro.machine.CLUSTER_B` (Sapphire Rapids); a
Sandy-Bridge-era reference used for the idle-power comparison of Sect. 4.2.3
is :data:`repro.machine.SANDY_BRIDGE_NODE`.
"""

from repro.machine.cache import CacheLevel, MemoryHierarchy
from repro.machine.cpu import CpuSpec
from repro.machine.network import NetworkSpec
from repro.machine.node import CoreLocation, NodeSpec
from repro.machine.cluster import ClusterSpec
from repro.machine.registry import (
    CLUSTER_A,
    CLUSTER_B,
    CLUSTERS,
    ICE_LAKE_8360Y,
    SANDY_BRIDGE_NODE,
    SAPPHIRE_RAPIDS_8470,
    get_cluster,
)

__all__ = [
    "CacheLevel",
    "MemoryHierarchy",
    "CpuSpec",
    "NetworkSpec",
    "CoreLocation",
    "NodeSpec",
    "ClusterSpec",
    "CLUSTER_A",
    "CLUSTER_B",
    "CLUSTERS",
    "ICE_LAKE_8360Y",
    "SAPPHIRE_RAPIDS_8470",
    "SANDY_BRIDGE_NODE",
    "get_cluster",
]
