"""Cache hierarchy description.

The hierarchy is described per core (private levels) and per shared domain
(LLC).  On both Ice Lake and Sapphire Rapids the L3 is a *non-inclusive
victim cache* (paper, footnote 6): the effective last-level capacity seen by
a working set is L2 + L3, which :meth:`MemoryHierarchy.effective_llc_bytes`
exposes and the cache-fit model in :mod:`repro.model.execution` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    Parameters
    ----------
    name:
        Human-readable level name (``"L1"``, ``"L2"``, ``"L3"``).
    capacity_bytes:
        Capacity of one instance of this level.
    shared_by_cores:
        Number of cores sharing one instance (1 for private levels).
    bandwidth_per_core:
        Sustainable bandwidth per core into this level [B/s].  For the LLC
        this is the per-core slice bandwidth; aggregate bandwidth of a
        domain is ``bandwidth_per_core * cores``.
    victim:
        True if this level is a victim cache that sees evictions from the
        level above (relevant for L3 on Ice Lake / Sapphire Rapids; the
        paper observes L3 traffic exceeding L2 traffic for pot3d because of
        this).
    """

    name: str
    capacity_bytes: float
    shared_by_cores: int = 1
    bandwidth_per_core: float = 0.0
    victim: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.shared_by_cores < 1:
            raise ValueError(f"{self.name}: shared_by_cores must be >= 1")

    @property
    def capacity_per_core(self) -> float:
        """Capacity available to one core if the level is shared fairly."""
        return self.capacity_bytes / self.shared_by_cores


@dataclass(frozen=True)
class MemoryHierarchy:
    """Private + shared cache levels of one CPU (one socket).

    ``l1``/``l2`` are per-core private caches, ``l3`` is shared by
    ``l3.shared_by_cores`` cores (the whole socket on both paper CPUs).
    """

    l1: CacheLevel
    l2: CacheLevel
    l3: CacheLevel

    def __post_init__(self) -> None:
        if not (self.l1.capacity_bytes <= self.l2.capacity_bytes):
            raise ValueError("L1 must not be larger than L2")

    def levels(self) -> tuple[CacheLevel, CacheLevel, CacheLevel]:
        """The levels ordered from closest to the core outwards."""
        return (self.l1, self.l2, self.l3)

    def effective_llc_bytes(self, cores: int) -> float:
        """Aggregate last-level capacity seen by ``cores`` cores of a socket.

        With a non-inclusive victim L3 the usable outer-level capacity is
        the sum of the private L2s plus the shared L3 slice proportional to
        the cores used.  This is the quantity that decides whether a
        strong-scaled working set "fits into cache" (paper Sect. 5.1,
        cases A-C).
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        cores_on_socket = min(cores, self.l3.shared_by_cores)
        l2_total = self.l2.capacity_bytes * cores_on_socket
        l3_share = self.l3.capacity_bytes * cores_on_socket / self.l3.shared_by_cores
        return l2_total + l3_share

    def per_core_llc_bytes(self) -> float:
        """Outer-level cache capacity per core (L2 + L3 slice)."""
        return self.l2.capacity_bytes + self.l3.capacity_per_core
