"""Cluster specification: homogeneous nodes plus an interconnect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.network import NetworkSpec
from repro.machine.node import CoreLocation, NodeSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` nodes.

    Rank placement follows the paper's setup: consecutive MPI ranks on
    consecutive cores, filling node 0 completely before node 1, etc.
    """

    name: str
    node: NodeSpec
    network: NetworkSpec
    max_nodes: int = 64

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")

    @property
    def cores_per_node(self) -> int:
        return self.node.cores

    def max_ranks(self) -> int:
        """Largest MPI job this cluster can host."""
        return self.max_nodes * self.node.cores

    def nodes_for(self, nprocs: int) -> int:
        """Number of nodes a compact placement of ``nprocs`` ranks uses."""
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        return -(-nprocs // self.node.cores)

    def place(self, rank: int) -> tuple[int, CoreLocation]:
        """Return ``(node_index, core_location)`` of an MPI rank."""
        if rank < 0:
            raise ValueError("rank must be non-negative")
        node_idx, core = divmod(rank, self.node.cores)
        if node_idx >= self.max_nodes:
            raise ValueError(
                f"rank {rank} exceeds cluster capacity "
                f"({self.max_nodes} nodes x {self.node.cores} cores)"
            )
        return node_idx, self.node.locate(core)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True if two ranks are placed on the same node."""
        return self.place(rank_a)[0] == self.place(rank_b)[0]

    def ranks_per_node(self, nprocs: int) -> list[int]:
        """Rank count on each used node for a compact placement."""
        nodes = self.nodes_for(nprocs)
        counts = [self.node.cores] * nodes
        remainder = nprocs - (nodes - 1) * self.node.cores
        counts[-1] = remainder
        return counts

    def describe(self) -> str:
        """Multi-line summary mirroring Table 3 of the paper."""
        cpu = self.node.cpu
        lines = [
            f"Cluster {self.name}",
            f"  Node: {self.node.describe()}",
            f"  CPU:  {cpu.describe()}",
            f"  L1/L2 per core: {cpu.hierarchy.l1.capacity_bytes / 2**10:.0f} KiB / "
            f"{cpu.hierarchy.l2.capacity_bytes / 2**20:.2f} MiB",
            f"  Shared L3: {cpu.hierarchy.l3.capacity_bytes / 2**20:.0f} MiB",
            f"  Network: {self.network.name} ({self.network.topology}), "
            f"{self.network.link_bandwidth * 8 / 1e9:.0f} Gbit/s per link+direction",
        ]
        return "\n".join(lines)
