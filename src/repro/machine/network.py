"""Interconnect model.

Both clusters in the paper use HDR100 InfiniBand in a fat-tree topology
(Table 3), i.e. full bisection bandwidth and identical communication
performance — the paper relies on this to attribute scaling differences to
the nodes, not the fabric (Sect. 5.1.3).

We use a LogGP-flavoured point-to-point cost model

    T(msg) = latency + overhead + bytes / bandwidth

with separate parameter sets for intra-node (shared-memory transport) and
inter-node (verbs) paths, plus a per-message rendezvous handshake cost for
large messages.  The eager/rendezvous switch-over threshold matches typical
Intel MPI defaults.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Fabric and intra-node transport parameters.

    Parameters
    ----------
    name:
        e.g. ``"HDR100 InfiniBand"``.
    link_bandwidth:
        Raw link bandwidth per direction [B/s] (100 Gbit/s for HDR100).
    efficiency:
        Achievable fraction of raw bandwidth for large messages.
    latency:
        End-to-end small-message latency between two nodes [s].
    intra_node_bandwidth:
        Shared-memory copy bandwidth between two ranks on one node [B/s].
    intra_node_latency:
        Shared-memory small-message latency [s].
    eager_threshold:
        Messages strictly larger than this use the rendezvous protocol
        (sender blocks until the receive is posted); smaller messages are
        buffered eagerly.  This is what produces the minisweep
        serialization ripple of Sect. 4.1.5.
    rendezvous_handshake:
        Extra round-trip cost of the rendezvous protocol [s].
    per_message_overhead:
        CPU overhead per message send/receive [s] (LogGP ``o``).
    """

    name: str = "HDR100 InfiniBand"
    topology: str = "fat-tree"
    link_bandwidth: float = 100e9 / 8.0
    efficiency: float = 0.90
    latency: float = 1.3e-6
    intra_node_bandwidth: float = 12e9
    intra_node_latency: float = 0.35e-6
    eager_threshold: int = 64 * 1024
    rendezvous_handshake: float = 2.0e-6
    per_message_overhead: float = 0.4e-6

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.intra_node_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if not (0.0 < self.efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        """Sustained inter-node bandwidth per link and direction [B/s]."""
        return self.link_bandwidth * self.efficiency

    def is_eager(self, nbytes: int) -> bool:
        """True if a message of ``nbytes`` uses the eager protocol."""
        return nbytes <= self.eager_threshold

    def transfer_time(self, nbytes: int, intra_node: bool) -> float:
        """Pure wire/copy time for ``nbytes`` (excluding protocol costs)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if intra_node:
            return self.intra_node_latency + nbytes / self.intra_node_bandwidth
        return self.latency + nbytes / self.effective_bandwidth

    def ptp_time(self, nbytes: int, intra_node: bool) -> float:
        """Full point-to-point cost including overheads and handshake."""
        t = self.per_message_overhead + self.transfer_time(nbytes, intra_node)
        if not self.is_eager(nbytes):
            t += self.rendezvous_handshake if not intra_node else self.rendezvous_handshake / 2
        return t
