"""CPU (socket) specification.

A :class:`CpuSpec` captures the architectural parameters that the execution
model (:mod:`repro.model.execution`) and the power model
(:mod:`repro.model.power`) need: clock, core count, SIMD width, per-core
instruction throughput, memory subsystem, and the RAPL-calibrated power
envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cache import MemoryHierarchy
from repro.units import GB


@dataclass(frozen=True)
class CpuSpec:
    """One CPU socket.

    Power parameters are calibrated from the paper's RAPL measurements
    (Sect. 4.2): ``idle_power_w`` is the zero-core extrapolated baseline of
    one socket, ``tdp_w`` the thermal design power; the dynamic per-core
    terms are derived in :class:`repro.model.power.ChipPowerModel`.

    Parameters
    ----------
    name / model:
        Marketing name and model number (e.g. ``Platinum 8360Y``).
    base_clock_hz:
        Fixed base clock (the paper pins the frequency via SLURM).
    cores:
        Physical cores per socket (hyper-threading disabled).
    numa_domains:
        ccNUMA domains per socket with Sub-NUMA Clustering active
        (2 on Ice Lake, 4 on Sapphire Rapids).
    simd_width_dp:
        DP lanes of the widest SIMD instruction set (8 for AVX-512).
    fma_units:
        FMA pipelines per core (2 on both paper CPUs).
    memory_channels / memory_transfer_rate:
        DDR channel count and MT/s (DDR4-3200 vs DDR5-4800).
    sustained_bw_fraction:
        Fraction of theoretical socket bandwidth achievable by a saturating
        streaming kernel (paper: 75-78 GB/s out of 102.4 per domain on A
        -> ~0.75; 58-62 out of 76.8 on B -> ~0.78).
    single_core_mem_bw:
        DRAM bandwidth one core can draw alone [B/s]; fixes where the
        per-domain saturation knee sits (~5 cores on both paper CPUs).
    nominal_clock_hz:
        The design-point clock the power envelope (``tdp_w``,
        ``idle_power_w``) is calibrated at.  Defaults to
        ``base_clock_hz``; a DVFS what-if (see :mod:`repro.model.dvfs`)
        moves ``base_clock_hz`` while keeping this anchor, and
        :attr:`frequency_ratio` reports how far the clock sits from it.
    """

    name: str
    model: str
    base_clock_hz: float
    cores: int
    numa_domains: int
    hierarchy: MemoryHierarchy
    simd_width_dp: int = 8
    fma_units: int = 2
    memory_channels: int = 8
    memory_transfer_rate: float = 3200e6
    memory_bus_bytes: int = 8
    sustained_bw_fraction: float = 0.77
    single_core_mem_bw: float = 16e9
    tdp_w: float = 250.0
    idle_power_w: float = 100.0
    dram_idle_power_w: float = 3.0
    dram_power_per_gbs: float = 0.20
    isa: str = "AVX-512"
    launch_year: int = 2021
    nominal_clock_hz: float = 0.0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base_clock_hz <= 0:
            raise ValueError("base_clock_hz must be positive")
        if self.nominal_clock_hz <= 0.0:
            object.__setattr__(self, "nominal_clock_hz", self.base_clock_hz)
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.cores % self.numa_domains != 0:
            raise ValueError("cores must divide evenly into ccNUMA domains")
        if not (0.0 < self.sustained_bw_fraction <= 1.0):
            raise ValueError("sustained_bw_fraction must be in (0, 1]")
        if self.idle_power_w >= self.tdp_w:
            raise ValueError("idle power must be below TDP")

    # --- derived compute capabilities --------------------------------------

    @property
    def frequency_ratio(self) -> float:
        """Core clock relative to the calibration point
        (``base_clock_hz / nominal_clock_hz``; 1.0 at nominal)."""
        return self.base_clock_hz / self.nominal_clock_hz

    @property
    def cores_per_domain(self) -> int:
        """Cores in one ccNUMA domain (the fundamental scaling unit)."""
        return self.cores // self.numa_domains

    @property
    def peak_flops_per_core(self) -> float:
        """DP peak of one core: clock * SIMD lanes * FMA units * 2 (FMA)."""
        return self.base_clock_hz * self.simd_width_dp * self.fma_units * 2.0

    @property
    def scalar_flops_per_core(self) -> float:
        """DP peak of one core using only scalar FMA instructions."""
        return self.base_clock_hz * self.fma_units * 2.0

    @property
    def peak_flops(self) -> float:
        """DP peak of the whole socket."""
        return self.peak_flops_per_core * self.cores

    # --- derived memory capabilities ----------------------------------------

    @property
    def theoretical_memory_bw(self) -> float:
        """Theoretical socket memory bandwidth [B/s] from channel specs."""
        return self.memory_channels * self.memory_transfer_rate * self.memory_bus_bytes

    @property
    def sustained_memory_bw(self) -> float:
        """Achievable (stream-saturated) socket memory bandwidth [B/s]."""
        return self.theoretical_memory_bw * self.sustained_bw_fraction

    @property
    def domain_memory_bw(self) -> float:
        """Sustained bandwidth of one ccNUMA domain [B/s]."""
        return self.sustained_memory_bw / self.numa_domains

    @property
    def machine_balance(self) -> float:
        """Bytes per flop at peak (memory bandwidth / peak performance)."""
        return self.sustained_memory_bw / self.peak_flops

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.name} {self.model}: {self.cores} cores @ "
            f"{self.base_clock_hz / 1e9:.1f} GHz, {self.numa_domains} NUMA "
            f"domains, {self.theoretical_memory_bw / GB:.1f} GB/s theor. BW, "
            f"TDP {self.tdp_w:.0f} W"
        )
