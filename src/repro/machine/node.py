"""Node topology: sockets, ccNUMA domains, and core numbering.

The paper maps consecutive MPI ranks to consecutive cores (likwid-mpirun),
with Sub-NUMA Clustering active, so the fundamental scaling unit is one
ccNUMA domain (18 cores on ClusterA, 13 on ClusterB).  :class:`NodeSpec`
provides that mapping plus helpers to count active cores per domain — the
quantity the bandwidth-contention model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cpu import CpuSpec


@dataclass(frozen=True)
class CoreLocation:
    """Placement of one core within a node."""

    core: int
    socket: int
    domain: int          # global ccNUMA domain index within the node
    domain_local: int    # core index within its domain

    def __post_init__(self) -> None:
        if min(self.core, self.socket, self.domain, self.domain_local) < 0:
            raise ValueError("indices must be non-negative")


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: ``sockets`` identical CPUs plus local memory.

    Parameters
    ----------
    cpu:
        The socket specification.
    sockets:
        Sockets per node (2 on both paper clusters).
    memory_bytes:
        Installed memory (4 x 64 GiB on ClusterA, 8 x 128 GiB on ClusterB).
    """

    cpu: CpuSpec
    sockets: int = 2
    memory_bytes: float = 256 * 2**30

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("sockets must be >= 1")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")

    # --- topology ------------------------------------------------------------

    @property
    def cores(self) -> int:
        """Physical cores per node."""
        return self.cpu.cores * self.sockets

    @property
    def numa_domains(self) -> int:
        """ccNUMA domains per node."""
        return self.cpu.numa_domains * self.sockets

    @property
    def cores_per_domain(self) -> int:
        """Cores per ccNUMA domain — the fundamental scaling unit."""
        return self.cpu.cores_per_domain

    def locate(self, core: int) -> CoreLocation:
        """Map a flat core id (likwid-style consecutive numbering) to its
        socket / ccNUMA domain."""
        if not (0 <= core < self.cores):
            raise ValueError(f"core {core} out of range [0, {self.cores})")
        socket = core // self.cpu.cores
        within = core % self.cpu.cores
        domain_in_socket = within // self.cores_per_domain
        return CoreLocation(
            core=core,
            socket=socket,
            domain=socket * self.cpu.numa_domains + domain_in_socket,
            domain_local=within % self.cores_per_domain,
        )

    def active_cores_per_domain(self, nprocs: int) -> list[int]:
        """How many of the first ``nprocs`` consecutive cores land in each
        ccNUMA domain.

        With consecutive pinning, domains fill one after another; the
        returned list has one entry per domain of the node.
        """
        if not (0 <= nprocs <= self.cores):
            raise ValueError(f"nprocs {nprocs} out of range [0, {self.cores}]")
        counts = [0] * self.numa_domains
        for c in range(nprocs):
            counts[self.locate(c).domain] += 1
        return counts

    def domains_in_use(self, nprocs: int) -> int:
        """Number of ccNUMA domains touched by ``nprocs`` consecutive ranks."""
        return sum(1 for c in self.active_cores_per_domain(nprocs) if c > 0)

    # --- derived performance properties --------------------------------------

    @property
    def peak_flops(self) -> float:
        """DP peak of the whole node."""
        return self.cpu.peak_flops * self.sockets

    @property
    def sustained_memory_bw(self) -> float:
        """Saturated memory bandwidth of the whole node [B/s]."""
        return self.cpu.sustained_memory_bw * self.sockets

    @property
    def tdp_w(self) -> float:
        """Combined TDP of all sockets."""
        return self.cpu.tdp_w * self.sockets

    @property
    def llc_bytes(self) -> float:
        """Aggregate outer-level cache (L2 + victim L3) of the node."""
        return self.cpu.hierarchy.effective_llc_bytes(self.cpu.cores) * self.sockets

    def describe(self) -> str:
        """One-line node summary."""
        return (
            f"{self.sockets}x {self.cpu.name} {self.cpu.model} "
            f"({self.cores} cores, {self.numa_domains} ccNUMA domains, "
            f"{self.memory_bytes / 2**30:.0f} GiB)"
        )
