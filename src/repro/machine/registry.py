"""Concrete machine definitions mirroring Table 3 of the paper.

``CLUSTER_A`` is the Ice Lake system (Xeon Platinum 8360Y, 36 cores/socket,
DDR4-3200), ``CLUSTER_B`` the Sapphire Rapids system (Xeon Platinum 8470,
52 cores/socket, DDR5-4800).  Both have two sockets per node, Sub-NUMA
Clustering active (2 resp. 4 domains per socket), HDR100 InfiniBand in a
fat-tree, fixed base clocks, and AVX-512.

Power parameters come from the paper's own RAPL analysis (Sect. 4.2):
zero-core extrapolated chip baseline 95-101 W (A) / 176-181 W (B) per
socket, TDP 250 W / 350 W, DRAM power 16 W saturated vs 9.5 W floor per
ccNUMA domain on A, 10-13 W vs 5.5 W on B.

``SANDY_BRIDGE_NODE`` is the 2012-era reference CPU mentioned in
Sect. 4.2.3, whose baseline power was below 20 % of its 120 W TDP.
"""

from __future__ import annotations

from repro.machine.cache import CacheLevel, MemoryHierarchy
from repro.machine.cluster import ClusterSpec
from repro.machine.cpu import CpuSpec
from repro.machine.network import NetworkSpec
from repro.machine.node import NodeSpec
from repro.units import GiB, KiB, MiB

#: Ice Lake Xeon Platinum 8360Y (ClusterA socket).
ICE_LAKE_8360Y = CpuSpec(
    name="Xeon Ice Lake",
    model="Platinum 8360Y",
    base_clock_hz=2.4e9,
    cores=36,
    numa_domains=2,
    hierarchy=MemoryHierarchy(
        l1=CacheLevel("L1", 48 * KiB, bandwidth_per_core=400e9),
        l2=CacheLevel("L2", 1.25 * MiB, bandwidth_per_core=110e9),
        l3=CacheLevel(
            "L3", 54 * MiB, shared_by_cores=36, bandwidth_per_core=22e9, victim=True
        ),
    ),
    simd_width_dp=8,
    fma_units=2,
    memory_channels=8,
    memory_transfer_rate=3200e6,
    memory_bus_bytes=8,
    sustained_bw_fraction=0.75,   # 75-78 GB/s of 102.4 GB/s per domain
    single_core_mem_bw=16e9,      # saturation knee ~5 of 18 domain cores
    tdp_w=250.0,
    idle_power_w=98.0,            # 95-101 W zero-core extrapolation
    dram_idle_power_w=8.0,        # soma floor ~9.5 W incl. its modest BW
    dram_power_per_gbs=0.105,     # -> 16 W with one saturated domain (76.5 GB/s)
    isa="AVX-512",
    launch_year=2021,
    extras={"ddr": "DDR4-3200", "process": "10 nm"},
)

#: Sapphire Rapids Xeon Platinum 8470 (ClusterB socket).
SAPPHIRE_RAPIDS_8470 = CpuSpec(
    name="Xeon Sapphire Rapids",
    model="Platinum 8470",
    base_clock_hz=2.0e9,
    cores=52,
    numa_domains=4,
    hierarchy=MemoryHierarchy(
        l1=CacheLevel("L1", 48 * KiB, bandwidth_per_core=330e9),
        l2=CacheLevel("L2", 2 * MiB, bandwidth_per_core=100e9),
        l3=CacheLevel(
            "L3", 105 * MiB, shared_by_cores=52, bandwidth_per_core=26e9, victim=True
        ),
    ),
    simd_width_dp=8,
    fma_units=2,
    memory_channels=8,
    memory_transfer_rate=4800e6,
    memory_bus_bytes=8,
    sustained_bw_fraction=0.78,   # 58-62 GB/s of 76.8 GB/s per domain
    single_core_mem_bw=13e9,      # saturation knee ~4.6 of 13 domain cores
    tdp_w=350.0,
    idle_power_w=178.0,           # 176-181 W zero-core extrapolation
    dram_idle_power_w=6.0,        # soma floor ~5.5 W per domain reading
    dram_power_per_gbs=0.100,     # -> ~12 W with one saturated domain (60 GB/s)
    isa="AVX-512",
    launch_year=2023,
    extras={"ddr": "DDR5-4800", "process": "Intel 7"},
)

#: 2012-era reference for the idle-power comparison of Sect. 4.2.3.
SANDY_BRIDGE_E5_2680 = CpuSpec(
    name="Xeon Sandy Bridge",
    model="E5-2680",
    base_clock_hz=2.7e9,
    cores=8,
    numa_domains=1,
    hierarchy=MemoryHierarchy(
        l1=CacheLevel("L1", 32 * KiB, bandwidth_per_core=150e9),
        l2=CacheLevel("L2", 256 * KiB, bandwidth_per_core=70e9),
        l3=CacheLevel("L3", 20 * MiB, shared_by_cores=8, bandwidth_per_core=15e9),
    ),
    simd_width_dp=4,              # AVX
    fma_units=1,                  # mul + add ports, no FMA
    memory_channels=4,
    memory_transfer_rate=1600e6,
    memory_bus_bytes=8,
    sustained_bw_fraction=0.80,
    tdp_w=120.0,
    idle_power_w=22.0,            # < 20 % of TDP (paper refs [2, 13])
    dram_idle_power_w=8.0,
    dram_power_per_gbs=0.25,
    isa="AVX",
    launch_year=2012,
    extras={"ddr": "DDR3-1600"},
)

_HDR100 = NetworkSpec()

#: ClusterA: Ice Lake, 72 cores/node, 4 ccNUMA domains/node, 256 GiB.
CLUSTER_A = ClusterSpec(
    name="ClusterA",
    node=NodeSpec(cpu=ICE_LAKE_8360Y, sockets=2, memory_bytes=4 * 64 * GiB),
    network=_HDR100,
    max_nodes=24,   # 24 x 72 = 1728 ranks >= the paper's 1664
)

#: ClusterB: Sapphire Rapids, 104 cores/node, 8 ccNUMA domains/node, 1 TiB.
CLUSTER_B = ClusterSpec(
    name="ClusterB",
    node=NodeSpec(cpu=SAPPHIRE_RAPIDS_8470, sockets=2, memory_bytes=8 * 128 * GiB),
    network=_HDR100,
    max_nodes=16,   # 16 x 104 = 1664 ranks, exactly the paper's maximum
)

#: Single-socket Sandy Bridge node for the historical comparison.
SANDY_BRIDGE_NODE = NodeSpec(
    cpu=SANDY_BRIDGE_E5_2680, sockets=2, memory_bytes=64 * GiB
)

CLUSTERS: dict[str, ClusterSpec] = {
    "A": CLUSTER_A,
    "B": CLUSTER_B,
    "ClusterA": CLUSTER_A,
    "ClusterB": CLUSTER_B,
}


def get_cluster(name: str) -> ClusterSpec:
    """Look up a cluster by short (``"A"``) or long (``"ClusterA"``) name.

    ``zoo/<name>`` references resolve lazily through the scenario
    cluster zoo (:mod:`repro.scenarios.zoo`) — parameter files checked
    in under ``src/repro/scenarios/zoo/``, loaded on first use so the
    registry import stays free of the scenarios package.
    """
    try:
        return CLUSTERS[name]
    except KeyError:
        pass
    if name.startswith("zoo/"):
        # local import: the zoo sits above the machine layer
        from repro.scenarios.zoo import ZooError, load_zoo_cluster

        try:
            return load_zoo_cluster(name)
        except (KeyError, ZooError) as exc:
            raise KeyError(str(exc)) from None
    valid = sorted(set(CLUSTERS))
    from repro.scenarios.zoo import zoo_names

    zoo = [f"zoo/{n}" for n in zoo_names()]
    raise KeyError(f"unknown cluster {name!r}; valid names: {valid + zoo}")


def theoretical_ratio_summary() -> dict[str, float]:
    """The headline hardware ratios the paper derives from Table 3.

    Returns the ClusterB/ClusterA node-level ratios of peak performance
    (~1.2) and memory bandwidth (~1.5) that bound the expected node
    speedups (Sect. 4.1.2).
    """
    a, b = CLUSTER_A.node, CLUSTER_B.node
    return {
        "peak_flops": b.peak_flops / a.peak_flops,
        "memory_bw": b.cpu.theoretical_memory_bw / a.cpu.theoretical_memory_bw,
        "l2_per_core": (
            b.cpu.hierarchy.l2.capacity_bytes / a.cpu.hierarchy.l2.capacity_bytes
        ),
        "l3_per_core": (
            b.cpu.hierarchy.l3.capacity_per_core / a.cpu.hierarchy.l3.capacity_per_core
        ),
    }
