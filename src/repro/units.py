"""Unit helpers and formatting used across the library.

All internal quantities use SI base units: seconds, bytes, flops, watts,
joules, hertz.  Decimal prefixes (GB = 1e9 bytes) follow the convention of
bandwidth/volume reporting in the paper; binary prefixes (GiB = 2**30) are
used for capacities, matching Table 3 of the paper.
"""

from __future__ import annotations

# --- decimal (used for bandwidths, data volumes, flop rates) ---------------
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

# --- binary (used for cache and memory capacities) --------------------------
KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

GHz = 1e9
MHz = 1e6

GFLOP = 1e9


def fmt_bytes(n: float, binary: bool = False) -> str:
    """Format a byte count with an appropriate prefix.

    >>> fmt_bytes(2.5e9)
    '2.50 GB'
    >>> fmt_bytes(54 * MiB, binary=True)
    '54.00 MiB'
    """
    if binary:
        units = [("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)]
    else:
        units = [("TB", TB), ("GB", GB), ("MB", MB), ("kB", KB)]
    for name, scale in units:
        if abs(n) >= scale:
            return f"{n / scale:.2f} {name}"
    return f"{n:.0f} B"


def fmt_rate(n: float, unit: str = "B/s") -> str:
    """Format a per-second rate (bandwidth, flop rate) with SI prefix.

    >>> fmt_rate(102.4e9)
    '102.40 GB/s'
    >>> fmt_rate(4.2e9, "flop/s")
    '4.20 Gflop/s'
    """
    for prefix, scale in [("T", TERA), ("G", GIGA), ("M", MEGA), ("k", KILO)]:
        if abs(n) >= scale:
            if unit == "flop/s":
                return f"{n / scale:.2f} {prefix}flop/s"
            return f"{n / scale:.2f} {prefix}{unit}"
    return f"{n:.2f} {unit}"


def fmt_time(t: float) -> str:
    """Format a duration in seconds with sensible sub-second units.

    >>> fmt_time(0.0042)
    '4.20 ms'
    """
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= 1e-3:
        return f"{t * 1e3:.2f} ms"
    if abs(t) >= 1e-6:
        return f"{t * 1e6:.2f} us"
    return f"{t * 1e9:.2f} ns"


def fmt_power(p: float) -> str:
    """Format power in watts (kW above 1000 W)."""
    if abs(p) >= 1e3:
        return f"{p / 1e3:.2f} kW"
    return f"{p:.1f} W"


def fmt_energy(e: float) -> str:
    """Format energy in joules (kJ/MJ above thresholds)."""
    if abs(e) >= 1e6:
        return f"{e / 1e6:.2f} MJ"
    if abs(e) >= 1e3:
        return f"{e / 1e3:.2f} kJ"
    return f"{e:.1f} J"
