"""likwid-perfctr-style formatted counter reports.

Renders the derived metrics of a finished run in the familiar LIKWID
group layout (``-g MEM_DP``, ``-g L3``, ``-g L2`` — the groups of
Table 3's software row), so that readers of the paper can compare the
simulated observables with the tool output they know.
"""

from __future__ import annotations

from repro.harness.results import RunResult
from repro.machine.cluster import ClusterSpec
from repro.units import GB


def _box(title: str, rows: list[tuple[str, str]]) -> str:
    width_l = max(len(r[0]) for r in rows)
    width_r = max(len(r[1]) for r in rows)
    inner = max(width_l + width_r + 5, len(title) + 3)
    width_r += inner - (width_l + width_r + 5)
    top = "+" + "-" * inner + "+"
    out = [top, "| " + title.ljust(inner - 1) + "|", top]
    for left, right in rows:
        out.append(f"| {left.ljust(width_l)} | {right.rjust(width_r)} |")
    out.append(top)
    return "\n".join(out)


def mem_dp_report(result: RunResult, cluster: ClusterSpec) -> str:
    """The MEM_DP group: DP flop rates, memory bandwidth and volume."""
    rows = [
        ("Runtime (RDTSC) [s]", f"{result.elapsed:.4f}"),
        ("DP [MFLOP/s]", f"{result.gflops * 1e3:.1f}"),
        ("AVX DP [MFLOP/s]", f"{result.gflops_avx * 1e3:.1f}"),
        ("Vectorization ratio [%]", f"{100 * result.vectorization_ratio:.1f}"),
        ("Memory bandwidth [MBytes/s]", f"{result.mem_bandwidth / 1e6:.1f}"),
        ("Memory data volume [GBytes]", f"{result.mem_volume / GB:.2f}"),
        (
            "Bandwidth saturation [%]",
            f"{100 * result.mem_bandwidth / (cluster.node.sustained_memory_bw * result.nnodes):.1f}",
        ),
    ]
    return _box(f"Group MEM_DP | {result.benchmark} | {result.nprocs} ranks", rows)


def cache_report(result: RunResult) -> str:
    """The L3/L2 groups: cache bandwidths and volumes."""
    rows = [
        ("L3 bandwidth [MBytes/s]", f"{result.l3_bandwidth / 1e6:.1f}"),
        ("L3 data volume [GBytes]", f"{result.counters['l3_bytes'] / GB:.2f}"),
        ("L2 bandwidth [MBytes/s]", f"{result.l2_bandwidth / 1e6:.1f}"),
        ("L2 data volume [GBytes]", f"{result.counters['l2_bytes'] / GB:.2f}"),
        (
            "L3/L2 traffic ratio",
            f"{result.counters['l3_bytes'] / max(result.counters['l2_bytes'], 1.0):.2f}",
        ),
    ]
    return _box(f"Groups L3+L2 | {result.benchmark} | {result.nprocs} ranks", rows)


def energy_report(result: RunResult) -> str:
    """The ENERGY group: RAPL package and DRAM domains."""
    e = result.energy
    rows = [
        ("Runtime [s]", f"{result.elapsed:.4f}"),
        ("Energy PKG [J]", f"{e.chip_energy:.1f}"),
        ("Power PKG [W]", f"{e.avg_chip_power:.1f}"),
        ("Energy DRAM [J]", f"{e.dram_energy:.1f}"),
        ("Power DRAM [W]", f"{e.avg_dram_power:.1f}"),
        ("Energy-delay product [Js]", f"{e.edp:.1f}"),
    ]
    return _box(f"Group ENERGY | {result.benchmark} | {result.nnodes} node(s)", rows)


def full_report(result: RunResult, cluster: ClusterSpec) -> str:
    """All groups concatenated — one likwid-perfctr session."""
    return "\n\n".join(
        [
            mem_dp_report(result, cluster),
            cache_report(result),
            energy_report(result),
        ]
    )
