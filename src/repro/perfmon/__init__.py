"""Instrumentation layer: simulated LIKWID, RAPL, ITAC, ClusterCockpit.

This subpackage turns raw :class:`~repro.smpi.runtime.MpiJob` results into
the observables the paper plots:

* :mod:`repro.perfmon.counters` — LIKWID-style derived metrics (Gflop/s,
  DP-AVX rate, memory/L3/L2 bandwidth and data volumes, vectorization
  ratio) from the accumulated hardware-event counters;
* :mod:`repro.perfmon.rapl` — chip and DRAM energy by integrating the
  power models over each rank's compute/MPI/idle phases;
* :mod:`repro.perfmon.trace` — ITAC-style per-rank timelines with ASCII
  rendering (the insets of Fig. 2);
* :mod:`repro.perfmon.roofline` — time-resolved Roofline coordinates
  (ClusterCockpit-style node monitoring).
"""

from repro.perfmon.counters import CounterReport, measure
from repro.perfmon.rapl import EnergyMeter, EnergyReading
from repro.perfmon.trace import TraceCollector, TraceInterval
from repro.perfmon.roofline import RooflinePoint, roofline_point

__all__ = [
    "CounterReport",
    "measure",
    "EnergyMeter",
    "EnergyReading",
    "TraceCollector",
    "TraceInterval",
    "RooflinePoint",
    "roofline_point",
]
