"""ITAC-style MPI event traces.

The collector receives every timeline interval (compute and MPI call
kinds) from the simulated runtime and renders the per-rank timelines the
paper shows as insets in Fig. 2 — e.g. minisweep's MPI_Recv ripple at 59
processes and lbm's one-slow-rank barrier skew at 71 processes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceInterval:
    rank: int
    t0: float
    t1: float
    kind: str
    flops: float = 0.0
    mem_bytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


#: Single-character glyphs for ASCII timelines (ITAC color legend).
GLYPHS = {
    "compute": ".",
    "MPI_Send": "S",
    "MPI_Recv": "R",
    "MPI_Wait": "W",
    "MPI_Sendrecv": "X",
    "MPI_Allreduce": "A",
    "MPI_Barrier": "B",
    "MPI_Bcast": "C",
    "MPI_Reduce": "D",
    "MPI_Allgather": "G",
    "MPI_Scatter": "T",
    "MPI_Gather": "H",
    "MPI_Alltoall": "L",
}


class TraceCollector:
    """Accumulates timeline intervals for all ranks of one job."""

    def __init__(self) -> None:
        self._intervals: list[TraceInterval] = []

    # --- recording (called by the runtime) ---------------------------------

    def record(
        self,
        rank: int,
        t0: float,
        t1: float,
        kind: str,
        flops: float = 0.0,
        mem_bytes: float = 0.0,
    ) -> None:
        if t1 < t0:
            raise ValueError("interval ends before it starts")
        self._intervals.append(
            TraceInterval(rank, t0, t1, kind, flops, mem_bytes)
        )

    # --- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def intervals(self) -> tuple[TraceInterval, ...]:
        return tuple(self._intervals)

    def for_rank(self, rank: int) -> list[TraceInterval]:
        return sorted(
            (iv for iv in self._intervals if iv.rank == rank), key=lambda iv: iv.t0
        )

    def span(self) -> tuple[float, float]:
        if not self._intervals:
            return (0.0, 0.0)
        return (
            min(iv.t0 for iv in self._intervals),
            max(iv.t1 for iv in self._intervals),
        )

    def time_by_kind(self, rank: int | None = None) -> dict[str, float]:
        """Total time per interval kind, optionally for a single rank."""
        acc: dict[str, float] = defaultdict(float)
        for iv in self._intervals:
            if rank is None or iv.rank == rank:
                acc[iv.kind] += iv.duration
        return dict(acc)

    def fractions(self, rank: int | None = None) -> dict[str, float]:
        """Share of traced time per kind (the paper's '75 % in MPI_Recv')."""
        times = self.time_by_kind(rank)
        total = sum(times.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in times.items()}

    def dominant_mpi_kind(self) -> str | None:
        """The MPI call consuming the most aggregate time."""
        times = {
            k: v for k, v in self.time_by_kind().items() if k.startswith("MPI_")
        }
        if not times:
            return None
        return max(times, key=times.get)

    # --- rendering --------------------------------------------------------------

    def ascii_timeline(
        self, ranks: list[int] | None = None, width: int = 100
    ) -> str:
        """ITAC-like ASCII rendering: one row per rank, one column per time
        bucket, glyph = kind occupying most of the bucket."""
        t_min, t_max = self.span()
        if t_max <= t_min:
            return "(empty trace)"
        if ranks is None:
            ranks = sorted({iv.rank for iv in self._intervals})
        dt = (t_max - t_min) / width
        lines = []
        for r in ranks:
            buckets: list[dict[str, float]] = [defaultdict(float) for _ in range(width)]
            for iv in self.for_rank(r):
                b0 = int((iv.t0 - t_min) / dt)
                b1 = int((iv.t1 - t_min) / dt)
                for b in range(max(0, b0), min(width, b1 + 1)):
                    lo = t_min + b * dt
                    hi = lo + dt
                    overlap = min(iv.t1, hi) - max(iv.t0, lo)
                    if overlap > 0:
                        buckets[b][iv.kind] += overlap
                for b in (b0,) if b0 == b1 and 0 <= b0 < width else ():
                    pass
            row = []
            for b in buckets:
                if not b:
                    row.append(" ")
                else:
                    kind = max(b, key=b.get)
                    row.append(GLYPHS.get(kind, "?"))
            lines.append(f"rank {r:4d} |{''.join(row)}|")
        legend = "  ".join(f"{g}={k}" for k, g in GLYPHS.items())
        return "\n".join(lines) + "\n" + legend
