"""ITAC-style MPI event traces.

The collector receives every timeline interval (compute and MPI call
kinds) from the simulated runtime and renders the per-rank timelines the
paper shows as insets in Fig. 2 — e.g. minisweep's MPI_Recv ripple at 59
processes and lbm's one-slow-rank barrier skew at 71 processes.

Two collection modes:

* **full** (default) — every interval is retained, per rank, exactly as
  before.  Right for the paper-figure insets (dozens of ranks, a few
  representative steps).
* **streaming** (``streaming=True``) — only per-rank per-kind running
  sums plus the global span are kept, with an optional capped ring of
  the most recent intervals (``ring=N``).  Memory is O(ranks x kinds +
  N) no matter how long the run, so paper-scale sweeps (64 nodes x 104
  ranks x thousands of events) can stay traced.  Aggregate queries
  (``time_by_kind``, ``fractions``, ``dominant_mpi_kind``, ``span``) are
  exact in both modes; ``intervals``/``for_rank``/``ascii_timeline`` see
  only the ring tail in streaming mode.

All aggregate queries are O(1)/O(kinds) in both modes: the collector
maintains running per-rank indexes instead of scanning every interval.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceInterval:
    rank: int
    t0: float
    t1: float
    kind: str
    flops: float = 0.0
    mem_bytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


#: Single-character glyphs for ASCII timelines (ITAC color legend).
GLYPHS = {
    "compute": ".",
    "MPI_Send": "S",
    "MPI_Recv": "R",
    "MPI_Wait": "W",
    "MPI_Sendrecv": "X",
    "MPI_Allreduce": "A",
    "MPI_Barrier": "B",
    "MPI_Bcast": "C",
    "MPI_Reduce": "D",
    "MPI_Allgather": "G",
    "MPI_Scatter": "T",
    "MPI_Gather": "H",
    "MPI_Alltoall": "L",
}


class TraceCollector:
    """Accumulates timeline intervals for all ranks of one job.

    ``streaming=True`` switches to bounded-memory aggregation (see the
    module docstring); ``ring`` caps how many recent intervals are kept
    for timeline rendering in that mode (``None`` keeps none).
    """

    def __init__(self, streaming: bool = False, ring: int | None = None) -> None:
        if ring is not None and ring < 1:
            raise ValueError("ring capacity must be >= 1")
        self.streaming = streaming
        self.ring_capacity = ring if streaming else None
        if streaming:
            self._ring: deque[TraceInterval] | None = (
                deque(maxlen=ring) if ring is not None else None
            )
        else:
            self._by_rank: dict[int, list[TraceInterval]] = {}
        self._count = 0
        # running aggregates (exact in both modes)
        self._time_by_kind_rank: dict[int, dict[str, float]] = {}
        self._time_by_kind_all: dict[str, float] = defaultdict(float)
        self._t_min = float("inf")
        self._t_max = float("-inf")

    # --- recording (called by the runtime) ---------------------------------

    def record(
        self,
        rank: int,
        t0: float,
        t1: float,
        kind: str,
        flops: float = 0.0,
        mem_bytes: float = 0.0,
    ) -> None:
        if t1 < t0:
            raise ValueError("interval ends before it starts")
        iv = TraceInterval(rank, t0, t1, kind, flops, mem_bytes)
        self._count += 1
        if t0 < self._t_min:
            self._t_min = t0
        if t1 > self._t_max:
            self._t_max = t1
        per_rank = self._time_by_kind_rank.get(rank)
        if per_rank is None:
            per_rank = self._time_by_kind_rank[rank] = defaultdict(float)
        per_rank[kind] += iv.duration
        self._time_by_kind_all[kind] += iv.duration
        if self.streaming:
            if self._ring is not None:
                self._ring.append(iv)
        else:
            bucket = self._by_rank.get(rank)
            if bucket is None:
                bucket = self._by_rank[rank] = []
            bucket.append(iv)

    # --- queries -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of intervals *recorded* (not necessarily retained)."""
        return self._count

    @property
    def intervals(self) -> tuple[TraceInterval, ...]:
        """Retained intervals in recording order.  Full mode: all of
        them; streaming mode: the ring tail (empty without a ring)."""
        if self.streaming:
            return tuple(self._ring) if self._ring is not None else ()
        out: list[TraceInterval] = []
        for bucket in self._by_rank.values():
            out.extend(bucket)
        out.sort(key=lambda iv: (iv.t0, iv.rank))
        return tuple(out)

    def for_rank(self, rank: int) -> list[TraceInterval]:
        """Retained intervals of one rank, by start time (O(rank's own
        intervals) — served from the per-rank index, not a global scan)."""
        if self.streaming:
            ivs = (
                [iv for iv in self._ring if iv.rank == rank]
                if self._ring is not None
                else []
            )
        else:
            ivs = list(self._by_rank.get(rank, ()))
        ivs.sort(key=lambda iv: iv.t0)
        return ivs

    def span(self) -> tuple[float, float]:
        if self._count == 0:
            return (0.0, 0.0)
        return (self._t_min, self._t_max)

    def time_by_kind(self, rank: int | None = None) -> dict[str, float]:
        """Total time per interval kind, optionally for a single rank.
        Exact in both modes (served from running sums, O(kinds))."""
        if rank is None:
            return dict(self._time_by_kind_all)
        return dict(self._time_by_kind_rank.get(rank, {}))

    def fractions(self, rank: int | None = None) -> dict[str, float]:
        """Share of traced time per kind (the paper's '75 % in MPI_Recv')."""
        times = self.time_by_kind(rank)
        total = sum(times.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in times.items()}

    def dominant_mpi_kind(self) -> str | None:
        """The MPI call consuming the most aggregate time."""
        times = {
            k: v for k, v in self.time_by_kind().items() if k.startswith("MPI_")
        }
        if not times:
            return None
        return max(times, key=times.get)

    # --- rendering --------------------------------------------------------------

    def ascii_timeline(
        self, ranks: list[int] | None = None, width: int = 100
    ) -> str:
        """ITAC-like ASCII rendering: one row per rank, one column per time
        bucket, glyph = kind occupying most of the bucket.

        In streaming mode the timeline covers whatever the interval ring
        retained (annotated as partial); without a ring it degrades to a
        one-line aggregate summary instead of failing.
        """
        retained = self.intervals
        if not retained:
            if self.streaming and self._count:
                times = self.time_by_kind()
                total = sum(times.values()) or 1.0
                parts = "  ".join(
                    f"{k} {100.0 * v / total:.1f}%"
                    for k, v in sorted(times.items(), key=lambda kv: -kv[1])
                )
                return (
                    f"(streaming trace: {self._count} intervals aggregated, "
                    f"none retained)\n{parts}"
                )
            return "(empty trace)"
        t_min = min(iv.t0 for iv in retained)
        t_max = max(iv.t1 for iv in retained)
        if t_max <= t_min:
            return "(empty trace)"
        if ranks is None:
            ranks = sorted({iv.rank for iv in retained})
        by_rank: dict[int, list[TraceInterval]] = {r: [] for r in ranks}
        for iv in retained:
            if iv.rank in by_rank:
                by_rank[iv.rank].append(iv)
        dt = (t_max - t_min) / width
        lines = []
        for r in ranks:
            buckets: list[dict[str, float]] = [
                defaultdict(float) for _ in range(width)
            ]
            for iv in by_rank[r]:
                b0 = int((iv.t0 - t_min) / dt)
                b1 = int((iv.t1 - t_min) / dt)
                for b in range(max(0, b0), min(width, b1 + 1)):
                    lo = t_min + b * dt
                    hi = lo + dt
                    overlap = min(iv.t1, hi) - max(iv.t0, lo)
                    if overlap > 0:
                        buckets[b][iv.kind] += overlap
            row = []
            for b in buckets:
                if not b:
                    row.append(" ")
                else:
                    kind = max(b, key=b.get)
                    row.append(GLYPHS.get(kind, "?"))
            lines.append(f"rank {r:4d} |{''.join(row)}|")
        legend = "  ".join(f"{g}={k}" for k, g in GLYPHS.items())
        out = "\n".join(lines) + "\n" + legend
        if self.streaming and self._count > len(retained):
            out = (
                f"(streaming trace: showing the {len(retained)} most recent "
                f"of {self._count} intervals)\n" + out
            )
        return out
