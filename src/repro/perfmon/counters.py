"""LIKWID-style derived metrics.

``likwid-perfctr -g MEM_DP / L3 / L2`` on the paper's systems reports
flop rates split by SIMD width, memory/L3/L2 bandwidths, and data volumes.
:func:`measure` computes the same quantities from a finished simulated job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.smpi.runtime import MpiJob
from repro.units import GB, GIGA


@dataclass(frozen=True)
class CounterReport:
    """Aggregate derived metrics of one job (node/cluster level).

    Rates are based on the job's wall-clock time (makespan), volumes are
    totals over all ranks — the conventions of the paper's Figs. 1-2, 5.
    """

    elapsed: float
    flops_total: float
    simd_flops_total: float
    mem_bytes_total: float
    l3_bytes_total: float
    l2_bytes_total: float

    # --- rates ----------------------------------------------------------------

    @property
    def gflops(self) -> float:
        """DP performance [Gflop/s] (LIKWID's DP metric)."""
        return self.flops_total / self.elapsed / GIGA if self.elapsed else 0.0

    @property
    def gflops_avx(self) -> float:
        """Vectorized-only DP performance [Gflop/s] (DP-AVX metric)."""
        return self.simd_flops_total / self.elapsed / GIGA if self.elapsed else 0.0

    @property
    def mem_bandwidth(self) -> float:
        """Memory bandwidth [B/s]: data volume / wall-clock time."""
        return self.mem_bytes_total / self.elapsed if self.elapsed else 0.0

    @property
    def l3_bandwidth(self) -> float:
        return self.l3_bytes_total / self.elapsed if self.elapsed else 0.0

    @property
    def l2_bandwidth(self) -> float:
        return self.l2_bytes_total / self.elapsed if self.elapsed else 0.0

    # --- ratios -----------------------------------------------------------------

    @property
    def vectorization_ratio(self) -> float:
        """Fraction of flops done with SIMD instructions (Sect. 4.1.3)."""
        return self.simd_flops_total / self.flops_total if self.flops_total else 0.0

    @property
    def intensity(self) -> float:
        """Arithmetic intensity w.r.t. DRAM [flop/B]."""
        if self.mem_bytes_total == 0:
            return float("inf")
        return self.flops_total / self.mem_bytes_total

    def summary(self) -> str:
        """One-line metric summary for reports."""
        return (
            f"{self.gflops:8.1f} Gflop/s ({100 * self.vectorization_ratio:5.1f}% SIMD)  "
            f"mem {self.mem_bandwidth / GB:7.1f} GB/s  "
            f"L3 {self.l3_bandwidth / GB:7.1f} GB/s  "
            f"L2 {self.l2_bandwidth / GB:7.1f} GB/s  "
            f"vol {self.mem_bytes_total / GB:8.1f} GB"
        )


def measure(job: MpiJob) -> CounterReport:
    """Derive the LIKWID-style report from a finished job."""
    if job.elapsed < 0:
        raise ValueError("job has negative elapsed time")
    return CounterReport(
        elapsed=job.elapsed,
        flops_total=job.total_counter("flops"),
        simd_flops_total=job.total_counter("simd_flops"),
        mem_bytes_total=job.total_counter("mem_bytes"),
        l3_bytes_total=job.total_counter("l3_bytes"),
        l2_bytes_total=job.total_counter("l2_bytes"),
    )


def per_node_bandwidth(job: MpiJob) -> float:
    """Average per-node memory bandwidth [B/s] (Fig. 5(b,e))."""
    if job.elapsed == 0 or job.nnodes == 0:
        return 0.0
    return job.total_counter("mem_bytes") / job.elapsed / job.nnodes
