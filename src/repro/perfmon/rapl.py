"""RAPL-style energy accounting.

The meter integrates the chip power model over each rank's phases:

* **compute** — dynamic core power scaled by the kernel's heat and by the
  instantaneous utilization (stalled cores burn
  :data:`~repro.model.power.STALL_POWER_FRACTION` of busy power);
* **MPI** — busy-waiting (Intel MPI spins by default), a hot scalar loop
  at :data:`SPIN_POWER_FACTOR` of max core power — this is why minisweep's
  serialization *increases* power while lbm's slow ranks *decrease* it
  (Sect. 4.2.2);
* **idle tail** — ranks that finish before the job only contribute
  baseline power.

The socket idle baseline and the DRAM floor accrue over the whole job on
every allocated node (nodes are allocated exclusively).  DRAM dynamic
energy is exactly ``slope x transferred bytes`` since the power term is
bandwidth-proportional.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cluster import ClusterSpec
from repro.model.power import STALL_POWER_FRACTION, ChipPowerModel, DramPowerModel
from repro.smpi.runtime import MpiJob
from repro.units import GB

#: Fraction of max core power burnt by the MPI busy-wait spin loop.
SPIN_POWER_FACTOR = 0.70


@dataclass(frozen=True)
class EnergyReading:
    """Chip and DRAM energy of one job."""

    elapsed: float
    chip_energy: float
    dram_energy: float
    nnodes: int

    @property
    def total_energy(self) -> float:
        return self.chip_energy + self.dram_energy

    @property
    def avg_chip_power(self) -> float:
        return self.chip_energy / self.elapsed if self.elapsed else 0.0

    @property
    def avg_dram_power(self) -> float:
        return self.dram_energy / self.elapsed if self.elapsed else 0.0

    @property
    def avg_total_power(self) -> float:
        return self.avg_chip_power + self.avg_dram_power

    @property
    def edp(self) -> float:
        """Energy-delay product [J s]."""
        return self.total_energy * self.elapsed

    def summary(self) -> str:
        return (
            f"E={self.total_energy / 1e3:9.2f} kJ  "
            f"(chip {self.chip_energy / 1e3:8.2f} kJ, dram "
            f"{self.dram_energy / 1e3:7.2f} kJ)  "
            f"P={self.avg_total_power:8.1f} W  EDP={self.edp / 1e3:10.2f} kJ s"
        )


@dataclass(frozen=True)
class EnergyMeter:
    """RAPL meter for one cluster."""

    cluster: ClusterSpec

    def read(self, job: MpiJob) -> EnergyReading:
        """Energy of a finished job across its allocated nodes."""
        cpu = self.cluster.node.cpu
        sockets = self.cluster.node.sockets
        chip_model = ChipPowerModel(cpu)
        dram_model = DramPowerModel(cpu)
        elapsed = job.elapsed

        # --- baselines on every allocated node -----------------------------
        chip_energy = job.nnodes * sockets * cpu.idle_power_w * elapsed
        dram_energy = job.nnodes * sockets * cpu.dram_idle_power_w * elapsed

        # --- per-rank dynamic chip energy -------------------------------------
        p_max = chip_model.core_power_max_w
        for s in job.stats:
            heat_seconds = s.counters["heat_seconds"]
            heat_busy = s.counters["heat_busy_seconds"]
            compute_energy = p_max * (
                STALL_POWER_FRACTION * heat_seconds
                + (1.0 - STALL_POWER_FRACTION) * heat_busy
            )
            mpi_energy = p_max * SPIN_POWER_FACTOR * s.mpi_time
            chip_energy += compute_energy + mpi_energy

        # cap: no node can exceed TDP-average (mirrors the RAPL limiter)
        max_chip = job.nnodes * sockets * cpu.tdp_w * elapsed
        chip_energy = min(chip_energy, max_chip)

        # --- DRAM dynamic energy: slope x transferred bytes ---------------------
        dram_energy += cpu.dram_power_per_gbs * job.total_counter("mem_bytes") / GB

        return EnergyReading(
            elapsed=elapsed,
            chip_energy=chip_energy,
            dram_energy=dram_energy,
            nnodes=job.nnodes,
        )

    def baseline_power(self, nnodes: int = 1) -> float:
        """Zero-activity power of ``nnodes`` allocated nodes [W]."""
        cpu = self.cluster.node.cpu
        return (
            nnodes
            * self.cluster.node.sockets
            * (cpu.idle_power_w + cpu.dram_idle_power_w)
        )
