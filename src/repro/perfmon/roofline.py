"""Roofline coordinates (ClusterCockpit-style monitoring).

The paper uses time-resolved Roofline plots to categorize codes; here we
compute the Roofline position of a finished job against the node ceilings
and report the limiting resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.node import NodeSpec
from repro.perfmon.counters import measure
from repro.smpi.runtime import MpiJob


@dataclass(frozen=True)
class RooflinePoint:
    """One application point in the Roofline diagram of a node."""

    intensity: float        # flop/B (DRAM)
    gflops: float           # achieved Gflop/s
    peak_gflops: float      # node arithmetic ceiling
    peak_bw: float          # node bandwidth ceiling [B/s]

    @property
    def attainable_gflops(self) -> float:
        """Roofline ceiling at this intensity."""
        if self.intensity == float("inf"):
            return self.peak_gflops
        return min(self.peak_gflops, self.peak_bw * self.intensity / 1e9)

    @property
    def knee_intensity(self) -> float:
        """Intensity where the bandwidth and compute ceilings meet."""
        return self.peak_gflops * 1e9 / self.peak_bw

    @property
    def memory_bound(self) -> bool:
        """True left of the ridge point."""
        return self.intensity < self.knee_intensity

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the attainable ceiling."""
        ceiling = self.attainable_gflops
        return self.gflops / ceiling if ceiling else 0.0


def roofline_point(job: MpiJob, node: NodeSpec, nodes_used: int = 1) -> RooflinePoint:
    """Roofline position of a job, normalized to the nodes it used."""
    rep = measure(job)
    return RooflinePoint(
        intensity=rep.intensity,
        gflops=rep.gflops / max(1, nodes_used),
        peak_gflops=node.peak_flops / 1e9,
        peak_bw=node.sustained_memory_bw,
    )


@dataclass(frozen=True)
class RooflineSample:
    """One time bucket of a time-resolved Roofline series."""

    t0: float
    t1: float
    gflops: float
    mem_bw: float      # B/s

    @property
    def intensity(self) -> float:
        if self.mem_bw == 0:
            return float("inf")
        return self.gflops * 1e9 / self.mem_bw


def timeline_samples(trace, buckets: int = 50) -> list[RooflineSample]:
    """Time-resolved Roofline series from a counter-carrying trace —
    the ClusterCockpit view the paper uses to categorize codes.

    Compute intervals carry their flops and memory bytes; each interval's
    contribution is spread uniformly over the time buckets it overlaps.
    """
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    t_min, t_max = trace.span()
    if t_max <= t_min:
        return []
    dt = (t_max - t_min) / buckets
    flops = [0.0] * buckets
    mem = [0.0] * buckets
    for iv in trace.intervals:
        if iv.flops == 0 and iv.mem_bytes == 0:
            continue
        if iv.duration <= 0:
            # zero-duration interval (e.g. a replayed or instantaneous
            # phase): no span to spread over, but its counters are real —
            # deposit them whole into the bucket containing t0 instead of
            # dividing by the zero duration below
            b = min(buckets - 1, max(0, int((iv.t0 - t_min) / dt)))
            flops[b] += iv.flops
            mem[b] += iv.mem_bytes
            continue
        b0 = max(0, int((iv.t0 - t_min) / dt))
        b1 = min(buckets - 1, int((iv.t1 - t_min) / dt))
        for b in range(b0, b1 + 1):
            lo, hi = t_min + b * dt, t_min + (b + 1) * dt
            overlap = min(iv.t1, hi) - max(iv.t0, lo)
            if overlap > 0:
                share = overlap / iv.duration
                flops[b] += iv.flops * share
                mem[b] += iv.mem_bytes * share
    return [
        RooflineSample(
            t0=t_min + b * dt,
            t1=t_min + (b + 1) * dt,
            gflops=flops[b] / dt / 1e9,
            mem_bw=mem[b] / dt,
        )
        for b in range(buckets)
    ]
