"""Speedup and efficiency metrics (Sect. 4.1.1).

The paper's node-level efficiency uses one ccNUMA domain as the baseline:
with no other bottleneck, the speedup across domains should equal the
domain count; memory-bound codes saturate *within* a domain but scale
ideally *across* domains.
"""

from __future__ import annotations

from typing import Sequence

from repro.harness.results import RunResult, ScalingSeries


def domain_efficiency(
    run_domain: RunResult, run_full: RunResult, n_domains: int
) -> float:
    """Parallel efficiency (1.0 = ideal) across ccNUMA domains.

    ``run_domain`` is the one-domain baseline, ``run_full`` the full-node
    run, ``n_domains`` the node's domain count.  Values > 1 indicate
    superlinear (cache-driven) scaling.
    """
    if n_domains < 1:
        raise ValueError("n_domains must be >= 1")
    if run_domain.elapsed <= 0 or run_full.elapsed <= 0:
        raise ValueError("runs must have positive elapsed time")
    return (run_domain.elapsed / run_full.elapsed) / n_domains


def saturation_ratio(series: ScalingSeries, domain_cores: int) -> float:
    """How strongly a code saturates within the first ccNUMA domain:
    speedup at the domain boundary divided by the core count.

    ~1 means perfectly scalable inside the domain, << 1 means a shared
    bottleneck (memory bandwidth) was hit early.
    """
    sp = series.speedups()
    counts = [n for n in series.proc_counts if n <= domain_cores]
    if not counts:
        raise ValueError("series has no points inside the domain")
    boundary = max(counts)
    return sp[boundary] / boundary


def speedup_table(
    series: ScalingSeries, baseline: int | None = None
) -> list[tuple[int, float, float, float]]:
    """Rows of (nprocs, min, avg, max) speedup — Fig. 1(a, d) data."""
    stats = series.speedup_stats(baseline)
    return [(n, *stats[n]) for n in series.proc_counts]


def is_memory_saturating(
    bandwidths: Sequence[float], domain_bw: float, threshold: float = 0.9
) -> bool:
    """True if the in-domain bandwidth ramp reaches the saturated domain
    bandwidth (the paper's memory-bound signature, Fig. 2(a-b))."""
    if not bandwidths:
        return False
    return max(bandwidths) >= threshold * domain_bw
