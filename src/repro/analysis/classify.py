"""Multi-node scaling-case classification (Sect. 5.1).

Two antagonistic effects determine strong-scaling behavior at cluster
level: *cache effects* (memory data volume drops when the per-rank working
set falls into cache -> superlinear) and *communication overhead*.  The
paper sorts each benchmark into one of five categories:

====  ===============  ============  ======================
Case  Scalability      Cache effect  Communication overhead
====  ===============  ============  ======================
A     superlinear      strong        minor
B     linear           present       present (balance out)
C     close-to-linear  present       dominates
D     close-to-linear  none          only factor
poor  poor             (any)         large, often + small data set
====  ===============  ============  ======================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.harness.results import ScalingSeries


class ScalingCase(enum.Enum):
    A = "A: cache effect prevails over communication"
    B = "B: cache effect and communication balance out"
    C = "C: communication dominates over cache effect"
    D = "D: no cache effect, only communication"
    POOR = "poor: large communication overhead / small data set"


@dataclass(frozen=True)
class ScalingEvidence:
    """The measured ingredients of a classification."""

    scaling_ratio: float      # speedup at max nodes / ideal
    cache_effect: bool        # aggregate memory volume dropped
    volume_ratio: float       # volume(max nodes) / volume(1 node)
    comm_fraction: float      # aggregate MPI share at max nodes
    case: ScalingCase


#: Volume must drop below this ratio to count as a cache effect.
CACHE_VOLUME_THRESHOLD = 0.95
#: MPI share above this counts as significant communication overhead.
COMM_THRESHOLD = 0.04
#: MPI share above which communication *dominates* a present cache effect
#: (case C instead of the balanced case B).
COMM_DOMINANT = 0.08
#: Efficiency bands.
SUPERLINEAR = 1.04
CLOSE_TO_LINEAR = 0.72


def classify_scaling(series: ScalingSeries) -> ScalingEvidence:
    """Classify a multi-node series into the paper's cases A-D / poor.

    The series should cover node-level process counts (e.g. 1..16 nodes,
    full nodes each) of the *small* workload.
    """
    first = series.points[0]
    last = series.points[-1]
    if last.nprocs <= first.nprocs:
        raise ValueError("series must span increasing process counts")

    ideal = last.nprocs / first.nprocs
    speedup = series.speedups()[last.nprocs]
    ratio = speedup / ideal

    vol_first = sum(r.mem_volume for r in first.runs) / len(first.runs)
    vol_last = sum(r.mem_volume for r in last.runs) / len(last.runs)
    volume_ratio = vol_last / vol_first if vol_first else 1.0
    cache = volume_ratio < CACHE_VOLUME_THRESHOLD

    comm = sum(r.mpi_fraction for r in last.runs) / len(last.runs)

    if ratio >= SUPERLINEAR:
        case = ScalingCase.A
    elif ratio >= CLOSE_TO_LINEAR:
        if cache and comm >= COMM_DOMINANT:
            case = ScalingCase.C     # cache gains eaten by communication
        elif cache:
            case = ScalingCase.B     # cache and communication balance out
        else:
            case = ScalingCase.D     # communication is the only factor
    else:
        case = ScalingCase.POOR

    return ScalingEvidence(
        scaling_ratio=ratio,
        cache_effect=cache,
        volume_ratio=volume_ratio,
        comm_fraction=comm,
        case=case,
    )
