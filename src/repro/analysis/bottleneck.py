"""Per-run bottleneck attribution — the paper's "upshot" diagnoses.

Given a finished run, :func:`diagnose` reports which resource dominates
it (ccNUMA memory bandwidth, core execution, point-to-point MPI,
collectives, load imbalance) with the same vocabulary the paper uses to
summarize each benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.results import RunResult
from repro.machine.cluster import ClusterSpec


@dataclass(frozen=True)
class Diagnosis:
    """Summary of a run's dominating behaviors."""

    memory_bound: bool
    bandwidth_fraction: float     # achieved / saturated node bandwidth
    mpi_fraction: float
    dominant_mpi: str | None      # e.g. "MPI_Allreduce"
    p2p_dominated: bool           # point-to-point > collectives
    labels: tuple[str, ...]       # the paper-style tags

    def summary(self) -> str:
        tags = ", ".join(self.labels) if self.labels else "scalable"
        return (
            f"bandwidth {100 * self.bandwidth_fraction:.0f}% of saturation, "
            f"MPI {100 * self.mpi_fraction:.0f}%"
            + (f" (mostly {self.dominant_mpi})" if self.dominant_mpi else "")
            + f" -> {tags}"
        )


#: Achieved/saturated bandwidth above this means memory-bound behavior.
MEMORY_BOUND_FRACTION = 0.85
#: MPI share above this is "significant communication overhead".
COMM_SIGNIFICANT = 0.10
#: MPI share above this dominates the run.
COMM_DOMINANT = 0.30


def diagnose(result: RunResult, cluster: ClusterSpec) -> Diagnosis:
    """Attribute a run's behavior to the paper's bottleneck categories."""
    # saturation reference: the bandwidth of the ccNUMA domains the job's
    # compact placement actually occupies (18 ranks on a 72-core node can
    # at most saturate one domain, not four)
    occupied_domains = sum(
        cluster.node.domains_in_use(c)
        for c in cluster.ranks_per_node(result.nprocs)
    )
    sat_bw = occupied_domains * cluster.node.cpu.domain_memory_bw
    bw_frac = result.mem_bandwidth / sat_bw if sat_bw else 0.0

    mpi_times = {
        k: v for k, v in result.time_by_kind.items() if k.startswith("MPI_")
    }
    dominant = max(mpi_times, key=mpi_times.get) if mpi_times else None
    p2p = sum(
        v
        for k, v in mpi_times.items()
        if k in ("MPI_Send", "MPI_Recv", "MPI_Wait", "MPI_Sendrecv")
    )
    coll = sum(
        v
        for k, v in mpi_times.items()
        if k
        in ("MPI_Allreduce", "MPI_Barrier", "MPI_Bcast", "MPI_Reduce",
            "MPI_Allgather")
    )

    labels: list[str] = []
    memory_bound = bw_frac >= MEMORY_BOUND_FRACTION
    if memory_bound:
        labels.append("memory-bandwidth saturated")
    if result.mpi_fraction >= COMM_DOMINANT:
        labels.append("communication dominated")
    elif result.mpi_fraction >= COMM_SIGNIFICANT:
        labels.append("significant communication overhead")
    if dominant == "MPI_Allreduce" and result.mpi_fraction >= COMM_SIGNIFICANT:
        labels.append("reduction heavy")
    if (
        dominant in ("MPI_Send", "MPI_Recv")
        and result.mpi_fraction >= COMM_SIGNIFICANT
    ):
        labels.append("point-to-point serialization")
    if dominant in ("MPI_Barrier", "MPI_Wait") and result.mpi_fraction >= 0.03:
        labels.append("synchronization / load imbalance")
    if not memory_bound and result.mpi_fraction < COMM_SIGNIFICANT:
        labels.append("compute bound")

    return Diagnosis(
        memory_bound=memory_bound,
        bandwidth_fraction=bw_frac,
        mpi_fraction=result.mpi_fraction,
        dominant_mpi=dominant,
        p2p_dominated=p2p > coll,
        labels=tuple(labels),
    )
