"""Energy analysis: Z-plots, E/EDP minima, race-to-idle (Sect. 4.3).

A Z-plot relates energy to speedup with the resource count (cores) as the
parameter along the curve: horizontal lines are constant energy, vertical
lines constant speedup, lines through the origin constant EDP.  On CPUs
with dominant idle power, the energy-minimal and EDP-minimal operating
points coincide at the fastest configuration — "race to idle".

The second half of the module walks the *frequency* axis instead of the
core-count axis: :func:`frequency_sweep` prices one benchmark across a
DVFS grid (:func:`repro.model.dvfs.frequency_grid`) and
:func:`dvfs_policy` names the verdict.  Compute-bound codes race to
idle — runtime stretches as 1/f, so the idle-energy term dominates and
both E and EDP fall monotonically toward the top of the grid.
Memory-bound codes clock down: above the roofline crossover the runtime
is flat while dynamic core power still rises ~f^2.4, which puts an
*interior* minimum on the grid (the clock-down frequency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.harness.results import ScalingSeries
from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark


@dataclass(frozen=True)
class ZPoint:
    """One operating point in the Z-plot."""

    nprocs: int
    speedup: float
    energy: float
    edp: float

    def __post_init__(self) -> None:
        if self.speedup <= 0 or self.energy < 0:
            raise ValueError("invalid Z-plot point")


def zplot(series: ScalingSeries, baseline: int | None = None) -> list[ZPoint]:
    """Z-plot points (Fig. 4(a, b)) from a core-count sweep."""
    speedups = series.speedups(baseline)
    points = []
    for p in series.points:
        best = p.best
        points.append(
            ZPoint(
                nprocs=p.nprocs,
                speedup=speedups[p.nprocs],
                energy=best.total_energy,
                edp=best.edp,
            )
        )
    return points


def energy_minimum(points: list[ZPoint]) -> ZPoint:
    """Operating point with minimal energy to solution."""
    if not points:
        raise ValueError("no points")
    return min(points, key=lambda p: p.energy)


def edp_minimum(points: list[ZPoint]) -> ZPoint:
    """Operating point with minimal energy-delay product."""
    if not points:
        raise ValueError("no points")
    return min(points, key=lambda p: p.edp)


def race_to_idle_holds(points: list[ZPoint], tolerance: float = 0.06) -> bool:
    """True if the E-minimal and EDP-minimal points both sit at (or within
    ``tolerance`` of) the fastest operating point — the paper's headline
    energy conclusion for Ice Lake and Sapphire Rapids."""
    if not points:
        raise ValueError("no points")
    fastest = max(points, key=lambda p: p.speedup)
    e_min = energy_minimum(points)
    edp_min = edp_minimum(points)
    near = lambda p: p.speedup >= (1.0 - tolerance) * fastest.speedup  # noqa: E731
    return near(e_min) and near(edp_min)


# --------------------------------------------------------------------------
# DVFS what-ifs: the frequency axis
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FrequencyPoint:
    """One operating frequency of a DVFS sweep."""

    frequency_hz: float
    elapsed: float
    chip_energy: float
    dram_energy: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.elapsed <= 0:
            raise ValueError("invalid frequency point")

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_hz / 1e9

    @property
    def total_energy(self) -> float:
        return self.chip_energy + self.dram_energy

    @property
    def edp(self) -> float:
        return self.total_energy * self.elapsed

    @property
    def avg_power(self) -> float:
        return self.total_energy / self.elapsed


def frequency_sweep(
    benchmark: Benchmark,
    cluster: ClusterSpec,
    frequencies: Optional[Sequence[float]] = None,
    nnodes: int = 1,
    nprocs: Optional[int] = None,
    suite: str = "tiny",
    uncore_ratio: float = 1.0,
    tier: str = "analytic",
    **run_kwargs: Any,
) -> list[FrequencyPoint]:
    """Price one benchmark across a core-frequency grid.

    ``tier="analytic"`` prices every point through Tier A
    (:func:`repro.predict.api.predict` with the re-clocked cluster as
    the ``cluster_obj`` escape hatch) — the whole grid costs
    milliseconds, which is what lets the scenario bench commit a full
    sweep artifact.  ``tier="des"`` runs the event-level simulator per
    point instead (``run_kwargs`` forwarded).  The default grid is
    :func:`repro.model.dvfs.frequency_grid` over 0.5-1.33x nominal.
    """
    from repro.model.dvfs import apply_frequency, frequency_grid

    if frequencies is None:
        frequencies = frequency_grid(cluster)
    if tier not in ("analytic", "des"):
        raise ValueError(f"unknown frequency-sweep tier {tier!r}")
    points = []
    for f in frequencies:
        clocked = apply_frequency(cluster, f, uncore_ratio)
        if tier == "analytic":
            from repro.predict.api import PredictionSpec, predict

            pred = predict(
                PredictionSpec(
                    benchmark=benchmark.name,
                    cluster=cluster.name,
                    nnodes=nnodes,
                    suite=suite,
                    nprocs=nprocs,
                    benchmark_obj=benchmark,
                    cluster_obj=clocked,
                ),
                tier="analytic",
            )
            elapsed = pred.runtime
            chip, dram = pred.energy.chip_energy, pred.energy.dram_energy
        else:
            from repro.harness.runner import run

            result = run(
                benchmark,
                clocked,
                nprocs=nprocs or nnodes * cluster.cores_per_node,
                suite=suite,
                **run_kwargs,
            )
            elapsed = result.elapsed
            chip, dram = result.energy.chip_energy, result.energy.dram_energy
        points.append(FrequencyPoint(
            frequency_hz=f, elapsed=elapsed, chip_energy=chip, dram_energy=dram,
        ))
    return points


def energy_optimal_frequency(points: list[FrequencyPoint]) -> FrequencyPoint:
    """The grid point with minimal energy to solution."""
    if not points:
        raise ValueError("no points")
    return min(points, key=lambda p: p.total_energy)


def edp_optimal_frequency(points: list[FrequencyPoint]) -> FrequencyPoint:
    """The grid point with minimal energy-delay product."""
    if not points:
        raise ValueError("no points")
    return min(points, key=lambda p: p.edp)


def dvfs_policy(points: list[FrequencyPoint]) -> str:
    """``"race-to-idle"`` when both the E- and EDP-minima sit at the top
    of the frequency grid (finish fast, let idle power stop burning);
    ``"clock-down"`` when either minimum is interior or at the bottom
    (memory-bound: the clock can drop without the runtime following)."""
    if not points:
        raise ValueError("no points")
    top = max(points, key=lambda p: p.frequency_hz).frequency_hz
    e_opt = energy_optimal_frequency(points)
    edp_opt = edp_optimal_frequency(points)
    if e_opt.frequency_hz == top and edp_opt.frequency_hz == top:
        return "race-to-idle"
    return "clock-down"


def concurrency_throttling_saves(
    points: list[ZPoint], full_point: ZPoint | None = None
) -> float:
    """Relative energy saving achievable by using fewer cores than the
    maximum (older CPUs: substantial for memory-bound codes; on the
    paper's CPUs: marginal).  Returns (E_full - E_min) / E_full."""
    if not points:
        raise ValueError("no points")
    full = full_point or max(points, key=lambda p: p.nprocs)
    e_min = energy_minimum(points).energy
    if full.energy == 0:
        return 0.0
    return (full.energy - e_min) / full.energy
