"""Energy analysis: Z-plots, E/EDP minima, race-to-idle (Sect. 4.3).

A Z-plot relates energy to speedup with the resource count (cores) as the
parameter along the curve: horizontal lines are constant energy, vertical
lines constant speedup, lines through the origin constant EDP.  On CPUs
with dominant idle power, the energy-minimal and EDP-minimal operating
points coincide at the fastest configuration — "race to idle".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.results import ScalingSeries


@dataclass(frozen=True)
class ZPoint:
    """One operating point in the Z-plot."""

    nprocs: int
    speedup: float
    energy: float
    edp: float

    def __post_init__(self) -> None:
        if self.speedup <= 0 or self.energy < 0:
            raise ValueError("invalid Z-plot point")


def zplot(series: ScalingSeries, baseline: int | None = None) -> list[ZPoint]:
    """Z-plot points (Fig. 4(a, b)) from a core-count sweep."""
    speedups = series.speedups(baseline)
    points = []
    for p in series.points:
        best = p.best
        points.append(
            ZPoint(
                nprocs=p.nprocs,
                speedup=speedups[p.nprocs],
                energy=best.total_energy,
                edp=best.edp,
            )
        )
    return points


def energy_minimum(points: list[ZPoint]) -> ZPoint:
    """Operating point with minimal energy to solution."""
    if not points:
        raise ValueError("no points")
    return min(points, key=lambda p: p.energy)


def edp_minimum(points: list[ZPoint]) -> ZPoint:
    """Operating point with minimal energy-delay product."""
    if not points:
        raise ValueError("no points")
    return min(points, key=lambda p: p.edp)


def race_to_idle_holds(points: list[ZPoint], tolerance: float = 0.06) -> bool:
    """True if the E-minimal and EDP-minimal points both sit at (or within
    ``tolerance`` of) the fastest operating point — the paper's headline
    energy conclusion for Ice Lake and Sapphire Rapids."""
    if not points:
        raise ValueError("no points")
    fastest = max(points, key=lambda p: p.speedup)
    e_min = energy_minimum(points)
    edp_min = edp_minimum(points)
    near = lambda p: p.speedup >= (1.0 - tolerance) * fastest.speedup  # noqa: E731
    return near(e_min) and near(edp_min)


def concurrency_throttling_saves(
    points: list[ZPoint], full_point: ZPoint | None = None
) -> float:
    """Relative energy saving achievable by using fewer cores than the
    maximum (older CPUs: substantial for memory-bound codes; on the
    paper's CPUs: marginal).  Returns (E_full - E_min) / E_full."""
    if not points:
        raise ValueError("no points")
    full = full_point or max(points, key=lambda p: p.nprocs)
    e_min = energy_minimum(points).energy
    if full.energy == 0:
        return 0.0
    return (full.energy - e_min) / full.energy
