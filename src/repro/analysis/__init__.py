"""Analysis layer: the paper's derived metrics and classifications.

* :mod:`repro.analysis.speedup` — speedups, parallel efficiency with
  ccNUMA-domain baselines (Sect. 4.1.1), saturation detection;
* :mod:`repro.analysis.classify` — the four multi-node scaling cases A-D
  plus "poor" (Sect. 5.1), decided from cache-effect and
  communication-overhead evidence;
* :mod:`repro.analysis.energy` — Z-plots, energy/EDP minima, race-to-idle
  (Sect. 4.3);
* :mod:`repro.analysis.comparison` — ClusterB-over-ClusterA acceleration
  factors and hot/cool power classification (Sect. 4.1.2, 4.2.1).
"""

from repro.analysis.speedup import (
    domain_efficiency,
    saturation_ratio,
    speedup_table,
)
from repro.analysis.classify import ScalingCase, classify_scaling
from repro.analysis.energy import ZPoint, race_to_idle_holds, zplot
from repro.analysis.comparison import acceleration_factor, tdp_fraction

__all__ = [
    "domain_efficiency",
    "saturation_ratio",
    "speedup_table",
    "ScalingCase",
    "classify_scaling",
    "ZPoint",
    "zplot",
    "race_to_idle_holds",
    "acceleration_factor",
    "tdp_fraction",
]
