"""Cross-cluster and power-envelope comparisons (Sect. 4.1.2, 4.2.1)."""

from __future__ import annotations

from repro.harness.results import RunResult
from repro.machine.cluster import ClusterSpec


def acceleration_factor(run_a: RunResult, run_b: RunResult) -> float:
    """Node-level speedup of cluster B over cluster A for the same
    benchmark/workload (Sect. 4.1.2's table): elapsed(A) / elapsed(B)."""
    if run_a.benchmark != run_b.benchmark or run_a.suite != run_b.suite:
        raise ValueError("comparing different benchmarks or workloads")
    if run_b.elapsed <= 0:
        raise ValueError("invalid elapsed time")
    return run_a.elapsed / run_b.elapsed


def tdp_fraction(result: RunResult, cluster: ClusterSpec) -> float:
    """Average chip power as a fraction of the allocated sockets' TDP —
    the paper's hot/cool metric (sph-exa ~0.98, soma ~0.85-0.89)."""
    sockets = result.nnodes * cluster.node.sockets
    tdp = sockets * cluster.node.cpu.tdp_w
    return result.energy.avg_chip_power / tdp


def is_hot(result: RunResult, cluster: ClusterSpec, threshold: float = 0.92) -> bool:
    """Hot codes approach the TDP limit (Sect. 4.2.1)."""
    return tdp_fraction(result, cluster) >= threshold


def dram_power_per_socket(result: RunResult, cluster: ClusterSpec) -> float:
    """Average DRAM power per socket [W]."""
    sockets = result.nnodes * cluster.node.sockets
    return result.energy.avg_dram_power / sockets


def expected_acceleration_band(
    cluster_a: ClusterSpec, cluster_b: ClusterSpec
) -> tuple[float, float]:
    """The paper's a-priori expectation: between the peak-performance
    ratio (compute-bound) and the memory-bandwidth ratio (memory-bound)."""
    peak = cluster_b.node.peak_flops / cluster_a.node.peak_flops
    bw = cluster_b.node.sustained_memory_bw / cluster_a.node.sustained_memory_bw
    return (min(peak, bw), max(peak, bw))
