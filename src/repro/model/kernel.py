"""Kernel resource characterization.

A :class:`KernelModel` describes one computational kernel *per unit of
work* (a lattice-site update, a grid-cell sweep, a particle interaction...).
The numbers play the role the paper's LIKWID measurements play: they fix
the kernel's position in the Roofline diagram and its traffic through the
cache hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class KernelModel:
    """Per-work-unit resource footprint of a kernel.

    Parameters
    ----------
    name:
        Kernel name (used in traces and reports).
    flops_per_unit:
        DP floating-point operations per work unit.
    simd_fraction:
        Fraction of those flops executed as (AVX-512) SIMD instructions —
        the "vectorization ratio" of Sect. 4.1.3.
    mem_bytes_per_unit:
        DRAM traffic per unit when the working set streams from memory.
    l3_bytes_per_unit / l2_bytes_per_unit:
        Cache traffic per unit.  On the paper's CPUs L3 is a victim cache
        and can see *more* traffic than L2 for streaming kernels.
    working_set_bytes_per_unit:
        Resident state per work unit — decides cache fit under strong
        scaling.
    compute_efficiency:
        Fraction of the core's arithmetic peak this instruction mix can
        achieve when not limited by data transfers (real codes rarely
        exceed ~0.5).
    heat:
        Relative per-core dynamic power of this instruction mix when the
        core is fully busy, in (0, 1] — 1.0 for the "hottest" codes of
        Sect. 4.2.1 (sph-exa reaches 98 % of TDP), ~0.8 for "cool" ones
        (soma at 85-89 %).
    latency_bound_factor:
        >1 for kernels whose memory access is latency/TLB-sensitive rather
        than purely streaming (e.g. lbm's "propagate" with sparse
        accesses); inflates the single-core memory time without changing
        the saturated bandwidth.
    cache_sharpness:
        Steepness of the capacity-miss transition in
        :func:`repro.model.execution.cache_fit_factor` — large for
        hot-spot/blocked access patterns whose misses die off quickly once
        the hot set fits (e.g. replicated lookup tables), small for
        streaming sweeps.
    fixed_working_set_bytes:
        If > 0, the per-rank resident set is this constant instead of
        ``working_set_bytes_per_unit * units`` — for hot structures whose
        size does not strong-scale (replicated fields, lookup tables,
        tree caches).  This makes a code cache-*sensitive* (ClusterB's
        larger caches help) without making it cache-*scalable*.
    mem_overlap:
        Fraction of the DRAM time hidden under computation.  1 (default)
        models prefetched streaming (Roofline max); 0 models dependent
        random loads that fully serialize with the instruction stream
        (soma's field lookups).
    """

    name: str
    flops_per_unit: float
    simd_fraction: float
    mem_bytes_per_unit: float
    l3_bytes_per_unit: float
    l2_bytes_per_unit: float
    working_set_bytes_per_unit: float
    compute_efficiency: float = 0.40
    latency_bound_factor: float = 1.0
    heat: float = 0.85
    cache_sharpness: float = 1.8
    fixed_working_set_bytes: float = 0.0
    mem_overlap: float = 1.0

    def __post_init__(self) -> None:
        if self.flops_per_unit < 0 or self.mem_bytes_per_unit < 0:
            raise ValueError(f"{self.name}: negative resource counts")
        if not (0.0 <= self.simd_fraction <= 1.0):
            raise ValueError(f"{self.name}: simd_fraction must be in [0, 1]")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError(f"{self.name}: compute_efficiency must be in (0, 1]")
        if self.latency_bound_factor < 1.0:
            raise ValueError(f"{self.name}: latency_bound_factor must be >= 1")
        if not (0.0 < self.heat <= 1.0):
            raise ValueError(f"{self.name}: heat must be in (0, 1]")
        if self.cache_sharpness <= 0:
            raise ValueError(f"{self.name}: cache_sharpness must be positive")
        if self.fixed_working_set_bytes < 0:
            raise ValueError(f"{self.name}: fixed working set must be >= 0")
        if not (0.0 <= self.mem_overlap <= 1.0):
            raise ValueError(f"{self.name}: mem_overlap must be in [0, 1]")

    @property
    def intensity(self) -> float:
        """Arithmetic intensity w.r.t. DRAM traffic [flop/B]."""
        if self.mem_bytes_per_unit == 0:
            return float("inf")
        return self.flops_per_unit / self.mem_bytes_per_unit

    def scaled(self, factor: float) -> "KernelModel":
        """A copy with all per-unit resources multiplied by ``factor``
        (useful to fold several sub-kernels into one)."""
        return replace(
            self,
            flops_per_unit=self.flops_per_unit * factor,
            mem_bytes_per_unit=self.mem_bytes_per_unit * factor,
            l3_bytes_per_unit=self.l3_bytes_per_unit * factor,
            l2_bytes_per_unit=self.l2_bytes_per_unit * factor,
        )


@dataclass(frozen=True)
class PhaseCost:
    """Resolved cost of executing a kernel on some units of work:
    the virtual duration plus the counter increments to account.

    ``busy_seconds`` is the instruction-execution portion of the phase in
    *core-seconds* (the rest is stalled on data) — it can exceed
    ``seconds`` for multi-threaded (hybrid MPI+X) phases where several
    cores execute concurrently.  ``heat`` is the kernel's power factor.
    Both feed the RAPL energy meter.
    """

    seconds: float
    flops: float
    simd_flops: float
    mem_bytes: float
    l3_bytes: float
    l2_bytes: float
    busy_seconds: float = -1.0
    heat: float = 0.85

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("phase duration must be non-negative")
        if self.busy_seconds < 0:
            object.__setattr__(self, "busy_seconds", self.seconds)

    def __add__(self, other: "PhaseCost") -> "PhaseCost":
        total_s = self.seconds + other.seconds
        heat = self.heat
        if total_s > 0:
            heat = (self.heat * self.seconds + other.heat * other.seconds) / total_s
        elif other.seconds == 0 and self.seconds == 0:
            heat = max(self.heat, other.heat)
        return PhaseCost(
            seconds=total_s,
            flops=self.flops + other.flops,
            simd_flops=self.simd_flops + other.simd_flops,
            mem_bytes=self.mem_bytes + other.mem_bytes,
            l3_bytes=self.l3_bytes + other.l3_bytes,
            l2_bytes=self.l2_bytes + other.l2_bytes,
            busy_seconds=self.busy_seconds + other.busy_seconds,
            heat=heat,
        )

    def scaled(self, factor: float) -> "PhaseCost":
        """All quantities multiplied by ``factor`` (e.g. remaining steps)."""
        return PhaseCost(
            seconds=self.seconds * factor,
            flops=self.flops * factor,
            simd_flops=self.simd_flops * factor,
            mem_bytes=self.mem_bytes * factor,
            l3_bytes=self.l3_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
            busy_seconds=self.busy_seconds * factor,
            heat=self.heat,
        )

    @staticmethod
    def zero() -> "PhaseCost":
        return PhaseCost(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def counter_kwargs(self) -> dict[str, float]:
        """Keyword arguments for :meth:`Communicator.compute`."""
        return {
            "flops": self.flops,
            "simd_flops": self.simd_flops,
            "mem_bytes": self.mem_bytes,
            "l3_bytes": self.l3_bytes,
            "l2_bytes": self.l2_bytes,
            "busy_seconds": self.busy_seconds,
            "heat_seconds": self.heat * self.seconds,
            "heat_busy_seconds": self.heat * self.busy_seconds,
        }
