"""RAPL-style chip and DRAM power models.

The chip model implements the "naive CPU power model" the paper confirms
(Sect. 4.2): on-chip power grows linearly with active cores until a
bottleneck is hit, after which stalled-but-active cores still burn a large
fraction of their dynamic power, so the slope flattens without vanishing;
the dominating term on modern CPUs is the *idle baseline* (zero-core
extrapolation), which is ~40 % of TDP on Ice Lake and ~50 % on Sapphire
Rapids.

DRAM power is a floor plus a bandwidth-proportional term — constant once
the memory bandwidth saturates, low for compute-bound codes; the DDR5 of
ClusterB runs cooler than ClusterA's DDR4 despite its larger size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cpu import CpuSpec
from repro.machine.node import NodeSpec
from repro.model.dvfs import CORE_DVFS_EXPONENT
from repro.units import GB

#: Fraction of its full dynamic power a stalled-but-active core keeps
#: burning while it waits for memory.
STALL_POWER_FRACTION = 0.55

#: Fraction of TDP the hottest code reaches at full socket occupancy
#: (paper Sect. 4.2.1: sph-exa at 97-98 % of TDP on both CPUs).
HOT_TDP_FRACTION = 0.98


@dataclass(frozen=True)
class ChipPowerModel:
    """Per-socket package power.

    ``core_power_max_w`` — dynamic power of one fully-busy core running the
    hottest instruction mix — defaults to the value that makes a fully
    occupied socket reach ``HOT_TDP_FRACTION`` of TDP *at the nominal
    clock*.  Off-nominal clocks (DVFS what-ifs built by
    :func:`repro.model.dvfs.apply_frequency`) scale the derived term by
    ``frequency_ratio ** CORE_DVFS_EXPONENT``; the idle baseline is
    uncore territory and does not move with the core clock.  An explicit
    ``core_power_max_w`` is taken as-is.
    """

    cpu: CpuSpec
    core_power_max_w: float = 0.0

    def __post_init__(self) -> None:
        if self.core_power_max_w <= 0.0:
            derived = (HOT_TDP_FRACTION * self.cpu.tdp_w - self.cpu.idle_power_w) / (
                self.cpu.cores
            )
            derived *= self.cpu.frequency_ratio**CORE_DVFS_EXPONENT
            object.__setattr__(self, "core_power_max_w", derived)

    def core_power(self, heat: float, utilization: float) -> float:
        """Dynamic power of one active core [W].

        ``heat`` is the kernel's instruction-mix power factor (0..1],
        ``utilization`` the fraction of time the core executes rather than
        stalls; a fully stalled active core still draws
        ``STALL_POWER_FRACTION`` of its busy power.
        """
        if not (0.0 <= utilization <= 1.0):
            raise ValueError("utilization must be in [0, 1]")
        if not (0.0 < heat <= 1.0):
            raise ValueError("heat must be in (0, 1]")
        duty = STALL_POWER_FRACTION + (1.0 - STALL_POWER_FRACTION) * utilization
        return self.core_power_max_w * heat * duty

    def socket_power(
        self, active_cores: int, heat: float = 1.0, utilization: float = 1.0
    ) -> float:
        """Package power of one socket with ``active_cores`` busy cores [W],
        capped at TDP."""
        if not (0 <= active_cores <= self.cpu.cores):
            raise ValueError(
                f"active_cores must be in [0, {self.cpu.cores}]"
            )
        p = self.cpu.idle_power_w + active_cores * self.core_power(heat, utilization)
        return min(p, self.cpu.tdp_w)

    def idle_fraction_of_tdp(self) -> float:
        """Baseline share of TDP (the paper's headline idle-power metric)."""
        return self.cpu.idle_power_w / self.cpu.tdp_w


@dataclass(frozen=True)
class DramPowerModel:
    """Per-socket DRAM power: floor + bandwidth-proportional term."""

    cpu: CpuSpec

    def socket_power(self, achieved_bw: float) -> float:
        """DRAM power of one socket drawing ``achieved_bw`` B/s [W]."""
        if achieved_bw < 0:
            raise ValueError("bandwidth must be non-negative")
        bw = min(achieved_bw, self.cpu.sustained_memory_bw)
        return self.cpu.dram_idle_power_w + self.cpu.dram_power_per_gbs * (bw / GB)

    def saturated_power(self) -> float:
        """DRAM power at full sustained bandwidth (memory-bound codes)."""
        return self.socket_power(self.cpu.sustained_memory_bw)


@dataclass(frozen=True)
class NodePowerModel:
    """Whole-node power: all sockets' packages plus DRAM.

    The node is the granularity of the paper's Figs. 3(b,d) and 6.
    """

    node: NodeSpec
    chip: ChipPowerModel = field(init=False)
    dram: DramPowerModel = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "chip", ChipPowerModel(self.node.cpu))
        object.__setattr__(self, "dram", DramPowerModel(self.node.cpu))

    def power(
        self,
        active_cores_per_socket: list[int],
        heat: float,
        utilization: float,
        bw_per_socket: list[float],
    ) -> tuple[float, float]:
        """Return ``(chip_watts, dram_watts)`` for the node.

        All sockets contribute their idle power even when no rank runs on
        them (the node is allocated exclusively, as on the paper's
        clusters).
        """
        if len(active_cores_per_socket) != self.node.sockets:
            raise ValueError("need one active-core count per socket")
        if len(bw_per_socket) != self.node.sockets:
            raise ValueError("need one bandwidth per socket")
        chip = sum(
            self.chip.socket_power(n, heat, utilization)
            for n in active_cores_per_socket
        )
        dram = sum(self.dram.socket_power(bw) for bw in bw_per_socket)
        return chip, dram

    def idle_power(self) -> float:
        """Node power with zero active cores (chips + DRAM floors)."""
        return self.node.sockets * (
            self.node.cpu.idle_power_w + self.node.cpu.dram_idle_power_w
        )

    def max_power(self) -> float:
        """Upper bound: all sockets at TDP plus saturated DRAM."""
        return self.node.sockets * (
            self.node.cpu.tdp_w + self.dram.saturated_power()
        )
