"""Analytical performance and power models.

These models translate a benchmark's *resource characterization* (flops and
data volumes per unit of work) into virtual compute-phase durations and
hardware-counter increments on a given CPU, including the two node-level
effects the paper's analysis hinges on:

* **ccNUMA bandwidth contention** — ranks sharing a domain share its
  saturable memory bandwidth (Sect. 4.1.4);
* **cache fit** — when a strong-scaled per-rank working set drops into the
  outer-level cache, memory traffic collapses and performance scales
  superlinearly (Sect. 5.1, cases A-C).

The power models implement the RAPL semantics of Sect. 4.2: chip power =
high idle baseline + per-core dynamic power scaled by code "heat";
DRAM power = floor + bandwidth-proportional term.
"""

from repro.model.kernel import KernelModel, PhaseCost
from repro.model.execution import ExecutionModel, cache_fit_factor
from repro.model.power import ChipPowerModel, DramPowerModel, NodePowerModel
from repro.model.alignment import alignment_penalty

__all__ = [
    "KernelModel",
    "PhaseCost",
    "ExecutionModel",
    "cache_fit_factor",
    "ChipPowerModel",
    "DramPowerModel",
    "NodePowerModel",
    "alignment_penalty",
]
