"""DVFS what-ifs: rebuild a machine spec at a different core frequency.

The paper pins both clusters to fixed base clocks, so the energy study
(Sect. 4.2/4.3) has no frequency axis.  This module adds one, following
the methodology of the Gromacs energy-efficiency literature: scale the
*core clock domain* of a :class:`~repro.machine.cpu.CpuSpec` and let the
existing Roofline/ECM and RAPL models price the consequences.

What moves with the core clock (ratio ``x = f / f_nominal``):

* instruction throughput — ``base_clock_hz`` itself, hence
  ``peak_flops_per_core`` and every ``t_core`` term, scale with ``x``;
* private-cache bandwidth — L1 and L2 run in the core clock domain, so
  their ``bandwidth_per_core`` scales with ``x``;
* dynamic core power — voltage tracks frequency (V roughly f^0.7), so
  the per-core dynamic term scales with ``x ** CORE_DVFS_EXPONENT``
  (applied where the term is derived, in
  :class:`repro.model.power.ChipPowerModel`).

What does *not* move: DRAM bandwidth and power, the uncore/idle
baseline, the single-core memory bandwidth (limited by outstanding
misses, not the core clock), and TDP.  Memory-bound runtime insensitivity
to DVFS — the whole reason clock-down can pay — therefore falls out of
the execution model instead of being scripted.

The *uncore* clock (mesh + LLC) is a separate knob: ``uncore_ratio``
scales the L3 bandwidth linearly and the socket idle baseline with
``UNCORE_DVFS_EXPONENT``.

At ``x == 1.0`` and ``uncore_ratio == 1.0`` the input objects are
returned unchanged, so a scenario that names the nominal frequency is
bit-identical to one that says nothing — the property
:func:`repro.validate.scenario.scenario_differential` asserts.
"""

from __future__ import annotations

from dataclasses import replace

from repro.machine.cache import MemoryHierarchy
from repro.machine.cluster import ClusterSpec
from repro.machine.cpu import CpuSpec
from repro.machine.node import NodeSpec

#: Dynamic core power scales with ``(f/f0) ** CORE_DVFS_EXPONENT``:
#: P_dyn ~ C V^2 f with V ~ f^0.7 on the governed segment of the V/f
#: curve gives an exponent of ~2.4.
CORE_DVFS_EXPONENT = 2.4

#: Uncore (mesh + LLC) power exponent — shallower V/f slope than cores.
UNCORE_DVFS_EXPONENT = 1.8

#: Sanity bounds on the frequency ratio: half nominal to 4/3 nominal
#: covers every governor range the methodology papers sweep (e.g.
#: 1.2-3.2 GHz around a 2.4 GHz nominal); anything outside is almost
#: certainly a unit error (Hz vs GHz).
MIN_RATIO = 0.40
MAX_RATIO = 1.50


def _check_ratio(ratio: float, what: str) -> None:
    if not (MIN_RATIO <= ratio <= MAX_RATIO):
        raise ValueError(
            f"{what} ratio {ratio:.3f} outside [{MIN_RATIO}, {MAX_RATIO}] — "
            "frequencies are Hz (e.g. 2.2e9), ratios relative to nominal"
        )


def scale_cpu(
    cpu: CpuSpec, frequency_hz: float, uncore_ratio: float = 1.0
) -> CpuSpec:
    """``cpu`` re-clocked to ``frequency_hz`` (see module docstring for
    exactly which parameters move).  Returns ``cpu`` itself when both
    ratios are 1.0."""
    if frequency_hz <= 0:
        raise ValueError("frequency_hz must be positive")
    x = frequency_hz / cpu.nominal_clock_hz
    _check_ratio(x, "core-frequency")
    _check_ratio(uncore_ratio, "uncore")
    if x == 1.0 and uncore_ratio == 1.0:
        return cpu
    hier = cpu.hierarchy
    scaled = MemoryHierarchy(
        l1=replace(hier.l1, bandwidth_per_core=hier.l1.bandwidth_per_core * x),
        l2=replace(hier.l2, bandwidth_per_core=hier.l2.bandwidth_per_core * x),
        l3=replace(
            hier.l3,
            bandwidth_per_core=hier.l3.bandwidth_per_core * uncore_ratio,
        ),
    )
    return replace(
        cpu,
        base_clock_hz=frequency_hz,
        nominal_clock_hz=cpu.nominal_clock_hz,
        hierarchy=scaled,
        idle_power_w=cpu.idle_power_w * uncore_ratio**UNCORE_DVFS_EXPONENT,
    )


def scale_node(
    node: NodeSpec, frequency_hz: float, uncore_ratio: float = 1.0
) -> NodeSpec:
    """``node`` with its CPU re-clocked (identity at nominal)."""
    cpu = scale_cpu(node.cpu, frequency_hz, uncore_ratio)
    if cpu is node.cpu:
        return node
    return replace(node, cpu=cpu)


def apply_frequency(
    cluster: ClusterSpec, frequency_hz: float, uncore_ratio: float = 1.0
) -> ClusterSpec:
    """``cluster`` with every node re-clocked to ``frequency_hz``.

    The cluster keeps its name (a DVFS point is an operating condition
    of the same machine, not a new machine); scenario digests hash the
    resolved parameters, so distinct frequencies still key distinctly.
    Identity (the same object back) at nominal frequency and uncore.
    """
    node = scale_node(cluster.node, frequency_hz, uncore_ratio)
    if node is cluster.node:
        return cluster
    return replace(cluster, node=node)


def frequency_grid(
    cluster: ClusterSpec,
    lo_ratio: float = 0.5,
    hi_ratio: float = 4.0 / 3.0,
    steps: int = 9,
) -> tuple[float, ...]:
    """An evenly spaced frequency grid [Hz] around the nominal clock —
    the default sweep axis of the energy analysis helper.  Endpoints are
    included; the nominal frequency is part of the grid whenever the
    ratio range brackets 1.0 at an even spacing."""
    if steps < 2:
        raise ValueError("steps must be >= 2")
    _check_ratio(lo_ratio, "core-frequency")
    _check_ratio(hi_ratio, "core-frequency")
    if lo_ratio >= hi_ratio:
        raise ValueError("lo_ratio must be < hi_ratio")
    f0 = cluster.node.cpu.nominal_clock_hz
    span = hi_ratio - lo_ratio
    return tuple(
        f0 * (lo_ratio + span * i / (steps - 1)) for i in range(steps)
    )
