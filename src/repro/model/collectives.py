"""LogGP/Hockney collective-communication cost formulas.

One shared home for the closed-form collective costs so the two
consumers — the SMPI gates (:mod:`repro.smpi.collectives`, which price a
collective the moment its last rank arrives) and the analytic prediction
tier (:mod:`repro.predict.analytic`, which prices whole steps without a
simulator) — can never drift apart.

Costs follow the classical Hockney/tree formulations used by MPI libraries:

* ``barrier``      — dissemination, ``ceil(log2 P)`` rounds of small messages;
* ``allreduce``    — recursive doubling, ``ceil(log2 P)`` rounds carrying the
  payload plus a per-byte reduction cost;
* ``bcast``/``reduce`` — binomial tree, ``ceil(log2 P)`` rounds;
* ``allgather``    — ring, ``P-1`` steps each moving ``nbytes / P``;
* ``scatter``/``gather`` — binomial tree with payload halving per round;
* ``alltoall``     — pairwise exchange, ``P-1`` steps.

Rounds are priced with the *slowest* link class the job uses: a job
spanning several nodes pays inter-node latency for at least the top
``log2(nnodes)`` rounds; the remaining rounds are intra-node.
"""

from __future__ import annotations

import math

from repro.machine.network import NetworkSpec

#: Per-byte cost of the local reduction operation [s/B] (vectorized sum).
REDUCE_GAMMA = 1.0 / 20e9


def _rounds(p: int) -> int:
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


def _round_costs(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: float) -> float:
    """Total latency+transfer cost of a log2(P)-round pattern."""
    total_rounds = _rounds(nprocs)
    inter_rounds = min(total_rounds, _rounds(max(nnodes, 1)))
    intra_rounds = total_rounds - inter_rounds
    t = inter_rounds * (net.latency + nbytes / net.effective_bandwidth)
    t += intra_rounds * (net.intra_node_latency + nbytes / net.intra_node_bandwidth)
    return t


def barrier_cost(net: NetworkSpec, nprocs: int, nnodes: int) -> float:
    """Dissemination barrier cost after the last rank arrives."""
    if nprocs <= 1:
        return 0.0
    return _round_costs(net, nprocs, nnodes, 0.0) + net.per_message_overhead


def allreduce_cost(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int) -> float:
    """Recursive-doubling allreduce cost after the last rank arrives."""
    if nprocs <= 1:
        return 0.0
    t = _round_costs(net, nprocs, nnodes, nbytes)
    t += _rounds(nprocs) * nbytes * REDUCE_GAMMA
    return t + net.per_message_overhead


def bcast_cost(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int) -> float:
    """Binomial-tree broadcast cost."""
    if nprocs <= 1:
        return 0.0
    return _round_costs(net, nprocs, nnodes, nbytes) + net.per_message_overhead


def reduce_cost(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int) -> float:
    """Binomial-tree reduce cost (same round structure as bcast plus the
    per-byte reduction)."""
    if nprocs <= 1:
        return 0.0
    t = _round_costs(net, nprocs, nnodes, nbytes)
    t += _rounds(nprocs) * nbytes * REDUCE_GAMMA
    return t + net.per_message_overhead


def allgather_cost(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int) -> float:
    """Ring allgather: ``nbytes`` is the total gathered volume."""
    if nprocs <= 1:
        return 0.0
    per_step = nbytes / nprocs
    if nnodes > 1:
        step = net.latency + per_step / net.effective_bandwidth
    else:
        step = net.intra_node_latency + per_step / net.intra_node_bandwidth
    return (nprocs - 1) * step + net.per_message_overhead


def scatter_cost(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int) -> float:
    """Binomial-tree scatter: root holds ``nbytes`` total; each tree round
    forwards half the remaining payload."""
    if nprocs <= 1:
        return 0.0
    t = net.per_message_overhead
    remaining = nbytes / 2.0
    for round_idx in range(_rounds(nprocs)):
        inter = round_idx < _rounds(max(nnodes, 1))
        if inter:
            t += net.latency + remaining / net.effective_bandwidth
        else:
            t += net.intra_node_latency + remaining / net.intra_node_bandwidth
        remaining /= 2.0
    return t


def gather_cost(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int) -> float:
    """Binomial-tree gather (mirror of scatter)."""
    return scatter_cost(net, nprocs, nnodes, nbytes)


def alltoall_cost(net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int) -> float:
    """Pairwise-exchange alltoall: ``nbytes`` is the per-rank send total
    (each of the ``nprocs - 1`` steps moves ``nbytes / nprocs``)."""
    if nprocs <= 1:
        return 0.0
    per_step = nbytes / nprocs
    inter_frac = 0.0 if nnodes <= 1 else 1.0 - 1.0 / nnodes
    step_inter = net.latency + per_step / net.effective_bandwidth
    step_intra = net.intra_node_latency + per_step / net.intra_node_bandwidth
    step = inter_frac * step_inter + (1.0 - inter_frac) * step_intra
    return (nprocs - 1) * step + net.per_message_overhead


#: Collective time-kind -> cost function (the ITAC category names the
#: communicators and the analytic tier both use).
COST_BY_KIND = {
    "MPI_Barrier": barrier_cost,
    "MPI_Allreduce": allreduce_cost,
    "MPI_Bcast": bcast_cost,
    "MPI_Reduce": reduce_cost,
    "MPI_Allgather": allgather_cost,
    "MPI_Scatter": scatter_cost,
    "MPI_Gather": gather_cost,
    "MPI_Alltoall": alltoall_cost,
}


def collective_cost(
    kind: str, net: NetworkSpec, nprocs: int, nnodes: int, nbytes: int | None
) -> float:
    """Cost of one collective by its ITAC kind name."""
    fn = COST_BY_KIND[kind]
    if kind == "MPI_Barrier":
        return fn(net, nprocs, nnodes)
    return fn(net, nprocs, nnodes, 0 if nbytes is None else nbytes)
