"""Node-level execution model (Roofline/ECM style).

For a kernel with a given per-unit resource footprint, the time per rank is
the maximum of four single-rank limits:

* instruction throughput (SIMD + scalar flop mix at ``compute_efficiency``
  of the respective peaks),
* L2 bandwidth,
* L3 bandwidth,
* DRAM bandwidth, where the achievable per-rank share is
  ``min(single-core limit, domain bandwidth / ranks in the domain)`` — the
  saturation law behind all the ccNUMA plateaus of the paper.

Strong-scaling cache effects are modeled by :func:`cache_fit_factor`: as
the per-rank working set approaches the rank's outer-cache share, DRAM
traffic shifts inward (first into L3, then into L2), reducing the memory
time and producing superlinear speedups (paper Sect. 5.1, cases A-C).

DVFS what-ifs need no special casing here: a re-clocked
:class:`~repro.machine.cpu.CpuSpec` (see :mod:`repro.model.dvfs`) moves
``peak_flops_per_core`` and the L1/L2 bandwidths with the core clock
while DRAM bandwidth stays put, so compute-bound phases stretch as
``1/f`` and memory-bound phases barely move — the runtime asymmetry the
energy/EDP analysis rests on.  :meth:`ExecutionModel.at_frequency` is
the convenience constructor for such a model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.cpu import CpuSpec
from repro.model.kernel import KernelModel, PhaseCost

#: Residual DRAM traffic fraction of a fully cache-resident working set
#: (cold misses, write-backs of results, prefetcher overshoot).
CACHE_RESIDUAL = 0.08


def cache_fit_factor(
    working_set_bytes: float,
    cache_bytes: float,
    residual: float = CACHE_RESIDUAL,
    sharpness: float = 1.8,
) -> float:
    """Traffic multiplier in ``[residual, 1]``.

    Approaches ``residual`` when the working set is much smaller than the
    available cache and 1 when much larger, with a smooth logistic
    transition (capacity misses die off gradually — a working set exactly
    at capacity still misses on roughly half its accesses).
    """
    if cache_bytes <= 0:
        return 1.0
    if working_set_bytes <= 0:
        return residual
    x = math.log(working_set_bytes / cache_bytes)
    sig = 1.0 / (1.0 + math.exp(-sharpness * x))
    return residual + (1.0 - residual) * sig


@dataclass(frozen=True)
class ExecutionModel:
    """Per-CPU analytical kernel timing.

    Parameters
    ----------
    cpu:
        The socket model.
    single_core_mem_bw:
        Maximum DRAM bandwidth one core can draw [B/s].  Saturation of a
        ccNUMA domain happens around ``domain_bw / single_core_mem_bw``
        cores (~5 on both paper CPUs).  Defaults to the CPU's value.
    """

    cpu: CpuSpec
    single_core_mem_bw: float = 0.0

    def __post_init__(self) -> None:
        if self.single_core_mem_bw <= 0.0:
            object.__setattr__(self, "single_core_mem_bw", self.cpu.single_core_mem_bw)
        if self.single_core_mem_bw <= 0:
            raise ValueError("single_core_mem_bw must be positive")

    # --- bandwidth sharing -------------------------------------------------

    def memory_bw_share(self, ranks_in_domain: int) -> float:
        """Achievable DRAM bandwidth of one rank when ``ranks_in_domain``
        ranks stream concurrently from one ccNUMA domain [B/s]."""
        if ranks_in_domain < 1:
            raise ValueError("ranks_in_domain must be >= 1")
        fair_share = self.cpu.domain_memory_bw / ranks_in_domain
        return min(self.single_core_mem_bw, fair_share)

    def saturation_cores(self) -> float:
        """Cores needed to saturate one ccNUMA domain's bandwidth."""
        return self.cpu.domain_memory_bw / self.single_core_mem_bw

    # --- cache shares --------------------------------------------------------

    def l3_share_bytes(self, ranks_in_domain: int) -> float:
        """L3 capacity available to one rank: the domain's slice divided
        among the ranks running in it."""
        domain_l3 = self.cpu.hierarchy.l3.capacity_bytes / self.cpu.numa_domains
        return domain_l3 / max(1, ranks_in_domain)

    def outer_cache_share_bytes(self, ranks_in_domain: int) -> float:
        """Outer-level (L2 + victim-L3 slice) capacity of one rank."""
        return self.cpu.hierarchy.l2.capacity_bytes + self.l3_share_bytes(
            ranks_in_domain
        )

    # --- kernel timing ----------------------------------------------------------

    def phase_cost(
        self,
        kernel: KernelModel,
        units: float,
        ranks_in_domain: int,
        penalty: float = 1.0,
    ) -> PhaseCost:
        """Cost of one rank executing ``units`` work units of ``kernel``
        while sharing its ccNUMA domain with ``ranks_in_domain`` ranks.

        ``penalty`` is an extra slowdown factor (alignment/TLB pathologies,
        see :mod:`repro.model.alignment`).
        """
        if units < 0:
            raise ValueError("units must be non-negative")
        if penalty < 1.0:
            raise ValueError("penalty must be >= 1")
        if units == 0:
            return PhaseCost.zero()
        hier = self.cpu.hierarchy

        # --- traffic redistribution by cache fit --------------------------
        if kernel.fixed_working_set_bytes > 0:
            ws = kernel.fixed_working_set_bytes
        else:
            ws = kernel.working_set_bytes_per_unit * units
        mem_nominal = kernel.mem_bytes_per_unit * units
        l3_nominal = kernel.l3_bytes_per_unit * units
        l2_nominal = kernel.l2_bytes_per_unit * units

        f_llc = cache_fit_factor(
            ws,
            self.outer_cache_share_bytes(ranks_in_domain),
            sharpness=kernel.cache_sharpness,
        )
        mem_bytes = mem_nominal * f_llc
        l3_bytes = l3_nominal + mem_nominal * (1.0 - f_llc)

        f_l2 = cache_fit_factor(
            ws, hier.l2.capacity_bytes, sharpness=kernel.cache_sharpness
        )
        l2_bytes = l2_nominal + l3_bytes * (1.0 - f_l2)
        l3_bytes = l3_bytes * f_l2

        # --- single-rank time limits ----------------------------------------
        flops = kernel.flops_per_unit * units
        simd_flops = flops * kernel.simd_fraction
        scalar_flops = flops - simd_flops
        eff = kernel.compute_efficiency
        t_core = (
            simd_flops / (self.cpu.peak_flops_per_core * eff)
            + scalar_flops / (self.cpu.scalar_flops_per_core * eff)
        )
        t_l2 = l2_bytes / hier.l2.bandwidth_per_core
        t_l3 = l3_bytes / hier.l3.bandwidth_per_core
        t_mem = (
            mem_bytes
            * kernel.latency_bound_factor
            / self.memory_bw_share(ranks_in_domain)
        )
        # non-overlapped (dependent-load) memory time adds to compute
        serial = t_core + (1.0 - kernel.mem_overlap) * t_mem
        seconds = max(t_core, t_l2, t_l3, t_mem, serial) * penalty
        return PhaseCost(
            seconds=seconds,
            flops=flops,
            simd_flops=simd_flops,
            mem_bytes=mem_bytes,
            l3_bytes=l3_bytes,
            l2_bytes=l2_bytes,
            busy_seconds=min(t_core, seconds),
            heat=kernel.heat,
        )

    def compute_utilization(
        self, kernel: KernelModel, units: float, ranks_in_domain: int
    ) -> float:
        """Fraction of the phase the core spends executing instructions
        rather than stalled on data (input to the chip power model)."""
        if units <= 0:
            return 0.0
        cost = self.phase_cost(kernel, units, ranks_in_domain)
        if cost.seconds == 0:
            return 0.0
        flops = kernel.flops_per_unit * units
        simd_flops = flops * kernel.simd_fraction
        eff = kernel.compute_efficiency
        t_core = (
            simd_flops / (self.cpu.peak_flops_per_core * eff)
            + (flops - simd_flops) / (self.cpu.scalar_flops_per_core * eff)
        )
        return min(1.0, t_core / cost.seconds)

    def hybrid_phase_cost(
        self,
        kernel: KernelModel,
        units: float,
        ranks_in_domain: int,
        threads: int,
        penalty: float = 1.0,
    ) -> PhaseCost:
        """Cost of one MPI rank whose ``units`` are processed by
        ``threads`` OpenMP threads (MPI+X hybrid mode — the paper's
        future-work direction).

        Each thread handles ``units / threads`` while
        ``ranks_in_domain * threads`` cores contend for the domain's
        bandwidth.  Counters are totals over all threads of the rank.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        per_thread = self.phase_cost(
            kernel, units / threads, ranks_in_domain * threads, penalty
        )
        return PhaseCost(
            seconds=per_thread.seconds,
            flops=per_thread.flops * threads,
            simd_flops=per_thread.simd_flops * threads,
            mem_bytes=per_thread.mem_bytes * threads,
            l3_bytes=per_thread.l3_bytes * threads,
            l2_bytes=per_thread.l2_bytes * threads,
            busy_seconds=min(
                per_thread.busy_seconds * threads, per_thread.seconds * threads
            ),
            heat=kernel.heat,
        )

    def at_frequency(
        self, frequency_hz: float, uncore_ratio: float = 1.0
    ) -> "ExecutionModel":
        """This model re-clocked to ``frequency_hz`` (via
        :func:`repro.model.dvfs.scale_cpu`).  A distinct model instance
        per operating point keeps memoized phase-cost caches trivially
        valid: each :class:`MemoizedExecutionModel` wraps exactly one
        frequency, so mid-run frequency plans are priced segment by
        segment with no shared cache to go stale."""
        from repro.model.dvfs import scale_cpu

        cpu = scale_cpu(self.cpu, frequency_hz, uncore_ratio)
        if cpu is self.cpu:
            return self
        return ExecutionModel(cpu, self.single_core_mem_bw)

    def memoized(self) -> "MemoizedExecutionModel":
        """A per-run caching wrapper around this model (see
        :class:`MemoizedExecutionModel`)."""
        return MemoizedExecutionModel(self)

    def memory_bound(self, kernel: KernelModel, ranks_in_domain: int) -> bool:
        """True if the kernel's domain-saturated memory time exceeds its
        compute time (the paper's memory-bound classification)."""
        cost_units = 1.0
        flops = kernel.flops_per_unit
        simd_flops = flops * kernel.simd_fraction
        eff = kernel.compute_efficiency
        t_core = (
            simd_flops / (self.cpu.peak_flops_per_core * eff)
            + (flops - simd_flops) / (self.cpu.scalar_flops_per_core * eff)
        )
        t_mem = (
            kernel.mem_bytes_per_unit
            * cost_units
            * kernel.latency_bound_factor
            / self.memory_bw_share(ranks_in_domain)
        )
        return t_mem > t_core


class MemoizedExecutionModel:
    """Phase-cost cache wrapped around an execution model for one run.

    A benchmark body prices each kernel once per rank (and some price
    inside the step loop), but the inputs collapse onto a handful of
    distinct combinations: ranks at the same grid extent and ccNUMA
    occupancy get bit-identical :class:`~repro.model.kernel.PhaseCost`
    objects.  The cache key is ``(kernel, units, ranks_in_domain,
    penalty)`` — :class:`~repro.model.kernel.KernelModel` is a frozen
    (value-hashable) dataclass, so dynamically built kernels (e.g.
    ``KernelModel.scaled``) hit the cache whenever they are *equal*, not
    merely the same object.

    The wrapper is deliberately per-run (the harness creates one per
    :class:`~repro.spechpc.base.RunContext`): hybrid repricing and any
    future time-varying model state stay correct, and the cache dies with
    the run.  Per-rank noise is applied *after* pricing (see
    :meth:`~repro.spechpc.base.Benchmark.compute_phase`), so cached costs
    are noise-free by construction; inputs that varied per step would
    simply produce distinct keys.

    Everything except ``phase_cost`` delegates to the wrapped model.
    """

    __slots__ = ("_base", "_cache", "generation")

    def __init__(self, base) -> None:
        self._base = base
        self._cache: dict = {}
        #: bumped on every cache miss — a stable generation across a
        #: window of steps proves the priced cost vector is periodic
        #: (the steady-state fast-forward eligibility check)
        self.generation = 0

    def phase_cost(
        self,
        kernel: KernelModel,
        units: float,
        ranks_in_domain: int,
        penalty: float = 1.0,
    ) -> PhaseCost:
        key = (kernel, units, ranks_in_domain, penalty)
        cost = self._cache.get(key)
        if cost is None:
            cost = self._base.phase_cost(kernel, units, ranks_in_domain, penalty)
            self._cache[key] = cost
            self.generation += 1
        return cost

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def __getattr__(self, name):
        return getattr(self._base, name)
