"""Data-alignment / TLB pathology model for lbm-style SoA codes.

Sect. 4.1.6 of the paper attributes lbm's reproducible performance
fluctuations to several overlapping effects triggered by unfortunate local
domain sizes: with global lattice extents that are powers of two
(4096 x 16384), certain process counts produce local slabs whose parallel
SoA streams (37 distributions in D2Q37) collide in the TLB and the L1
cache banks, making *some* ranks consistently slower — visible as excess
L2 traffic at some counts and as one slow rank stretching everyone's
MPI_Barrier at others.

The microarchitectural details behind the paper's exact "bad" process
counts are not published, so we model the mechanism rather than the exact
set: a deterministic penalty keyed to the power-of-two alignment of the
per-stream slab and to a reproducible hash of the local extent (standing
in for set-conflict geometry).  The resulting scaling curve fluctuates
between clear upper and lower envelopes, exactly like Fig. 1(a,d).
"""

from __future__ import annotations

PAGE_BYTES = 4096

#: Penalty weights for slab sizes aligned to large powers of two: all
#: streams then hit the same TLB/L1 sets at the same offsets.
_POW2_PENALTIES = (
    (1 << 22, 0.45),
    (1 << 20, 0.30),
    (1 << 18, 0.15),
)

#: Knuth multiplicative hash constant (reproducible pseudo-geometry).
_HASH = 2654435761


def _pow2_alignment_penalty(slab_bytes: int) -> float:
    score = 0.0
    for div, weight in _POW2_PENALTIES:
        if slab_bytes % div == 0:
            score += weight
    return score


def _conflict_hash_penalty(local_rows: int, row_elems: int) -> float:
    """Deterministic stand-in for set-conflict geometry: a few percent of
    local extents are 'unfortunate' and pay up to ~35 %."""
    h = ((local_rows * _HASH) ^ (row_elems * 0x9E3779B1)) & 0xFFFFFFFF
    bucket = (h >> 11) & 0xF  # 16 buckets
    if bucket == 0xF:
        return 0.35
    if bucket == 0xE:
        return 0.20
    return 0.0


def alignment_penalty(
    local_rows: int,
    row_elems: int,
    elem_bytes: int = 8,
    n_streams: int = 37,
    tlb_entries: int = 64,
) -> float:
    """Slowdown factor (>= 1) of one rank's lattice update.

    Parameters
    ----------
    local_rows / row_elems:
        Local slab extent (rows of ``row_elems`` lattice sites).
    elem_bytes:
        Bytes per value (8 for DP).
    n_streams:
        Concurrent SoA data streams (37 populations for D2Q37).
    tlb_entries:
        First-level TLB capacity; more concurrent pages than entries adds
        baseline pressure.
    """
    if local_rows < 1 or row_elems < 1:
        raise ValueError("local extents must be >= 1")
    row_bytes = row_elems * elem_bytes
    slab_bytes = local_rows * row_bytes

    penalty = _pow2_alignment_penalty(slab_bytes)
    penalty += _conflict_hash_penalty(local_rows, row_elems)

    # TLB pressure: each stream touches ceil(row_bytes / page) pages per
    # row sweep; exceeding the TLB adds a mild constant cost.
    pages_live = n_streams * max(1, row_bytes // PAGE_BYTES)
    if pages_live > tlb_entries:
        penalty += 0.05

    return 1.0 + penalty
