"""Detection of the paper's two signature waiting-time patterns.

The ITAC insets of Fig. 2 show two phenomena the paper spends most of
its MPI analysis on:

* **rendezvous serialization ripple** (minisweep, Sect. 4.1.5) — with
  send-before-recv ordering and messages above the eager threshold, only
  the head of the process chain can receive immediately; every other
  rank blocks in a rendezvous send until its downstream neighbor wakes
  up, so a *chain of waits* sweeps across the ranks.  On a timeline this
  is a staircase of overlapping ``rendezvous-wait`` / ``recv-wait``
  segments whose start times are ordered along the chain.
* **collective skew** (lbm, Sect. 4.1.4) — one rank computes longer than
  the rest (alignment penalty, OS noise, an injected
  :class:`~repro.faults.plan.SlowRank`); everyone else absorbs exactly
  that excess as ``collective-wait`` at the next barrier/allreduce.  The
  slow rank is the one with *high compute and low wait* while all others
  show the mirror image.

Both detectors consume classified :class:`~repro.obs.timeline.Timelines`
and return frozen report dataclasses with per-rank attribution, rendered
by :mod:`repro.obs.report` and asserted by
``benchmarks/bench_fig2_insets_traces.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.timeline import (
    COLLECTIVE_WAIT,
    COMPUTE,
    RECV_WAIT,
    RENDEZVOUS_WAIT,
    Segment,
    Timelines,
)

#: Segment categories that can form a serialization ripple.
RIPPLE_CATEGORIES = frozenset({RENDEZVOUS_WAIT, RECV_WAIT})


@dataclass(frozen=True)
class RippleChain:
    """One detected wait chain: each member rank started blocking while
    its predecessor in the chain was still blocked."""

    segments: tuple[Segment, ...]

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(s.rank for s in self.segments)

    @property
    def depth(self) -> int:
        """Number of ranks the wait front propagated across."""
        return len(self.segments)

    @property
    def t_start(self) -> float:
        return self.segments[0].t0

    @property
    def t_end(self) -> float:
        return max(s.t1 for s in self.segments)

    @property
    def serialized_wait(self) -> float:
        """Total rank-time blocked inside this chain [s]."""
        return sum(s.duration for s in self.segments)


@dataclass(frozen=True)
class RippleReport:
    """Serialization-ripple detection result with per-rank attribution."""

    detected: bool
    chains: tuple[RippleChain, ...]
    #: total blocked time per rank over *all* qualifying wait segments
    wait_by_rank: dict[int, float]
    #: detection threshold actually used [s]
    min_wait: float
    min_depth: int

    @property
    def dominant(self) -> Optional[RippleChain]:
        """The deepest chain (ties: larger serialized wait)."""
        if not self.chains:
            return None
        return max(self.chains, key=lambda c: (c.depth, c.serialized_wait))

    @property
    def total_serialized_wait(self) -> float:
        return sum(c.serialized_wait for c in self.chains)

    def summary(self) -> str:
        if not self.detected:
            return "no serialization ripple detected"
        dom = self.dominant
        return (
            f"rendezvous serialization ripple: {len(self.chains)} chain(s), "
            f"deepest front spans {dom.depth} ranks "
            f"(ranks {dom.ranks[0]}..{dom.ranks[-1]}) over "
            f"[{dom.t_start:.6g}, {dom.t_end:.6g}] s, "
            f"{self.total_serialized_wait:.6g} s of rank-time serialized"
        )


def detect_ripples(
    timelines: Timelines,
    min_wait: Optional[float] = None,
    min_depth: int = 4,
    min_wait_share: float = 0.02,
) -> RippleReport:
    """Find chains of propagating point-to-point waits.

    A segment qualifies when it is a p2p wait (``rendezvous-wait`` or
    ``recv-wait``) at least ``min_wait`` long; the default threshold is
    one tenth of the longest qualifying wait, which keeps the detector
    scale-free (a run with only microsecond protocol jitter reports
    nothing, a run with second-long stalls keys on those).

    Chain construction is a greedy front walk over segments in start
    order: segment *s* extends a chain whose last member *l* satisfies
    ``l.t0 <= s.t0 <= l.t1`` with ``s.rank`` not yet in the chain —
    i.e. *s*'s rank began blocking while *l*'s rank still was, exactly
    how a rendezvous stall propagates upstream.  A ripple is *detected*
    when any chain reaches ``min_depth`` ranks **and** the qualifying
    wait amounts to at least ``min_wait_share`` of all traced rank-time
    (a healthy run's protocol jitter also forms geometric chains; it is
    only a *pathology* when real time is lost to it).
    """
    blocks = [
        s
        for tl in timelines.by_rank.values()
        for s in tl.segments
        if s.category in RIPPLE_CATEGORIES
    ]
    if not blocks:
        return RippleReport(
            detected=False, chains=(), wait_by_rank={}, min_wait=0.0,
            min_depth=min_depth,
        )
    longest = max(s.duration for s in blocks)
    threshold = min_wait if min_wait is not None else 0.1 * longest
    qualifying = sorted(
        (s for s in blocks if s.duration >= threshold),
        key=lambda s: (s.t0, s.rank),
    )
    wait_by_rank: dict[int, float] = {}
    for s in qualifying:
        wait_by_rank[s.rank] = wait_by_rank.get(s.rank, 0.0) + s.duration

    chains: list[list[Segment]] = []
    members: list[set[int]] = []
    for s in qualifying:
        best: Optional[int] = None
        best_t0 = -1.0
        for i, chain in enumerate(chains):
            last = chain[-1]
            if last.t0 <= s.t0 <= last.t1 and s.rank not in members[i]:
                # extend the front that started blocking most recently —
                # the tightest predecessor of this stall
                if last.t0 > best_t0:
                    best, best_t0 = i, last.t0
        if best is None:
            chains.append([s])
            members.append({s.rank})
        else:
            chains[best].append(s)
            members[best].add(s.rank)
    ripple_chains = tuple(
        RippleChain(segments=tuple(c)) for c in chains if len(c) >= 2
    )
    total_time = sum(
        s.duration for tl in timelines.by_rank.values() for s in tl.segments
    )
    qualifying_wait = sum(wait_by_rank.values())
    detected = (
        any(c.depth >= min_depth for c in ripple_chains)
        and qualifying_wait >= min_wait_share * total_time
    )
    return RippleReport(
        detected=detected,
        chains=tuple(
            sorted(
                ripple_chains,
                key=lambda c: (-c.depth, -c.serialized_wait, c.t_start),
            )
        ),
        wait_by_rank=dict(sorted(wait_by_rank.items())),
        min_wait=threshold,
        min_depth=min_depth,
    )


@dataclass(frozen=True)
class SkewReport:
    """Collective-skew detection result with slow-rank attribution."""

    detected: bool
    #: ranks whose excess compute the others absorbed as collective wait
    slow_ranks: tuple[int, ...]
    #: per-rank compute time beyond the fastest rank [s]
    excess_by_rank: dict[int, float]
    #: per-rank collective-wait time [s]
    collective_wait_by_rank: dict[int, float]
    #: total collective wait absorbed by the non-slow ranks [s]
    absorbed_wait: float
    #: max compute over min compute
    skew_ratio: float

    def summary(self) -> str:
        if not self.detected:
            return "no collective skew detected"
        n = len(self.collective_wait_by_rank)
        if len(self.slow_ranks) <= 6:
            who = f"rank(s) {', '.join(str(r) for r in self.slow_ranks)}"
        else:
            who = f"{len(self.slow_ranks)} of {n} ranks"
        return (
            f"collective skew: {who} compute "
            f"{self.skew_ratio:.2f}x the fastest rank; the other "
            f"{n - len(self.slow_ranks)} "
            f"rank(s) absorbed {self.absorbed_wait:.6g} s of rank-time as "
            f"collective wait"
        )


def detect_collective_skew(
    timelines: Timelines,
    skew_ratio_threshold: float = 1.02,
    slow_fraction: float = 0.5,
) -> SkewReport:
    """Find slow-rank barrier/allreduce skew.

    Per rank, compute time ``c_r`` and collective wait ``w_r`` are
    totalled.  With ``excess_r = c_r - min(c)``, the *slow set* is every
    rank whose excess exceeds ``slow_fraction`` of the largest excess;
    everyone else is *fast*.  Skew is *detected* when three things line
    up, which together are the signature of the lbm inset:

    1. both classes are non-empty (some ranks finish early and wait);
    2. ``max(c) / min(c) >= skew_ratio_threshold``;
    3. the fast ranks' mean collective wait covers at least half of the
       largest excess — the delay really was absorbed at the
       collective, not hidden elsewhere.

    Covers both flavors seen in practice: a single injected
    :class:`~repro.faults.plan.SlowRank` (one slow rank, everyone else
    waits) and lbm's natural alignment penalty, where the *majority* of
    ranks are slow and a fast minority absorbs the wait.
    """
    by_rank = timelines.by_rank
    if len(by_rank) < 2:
        return SkewReport(
            detected=False, slow_ranks=(), excess_by_rank={},
            collective_wait_by_rank={}, absorbed_wait=0.0, skew_ratio=1.0,
        )
    compute: dict[int, float] = {}
    coll_wait: dict[int, float] = {}
    for r, tl in sorted(by_rank.items()):
        times = tl.time_by_category()
        compute[r] = times.get(COMPUTE, 0.0)
        coll_wait[r] = times.get(COLLECTIVE_WAIT, 0.0)
    c_min = min(compute.values())
    c_max = max(compute.values())
    excess = {r: c - c_min for r, c in compute.items()}
    max_excess = max(excess.values())
    skew_ratio = (c_max / c_min) if c_min > 0.0 else 1.0
    if max_excess <= 0.0:
        return SkewReport(
            detected=False, slow_ranks=(), excess_by_rank=excess,
            collective_wait_by_rank=coll_wait, absorbed_wait=0.0,
            skew_ratio=skew_ratio,
        )
    slow = tuple(
        r for r, e in excess.items() if e > slow_fraction * max_excess
    )
    fast = [r for r in compute if r not in slow]
    absorbed = sum(coll_wait[r] for r in fast)
    mean_fast_wait = absorbed / len(fast) if fast else 0.0
    detected = (
        0 < len(slow) < len(by_rank)
        and skew_ratio >= skew_ratio_threshold
        and mean_fast_wait >= 0.5 * max_excess
    )
    return SkewReport(
        detected=detected,
        slow_ranks=slow if detected else (),
        excess_by_rank=excess,
        collective_wait_by_rank=coll_wait,
        absorbed_wait=absorbed,
        skew_ratio=skew_ratio,
    )


@dataclass(frozen=True)
class WaitingTimeAnalysis:
    """Both pattern reports plus the aggregate classification."""

    time_by_category: dict[str, float]
    fractions: dict[str, float]
    ripple: RippleReport
    skew: SkewReport

    @property
    def wait_fraction(self) -> float:
        """Share of traced rank-time spent waiting (not computing or
        transferring)."""
        from repro.obs.timeline import WAIT_CATEGORIES

        return sum(
            v for k, v in self.fractions.items() if k in WAIT_CATEGORIES
        )

    def findings(self) -> list[str]:
        """Human-readable one-liners, strongest signal first."""
        out = []
        if self.ripple.detected:
            out.append(self.ripple.summary())
        if self.skew.detected:
            out.append(self.skew.summary())
        if not out:
            out.append(
                "no pathological waiting pattern detected "
                f"({100.0 * self.wait_fraction:.1f} % of rank-time waiting)"
            )
        return out


def analyze_waiting(
    timelines: Timelines,
    min_ripple_wait: Optional[float] = None,
    min_ripple_depth: int = 4,
    skew_ratio_threshold: float = 1.02,
) -> WaitingTimeAnalysis:
    """Run both detectors over classified timelines."""
    return WaitingTimeAnalysis(
        time_by_category=timelines.time_by_category(),
        fractions=timelines.fractions(),
        ripple=detect_ripples(
            timelines, min_wait=min_ripple_wait, min_depth=min_ripple_depth
        ),
        skew=detect_collective_skew(
            timelines, skew_ratio_threshold=skew_ratio_threshold
        ),
    )
