"""Chrome ``trace_event`` export — open the run in Perfetto.

Writes the classified timelines in the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: one *thread* per MPI
rank, one complete event (``"ph": "X"``) per segment, with the segment
category as the event category so Perfetto's search/filter work on
``rendezvous-wait`` etc.  Times are exported in microseconds (the
format's native unit); the original seconds and the classified category
ride in ``args``.

The event list is emitted in a deterministic order (metadata first,
then ``(ts, tid)``) and the JSON with sorted keys, so a fixed simulated
run exports byte-identical files — pinned by the golden 2-rank
ping-pong trace in ``tests/golden/chrome_pingpong_2rank.json``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.timeline import Timelines

#: Seconds -> trace-event timestamp units (microseconds).
_US = 1e6


def chrome_trace_events(
    timelines: "Timelines", pid: int = 0
) -> list[dict[str, Any]]:
    """The ``traceEvents`` array: thread-name metadata for every rank,
    then one complete event per classified segment."""
    events: list[dict[str, Any]] = []
    for rank in timelines.ranks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": rank,
                "args": {"sort_index": rank},
            }
        )
    segments = timelines.segments()
    for seg in segments:
        events.append(
            {
                "ph": "X",
                "name": seg.kind,
                "cat": seg.category,
                "pid": pid,
                "tid": seg.rank,
                "ts": seg.t0 * _US,
                "dur": seg.duration * _US,
                "args": {
                    "category": seg.category,
                    "t0_s": seg.t0,
                    "t1_s": seg.t1,
                },
            }
        )
    return events


def to_chrome_trace(
    timelines: "Timelines", label: Optional[str] = None
) -> dict[str, Any]:
    """The complete JSON-object form of the trace file."""
    doc: dict[str, Any] = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(timelines),
        "otherData": {
            "generator": "repro.obs",
            "ranks": timelines.nranks,
            "partial": timelines.partial,
        },
    }
    if label is not None:
        doc["otherData"]["label"] = label
    return doc


def chrome_trace_json(
    timelines: "Timelines", label: Optional[str] = None
) -> str:
    """Deterministic serialized form (sorted keys, compact separators)."""
    return json.dumps(
        to_chrome_trace(timelines, label=label),
        sort_keys=True,
        separators=(",", ":"),
    )


def write_chrome_trace(
    path: str, timelines: "Timelines", label: Optional[str] = None
) -> str:
    """Write the trace file; returns ``path``.  Load it at
    https://ui.perfetto.dev or ``chrome://tracing``."""
    with open(path, "w") as fh:
        fh.write(chrome_trace_json(timelines, label=label))
        fh.write("\n")
    return path
