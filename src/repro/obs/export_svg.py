"""SVG timeline renderer — the paper's Fig. 2 trace insets as vector art.

One horizontal lane per rank, one colored rect per classified segment,
a time axis, and a category legend.  Pure string assembly (no plotting
dependency) so it runs anywhere the simulator does; colors follow the
ITAC convention the paper's insets use (blue-ish compute, red-ish MPI
waiting).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional
from xml.sax.saxutils import escape

from repro.obs.timeline import (
    COLLECTIVE_WAIT,
    COMPUTE,
    EAGER_SEND,
    NETWORK_TRANSFER,
    RECV_WAIT,
    RENDEZVOUS_WAIT,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.timeline import Timelines

#: Fill color per segment category (ITAC-like palette).
CATEGORY_COLORS = {
    COMPUTE: "#4878cf",           # blue — application code
    EAGER_SEND: "#8cc5e3",        # light blue — cheap protocol time
    RENDEZVOUS_WAIT: "#d1342f",   # red — sender blocked
    RECV_WAIT: "#e8853d",         # orange — receiver blocked
    NETWORK_TRANSFER: "#b5b991",  # olive — wire time
    COLLECTIVE_WAIT: "#9d4edd",   # purple — barrier/allreduce wait
}

_MARGIN_LEFT = 64.0
_MARGIN_TOP = 24.0
_AXIS_HEIGHT = 26.0
_LEGEND_HEIGHT = 22.0


def render_svg_timeline(
    timelines: "Timelines",
    ranks: Optional[Iterable[int]] = None,
    width: int = 1000,
    row_height: int = 14,
    title: Optional[str] = None,
) -> str:
    """Render selected (default: all) ranks as an SVG document string.

    Segments shorter than 1/4 px at the chosen width are skipped — they
    would be invisible anyway and bloat the file; the per-category
    aggregates are unaffected (they live in the markdown report).
    """
    sel = sorted(timelines.by_rank) if ranks is None else sorted(
        r for r in ranks if r in timelines.by_rank
    )
    if not sel:
        raise ValueError("no ranks to render")
    t_min, t_max = timelines.span()
    if t_max <= t_min:
        raise ValueError("empty time span")
    lane_w = width - _MARGIN_LEFT - 8.0
    scale = lane_w / (t_max - t_min)
    height = (
        _MARGIN_TOP + len(sel) * (row_height + 2) + _AXIS_HEIGHT
        + _LEGEND_HEIGHT
    )
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height:.0f}" font-family="monospace" font-size="10">',
        f'<rect width="{width}" height="{height:.0f}" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{_MARGIN_LEFT}" y="14" font-size="12">'
            f"{escape(title)}</text>"
        )
    min_px = 0.25
    for i, rank in enumerate(sel):
        y = _MARGIN_TOP + i * (row_height + 2)
        out.append(
            f'<text x="4" y="{y + row_height - 3:.1f}">r{rank}</text>'
        )
        for seg in timelines.by_rank[rank].segments:
            w = seg.duration * scale
            if w < min_px:
                continue
            x = _MARGIN_LEFT + (seg.t0 - t_min) * scale
            color = CATEGORY_COLORS.get(seg.category, "#999999")
            out.append(
                f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
                f'height="{row_height}" fill="{color}">'
                f"<title>{escape(seg.kind)} [{seg.category}] "
                f"rank {rank}: {seg.t0:.6g}-{seg.t1:.6g} s "
                f"({seg.duration:.3g} s)</title></rect>"
            )
    # time axis with 5 ticks
    axis_y = _MARGIN_TOP + len(sel) * (row_height + 2) + 4
    out.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_y}" '
        f'x2="{_MARGIN_LEFT + lane_w:.1f}" y2="{axis_y}" stroke="black"/>'
    )
    for k in range(6):
        t = t_min + k * (t_max - t_min) / 5.0
        x = _MARGIN_LEFT + (t - t_min) * scale
        out.append(
            f'<line x1="{x:.1f}" y1="{axis_y}" x2="{x:.1f}" '
            f'y2="{axis_y + 4}" stroke="black"/>'
        )
        out.append(
            f'<text x="{x:.1f}" y="{axis_y + 15}" text-anchor="middle">'
            f"{t:.4g}s</text>"
        )
    # legend
    lx = _MARGIN_LEFT
    ly = axis_y + _AXIS_HEIGHT - 4
    for cat, color in CATEGORY_COLORS.items():
        out.append(
            f'<rect x="{lx:.1f}" y="{ly - 9}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        out.append(f'<text x="{lx + 13:.1f}" y="{ly}">{cat}</text>')
        lx += 13 + 7.0 * len(cat) + 16
    out.append("</svg>")
    return "\n".join(out)


def write_svg_timeline(
    path: str,
    timelines: "Timelines",
    ranks: Optional[Iterable[int]] = None,
    width: int = 1000,
    row_height: int = 14,
    title: Optional[str] = None,
) -> str:
    """Render and write; returns ``path``."""
    svg = render_svg_timeline(
        timelines, ranks=ranks, width=width, row_height=row_height,
        title=title,
    )
    with open(path, "w") as fh:
        fh.write(svg)
        fh.write("\n")
    return path
