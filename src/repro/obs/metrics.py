"""One queryable, JSON-exportable metrics snapshot per run.

Engine-health counters have accumulated in several places over the
repo's life: :class:`~repro.des.simulator.SimStats` (event/heap/run-queue
throughput), the per-rank :class:`~repro.smpi.mailbox.Mailbox` queues,
:class:`~repro.des.resources.BandwidthResource` flow state, the
:class:`~repro.faults.injector.FaultInjector` plan, and the
:class:`~repro.perfmon.trace.TraceCollector` interval count.  This
module gathers them behind one :class:`MetricsRegistry`:

* every *source* is a named callable returning a flat ``{metric: value}``
  dict — reading is a pure post-run inspection, never a mutation, so
  collection is zero-perturbation by construction;
* :func:`runtime_registry` wires the standard sources of an
  :class:`~repro.smpi.runtime.MpiRuntime`;
* :meth:`MetricsRegistry.snapshot` returns the nested
  ``{source: {metric: value}}`` dict that the runner stores in
  ``RunResult.meta["metrics"]`` and :func:`aggregate_metrics` sums
  across a sweep's runs.

Every value is a plain int/float, so snapshots survive JSON round-trips
(sweep checkpoints, exported artifacts) losslessly.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.results import ScalingSeries
    from repro.smpi.runtime import MpiRuntime

MetricSource = Callable[[], Mapping[str, float]]


class MetricsRegistry:
    """Named metric sources, snapshotted on demand.

    >>> reg = MetricsRegistry()
    >>> reg.register("engine", lambda: {"events": 42})
    >>> reg.snapshot()
    {'engine': {'events': 42}}
    """

    def __init__(self) -> None:
        self._sources: dict[str, MetricSource] = {}

    def register(self, name: str, source: MetricSource) -> None:
        """Add (or replace) one named source.  ``source`` is called at
        snapshot time and must return a flat mapping of numbers."""
        if not callable(source):
            raise TypeError(f"source {name!r} must be callable")
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        self._sources.pop(name, None)

    @property
    def sources(self) -> list[str]:
        return sorted(self._sources)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Read every source once; sources are keyed in sorted order so
        the snapshot (and its JSON form) is deterministic."""
        return {
            name: dict(self._sources[name]()) for name in sorted(self._sources)
        }

    def query(self, source: str, metric: str) -> float:
        """One value, e.g. ``registry.query("engine", "events")``."""
        return dict(self._sources[source]())[metric]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)


# --- standard sources ---------------------------------------------------------


def engine_metrics(sim: Any) -> dict[str, float]:
    """DES throughput counters from :class:`~repro.des.simulator.SimStats`."""
    st = sim.stats
    return {
        "events": st.events,
        "heap_pushes": st.heap_pushes,
        "heap_pops": st.heap_pops,
        "runq_events": st.runq_events,
        "zero_delay_continues": st.zero_delay_continues,
        "peak_heap_size": st.peak_heap_size,
    }


def mailbox_metrics(mailboxes: Iterable[Any]) -> dict[str, float]:
    """Matching-layer totals over all ranks' mailboxes."""
    ops = 0
    pending_arrivals = 0
    pending_posts = 0
    n = 0
    for mb in mailboxes:
        n += 1
        ops += mb._seq
        pending_arrivals += mb.pending_arrivals
        pending_posts += mb.pending_posts
    return {
        "mailboxes": n,
        "matching_ops": ops,
        "pending_arrivals": pending_arrivals,
        "pending_posts": pending_posts,
    }


def fault_metrics(injector: Any) -> dict[str, float]:
    """Plan shape of an attached :class:`~repro.faults.injector.FaultInjector`."""
    plan = injector.plan
    return {
        "slow_ranks": len(plan.slow_ranks),
        "os_noise_sources": len(plan.os_noise),
        "degraded_links": len(plan.links),
        "planned_crashes": len(plan.crashes),
    }


def trace_metrics(trace: Any) -> dict[str, float]:
    """Collection counters of an attached trace collector."""
    return {
        "intervals_recorded": len(trace),
        "intervals_retained": len(trace.intervals),
        "streaming": int(bool(getattr(trace, "streaming", False))),
    }


def bandwidth_metrics(resource: Any) -> dict[str, float]:
    """Flow state of a :class:`~repro.des.resources.BandwidthResource`."""
    return {
        "capacity": resource.capacity,
        "active_flows": resource.active_flows,
        "current_rate": resource.current_rate,
    }


def runtime_registry(runtime: "MpiRuntime") -> MetricsRegistry:
    """A registry wired with every standard source the runtime carries:
    always ``engine`` and ``mailboxes``; ``faults``/``trace`` when the
    corresponding subsystem is attached; ``wavefront`` when the runner
    set tier-decision counters (``eligible``/``levels``/``events_saved``
    on engage, ``declined.<reason>`` otherwise)."""
    reg = MetricsRegistry()
    reg.register("engine", lambda: engine_metrics(runtime.sim))
    reg.register("mailboxes", lambda: mailbox_metrics(runtime.mailboxes))
    if runtime.faults is not None:
        reg.register("faults", lambda: fault_metrics(runtime.faults))
    if runtime.trace is not None:
        reg.register("trace", lambda: trace_metrics(runtime.trace))
    if getattr(runtime, "tier_metrics", None) is not None:
        reg.register("wavefront", runtime.tier_metrics)
    return reg


def run_metrics(runtime: "MpiRuntime") -> dict[str, dict[str, float]]:
    """The standard post-run snapshot stored in
    ``RunResult.meta["metrics"]``."""
    return runtime_registry(runtime).snapshot()


def aggregate_metrics(series: "ScalingSeries") -> dict[str, dict[str, float]]:
    """Sum the per-run snapshots of every run in a sweep series.

    ``peak_heap_size`` and ``peak_power_w`` aggregate as a max (they are
    high-water marks, not flows); everything else sums.  Runs recorded
    before metrics existed (resumed pre-observability checkpoints)
    contribute no engine counters, but every run contributes to the
    ``energy`` source — chip/DRAM joules and EDP are first-class
    :class:`~repro.harness.results.RunResult` fields, not an optional
    engine snapshot.
    """
    total: dict[str, dict[str, float]] = {}
    for point in series.points:
        for run in point.runs:
            energy = total.setdefault("energy", {})
            for metric, value in (
                ("chip_energy_j", run.energy.chip_energy),
                ("dram_energy_j", run.energy.dram_energy),
                ("total_energy_j", run.total_energy),
                ("edp_js", run.edp),
            ):
                energy[metric] = energy.get(metric, 0.0) + value
            energy["peak_power_w"] = max(
                energy.get("peak_power_w", 0.0), run.avg_power
            )
            snap = run.meta.get("metrics")
            if not snap:
                continue
            for source, values in snap.items():
                bucket = total.setdefault(source, {})
                for metric, value in values.items():
                    if metric == "peak_heap_size":
                        bucket[metric] = max(bucket.get(metric, 0.0), value)
                    else:
                        bucket[metric] = bucket.get(metric, 0.0) + value
    return total
