"""Observability: turn raw traces into explanations.

The simulator's raw event trace (:mod:`repro.perfmon.trace`) says *what
call* each rank was in; this package says *why the time was spent* and
makes the answer inspectable — the ITAC-style workflow the paper builds
its whole MPI analysis on (Fig. 2 insets, Sects. 4.1.4-4.1.5):

* :mod:`repro.obs.timeline` — per-rank timelines with every interval
  classified as ``compute`` / ``eager-send`` / ``rendezvous-wait`` /
  ``recv-wait`` / ``network-transfer`` / ``collective-wait``;
* :mod:`repro.obs.patterns` — detectors for the paper's two signature
  pathologies: the minisweep rendezvous serialization ripple and the
  lbm one-slow-rank collective skew, with per-rank attribution;
* :mod:`repro.obs.metrics` — one registry aggregating the engine's
  scattered counters into a JSON-exportable per-run snapshot;
* :mod:`repro.obs.export_chrome` / :mod:`repro.obs.export_svg` /
  :mod:`repro.obs.report` — exporters: Chrome ``trace_event`` JSON
  (loadable in Perfetto), an SVG timeline, a markdown waiting-time
  report.

Everything here is a pure *read* of finished run state.  Attaching
observability never changes results: golden fingerprints are
bit-identical with and without it, enforced by
:func:`repro.validate.differential.observability_differential`.

The one-call entry point::

    from repro.harness import run
    from repro.machine import CLUSTER_A
    from repro.spechpc import get_benchmark

    result = run(get_benchmark("minisweep"), CLUSTER_A, 59, trace=True)
    obs = result.observability()          # or repro.obs.observe(result)
    print(obs.analysis.ripple.summary())
    obs.write("trace_out/minisweep")      # .chrome.json + .svg + .md
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.obs.export_chrome import (
    chrome_trace_json,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export_svg import render_svg_timeline, write_svg_timeline
from repro.obs.metrics import (
    MetricsRegistry,
    aggregate_metrics,
    run_metrics,
    runtime_registry,
)
from repro.obs.patterns import (
    RippleReport,
    SkewReport,
    WaitingTimeAnalysis,
    analyze_waiting,
    detect_collective_skew,
    detect_ripples,
)
from repro.obs.report import waiting_time_report, write_report
from repro.obs.timeline import (
    CATEGORIES,
    COLLECTIVE_WAIT,
    COMPUTE,
    EAGER_SEND,
    NETWORK_TRANSFER,
    RECV_WAIT,
    RENDEZVOUS_WAIT,
    WAIT_CATEGORIES,
    Segment,
    Timelines,
    build_timelines,
    classify_kind,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.results import RunResult

__all__ = [
    "CATEGORIES",
    "COMPUTE",
    "EAGER_SEND",
    "RENDEZVOUS_WAIT",
    "RECV_WAIT",
    "NETWORK_TRANSFER",
    "COLLECTIVE_WAIT",
    "WAIT_CATEGORIES",
    "Segment",
    "Timelines",
    "build_timelines",
    "classify_kind",
    "RippleReport",
    "SkewReport",
    "WaitingTimeAnalysis",
    "analyze_waiting",
    "detect_ripples",
    "detect_collective_skew",
    "MetricsRegistry",
    "runtime_registry",
    "run_metrics",
    "aggregate_metrics",
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "render_svg_timeline",
    "write_svg_timeline",
    "waiting_time_report",
    "write_report",
    "ObsBundle",
    "observe",
]


@dataclass(frozen=True)
class ObsBundle:
    """Everything observability derives from one traced run."""

    result: "RunResult"
    timelines: Timelines
    analysis: WaitingTimeAnalysis

    @property
    def metrics(self) -> dict[str, dict[str, float]]:
        """The run's engine-metrics snapshot (empty for pre-metrics
        results restored from old checkpoints)."""
        return self.result.meta.get("metrics", {})

    def report(self, title: Optional[str] = None, top_ranks: int = 10) -> str:
        """The markdown waiting-time report for this run."""
        r = self.result
        return waiting_time_report(
            self.timelines,
            self.analysis,
            title=title
            or (
                f"Waiting-time report — {r.benchmark} ({r.suite}) on "
                f"{r.cluster} ({r.nprocs} ranks, {r.nnodes} node(s))"
            ),
            meta={
                "benchmark": r.benchmark,
                "cluster": r.cluster,
                "suite": r.suite,
                "ranks": r.nprocs,
                "nodes": r.nnodes,
                "simulated makespan": f"{r.sim_elapsed:.6g} s",
                "full-run elapsed": f"{r.elapsed:.6g} s",
            },
            metrics=self.metrics or None,
            top_ranks=top_ranks,
        )

    def write(
        self,
        prefix: str,
        ranks: Optional[Iterable[int]] = None,
        svg_width: int = 1000,
    ) -> dict[str, str]:
        """Write all three artifacts next to each other.

        ``prefix`` is the path stem: writes ``<prefix>.chrome.json``,
        ``<prefix>.svg``, and ``<prefix>.md``; returns the mapping of
        artifact kind to written path.
        """
        r = self.result
        label = f"{r.benchmark}/{r.suite} on {r.cluster} x{r.nprocs}"
        paths = {
            "chrome": write_chrome_trace(
                f"{prefix}.chrome.json", self.timelines, label=label
            ),
            "svg": write_svg_timeline(
                f"{prefix}.svg",
                self.timelines,
                ranks=ranks,
                width=svg_width,
                title=label,
            ),
            "markdown": write_report(f"{prefix}.md", self.report()),
        }
        return paths


def observe(
    result: "RunResult",
    network: Any = None,
    ranks: Optional[Iterable[int]] = None,
    min_ripple_wait: Optional[float] = None,
    min_ripple_depth: int = 4,
    skew_ratio_threshold: float = 1.02,
) -> ObsBundle:
    """Build the full observability bundle from a traced
    :class:`~repro.harness.results.RunResult`.

    The run must have been executed with ``trace=True`` (or a streaming
    trace with a ring); ``network`` defaults to the spec of the result's
    own cluster.  Raises ``ValueError`` for an untraced result.
    """
    if result.trace is None:
        raise ValueError(
            "result carries no trace — run with trace=True to observe it"
        )
    if network is None:
        from repro.machine.registry import get_cluster

        network = get_cluster(result.cluster).network
    timelines = build_timelines(result.trace, network, ranks=ranks)
    analysis = analyze_waiting(
        timelines,
        min_ripple_wait=min_ripple_wait,
        min_ripple_depth=min_ripple_depth,
        skew_ratio_threshold=skew_ratio_threshold,
    )
    return ObsBundle(result=result, timelines=timelines, analysis=analysis)
