"""Per-rank timelines with ITAC-style waiting-time classification.

The raw trace (:class:`~repro.perfmon.trace.TraceCollector`) records
*what call* each rank was in; this module reconstructs *why the time was
spent*.  Every trace interval is classified into one of six segment
categories:

``compute``
    The rank executed kernel code.
``eager-send``
    An ``MPI_Send`` that completed in the eager protocol's CPU overhead
    — the payload was buffered and the sender moved on immediately.
``rendezvous-wait``
    An ``MPI_Send`` that blocked: the message was above the eager
    threshold and the sender stalled until the receiver posted its
    receive.  Chains of these are the raw material of the paper's
    minisweep serialization ripple (Sect. 4.1.5).
``recv-wait``
    Receive-side blocking (``MPI_Recv`` / ``MPI_Wait`` /
    ``MPI_Sendrecv``) that lasted longer than the pure protocol + wire
    cost — the rank waited for a message that had not been *sent* yet.
``network-transfer``
    Receive-side time explainable by protocol and wire cost alone: the
    matching send was already in flight and the rank only paid the
    transfer.
``collective-wait``
    Any collective call (barrier, allreduce, bcast, …).  Collective time
    is almost entirely waiting for the slowest participant; the paper's
    lbm inset shows one slow rank exporting its delay to every other
    rank through exactly this category.

Classification thresholds are derived from the run's
:class:`~repro.machine.network.NetworkSpec` (see
:func:`eager_send_bound` and :func:`recv_wait_floor`); the exact rules
are documented in ``docs/observability.md`` and pinned by hand-computed
boundary tests in ``tests/test_obs.py``.

Building timelines is a pure *read* of an existing trace — it never
touches simulation state, so attaching it is zero-perturbation by
construction (enforced end to end by the golden differential in
:mod:`repro.validate.differential`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.network import NetworkSpec
    from repro.perfmon.trace import TraceCollector, TraceInterval

#: Segment categories (stable strings — they appear in exported artifacts).
COMPUTE = "compute"
EAGER_SEND = "eager-send"
RENDEZVOUS_WAIT = "rendezvous-wait"
RECV_WAIT = "recv-wait"
NETWORK_TRANSFER = "network-transfer"
COLLECTIVE_WAIT = "collective-wait"

#: All categories, in canonical display order.
CATEGORIES = (
    COMPUTE,
    EAGER_SEND,
    RENDEZVOUS_WAIT,
    RECV_WAIT,
    NETWORK_TRANSFER,
    COLLECTIVE_WAIT,
)

#: Categories that are *waiting* (time the rank made no progress).
WAIT_CATEGORIES = frozenset(
    {RENDEZVOUS_WAIT, RECV_WAIT, COLLECTIVE_WAIT}
)

#: Trace interval kinds that are collective calls.
COLLECTIVE_KINDS = frozenset(
    {
        "MPI_Allreduce",
        "MPI_Barrier",
        "MPI_Bcast",
        "MPI_Reduce",
        "MPI_Allgather",
        "MPI_Scatter",
        "MPI_Gather",
        "MPI_Alltoall",
    }
)

#: Receive-side blocking kinds (classified recv-wait / network-transfer).
RECV_SIDE_KINDS = frozenset({"MPI_Recv", "MPI_Wait", "MPI_Sendrecv"})

#: Relative tolerance on the eager-send duration comparison; an eager
#: blocking send costs *exactly* ``per_message_overhead`` in the model,
#: the epsilon only absorbs decimal round-tripping of exported times.
_EAGER_RTOL = 1e-9


def eager_send_bound(network: "NetworkSpec") -> float:
    """Longest duration an ``MPI_Send`` interval can have and still be an
    eager send.

    In the engine an eager blocking send completes after exactly
    ``per_message_overhead`` seconds (the payload is buffered; see
    :meth:`repro.smpi.comm.Communicator.isend`), so any send interval
    longer than this bound must have taken the rendezvous path and
    blocked on the receiver.
    """
    return network.per_message_overhead * (1.0 + _EAGER_RTOL)


def recv_wait_floor(network: "NetworkSpec") -> float:
    """Longest receive-side duration explainable without waiting.

    A receive whose matching message was already in flight pays at most
    the rendezvous handshake, one inter-node latency, and two message
    overheads (its own completion plus the sender's RTS processing)::

        floor = rendezvous_handshake + latency + 2 * per_message_overhead

    Anything longer means the rank sat waiting for a message that had
    not been sent (or not progressed) yet, and is classified
    ``recv-wait``.  The floor deliberately excludes the byte-transfer
    term — message sizes are not recorded per interval — so very large
    transfers are conservatively counted as waiting; for the paper's
    benchmarks (halo exchanges of at most a few MiB) the wire time is
    orders of magnitude below any wait this module reports on.
    """
    return (
        network.rendezvous_handshake
        + network.latency
        + 2.0 * network.per_message_overhead
    )


def classify_kind(kind: str, duration: float, network: "NetworkSpec") -> str:
    """Map one trace interval to its segment category.

    The rules (pinned by hand-computed boundary tests):

    1. a non-``MPI_`` kind is ``compute`` (custom compute labels too);
    2. a collective kind is ``collective-wait``;
    3. ``MPI_Send`` is ``eager-send`` iff its duration is within
       :func:`eager_send_bound`, else ``rendezvous-wait``;
    4. receive-side kinds are ``network-transfer`` iff their duration is
       within :func:`recv_wait_floor`, else ``recv-wait``.
    """
    if not kind.startswith("MPI_"):
        return COMPUTE
    if kind in COLLECTIVE_KINDS:
        return COLLECTIVE_WAIT
    if kind == "MPI_Send":
        if duration <= eager_send_bound(network):
            return EAGER_SEND
        return RENDEZVOUS_WAIT
    # receive side: MPI_Recv / MPI_Wait / MPI_Sendrecv (and any unknown
    # future MPI kind — waiting is the conservative default)
    if duration <= recv_wait_floor(network):
        return NETWORK_TRANSFER
    return RECV_WAIT


@dataclass(frozen=True)
class Segment:
    """One classified slice of one rank's timeline."""

    rank: int
    t0: float
    t1: float
    category: str
    kind: str

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class RankTimeline:
    """One rank's classified segments, in start-time order."""

    rank: int
    segments: tuple[Segment, ...]

    def time_by_category(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.segments:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return out

    @property
    def compute_time(self) -> float:
        return sum(s.duration for s in self.segments if s.category == COMPUTE)

    @property
    def wait_time(self) -> float:
        """Total time in waiting categories (see :data:`WAIT_CATEGORIES`)."""
        return sum(
            s.duration for s in self.segments if s.category in WAIT_CATEGORIES
        )

    def in_category(self, category: str) -> tuple[Segment, ...]:
        return tuple(s for s in self.segments if s.category == category)


@dataclass(frozen=True)
class Timelines:
    """All ranks' classified timelines plus the classification context.

    ``partial`` is true when the source trace retained only a tail of
    its intervals (streaming mode with a ring); aggregate numbers then
    cover the retained window only.
    """

    by_rank: dict[int, RankTimeline]
    network: "NetworkSpec"
    partial: bool = False

    @property
    def ranks(self) -> list[int]:
        return sorted(self.by_rank)

    @property
    def nranks(self) -> int:
        return len(self.by_rank)

    def rank(self, rank: int) -> RankTimeline:
        return self.by_rank[rank]

    def span(self) -> tuple[float, float]:
        t0 = min(
            (tl.segments[0].t0 for tl in self.by_rank.values() if tl.segments),
            default=0.0,
        )
        t1 = max(
            (tl.segments[-1].t1 for tl in self.by_rank.values() if tl.segments),
            default=0.0,
        )
        return (t0, t1)

    def segments(self) -> list[Segment]:
        """Every segment of every rank, ordered by (t0, rank)."""
        out = [s for tl in self.by_rank.values() for s in tl.segments]
        out.sort(key=lambda s: (s.t0, s.rank))
        return out

    def time_by_category(self, rank: Optional[int] = None) -> dict[str, float]:
        """Aggregate (or one rank's) time per segment category."""
        if rank is not None:
            return self.by_rank[rank].time_by_category()
        out: dict[str, float] = {}
        for tl in self.by_rank.values():
            for k, v in tl.time_by_category().items():
                out[k] = out.get(k, 0.0) + v
        return out

    def fractions(self, rank: Optional[int] = None) -> dict[str, float]:
        """Share of traced time per category (the paper's '75 % waiting')."""
        times = self.time_by_category(rank)
        total = sum(times.values())
        if total == 0.0:
            return {}
        return {k: v / total for k, v in times.items()}

    def wait_by_rank(self) -> dict[int, float]:
        """Per-rank total waiting time, for attribution tables."""
        return {r: tl.wait_time for r, tl in sorted(self.by_rank.items())}


def build_timelines(
    trace: "TraceCollector",
    network: "NetworkSpec",
    ranks: Optional[Iterable[int]] = None,
) -> Timelines:
    """Classify a collected trace into per-rank timelines.

    ``ranks`` optionally restricts the result to a subset of ranks
    (exports of huge runs usually want a representative slice).  Raises
    ``ValueError`` for a streaming trace that retained no intervals —
    there is nothing to classify; re-run with ``trace=True`` or a ring.
    """
    retained = trace.intervals
    if not retained and len(trace):
        raise ValueError(
            "trace retained no intervals (streaming mode without a ring); "
            "collect with trace=True or TraceCollector(streaming=True, "
            "ring=N) to build timelines"
        )
    wanted = None if ranks is None else set(ranks)
    per_rank: dict[int, list[Segment]] = {}
    for iv in retained:
        if wanted is not None and iv.rank not in wanted:
            continue
        seg = Segment(
            rank=iv.rank,
            t0=iv.t0,
            t1=iv.t1,
            category=classify_kind(iv.kind, iv.t1 - iv.t0, network),
            kind=iv.kind,
        )
        per_rank.setdefault(iv.rank, []).append(seg)
    by_rank = {}
    for r, segs in per_rank.items():
        segs.sort(key=lambda s: s.t0)
        by_rank[r] = RankTimeline(rank=r, segments=tuple(segs))
    return Timelines(
        by_rank=by_rank,
        network=network,
        partial=len(retained) < len(trace),
    )
