"""Markdown waiting-time report.

Renders one run's classified timelines, the waiting-time analysis, and
the metrics snapshot as a self-contained markdown document — the
human-readable artifact of ``repro trace`` (the Chrome JSON and SVG are
the machine/visual ones).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.obs.timeline import CATEGORIES, WAIT_CATEGORIES

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.patterns import WaitingTimeAnalysis
    from repro.obs.timeline import Timelines


def _md_table(headers: list[str], rows: list[tuple]) -> str:
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def _fmt_s(x: float) -> str:
    return f"{x:.6g} s"


def waiting_time_report(
    timelines: "Timelines",
    analysis: "WaitingTimeAnalysis",
    title: str = "Waiting-time report",
    meta: Optional[Mapping[str, Any]] = None,
    metrics: Optional[Mapping[str, Mapping[str, float]]] = None,
    top_ranks: int = 10,
) -> str:
    """Assemble the full markdown report.

    ``meta`` renders as a key/value header (benchmark, cluster, ranks…);
    ``metrics`` appends the engine-metrics snapshot; ``top_ranks`` caps
    the per-rank attribution tables of large runs.
    """
    lines = [f"# {title}", ""]
    if timelines.partial:
        lines += [
            "> **Partial trace** — the collector retained only a tail of "
            "the run (streaming ring); all numbers cover that window.",
            "",
        ]
    if meta:
        lines.append(
            _md_table(
                ["run", "value"], [(k, v) for k, v in meta.items()]
            )
        )
        lines.append("")

    # --- classification summary ---------------------------------------------
    lines += ["## Where the time went", ""]
    times = analysis.time_by_category
    fracs = analysis.fractions
    rows = [
        (cat, _fmt_s(times[cat]), f"{100.0 * fracs[cat]:.1f} %")
        for cat in CATEGORIES
        if cat in times
    ]
    lines.append(_md_table(["segment category", "rank-time", "share"], rows))
    lines += [
        "",
        f"Waiting categories ({', '.join(sorted(WAIT_CATEGORIES))}) "
        f"consume **{100.0 * analysis.wait_fraction:.1f} %** of all traced "
        "rank-time.",
        "",
    ]

    # --- findings -------------------------------------------------------------
    lines += ["## Findings", ""]
    for finding in analysis.findings():
        lines.append(f"- {finding}")
    lines.append("")

    # --- ripple attribution ---------------------------------------------------
    ripple = analysis.ripple
    if ripple.detected:
        dom = ripple.dominant
        lines += [
            "## Rendezvous serialization ripple", "",
            f"{len(ripple.chains)} wait chain(s) found (threshold "
            f"{_fmt_s(ripple.min_wait)}, min depth {ripple.min_depth}); "
            f"the dominant front blocks {dom.depth} ranks in sequence:",
            "",
        ]
        rows = [
            (s.rank, s.kind, s.category, f"{s.t0:.6g}", f"{s.t1:.6g}",
             _fmt_s(s.duration))
            for s in dom.segments[: max(top_ranks, 10)]
        ]
        lines.append(
            _md_table(
                ["rank", "call", "category", "t0", "t1", "blocked"], rows
            )
        )
        if dom.depth > max(top_ranks, 10):
            lines.append(
                f"\n… {dom.depth - max(top_ranks, 10)} more ranks in this "
                "chain."
            )
        lines += ["", "Per-rank blocked time (worst first):", ""]
        worst = sorted(
            ripple.wait_by_rank.items(), key=lambda kv: -kv[1]
        )[:top_ranks]
        lines.append(
            _md_table(
                ["rank", "p2p blocked"],
                [(r, _fmt_s(w)) for r, w in worst],
            )
        )
        lines.append("")

    # --- skew attribution -----------------------------------------------------
    skew = analysis.skew
    if skew.detected:
        lines += [
            "## Collective skew", "",
            skew.summary() + ".",
            "",
        ]
        rows = []
        for r in sorted(
            skew.excess_by_rank,
            key=lambda r: -skew.excess_by_rank[r],
        )[:top_ranks]:
            rows.append(
                (
                    r,
                    "**slow**" if r in skew.slow_ranks else "",
                    _fmt_s(skew.excess_by_rank[r]),
                    _fmt_s(skew.collective_wait_by_rank.get(r, 0.0)),
                )
            )
        lines.append(
            _md_table(
                ["rank", "role", "excess compute", "collective wait"], rows
            )
        )
        lines.append("")

    # --- metrics --------------------------------------------------------------
    if metrics:
        lines += ["## Engine metrics", ""]
        rows = [
            (source, metric, f"{value:g}")
            for source in sorted(metrics)
            for metric, value in sorted(metrics[source].items())
        ]
        lines.append(_md_table(["source", "metric", "value"], rows))
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def write_report(path: str, report: str) -> str:
    """Write a rendered report; returns ``path``."""
    with open(path, "w") as fh:
        fh.write(report)
    return path
