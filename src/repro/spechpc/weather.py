"""535.weather / 635.weather — miniWeather-style finite-volume
atmospheric model (Fortran, ~1100 LOC).

A traditional finite-volume control flow on a 2D (X, Z) domain, run with
the "Injection" scenario (model 6).  Two kernel classes matter for the
paper's analysis:

* a dominant *dynamics* kernel with heavy per-cell arithmetic that the
  compiler vectorizes poorly — non-memory-bound but, as Sect. 4.1.4 puts
  it, "probable that it might become fully memory bound if it could be
  efficiently vectorized";
* a *flux/limiter* kernel whose temporaries are small enough to drop into
  the outer caches under strong scaling — the source of the **superlinear
  scaling** of Sect. 4.1.1 (121 % parallel efficiency across ccNUMA
  domains on ClusterB) and of case A at cluster level, stronger on
  ClusterB thanks to its 45 % / 60 % larger L3/L2 per core.

Communication: pure point-to-point halo exchange along the
X-decomposition; no collectives (Table 1) — hence point-to-point is its
dominant communication overhead (Sect. 5).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    split_extent,
)

DYNAMICS = KernelModel(
    name="weather.dynamics",
    flops_per_unit=180.0,
    simd_fraction=0.35,
    mem_bytes_per_unit=30.0,
    l3_bytes_per_unit=70.0,
    l2_bytes_per_unit=160.0,
    working_set_bytes_per_unit=8.0,
    compute_efficiency=0.40,
    heat=0.88,
)

FLUX = KernelModel(
    name="weather.flux_limiter",
    flops_per_unit=60.0,
    simd_fraction=0.45,
    mem_bytes_per_unit=260.0,
    l3_bytes_per_unit=300.0,
    l2_bytes_per_unit=340.0,
    # flux/limiter temporaries: a few bytes per cell — the strong-scaled
    # per-rank slice drops into the outer caches (earlier on ClusterB),
    # the engine of weather's superlinear scaling (Sect. 4.1.1, 5.1)
    working_set_bytes_per_unit=5.76,
    compute_efficiency=0.45,
    heat=0.82,
    cache_sharpness=3.5,
)

COLUMN = KernelModel(
    name="weather.column_reduce",
    flops_per_unit=30.0,
    simd_fraction=0.40,
    mem_bytes_per_unit=130.0,
    l3_bytes_per_unit=160.0,
    l2_bytes_per_unit=190.0,
    # hydrostatic-balance / tendency accumulators: ~0.5 B per cell of
    # strong-scaled state — the per-rank slice falls into the outer caches
    # within the paper's node range, driving the multi-node superlinear
    # scaling of case A (Sect. 5.1.1), earlier on ClusterB
    working_set_bytes_per_unit=0.5,
    compute_efficiency=0.45,
    heat=0.82,
    cache_sharpness=2.5,
)

#: Prognostic variables exchanged in the halo.
N_VARS = 4
HALO_WIDTH = 2


class Weather(Benchmark):
    """miniWeather-style finite-volume atmosphere."""

    info = BenchmarkInfo(
        name="weather",
        benchmark_id=35,
        language="Fortran",
        loc=1100,
        collective="-",
        numerics="Traditional finite-volume control flow",
        domain="Atmospheric weather and climate",
        memory_bound=False,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"nx": 24000, "nz": 3000, "model": 6},
            steps=600,
        ),
        "small": Workload(
            suite="small",
            params={"nx": 192000, "nz": 24000, "model": 6},
            steps=600,
        ),
        # modeled estimates for the 4 / 14.5 TB suites (see lbm.py note)
        "medium": Workload(
            suite="medium",
            params={"nx": 768000, "nz": 48000, "model": 6},
            steps=600,
        ),
        "large": Workload(
            suite="large",
            params={"nx": 1536000, "nz": 96000, "model": 6},
            steps=600,
        ),
    }

    def local_units(self, ctx: RunContext, rank: int) -> float:
        p = ctx.workload.params
        return float(split_extent(p["nx"], ctx.nprocs, rank) * p["nz"])

    def default_sim_steps(self, suite: str) -> int:
        return 3

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        p = ctx.workload.params
        nx, nz = p["nx"], p["nz"]
        n = ctx.nprocs

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            lx = split_extent(nx, n, rank)
            units = float(lx * nz)
            ranks_dom = ctx.ranks_in_domain(rank)
            dyn = ctx.exec_model.phase_cost(DYNAMICS, units, ranks_dom)
            flux = ctx.exec_model.phase_cost(FLUX, units, ranks_dom)
            col = ctx.exec_model.phase_cost(COLUMN, units, ranks_dom)
            halo_bytes = HALO_WIDTH * nz * N_VARS * 8

            left = rank - 1 if rank > 0 else None
            right = rank + 1 if rank < n - 1 else None

            loop = ctx.step_loop(comm)

            while (yield loop.next_step()):
                # nonblocking exchange with both x-neighbors, then wait
                reqs = []
                if left is not None:
                    reqs.append(comm.irecv(left, tag=1))
                if right is not None:
                    reqs.append(comm.irecv(right, tag=1))
                if left is not None:
                    reqs.append(comm.isend(left, halo_bytes, tag=1))
                if right is not None:
                    reqs.append(comm.isend(right, halo_bytes, tag=1))
                yield comm.waitall(reqs)
                yield self.compute_phase(ctx, comm, flux, label="compute")
                yield self.compute_phase(ctx, comm, col, label="compute")
                yield self.compute_phase(ctx, comm, dyn, label="compute")

        return body
