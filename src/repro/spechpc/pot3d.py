"""528.pot3d / 628.pot3d — potential-field solar physics solver
(Fortran, ~495000 LOC including the bundled HDF5 library).

A preconditioned conjugate-gradient sparse solver for the Laplace
equation in 3D spherical coordinates (nr x nt x np grid).  Like tealeaf
it is **strongly memory-bound and strongly saturating** on a ccNUMA
domain, but (being regular Fortran loop nests) it vectorizes essentially
completely (Sect. 4.1.3).  Its L3 traffic *exceeds* its L2 traffic on
Ice Lake — the victim-cache signature the paper points out in Fig. 2(c-d)
(124 GB/s L3 vs 80 GB/s L2).

Multi-node (Sect. 5.1, case A on both clusters): the strong-scaled
working set drops into the outer caches and the reduced memory traffic
overcompensates the growing ``MPI_Allreduce``/halo overhead ->
superlinear speedup.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)

CG_ITER = KernelModel(
    name="pot3d.pcg_iteration",
    flops_per_unit=21.0,            # 7-pt stencil + preconditioner + axpys
    simd_fraction=0.985,
    mem_bytes_per_unit=90.0,
    l3_bytes_per_unit=140.0,        # victim L3 sees L2 evictions on top
    l2_bytes_per_unit=90.0,
    working_set_bytes_per_unit=40.0,  # x, r, p, Ap, diag precond
    compute_efficiency=0.50,
    heat=0.76,
)


class Pot3d(Benchmark):
    """POT3D preconditioned-CG Laplace solver."""

    info = BenchmarkInfo(
        name="pot3d",
        benchmark_id=28,
        language="Fortran",
        loc=495000,
        collective="Allreduce",
        numerics=(
            "Potential field solutions via preconditioned CG for the "
            "Laplace equation in 3D spherical coordinates"
        ),
        domain="Solar physics",
        memory_bound=True,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"nr": 173, "nt": 361, "np": 1171},
            steps=10,
            inner_iterations=200,   # PCG iterations per solve phase
        ),
        "small": Workload(
            suite="small",
            params={"nr": 325, "nt": 450, "np": 2050},
            steps=10,
            inner_iterations=250,
        ),
        # modeled estimates for the 4 / 14.5 TB suites (see lbm.py note)
        "medium": Workload(
            suite="medium",
            params={"nr": 650, "nt": 900, "np": 4100},
            steps=10,
            inner_iterations=320,
        ),
        "large": Workload(
            suite="large",
            params={"nr": 1300, "nt": 1800, "np": 8200},
            steps=10,
            inner_iterations=400,
        ),
    }

    def decompose(self, ctx: RunContext) -> tuple[int, int, int]:
        return dims_create(ctx.nprocs, 3)  # type: ignore[return-value]

    def local_units(self, ctx: RunContext, rank: int) -> float:
        p = ctx.workload.params
        dims = self.decompose(ctx)
        coords = grid_coords(rank, dims)
        ext = [
            split_extent(n, d, c)
            for n, d, c in zip((p["np"], p["nt"], p["nr"]), dims, coords)
        ]
        return float(ext[0] * ext[1] * ext[2])

    def default_sim_steps(self, suite: str) -> int:
        # simulated unit = one PCG iteration
        return 4

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        p = ctx.workload.params
        dims = self.decompose(ctx)

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            coords = grid_coords(rank, dims)
            ext = [
                split_extent(n, d, c)
                for n, d, c in zip((p["np"], p["nt"], p["nr"]), dims, coords)
            ]
            units = float(ext[0] * ext[1] * ext[2])
            ranks_dom = ctx.ranks_in_domain(rank)
            cg = ctx.exec_model.phase_cost(CG_ITER, units, ranks_dom)

            # face neighbors in the 3D grid; face area = product of the
            # other two local extents
            neighbors: list[tuple[int, int]] = []
            for axis in range(3):
                area = 1
                for other in range(3):
                    if other != axis:
                        area *= ext[other]
                for delta in (-1, 1):
                    nc = list(coords)
                    nc[axis] += delta
                    if 0 <= nc[axis] < dims[axis]:
                        neighbors.append((grid_rank(nc, dims), area * 8))

            loop = ctx.step_loop(comm)

            while (yield loop.next_step()):
                for peer, nbytes in neighbors:
                    yield comm.sendrecv(peer, nbytes, peer, nbytes)
                yield self.compute_phase(ctx, comm, cg, label="compute")
                yield comm.allreduce(8)
                yield comm.allreduce(8)

        return body
