"""519.clvleaf / 619.clvleaf — CloverLeaf compressible Euler equations
(Fortran, ~12500 LOC).

Explicit second-order hydrodynamics on a 2D Cartesian grid: many
independent streaming sweeps over ~15 field arrays make it **strongly
memory-bound** and almost perfectly vectorized (Sect. 4.1.3/4.1.4).
Each step exchanges halos for several field groups and reduces the
minimum stable timestep (``MPI_Allreduce``).

Multi-node (Sect. 5.1, case D): the working set stays far out of cache
under strong scaling, so only communication overhead bends the scaling;
the bend is slightly worse on ClusterB because its single-node baseline
is higher (250 vs 160 Gflop/s, Sect. 5.1.3).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)

HYDRO_STEP = KernelModel(
    name="cloverleaf.hydro_step",
    flops_per_unit=140.0,
    simd_fraction=0.965,
    mem_bytes_per_unit=440.0,       # ~15 arrays, several sweeps per step
    l3_bytes_per_unit=520.0,
    l2_bytes_per_unit=600.0,
    working_set_bytes_per_unit=160.0,  # ~20 DP fields
    compute_efficiency=0.50,
    heat=0.78,
)

#: Field groups whose halos are exchanged per step.
HALO_FIELDS = 10


class Cloverleaf(Benchmark):
    """CloverLeaf explicit Euler hydrodynamics."""

    info = BenchmarkInfo(
        name="cloverleaf",
        benchmark_id=19,
        language="Fortran",
        loc=12500,
        collective="Allreduce",
        numerics=(
            "Compressible Euler equations on a 2D Cartesian grid, explicit "
            "second-order accurate method"
        ),
        domain="Physics / high energy physics",
        memory_bound=True,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"nx": 15360, "ny": 15360},
            steps=400,
        ),
        "small": Workload(
            suite="small",
            params={"nx": 61440, "ny": 30720},
            steps=500,
        ),
        # modeled estimates for the 4 / 14.5 TB suites (see lbm.py note)
        "medium": Workload(
            suite="medium",
            params={"nx": 122880, "ny": 61440},
            steps=500,
        ),
        "large": Workload(
            suite="large",
            params={"nx": 245760, "ny": 122880},
            steps=500,
        ),
    }

    def decompose(self, ctx: RunContext) -> tuple[int, int]:
        return dims_create(ctx.nprocs, 2)  # type: ignore[return-value]

    def local_units(self, ctx: RunContext, rank: int) -> float:
        px, py = self.decompose(ctx)
        cx, cy = grid_coords(rank, (px, py))
        nx, ny = ctx.workload.params["nx"], ctx.workload.params["ny"]
        return float(split_extent(nx, px, cx) * split_extent(ny, py, cy))

    def default_sim_steps(self, suite: str) -> int:
        return 3

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        px, py = self.decompose(ctx)
        nx, ny = ctx.workload.params["nx"], ctx.workload.params["ny"]

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            cx, cy = grid_coords(rank, (px, py))
            lx = split_extent(nx, px, cx)
            ly = split_extent(ny, py, cy)
            ranks_dom = ctx.ranks_in_domain(rank)
            hydro = ctx.exec_model.phase_cost(
                HYDRO_STEP, float(lx * ly), ranks_dom
            )

            neighbors = []
            if cx > 0:
                neighbors.append((grid_rank((cx - 1, cy), (px, py)), ly))
            if cx < px - 1:
                neighbors.append((grid_rank((cx + 1, cy), (px, py)), ly))
            if cy > 0:
                neighbors.append((grid_rank((cx, cy - 1), (px, py)), lx))
            if cy < py - 1:
                neighbors.append((grid_rank((cx, cy + 1), (px, py)), lx))

            loop = ctx.step_loop(comm)

            while (yield loop.next_step()):
                # two halo-exchange rounds per step (pre- and post-advection)
                for _round in range(2):
                    for peer, edge in neighbors:
                        nbytes = edge * 8 * (HALO_FIELDS // 2)
                        yield comm.sendrecv(peer, nbytes, peer, nbytes)
                yield self.compute_phase(ctx, comm, hydro, label="compute")
                yield comm.allreduce(8)   # minimum stable dt
        return body
