"""Real data-parallel numerics executed on the simulated MPI.

These solvers are the bridge between the library's two halves: the
NumPy mini-kernels (:mod:`repro.spechpc.kernels`) provide the numerics,
and the simulated runtime (:mod:`repro.smpi`) provides the parallelism —
actual subdomain arrays travel through the simulated messages, actual
partial dot products through the payload-carrying allreduce.  The
distributed results are bit-compatible (to floating-point reduction
ordering) with the sequential kernels, which the test suite asserts.

This demonstrates that the simulated MPI is a *complete* message-passing
substrate, not a timing shim: the same deadlock-freedom, matching, and
collective semantics that real SPEChpc codes rely on.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.machine.cluster import ClusterSpec
from repro.smpi.comm import Communicator
from repro.smpi.runtime import MpiRuntime
from repro.spechpc.base import split_extent


# ---------------------------------------------------------------------------
# distributed CG heat conduction (the tealeaf pattern, with real data)
# ---------------------------------------------------------------------------

def _row_slabs(ny: int, nprocs: int) -> list[tuple[int, int]]:
    """Row-block decomposition: (start, extent) per rank."""
    slabs = []
    start = 0
    for r in range(nprocs):
        ext = split_extent(ny, nprocs, r)
        slabs.append((start, ext))
        start += ext
    return slabs


def _apply_heat_operator(
    u: np.ndarray, up_row: np.ndarray | None, down_row: np.ndarray | None, dt: float
) -> np.ndarray:
    """(I - dt*Lap) on a row slab given neighbor halo rows (Neumann at the
    true domain edges, signalled by ``None`` halos)."""
    ny, nx = u.shape
    padded = np.empty((ny + 2, nx))
    padded[1:-1] = u
    padded[0] = u[0] if up_row is None else up_row
    padded[-1] = u[-1] if down_row is None else down_row
    lap = (
        padded[:-2] + padded[2:] - 2 * u
    )
    # x-direction with Neumann edges
    lap[:, 1:-1] += u[:, :-2] + u[:, 2:] - 2 * u[:, 1:-1]
    lap[:, 0] += u[:, 1] - u[:, 0]
    lap[:, -1] += u[:, -2] - u[:, -1]
    return u - dt * lap


def heat_solver_body(
    u0: np.ndarray,
    dt: float,
    iterations: int,
    results: dict[int, np.ndarray],
):
    """Factory: per-rank generator running ``iterations`` CG steps on its
    row slab of ``u0`` with real halo exchange and data reductions.

    The final ``x`` slab of every rank lands in ``results[rank]``.
    """

    def factory(comm: Communicator) -> Generator:
        ny, nx = u0.shape
        slabs = _row_slabs(ny, comm.size)
        start, ext = slabs[comm.rank]
        b = u0[start : start + ext].copy()
        up = comm.rank - 1 if comm.rank > 0 else None
        down = comm.rank + 1 if comm.rank < comm.size - 1 else None
        row_bytes = nx * 8

        def exchange_halos(field: np.ndarray):
            """Swap boundary rows with both neighbors; returns
            (up_row, down_row) with None at the physical edges."""
            reqs = []
            if up is not None:
                reqs.append(comm.irecv(up, tag=5))
            if down is not None:
                reqs.append(comm.irecv(down, tag=5))
            if up is not None:
                comm.isend(up, row_bytes, tag=5, payload=field[0].copy())
            if down is not None:
                comm.isend(down, row_bytes, tag=5, payload=field[-1].copy())
            payloads = yield comm.waitall(reqs)
            idx = 0
            up_row = down_row = None
            if up is not None:
                up_row = payloads[idx]
                idx += 1
            if down is not None:
                down_row = payloads[idx]
            return up_row, down_row

        # CG on A x = b with A = I - dt*Lap (SPD), x0 = b
        x = b.copy()
        up_row, down_row = yield exchange_halos(x)
        r = b - _apply_heat_operator(x, up_row, down_row, dt)
        p = r.copy()
        rr = yield comm.allreduce_data(float(np.vdot(r, r).real))
        for _ in range(iterations):
            up_row, down_row = yield exchange_halos(p)
            ap = _apply_heat_operator(p, up_row, down_row, dt)
            pap = yield comm.allreduce_data(float(np.vdot(p, ap).real))
            alpha = rr / pap
            x += alpha * p
            r -= alpha * ap
            rr_new = yield comm.allreduce_data(float(np.vdot(r, r).real))
            if np.sqrt(rr_new) < 1e-12:
                rr = rr_new
                break
            p = r + (rr_new / rr) * p
            rr = rr_new
        results[comm.rank] = x

    return factory


def solve_heat_distributed(
    u0: np.ndarray,
    dt: float,
    cluster: ClusterSpec,
    nprocs: int,
    iterations: int = 200,
) -> tuple[np.ndarray, float]:
    """Run the distributed CG heat step on ``nprocs`` simulated ranks.

    Returns ``(u_new, simulated_seconds)``; ``u_new`` matches the
    sequential :func:`repro.spechpc.kernels.heat_conduction_step` result.
    """
    if u0.ndim != 2:
        raise ValueError("u0 must be 2D")
    if nprocs > u0.shape[0]:
        raise ValueError("more ranks than grid rows")
    results: dict[int, np.ndarray] = {}
    rt = MpiRuntime(cluster, nprocs)
    job = rt.launch(heat_solver_body(u0, dt, iterations, results))
    u_new = np.vstack([results[r] for r in range(nprocs)])
    return u_new, job.elapsed


# ---------------------------------------------------------------------------
# distributed FV advection (the weather pattern, with real data)
# ---------------------------------------------------------------------------

def advection_body(
    q0: np.ndarray,
    ux: float,
    dt_dx: float,
    steps: int,
    results: dict[int, np.ndarray],
):
    """Per-rank generator advecting a column-block of ``q0`` (periodic in
    x, upwind flux with the MC limiter) with 2-column halo exchange.

    Matches the sequential ``_advect_1d`` exactly.
    """
    from repro.spechpc.kernels.fv_weather import _mc_limiter

    if ux < 0:
        raise ValueError("the distributed demo supports positive wind only")

    def factory(comm: Communicator) -> Generator:
        nz, nx = q0.shape
        slabs = _row_slabs(nx, comm.size)  # decompose columns
        start, ext = slabs[comm.rank]
        q = q0[:, start : start + ext].copy()
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        halo_bytes = nz * 2 * 8

        for _ in range(steps):
            # exchange 2-deep halos (the limiter stencil reaches 2 cells)
            if comm.size > 1:
                reqs = [comm.irecv(left, tag=2), comm.irecv(right, tag=3)]
                comm.isend(right, halo_bytes, tag=2, payload=q[:, -2:].copy())
                comm.isend(left, halo_bytes, tag=3, payload=q[:, :2].copy())
                left_halo, right_halo = yield comm.waitall(reqs)
            else:
                left_halo, right_halo = q[:, -2:].copy(), q[:, :2].copy()
            ext_q = np.concatenate([left_halo, q, right_halo], axis=1)

            # limited face values for cells [-1 .. ext-1] (ext indices
            # 1 .. ext+1): exactly the faces the owned cells need
            cells = ext_q[:, 1 : ext + 2]
            dql = cells - ext_q[:, 0 : ext + 1]
            dqr = ext_q[:, 2 : ext + 3] - cells
            slope = _mc_limiter(dql, dqr)
            q_face = cells + 0.5 * (1.0 - ux * dt_dx) * slope
            flux = ux * q_face          # flux[k] = face (k-1)+1/2
            q = q - dt_dx * (flux[:, 1:] - flux[:, :-1])
        results[comm.rank] = q

    return factory
