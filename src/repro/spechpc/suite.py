"""Suite registry (paper order: Table 1)."""

from __future__ import annotations

from repro.spechpc.base import Benchmark
from repro.spechpc.cloverleaf import Cloverleaf
from repro.spechpc.hpgmgfv import Hpgmgfv
from repro.spechpc.lbm import Lbm
from repro.spechpc.minisweep import Minisweep
from repro.spechpc.pot3d import Pot3d
from repro.spechpc.soma import Soma
from repro.spechpc.sphexa import SphExa
from repro.spechpc.tealeaf import Tealeaf
from repro.spechpc.weather import Weather

#: Benchmarks in Table 1 order.
SUITE_ORDER = (
    "lbm",
    "soma",
    "tealeaf",
    "cloverleaf",
    "minisweep",
    "pot3d",
    "sph-exa",
    "hpgmgfv",
    "weather",
)

SUITE: dict[str, Benchmark] = {
    b.info.name: b
    for b in (
        Lbm(),
        Soma(),
        Tealeaf(),
        Cloverleaf(),
        Minisweep(),
        Pot3d(),
        SphExa(),
        Hpgmgfv(),
        Weather(),
    )
}

#: Aliases for SPEC-style ids.
_ALIASES = {
    "sphexa": "sph-exa",
    "sph_exa": "sph-exa",
    "clvleaf": "cloverleaf",
    "miniswp": "minisweep",
}


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name (accepts SPEC-style aliases)."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return SUITE[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; valid: {sorted(SUITE)}"
        ) from None


def all_benchmarks() -> list[Benchmark]:
    """All nine benchmarks in Table 1 order."""
    return [SUITE[name] for name in SUITE_ORDER]
