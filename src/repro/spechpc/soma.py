"""513.soma / 613.soma — Monte-Carlo soft coarse-grained polymers (C, ~9500 LOC).

The paper's most unusual case (Sect. 5.1.2): soma keeps a **replicated
density field** on every rank.  Polymer Monte-Carlo moves are distributed
(scalar, branchy, essentially unvectorized — 2.2 % SIMD in Sect. 4.1.3),
but every rank updates and re-reads the *whole* field each step and the
field is combined with a large ``MPI_Allreduce``.  Consequences the model
reproduces:

* aggregate memory traffic grows linearly with rank count (replication);
* per-node memory bandwidth *rises* with node count (the distributed MC
  work shrinks while the replicated field traffic per rank is constant)
  up to a plateau far below the machine limit, at which point scaling
  stops entirely;
* time is dominated by MPI reductions beyond a few nodes;
* "cool" chip power (scalar arithmetic) but a DRAM floor near the
  idle value.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    split_extent,
)

MC_MOVE = KernelModel(
    name="soma.mc_move",
    flops_per_unit=420.0,          # per polymer per step (64 monomers)
    simd_fraction=0.022,
    mem_bytes_per_unit=180.0,
    l3_bytes_per_unit=260.0,
    l2_bytes_per_unit=420.0,
    working_set_bytes_per_unit=260.0,
    compute_efficiency=0.22,       # branchy RNG-driven scalar code
    latency_bound_factor=1.3,      # random field lookups
    heat=0.80,
    cache_sharpness=3.5,
    # the hot set is the replicated density field each polymer's random
    # lookups hit — constant per rank, fitting ClusterB's larger outer
    # caches at full occupancy but missing on ClusterA (the cache
    # sensitivity behind soma's 1.35x B/A factor, Sect. 4.1.2)
    fixed_working_set_bytes=3.4e6,
    # dependent random loads serialize with the instruction stream
    mem_overlap=0.0,
)

FIELD_UPDATE = KernelModel(
    name="soma.field",
    flops_per_unit=12.0,           # per field cell (replicated on every rank)
    simd_fraction=0.10,
    mem_bytes_per_unit=40.0,
    l3_bytes_per_unit=32.0,
    l2_bytes_per_unit=40.0,
    working_set_bytes_per_unit=16.0,
    compute_efficiency=0.35,
    heat=0.78,
)


class Soma(Benchmark):
    """Monte-Carlo polymer simulation with a replicated density field."""

    info = BenchmarkInfo(
        name="soma",
        benchmark_id=13,
        language="C",
        loc=9500,
        collective="Allreduce",
        numerics="Monte-Carlo acceleration for soft coarse grained polymers",
        domain="Physics / polymeric systems",
        memory_bound=False,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"polymers": 14_000_000, "field_cells": 600_000, "seed": 42},
            steps=200,
        ),
        "small": Workload(
            suite="small",
            params={"polymers": 25_000_000, "field_cells": 1_000_000, "seed": 42},
            steps=400,
        ),
    }

    def local_units(self, ctx: RunContext, rank: int) -> float:
        """Distributed MC moves only (the replicated field is not 'work')."""
        return float(
            split_extent(ctx.workload.params["polymers"], ctx.nprocs, rank)
        )

    def default_sim_steps(self, suite: str) -> int:
        return 3

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        polymers = ctx.workload.params["polymers"]
        field_cells = ctx.workload.params["field_cells"]
        field_bytes = field_cells * 8  # DP density values, fully reduced

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            my_polymers = split_extent(polymers, ctx.nprocs, rank)
            ranks_dom = ctx.ranks_in_domain(rank)
            mc = ctx.exec_model.phase_cost(MC_MOVE, float(my_polymers), ranks_dom)
            # replicated: every rank walks the WHOLE field, independent of P
            field = ctx.exec_model.phase_cost(
                FIELD_UPDATE, float(field_cells), ranks_dom
            )
            loop = ctx.step_loop(comm)
            while (yield loop.next_step()):
                yield self.compute_phase(ctx, comm, mc, label="compute")
                yield self.compute_phase(ctx, comm, field, label="compute")
                yield comm.allreduce(field_bytes)

        return body
