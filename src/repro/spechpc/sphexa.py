"""532.sph_exa / 632.sph_exa — Smoothed Particle Hydrodynamics
(C++14, ~3400 LOC).

A meshless Lagrangian astrophysics code: per step, each particle gathers
~100 neighbors and evaluates density/force kernels — the **hottest** code
of the suite (98 % of socket TDP on both CPUs, Sect. 4.2.1) and strongly
compute-dominated, with an irregular (gather-heavy) memory side that
benefits from ClusterB's larger caches (acceleration factor 1.48 in
Sect. 4.1.2, above the 1.2 peak-performance ratio).

Communication per step: halo-particle exchange with spatial neighbor
ranks plus several small ``MPI_Allreduce`` calls (timestep, energies).
The data set is comparatively small, so under strong scaling
communication takes over quickly — one of the "poor scaling" codes of
Sect. 5.1 (and 47 % faster single-node performance on ClusterB makes its
scaling *efficiency* there look even worse, Sect. 5.1.3).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)

FORCE = KernelModel(
    name="sphexa.density_force",
    flops_per_unit=5200.0,           # ~100 neighbors x ~50 flops
    simd_fraction=0.75,
    mem_bytes_per_unit=90.0,
    l3_bytes_per_unit=380.0,
    l2_bytes_per_unit=900.0,
    working_set_bytes_per_unit=250.0,
    compute_efficiency=0.55,
    heat=1.0,                        # the hottest code of the suite
)

NEIGHBOR_GATHER = KernelModel(
    name="sphexa.neighbor_gather",
    flops_per_unit=100.0,
    simd_fraction=0.30,
    mem_bytes_per_unit=800.0,        # octree walk + scattered reads
    l3_bytes_per_unit=900.0,
    l2_bytes_per_unit=1000.0,
    working_set_bytes_per_unit=250.0,
    compute_efficiency=0.35,
    latency_bound_factor=1.35,
    heat=0.92,
    cache_sharpness=3.5,
    # hot set: neighbor lists + octree caches — a constant few MB per rank
    # that fit ClusterB's outer caches at full node occupancy but miss on
    # ClusterA (part of the 1.48x acceleration factor of Sect. 4.1.2)
    fixed_working_set_bytes=3.4e6,
)

TREE_BUILD = KernelModel(
    name="sphexa.tree_build",
    flops_per_unit=300.0,
    simd_fraction=0.05,
    mem_bytes_per_unit=40.0,
    l3_bytes_per_unit=80.0,
    l2_bytes_per_unit=120.0,
    working_set_bytes_per_unit=60.0,
    compute_efficiency=0.35,
    heat=0.85,
)

#: Fraction of all particles whose octree bookkeeping every rank repeats
#: (the replicated top of the global tree) — a serial-fraction overhead.
TREE_REPLICATED_FRACTION = 0.012

#: Allreduce calls per step (dt, total energy, gravitational energy).
REDUCTIONS_PER_STEP = 3


class SphExa(Benchmark):
    """SPH-EXA smoothed particle hydrodynamics."""

    info = BenchmarkInfo(
        name="sph-exa",
        benchmark_id=32,
        language="C++14",
        loc=3400,
        collective="Allreduce",
        numerics="Smoothed Particle Hydrodynamics, meshless Lagrangian method",
        domain="Astrophysics and cosmology",
        memory_bound=False,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"n_side": 210, "particles": 210**3},
            steps=80,
        ),
        "small": Workload(
            suite="small",
            params={"n_side": 350, "particles": 350**3},
            steps=100,
        ),
    }

    def decompose(self, ctx: RunContext) -> tuple[int, int, int]:
        return dims_create(ctx.nprocs, 3)  # type: ignore[return-value]

    def local_units(self, ctx: RunContext, rank: int) -> float:
        return float(
            split_extent(ctx.workload.params["particles"], ctx.nprocs, rank)
        )

    def default_sim_steps(self, suite: str) -> int:
        return 3

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        particles = ctx.workload.params["particles"]
        dims = self.decompose(ctx)

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            mine = split_extent(particles, ctx.nprocs, rank)
            ranks_dom = ctx.ranks_in_domain(rank)
            force = ctx.exec_model.phase_cost(FORCE, float(mine), ranks_dom)
            gather = ctx.exec_model.phase_cost(
                NEIGHBOR_GATHER, float(mine), ranks_dom
            )
            tree = ctx.exec_model.phase_cost(
                TREE_BUILD, particles * TREE_REPLICATED_FRACTION, ranks_dom
            )

            # halo particles cross the faces of the rank's spatial box:
            # surface ~ (local count)^(2/3), ~60 bytes per halo particle
            halo_bytes = int(max(1.0, float(mine)) ** (2 / 3) * 60)
            coords = grid_coords(rank, dims)
            neighbors = []
            for axis in range(3):
                for delta in (-1, 1):
                    nc = list(coords)
                    nc[axis] += delta
                    if 0 <= nc[axis] < dims[axis]:
                        neighbors.append(grid_rank(nc, dims))

            loop = ctx.step_loop(comm)

            while (yield loop.next_step()):
                for peer in neighbors:
                    yield comm.sendrecv(peer, halo_bytes, peer, halo_bytes)
                yield self.compute_phase(ctx, comm, tree, label="compute")
                yield self.compute_phase(ctx, comm, gather, label="compute")
                yield self.compute_phase(ctx, comm, force, label="compute")
                for _r in range(REDUCTIONS_PER_STEP):
                    yield comm.allreduce(8)

        return body
