"""518.tealeaf / 618.tealeaf — implicit 2D heat conduction (C, ~5400 LOC).

A conjugate-gradient solver over a 5-point stencil on a regular 2D grid:
the canonical *strongly memory-bound, strongly saturating* code of the
suite (Fig. 2(a-b)) with poor vectorization (8.8 %, Sect. 4.1.3 — the
sparse-ish CG kernels resist the compiler).  Each CG iteration does one
SpMV-like stencil application plus vector updates and two dot-product
reductions (``MPI_Allreduce`` every iteration, Table 1), and a halo
exchange with the four 2D neighbors.

Multi-node (Sect. 5.1, case B): superlinear cache gains and growing
reduction overhead balance out to roughly linear scaling on both systems.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)

CG_ITER = KernelModel(
    name="tealeaf.cg_iteration",
    flops_per_unit=16.0,            # stencil + 3 axpy + 2 dot per cell
    simd_fraction=0.088,
    mem_bytes_per_unit=88.0,        # ~11 DP streams per cell per iteration
    l3_bytes_per_unit=104.0,
    l2_bytes_per_unit=120.0,
    working_set_bytes_per_unit=110.0,  # u, r, p, w, Kx, Ky + coefficients
    compute_efficiency=0.50,
    heat=0.75,
)


class Tealeaf(Benchmark):
    """TeaLeaf: CG-based linear heat conduction."""

    info = BenchmarkInfo(
        name="tealeaf",
        benchmark_id=18,
        language="C",
        loc=5400,
        collective="Allreduce",
        numerics=(
            "Linear heat conduction on a 2D regular grid, 5-point stencil "
            "with implicit (CG) solver"
        ),
        domain="Physics / high energy physics",
        memory_bound=True,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"nx": 8192, "ny": 8192, "solver": "CG", "eps": 1e-15},
            steps=20,
            inner_iterations=150,   # CG iterations per outer step (cap 5000)
        ),
        "small": Workload(
            suite="small",
            params={"nx": 16384, "ny": 16384, "solver": "CG", "eps": 1e-15},
            steps=20,
            inner_iterations=180,
        ),
        # modeled estimates for the 4 / 14.5 TB suites (see lbm.py note)
        "medium": Workload(
            suite="medium",
            params={"nx": 32768, "ny": 32768, "solver": "CG", "eps": 1e-15},
            steps=20,
            inner_iterations=220,
        ),
        "large": Workload(
            suite="large",
            params={"nx": 65536, "ny": 65536, "solver": "CG", "eps": 1e-15},
            steps=20,
            inner_iterations=260,
        ),
    }

    def decompose(self, ctx: RunContext) -> tuple[int, int]:
        return dims_create(ctx.nprocs, 2)  # type: ignore[return-value]

    def local_units(self, ctx: RunContext, rank: int) -> float:
        px, py = self.decompose(ctx)
        cx, cy = grid_coords(rank, (px, py))
        nx, ny = ctx.workload.params["nx"], ctx.workload.params["ny"]
        return float(split_extent(nx, px, cx) * split_extent(ny, py, cy))

    def default_sim_steps(self, suite: str) -> int:
        # simulated unit = one CG iteration
        return 4

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        px, py = self.decompose(ctx)
        nx, ny = ctx.workload.params["nx"], ctx.workload.params["ny"]

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            cx, cy = grid_coords(rank, (px, py))
            lx = split_extent(nx, px, cx)
            ly = split_extent(ny, py, cy)
            ranks_dom = ctx.ranks_in_domain(rank)
            cg = ctx.exec_model.phase_cost(CG_ITER, float(lx * ly), ranks_dom)

            neighbors = []
            if cx > 0:
                neighbors.append((grid_rank((cx - 1, cy), (px, py)), ly))
            if cx < px - 1:
                neighbors.append((grid_rank((cx + 1, cy), (px, py)), ly))
            if cy > 0:
                neighbors.append((grid_rank((cx, cy - 1), (px, py)), lx))
            if cy < py - 1:
                neighbors.append((grid_rank((cx, cy + 1), (px, py)), lx))

            loop = ctx.step_loop(comm)

            while (yield loop.next_step()):
                # one CG iteration: halo, stencil+updates, two reductions
                for peer, edge in neighbors:
                    yield comm.sendrecv(peer, edge * 8, peer, edge * 8)
                yield self.compute_phase(ctx, comm, cg, label="compute")
                yield comm.allreduce(8)   # r.w dot
                yield comm.allreduce(8)   # convergence check
        return body
