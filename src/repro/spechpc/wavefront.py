"""Wavefront fast path: precomputed KBA dependency DAG with vectorized
level-set replay.

The steady-state fast-forward (:mod:`repro.spechpc.fastforward`) requires
globally synchronized step boundaries — every journal ends in a
full-communicator collective and all ranks cross each boundary at one
instant.  The paper's wavefront codes violate both: minisweep's KBA sweep
has **no collective at all** (Table 1) and its rendezvous serialization
ripple (Sect. 4.1.5) keeps the pipeline *skewed* — rank clocks at a step
boundary differ by design.  This module adds a second replay tier for
exactly that shape.

How it works
------------
The journaling protocol is unchanged (two recorded steps, periodicity
check, validation step).  What differs is the decision and the replay:

* **DAG compilation** — the per-rank op journals are compiled *once* into
  a dependency DAG over their send/receive *post nodes*: each op depends
  on its program-order predecessor, and each wait additionally on its
  match partner's post node (the k-th send of a ``(dest, src, tag)``
  channel pairs with the k-th receive — MPI non-overtaking, exactly the
  mailbox's FIFO).  Compilation requires the per-channel send and receive
  counts to balance within the step; otherwise matches would cross step
  boundaries and the tier declines.
* **Level-set scheduling** — the DAG is leveled with a work-list pass
  over the per-rank chains (each rank contributes at most one frontier
  node, so leveling is O(total ops)).  Every level holds at most one op
  per rank — an *antidiagonal front* of the sweep — so the ops of a level
  can be batched into numpy lane arrays with no index collisions.
* **Vectorized replay** — a step executes as O(levels) batched array
  instructions instead of O(events) coroutine wakeups: one
  ``np.maximum`` over predecessor post/arrival arrays plus the per-rank
  cost vectors advances a whole front at once.

Bit-identity
------------
numpy float64 elementwise ``+``/``maximum``/``where`` are the same
IEEE-754 double operations the scalar engine performs.  Each instruction
applies them to the same operands in the same per-rank program order
(levels strictly increase along every rank's chain), and every absolute
time is computed by the engine's own expressions (``_wait_step``, the
left-associated rendezvous sum) — **no** max-plus path-weight
precomputation, which would re-associate the adds and drift by ulps.
Before committing, the compiled program must reproduce the engine's own
observed validation step (DECIDE -> PARK boundary clocks) bitwise, and
the scalar :class:`~repro.spechpc.fastforward.Replayer` is cross-checked
on the same step.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.spechpc.fastforward import (
    _COMPUTE_COUNTERS,
    FastForwardController,
    Replayer,
    ReplayUnsupported,
)


class WavefrontProgram:
    """A compiled level-set replay program (see the module docstring).

    Instruction set (one tuple per (level, kind) group; ``lanes`` are the
    ranks the instruction advances, ``nodes`` index the flat post-time
    ``P`` / arrival-time ``A`` arrays):

    ``("compute", lanes, sec, *counter_cols)``
        ``t[lanes] += sec`` plus the eight compute counters.
    ``("send", lanes, nodes, lat1, nbytes)``
        publish ``P[nodes] = t`` and ``A[nodes] = t + lat1`` (eager
        transfer time or rendezvous RTS latency) and count the message.
    ``("post", lanes, nodes)``
        publish ``P[nodes] = t`` for a posted receive.
    ``("waite", kind, lanes, own, ov)``
        wait on an own *eager* send: completes at ``P[own] + ov``,
        fired at ``P[own]``.
    ``("waitsr", kind, lanes, own, peer, hs, lat, xf, ov)``
        wait on an own *rendezvous* send: starts at
        ``max(P[peer_recv], A[own])``.
    ``("waitre", kind, lanes, ownp, peer, ov)`` /
    ``("waitrr", kind, lanes, ownp, peer, hs, lat, xf, ov)``
        wait on an own receive matched by an eager / rendezvous send:
        starts at ``max(P[ownp], A[peer_send])``.
    ``("srwait", lanes, send_leg, recv_leg)``
        sendrecv completion: both legs sequentially, one
        ``MPI_Sendrecv`` time entry.
    ``("coll", kind, cmax, nb_lanes, nb_vals)``
        full-communicator gate: fires at ``t.max()``, completes at
        ``t_fire + cmax`` (the scalar gate's ``max([0.0] + costs)``).
    """

    def __init__(
        self, program: list, nprocs: int, nposts: int, nlevels: int,
        total_ops: int,
    ) -> None:
        self._program = program
        self.nprocs = nprocs
        self._nposts = nposts
        self.nlevels = nlevels
        self.total_ops = total_ops

    # --- compilation --------------------------------------------------------

    @classmethod
    def compile(cls, journals: list[list], nprocs: int) -> "WavefrontProgram":
        """Build the level-set program for one journaled step, or raise
        :class:`ReplayUnsupported` when the structure cannot be proven
        step-local and acyclic."""
        # --- pass 1: decode ops, assign post-node ids, build the
        # per-channel FIFO lists both sides of a match pair against
        nposts = 0
        send_chan: dict[tuple, list] = {}   # (dest, src, tag) -> [(node, params)]
        recv_chan: dict[tuple, list] = {}   # (dest, src, tag) -> [node]
        rank_ops: list[list] = []
        total_ops = 0
        for r, ops in enumerate(journals):
            hid2req: dict[int, tuple] = {}
            decoded: list = []
            for op in ops:
                code = op[0]
                if code == "compute":
                    decoded.append(op)
                elif code == "isend":
                    _, hid, dest, tag, nbytes, params = op
                    node = nposts
                    nposts += 1
                    lst = send_chan.setdefault((dest, r, tag), [])
                    hid2req[hid] = ("s", (dest, r, tag), len(lst), node, params)
                    lst.append((node, params))
                    decoded.append(("isend", node, nbytes, params))
                elif code == "irecv":
                    _, hid, src, tag = op
                    node = nposts
                    nposts += 1
                    lst = recv_chan.setdefault((r, src, tag), [])
                    hid2req[hid] = ("r", (r, src, tag), len(lst), node)
                    lst.append(node)
                    decoded.append(("irecv", node))
                elif code == "wait":
                    _, hid, kind = op
                    req = hid2req.get(hid)
                    if req is None:
                        raise ReplayUnsupported(
                            "wavefront: wait on an unknown request"
                        )
                    decoded.append(("wait", kind, req))
                elif code == "srwait":
                    _, shid, rhid = op
                    sreq = hid2req.get(shid)
                    rreq = hid2req.get(rhid)
                    if (
                        sreq is None or rreq is None
                        or sreq[0] != "s" or rreq[0] != "r"
                    ):
                        raise ReplayUnsupported(
                            "wavefront: sendrecv with foreign requests"
                        )
                    decoded.append(("srwait", sreq, rreq))
                elif code == "coll":
                    decoded.append(op)
                else:
                    raise ReplayUnsupported(
                        f"wavefront: unsupported op {code!r}"
                    )
            total_ops += len(decoded)
            rank_ops.append(decoded)

        # step-invariance of the p2p pattern: every channel's send count
        # must equal its receive count *within* the step, else the FIFO
        # pairing would cross the step boundary and per-step replay lies
        for key in set(send_chan) | set(recv_chan):
            ns = len(send_chan.get(key, ()))
            nr = len(recv_chan.get(key, ()))
            if ns != nr:
                raise ReplayUnsupported(
                    "wavefront: per-channel send/recv counts differ within "
                    f"the step (dest={key[0]} src={key[1]} tag={key[2]}: "
                    f"{ns} send(s) vs {nr} recv(s)) — matches would cross "
                    "step boundaries"
                )

        # --- pass 2: level the DAG with a work-list over the per-rank
        # chains.  node_level[n] == 0 means "not produced yet"; a wait
        # blocks until its partner's post node has a level.
        node_level = [0] * nposts
        lvl = [0] * nprocs
        pos = [0] * nprocs
        groups: dict[tuple, list] = {}
        gates: dict[tuple, dict] = {}
        max_level = 0

        def emit(key: tuple, lane_entry: tuple) -> None:
            groups.setdefault(key, []).append(lane_entry)

        def advance(r: int) -> bool:
            nonlocal max_level
            ops = rank_ops[r]
            moved = False
            while pos[r] < len(ops):
                op = ops[pos[r]]
                code = op[0]
                if code == "compute":
                    level = lvl[r] + 1
                    emit((level, "compute"), (r,) + op[1:])
                elif code == "isend":
                    _, node, nbytes, params = op
                    level = lvl[r] + 1
                    emit((level, "send"), (r, node, params[1], nbytes))
                    node_level[node] = level
                elif code == "irecv":
                    _, node = op
                    level = lvl[r] + 1
                    emit((level, "post"), (r, node))
                    node_level[node] = level
                elif code == "wait":
                    _, kind, req = op
                    resolved = resolve(r, req)
                    if resolved is None:
                        return moved
                    plevel, entry, shape = resolved
                    level = max(lvl[r], plevel) + 1
                    emit((level, "wait" + shape, kind), (r,) + entry)
                elif code == "srwait":
                    _, sreq, rreq = op
                    rs = resolve(r, sreq)
                    rr = resolve(r, rreq)
                    if rs is None or rr is None:
                        return moved
                    slevel, sentry, sshape = rs
                    rlevel, rentry, rshape = rr
                    level = max(lvl[r], slevel, rlevel) + 1
                    emit(
                        (level, "srwait", sshape, rshape),
                        (r, sentry, rentry),
                    )
                elif code == "coll":
                    _, kind, ordinal, cost, nbytes = op
                    gate = gates.setdefault(
                        (kind, ordinal),
                        {"ranks": {}, "maxlvl": 0, "level": None},
                    )
                    if r not in gate["ranks"]:
                        gate["ranks"][r] = (cost, nbytes)
                        if lvl[r] > gate["maxlvl"]:
                            gate["maxlvl"] = lvl[r]
                    if len(gate["ranks"]) < nprocs:
                        return moved  # parked at the gate
                    if gate["level"] is None:
                        level = gate["maxlvl"] + 1
                        gate["level"] = level
                        costs = [c for c, _ in gate["ranks"].values()]
                        nb = [
                            (rr_, n) for rr_, (_, n) in
                            sorted(gate["ranks"].items()) if n is not None
                        ]
                        emit(
                            (level, "coll", kind, ordinal),
                            (max([0.0] + costs), nb),
                        )
                    level = gate["level"]
                else:  # pragma: no cover - pass 1 rejects unknown codes
                    raise ReplayUnsupported(f"wavefront: unsupported op {code!r}")
                lvl[r] = level
                if level > max_level:
                    max_level = level
                pos[r] += 1
                moved = True
            return moved

        def resolve(r: int, req: tuple) -> Optional[tuple]:
            """(partner_level, lane_entry_tail, shape) for a wait, or
            None while the partner's post node is not leveled yet."""
            if req[0] == "s":
                _, key, ordinal, own, params = req
                if params[0] == "e":
                    # eager send completes locally — no partner
                    return (0, (own, params[2]), "e")
                peer = recv_chan[key][ordinal]
                plevel = node_level[peer]
                if plevel == 0:
                    return None
                _, _, hs, lat, xf, ov = params
                return (plevel, (own, peer, hs, lat, xf, ov), "sr")
            _, key, ordinal, ownp = req
            peer, sparams = send_chan[key][ordinal]
            plevel = node_level[peer]
            if plevel == 0:
                return None
            if sparams[0] == "e":
                return (plevel, (ownp, peer, sparams[2]), "re")
            _, _, hs, lat, xf, ov = sparams
            return (plevel, (ownp, peer, hs, lat, xf, ov), "rr")

        pending = set(range(nprocs))
        while pending:
            progressed = False
            for r in sorted(pending):
                moved = advance(r)
                if pos[r] >= len(rank_ops[r]):
                    pending.discard(r)
                    progressed = True
                elif moved:
                    progressed = True
            if not progressed and pending:
                raise ReplayUnsupported(
                    "wavefront: dependency DAG is cyclic or has cross-step "
                    "dependencies — level-set replay would stall"
                )

        # --- pass 3: batch each (level, kind) group into array lanes
        def iarr(vals):
            return np.array(vals, dtype=np.intp)

        def farr(vals):
            return np.array(vals, dtype=np.float64)

        def leg_arrays(shape: str, entries: list) -> tuple:
            if shape == "e":
                return ("e", iarr([e[0] for e in entries]),
                        farr([e[1] for e in entries]))
            # sr / re / rr all carry (own, peer, consts...)
            consts = tuple(
                farr([e[i] for e in entries]) for i in range(2, len(entries[0]))
            )
            return (shape, iarr([e[0] for e in entries]),
                    iarr([e[1] for e in entries])) + consts

        program: list = []
        for key in sorted(groups, key=lambda k: (k[0], str(k[1:]))):
            entries = groups[key]
            gkind = key[1]
            lanes = iarr([e[0] for e in entries])
            if gkind == "compute":
                program.append(
                    ("compute", lanes) + tuple(
                        farr([e[i] for e in entries]) for i in range(1, 10)
                    )
                )
            elif gkind == "send":
                program.append((
                    "send", lanes,
                    iarr([e[1] for e in entries]),
                    farr([e[2] for e in entries]),
                    farr([e[3] for e in entries]),
                ))
            elif gkind == "post":
                program.append(("post", lanes, iarr([e[1] for e in entries])))
            elif gkind.startswith("wait"):
                shape = gkind[4:]
                kind = key[2]
                program.append(
                    ("wait" + shape, kind, lanes)
                    + leg_arrays(shape, [e[1:] for e in entries])[1:]
                )
            elif gkind == "srwait":
                sshape, rshape = key[2], key[3]
                program.append((
                    "srwait", lanes,
                    leg_arrays(sshape, [e[1] for e in entries]),
                    leg_arrays(rshape, [e[2] for e in entries]),
                ))
            else:  # coll — exactly one entry per gate
                kind = key[2]
                cmax, nb = entries[0]
                if nb:
                    nb_lanes = iarr([x[0] for x in nb])
                    nb_vals = farr([x[1] for x in nb])
                else:
                    nb_lanes = nb_vals = None
                program.append(("coll", kind, cmax, nb_lanes, nb_vals))
        return cls(program, nprocs, nposts, max_level, total_ops)

    # --- execution ----------------------------------------------------------

    def run(
        self,
        t_start: Union[float, Sequence[float]],
        nsteps: int,
        stats: Optional[list] = None,
    ) -> list[float]:
        """Replay ``nsteps`` steps from per-rank (or one synchronized)
        start clock(s); with ``stats`` also lands every statistics update
        exactly as the scalar replayer would."""
        n = self.nprocs
        if isinstance(t_start, (int, float)):
            t = np.full(n, float(t_start), dtype=np.float64)
        else:
            t = np.array([float(x) for x in t_start], dtype=np.float64)
        # post-time / arrival-time value arrays; every node is rewritten
        # at its level before any same-step read, so no per-step reset
        P = np.zeros(self._nposts, dtype=np.float64)
        A = np.zeros(self._nposts, dtype=np.float64)
        tacc = cacc = touched = None
        if stats is not None:
            kinds = set()
            for ins in self._program:
                if ins[0].startswith("wait") or ins[0] == "coll":
                    kinds.add(ins[1])
                elif ins[0] == "srwait":
                    kinds.add("MPI_Sendrecv")
                elif ins[0] == "compute":
                    kinds.add("compute")
            tacc = {
                k: np.array([s.time_by_kind.get(k, 0.0) for s in stats])
                for k in kinds
            }
            touched = {
                k: np.array([k in s.time_by_kind for s in stats], dtype=bool)
                for k in kinds
            }
            names = _COMPUTE_COUNTERS + ("messages", "msg_bytes")
            cacc = {
                nm: np.array([s.counters.get(nm, 0.0) for s in stats])
                for nm in names
            }
        maximum, where = np.maximum, np.where

        def leg(legdesc: tuple):
            """(fin, fire) arrays of one wait leg."""
            shape = legdesc[0]
            if shape == "e":
                _, own, ov = legdesc
                post = P[own]
                return post + ov, post
            if shape == "sr":
                _, own, peer, hs, lat, xf, ov = legdesc
                start = maximum(P[peer], A[own])
                return start + hs + lat + xf + ov, start
            if shape == "re":
                _, ownp, peer, ov = legdesc
                start = maximum(P[ownp], A[peer])
                return start + ov, start
            _, ownp, peer, hs, lat, xf, ov = legdesc
            start = maximum(P[ownp], A[peer])
            return start + hs + lat + xf + ov, start

        for _ in range(nsteps):
            for ins in self._program:
                code = ins[0]
                if code == "compute":
                    lanes, sec = ins[1], ins[2]
                    t[lanes] += sec
                    if stats is not None:
                        tacc["compute"][lanes] += sec
                        touched["compute"][lanes] = True
                        for nm, col in zip(_COMPUTE_COUNTERS, ins[3:]):
                            cacc[nm][lanes] += col
                elif code == "send":
                    _, lanes, nodes, lat1, nbytes = ins
                    tl = t[lanes]
                    P[nodes] = tl
                    A[nodes] = tl + lat1
                    if stats is not None:
                        cacc["messages"][lanes] += 1.0
                        cacc["msg_bytes"][lanes] += nbytes
                elif code == "post":
                    _, lanes, nodes = ins
                    P[nodes] = t[lanes]
                elif code == "srwait":
                    _, lanes, sleg, rleg = ins
                    t0 = t[lanes]
                    cur = t0
                    for legdesc in (sleg, rleg):
                        fin, fire = leg(legdesc)
                        resume = maximum(fire, cur)
                        cur = where(fin > resume, resume + (fin - resume), resume)
                    if stats is not None:
                        mask = cur > t0
                        if mask.any():
                            sel = lanes[mask]
                            tacc["MPI_Sendrecv"][sel] += (cur - t0)[mask]
                            touched["MPI_Sendrecv"][sel] = True
                    t[lanes] = cur
                elif code == "coll":
                    _, kind, cmax, nb_lanes, nb_vals = ins
                    if stats is not None and nb_lanes is not None:
                        cacc["messages"][nb_lanes] += 1.0
                        cacc["msg_bytes"][nb_lanes] += nb_vals
                    t_fire = t.max()
                    finish = t_fire + cmax
                    resume = maximum(t_fire, t)
                    nt = where(finish > resume, resume + (finish - resume), resume)
                    if stats is not None:
                        mask = nt > t
                        tacc[kind] = where(mask, tacc[kind] + (nt - t), tacc[kind])
                        touched[kind] |= mask
                    t = nt
                else:  # waite / waitsr / waitre / waitrr
                    kind, lanes = ins[1], ins[2]
                    fin, fire = leg((code[4:],) + ins[3:])
                    tl = t[lanes]
                    resume = maximum(fire, tl)
                    nt = where(fin > resume, resume + (fin - resume), resume)
                    if stats is not None:
                        mask = nt > tl
                        if mask.any():
                            sel = lanes[mask]
                            tacc[kind][sel] += (nt - tl)[mask]
                            touched[kind][sel] = True
                    t[lanes] = nt
        if stats is not None:
            for i, s in enumerate(stats):
                tbk = s.time_by_kind
                for kind, arr in tacc.items():
                    if touched[kind][i] or kind in tbk:
                        tbk[kind] = float(arr[i])
                c = s.counters
                for nm, arr in cacc.items():
                    c[nm] = float(arr[i])
        return [float(x) for x in t]


class WavefrontController(FastForwardController):
    """Fast-forward controller with a wavefront (level-set DAG) tier.

    Runs the same boundary protocol as the base controller.  At the
    DECIDE boundary it first tries the synchronized tier (when
    ``allow_sync``); if that declines for a *structural* reason — no
    collective boundary, skewed clocks — it compiles the journals into a
    :class:`WavefrontProgram` instead.  At the PARK boundary the program
    must reproduce the engine's observed DECIDE -> PARK step bitwise from
    the per-rank boundary clocks (and the scalar replayer is
    cross-checked on the same step) before the remaining steps are
    replayed and landed via ``call_at``.

    ``allow_sync=False`` (the runner's ``fast_forward=False,
    wavefront=True`` combination) forces the wavefront tier even for
    benchmarks the synchronized tier could handle — the validation
    configuration proving the DAG replay alone is exact.
    """

    def __init__(
        self, runtime, sim_steps: int, exec_model=None, allow_sync: bool = True
    ) -> None:
        super().__init__(runtime, sim_steps, exec_model)
        self.allow_sync = allow_sync
        #: "sync" | "wavefront" once decided
        self.mode: Optional[str] = None
        self.program: Optional[WavefrontProgram] = None

    def _decide(self) -> None:
        declined = self._common_decline_reason()
        if declined is not None:
            return self._abort(declined[1], declined[0])
        if self.allow_sync:
            sync_declined = self._sync_decline_reason()
            if sync_declined is None:
                self.mode = "sync"
                self._park = True
                return
        else:
            sync_declined = ("sync-disabled", "synchronized tier disabled")
        journals = self._journals[self.RECORD_FIRST + 1]
        try:
            self.program = WavefrontProgram.compile(journals, self.nprocs)
        except ReplayUnsupported as exc:
            return self._abort(f"{sync_declined[1]}; {exc}", "structure")
        self.mode = "wavefront"
        self._park = True

    def _execute(self, now: float) -> None:
        if self.mode != "wavefront":
            return super()._execute(now)
        rt = self.runtime
        prog = self.program
        t_decide = self._boundary_now[self.DECIDE]
        t_park = self._boundary_now[self.PARK]
        try:
            if any(x is None for x in t_decide) or any(x is None for x in t_park):
                raise ReplayUnsupported("incomplete boundary clocks")
            if not all(m.idle() for m in rt.mailboxes):
                raise ReplayUnsupported("in-flight messages at the boundary")
            if rt.sim._heap or rt.sim._runq:
                raise ReplayUnsupported("pending events at the boundary")
            # validation: the level-set program must land every rank
            # exactly on the engine's observed PARK clock from its DECIDE
            # clock, and the scalar replayer must agree on the same step
            if prog.run(t_decide, 1) != t_park:
                raise ReplayUnsupported(
                    "validation failed: level-set replay does not reproduce "
                    "the simulated boundary clocks"
                )
            journals = self._journals[self.RECORD_FIRST + 1]
            if Replayer(journals, self.nprocs).run(t_decide, 1) != t_park:
                raise ReplayUnsupported(
                    "validation failed: scalar replay disagrees with the "
                    "level-set program"
                )
            remaining = self.sim_steps - self.PARK
            finals = prog.run(t_park, remaining, stats=rt.stats)
        except ReplayUnsupported as exc:
            self._abort(str(exc), "validation")
            self._park_signal.fire(("go", None))
            return
        self.engaged = True
        self.levels = prog.nlevels
        self.events_saved = remaining * prog.total_ops
        self._park_signal.fire(("ff", finals))
