"""Steady-state fast-forward: analytic advancement of periodic steps.

SPEChpc benchmark bodies simulate ``ctx.sim_steps`` *representative* time
steps whose structure is identical step over step.  The event-level
engine nevertheless pays the full price for every step.  This module
detects the steady state **by observation** and then advances the
remaining steps with a pure-Python replay that performs *exactly the same
floating-point operations* the event engine would, so the final per-rank
statistics, counters, and makespan are bit-identical to the full
simulation.

Why replay, not delta extrapolation
-----------------------------------
Per-step *deltas* of the accumulated times are **not** exactly periodic:
all event arithmetic happens in absolute time (``end = start + cost``),
so the rounding of each addition depends on the magnitude of the
accumulated clock — the same step costs a last-ulp-different delta at
``t≈3`` than at ``t≈6`` (binade effects).  Multiplying a measured delta
by N therefore diverges bitwise.  What *is* stable is the step's
**op structure**: the sequence of MPI calls and their pricing constants
(phase seconds, message sizes, per-byte costs).  The replayer re-executes
that op sequence with the engine's own expressions — each absolute-time
addition is performed at its true magnitude — which reproduces the exact
accumulator arithmetic without generators, signals, or heap events.

Protocol (driven by :class:`StepLoop` at step boundaries)
---------------------------------------------------------
* boundary 1: attach a :class:`StepRecorder`; steps 1 and 2 are journaled
  as per-rank op lists (constants only — no absolute times).
* boundary 3: detach; the last rank checks *eligibility*: both journals
  bitwise equal on every rank, every journal ends with a full-communicator
  collective (so step boundaries are globally synchronized), boundary
  timestamps identical across ranks, no unsupported ops (wildcards,
  payload-carrying sends, data reductions), memoized phase pricing stable
  (no cache misses while recording), and at least one step remains.
* boundary 4: ranks park on a decision signal.  The last arrival verifies
  the quiescent state (all ranks at the same instant, mailboxes empty, no
  pending events), **validates** the replayer against reality — replaying
  one step from boundary 3 must land every rank exactly on the observed
  boundary-4 clock — and then replays all remaining steps in pure Python,
  applying per-rank statistics directly.  Ranks wake, jump to their final
  clocks, and their bodies finish.  Any check failing releases the ranks
  untouched ("go") and disables fast-forward for the run.

Fidelity is forced (the controller is never created) for runs with
noise, fault injection, tracing, ``memoize=False``, or
``fast_forward=False`` — those simulate every step as before.  The
shared gating lives in :func:`replay_ineligibility` so the runner and
the wavefront tier (:mod:`repro.spechpc.wavefront`) apply exactly the
same rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence, Union

import numpy as np

from repro.des.simulator import Signal, Wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.comm import Communicator
    from repro.smpi.runtime import MpiRuntime


class ReplayUnsupported(Exception):
    """The recorded op structure cannot be replayed (falls back to full
    event-level simulation; never escapes the controller)."""


#: Rank count at or above which a run counts as "paper scale" for the
#: light-machinery hint: below it, runs whose replay tier is structurally
#: ineligible skip the indexed-matching stamp bookkeeping (see
#: :mod:`repro.smpi.mailbox`) because nothing will ever consume it.
PAPER_SCALE_RANKS = 256


def replay_ineligibility(
    *,
    noise: Any = None,
    faults: Any = None,
    trace: Any = None,
    checker: Any = None,
    perturb_seed: Optional[int] = None,
    memoize: bool = True,
    sim_steps: int = 0,
) -> Optional[tuple[str, str]]:
    """Why a run can never engage a replay tier, or ``None`` if it may.

    This is the single source of truth for the *structural* gating shared
    by the steady-state fast-forward and the wavefront tier: anything
    that perturbs or observes individual steps (noise, faults, tracing,
    invariant checking, schedule perturbation, un-memoized pricing) or
    leaves no step to skip forces full fidelity.  Returns a
    ``(code, reason)`` pair — the code is a stable slug used for the
    ``wavefront.declined.<code>`` metric.
    """
    if noise is not None:
        return ("noise", "compute noise requires full fidelity")
    if faults is not None:
        return ("faults", "fault injection requires full fidelity")
    if trace is not None:
        return ("tracing", "tracing observes every step")
    if checker is not None:
        return ("invariants", "invariant checking observes every event")
    if perturb_seed is not None:
        return ("perturb", "schedule perturbation forbids fixed tie-breaks")
    if not memoize:
        return ("nomemo", "un-memoized pricing has no stable generation")
    if sim_steps < FastForwardController.PARK + 1:
        return ("steps", "no steps left after the recording prologue")
    return None


# --------------------------------------------------------------------------
# recording
# --------------------------------------------------------------------------

class StepRecorder:
    """Collects one journal (list of constant-only op tuples) per rank per
    recorded step.  Attached to ``runtime.recorder`` only while recording,
    so the communicator hot path pays a single ``is not None`` check."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self._cur: list[Optional[list]] = [None] * nprocs
        self._hid: list[dict[int, int]] = [{} for _ in range(nprocs)]
        self._nreq: list[int] = [0] * nprocs
        self._ncoll: list[int] = [0] * nprocs
        self.unsupported: Optional[str] = None

    def begin_step(self, rank: int) -> None:
        self._cur[rank] = []
        self._hid[rank].clear()
        self._nreq[rank] = 0
        self._ncoll[rank] = 0

    def end_step(self, rank: int) -> list:
        ops, self._cur[rank] = self._cur[rank], None
        return ops if ops is not None else []

    # --- hooks (called from the communicator) ------------------------------

    def mark_unsupported(self, rank: int, reason: str) -> None:
        if self.unsupported is None:
            self.unsupported = f"rank {rank}: {reason}"

    def compute(self, rank: int, seconds, flops, simd, mem, l3, l2,
                busy, heat_s, heat_b) -> None:
        ops = self._cur[rank]
        if ops is not None:
            ops.append(
                ("compute", seconds, flops, simd, mem, l3, l2, busy, heat_s, heat_b)
            )

    def isend(self, rank: int, req, dest: int, tag: int, nbytes: int,
              intra: bool, eager: bool, net, payload) -> None:
        ops = self._cur[rank]
        if ops is None:
            return
        if payload is not None:
            self.mark_unsupported(rank, "payload-carrying send")
            return
        hid = self._nreq[rank]
        self._nreq[rank] = hid + 1
        self._hid[rank][id(req)] = hid
        if eager:
            params = ("e", net.transfer_time(nbytes, intra),
                      net.per_message_overhead)
        else:
            bw = net.intra_node_bandwidth if intra else net.effective_bandwidth
            lat = net.intra_node_latency if intra else net.latency
            params = (
                "r",
                lat,                          # RTS latency (arrival offset)
                net.rendezvous_handshake,
                lat,
                nbytes / bw,                  # the exact quotient the match uses
                net.per_message_overhead,
            )
        ops.append(("isend", hid, dest, tag, nbytes, params))

    def irecv(self, rank: int, req, src: int, tag: int) -> None:
        ops = self._cur[rank]
        if ops is None:
            return
        if src < 0 or tag < 0:
            self.mark_unsupported(rank, "wildcard receive")
            return
        hid = self._nreq[rank]
        self._nreq[rank] = hid + 1
        self._hid[rank][id(req)] = hid
        ops.append(("irecv", hid, src, tag))

    def wait(self, rank: int, req, kind: str) -> None:
        ops = self._cur[rank]
        if ops is None:
            return
        hid = self._hid[rank].pop(id(req), None)
        if hid is None:
            self.mark_unsupported(rank, "wait on a request from outside the step")
            return
        ops.append(("wait", hid, kind))

    def sendrecv_wait(self, rank: int, sreq, rreq) -> None:
        ops = self._cur[rank]
        if ops is None:
            return
        shid = self._hid[rank].pop(id(sreq), None)
        rhid = self._hid[rank].pop(id(rreq), None)
        if shid is None or rhid is None:
            self.mark_unsupported(rank, "sendrecv with foreign requests")
            return
        ops.append(("srwait", shid, rhid))

    def coll(self, rank: int, kind: str, seq: int, cost: float,
             nbytes: Optional[int]) -> None:
        ops = self._cur[rank]
        if ops is not None:
            # the engine pairs gates by the *global* per-rank sequence
            # number, which increments every step; journals must be
            # step-invariant, so record the per-step ordinal instead
            # (equivalent whenever the pattern is periodic — and the
            # validation replay catches any mispairing)
            ordinal = self._ncoll[rank]
            self._ncoll[rank] = ordinal + 1
            ops.append(("coll", kind, ordinal, cost, nbytes))


# --------------------------------------------------------------------------
# replay
# --------------------------------------------------------------------------

class _ReplayRank:
    __slots__ = ("ops", "pos", "t", "reqs", "t0", "stage")

    def __init__(self, ops: list, t: float) -> None:
        self.ops = ops
        self.pos = 0
        self.t = t
        self.reqs: dict[int, tuple] = {}
        self.t0 = 0.0       # pending call-entry time (waits)
        self.stage = 0      # srwait progress (0 = send leg, 1 = recv leg)


def _wait_step(t: float, fire_t: float, fin: float) -> float:
    """One completion-wait of the engine, in its exact arithmetic:
    resume at the signal's fire time if parked, then ``Delay(fin - now)``
    (the engine schedules at ``now + (fin - now)``, *not* at ``fin``)."""
    resume = fire_t if fire_t > t else t
    if fin > resume:
        return resume + (fin - resume)
    return resume


class Replayer:
    """Executes the recorded steady-state step N times in pure Python.

    ``stats=None`` replays times only (the validation pass); with the
    runtime's ``RankStats`` list it also applies every statistics update
    in per-rank program order, exactly as the communicator would."""

    def __init__(self, journals: list[list], nprocs: int,
                 stats: Optional[list] = None) -> None:
        self.journals = journals
        self.nprocs = nprocs
        self.stats = stats

    def run(
        self, t_start: Union[float, Sequence[float]], nsteps: int
    ) -> list[float]:
        """Replay ``nsteps`` steps from ``t_start`` — a single
        synchronized instant or one clock per rank (skewed wavefront
        boundaries); returns the final per-rank clocks."""
        if isinstance(t_start, (int, float)):
            starts = [float(t_start)] * self.nprocs
        else:
            starts = [float(t) for t in t_start]
        ranks = [
            _ReplayRank(self.journals[r], starts[r]) for r in range(self.nprocs)
        ]
        for _ in range(nsteps):
            self._run_step(ranks)
            for rr in ranks:
                rr.pos = 0
                rr.reqs.clear()
        return [rr.t for rr in ranks]

    # --- one step ----------------------------------------------------------

    def _run_step(self, ranks: list[_ReplayRank]) -> None:
        # (dest, src, tag) -> [posts, arrivals]: FIFO lists, paired by
        # ordinal — MPI non-overtaking makes the k-th posted receive of a
        # key match the k-th arrival, exactly like the mailbox queues
        matches: dict[tuple[int, int, int], list] = {}
        # (kind, seq) -> [arrivals dict rank->t, cost]
        gates: dict[tuple[str, int], list] = {}
        pending = set(range(self.nprocs))
        while pending:
            progressed = False
            for r in sorted(pending):
                rr = ranks[r]
                moved = self._advance_rank(r, rr, matches, gates)
                if rr.pos >= len(rr.ops):
                    pending.discard(r)
                    progressed = True
                elif moved:
                    progressed = True
            if not progressed and pending:
                raise ReplayUnsupported(
                    "replay stalled: op structure has cross-step or "
                    "unresolvable dependencies"
                )

    def _advance_rank(self, r: int, rr: _ReplayRank, matches, gates) -> bool:
        """Run rank ``r`` until it blocks or exhausts its ops; returns
        True if at least one op completed."""
        stats = None if self.stats is None else self.stats[r]
        ops = rr.ops
        moved = False
        while rr.pos < len(ops):
            op = ops[rr.pos]
            code = op[0]
            if code == "compute":
                (_, seconds, flops, simd, mem, l3, l2, busy, heat_s, heat_b) = op
                rr.t = rr.t + seconds
                if stats is not None:
                    tbk = stats.time_by_kind
                    tbk["compute"] = tbk.get("compute", 0.0) + seconds
                    c = stats.counters
                    c["flops"] += flops
                    c["simd_flops"] += simd
                    c["mem_bytes"] += mem
                    c["l3_bytes"] += l3
                    c["l2_bytes"] += l2
                    c["busy_seconds"] += busy
                    c["heat_seconds"] += heat_s
                    c["heat_busy_seconds"] += heat_b
            elif code == "isend":
                _, hid, dest, tag, nbytes, params = op
                if stats is not None:
                    c = stats.counters
                    c["messages"] += 1
                    c["msg_bytes"] += nbytes
                key = (dest, r, tag)
                entry = matches.setdefault(key, [[], []])
                ordinal = len(entry[1])
                if params[0] == "e":
                    entry[1].append((rr.t + params[1], params))
                    # eager send completes locally: fires at post time
                    rr.reqs[hid] = ("done", rr.t + params[2], rr.t)
                else:
                    entry[1].append((rr.t + params[1], params))  # RTS latency
                    rr.reqs[hid] = ("send_rndv", key, ordinal)
            elif code == "irecv":
                _, hid, src, tag = op
                key = (r, src, tag)
                entry = matches.setdefault(key, [[], []])
                ordinal = len(entry[0])
                entry[0].append(rr.t)
                rr.reqs[hid] = ("recv", key, ordinal)
            elif code == "wait":
                _, hid, kind = op
                resolved = self._resolve(rr, matches, rr.reqs[hid])
                if resolved is None:
                    return moved  # blocked on the peer's side of the match
                fin, fire_t = resolved
                t0 = rr.t
                rr.t = _wait_step(rr.t, fire_t, fin)
                if stats is not None and rr.t > t0:
                    stats.add_time(kind, rr.t - t0)
            elif code == "srwait":
                _, shid, rhid = op
                if rr.stage == 0:
                    rr.t0 = rr.t
                    resolved = self._resolve(rr, matches, rr.reqs[shid])
                    if resolved is None:
                        return moved
                    fin, fire_t = resolved
                    rr.t = _wait_step(rr.t, fire_t, fin)
                    rr.stage = 1
                resolved = self._resolve(rr, matches, rr.reqs[rhid])
                if resolved is None:
                    return moved
                fin, fire_t = resolved
                rr.t = _wait_step(rr.t, fire_t, fin)
                rr.stage = 0
                if stats is not None and rr.t > rr.t0:
                    stats.add_time("MPI_Sendrecv", rr.t - rr.t0)
            elif code == "coll":
                _, kind, seq, cost, nbytes = op
                gkey = (kind, seq)
                gate = gates.setdefault(gkey, [{}, 0.0, None])
                arrivals = gate[0]
                if r not in arrivals:
                    if stats is not None and nbytes is not None:
                        stats.add_counters(messages=1, msg_bytes=nbytes)
                    arrivals[r] = rr.t
                    gate[1] = max(gate[1], cost)
                if len(arrivals) < self.nprocs:
                    return moved  # parked at the gate
                if gate[2] is None:
                    # resolve once per gate: the engine fires at the last
                    # arrival and completes max(arrivals) + max(costs)
                    t_fire = max(arrivals.values())
                    gate[2] = (t_fire, t_fire + gate[1])
                t_fire, finish = gate[2]
                t0 = arrivals[r]
                rr.t = _wait_step(t0, t_fire, finish)
                if stats is not None and rr.t > t0:
                    stats.add_time(kind, rr.t - t0)
            else:
                raise ReplayUnsupported(f"unsupported op {code!r}")
            rr.pos += 1
            moved = True
        return moved

    def _resolve(self, rr: _ReplayRank, matches, req: tuple):
        """Completion (finish_time, fire_time) of a request, or None if
        the peer's half of the match is not known yet."""
        code = req[0]
        if code == "done":
            return req[1], req[2]
        _, key, ordinal = req
        entry = matches.get(key)
        if entry is None or len(entry[0]) <= ordinal or len(entry[1]) <= ordinal:
            return None
        post_t = entry[0][ordinal]
        arr_t, params = entry[1][ordinal]
        start = post_t if post_t > arr_t else arr_t
        if params[0] == "e":
            if code == "send_rndv":
                raise ReplayUnsupported("eager params on a rendezvous send")
            return start + params[2], start
        # rendezvous: both sides complete at the transfer end, in the
        # engine's exact left-associated expression
        _, _, handshake, lat, xfer, ov = params
        return start + handshake + lat + xfer + ov, start


# --------------------------------------------------------------------------
# vectorized replay (structurally uniform benchmarks)
# --------------------------------------------------------------------------

#: counter names a compute phase updates, in the communicator's order
_COMPUTE_COUNTERS = (
    "flops", "simd_flops", "mem_bytes", "l3_bytes", "l2_bytes",
    "busy_seconds", "heat_seconds", "heat_busy_seconds",
)


class VectorReplayer:
    """Column-vectorized replay: all ranks advance one op *column* at a
    time as numpy array operations.

    Compiles only when the journals are **structurally uniform**: every
    rank has the same op-kind sequence, every wait column resolves
    against the same own/peer columns on every rank (peers themselves
    may differ — they become gather indices), and all referenced columns
    precede the consuming column (so column order is a valid schedule).
    Stencil benchmarks on periodic grids (lbm's torus) satisfy this;
    anything else returns ``None`` from :meth:`compile` and the scalar
    :class:`Replayer` is used instead.

    Bit-identity: numpy float64 elementwise ``+``/``-``/``maximum``/
    ``where`` are the same IEEE-754 double operations the scalar engine
    performs, applied to the same operands in the same per-rank order,
    so the results (clocks, statistics, counters) are bitwise equal.
    The controller still cross-checks the compiled program against the
    scalar replayer on the observed validation step before trusting it.
    """

    def __init__(self, program: list, nprocs: int, ncols: int) -> None:
        self._program = program
        self.nprocs = nprocs
        self._ncols = ncols

    # --- compilation --------------------------------------------------------

    @classmethod
    def compile(cls, journals: list[list], nprocs: int) -> Optional["VectorReplayer"]:
        try:
            return cls._compile(journals, nprocs)
        except _NotUniform:
            return None

    @classmethod
    def _compile(cls, journals, nprocs):
        ncols = len(journals[0])
        if any(len(j) != ncols for j in journals):
            raise _NotUniform

        # per-rank request bookkeeping: hid -> (column, code), plus the
        # per-key FIFO column lists both sides of a match pair against
        hid_src = [dict() for _ in range(nprocs)]
        send_cols = [dict() for _ in range(nprocs)]   # (dest, tag) -> [col]
        recv_cols = [dict() for _ in range(nprocs)]   # (src, tag)  -> [col]
        send_ord = [dict() for _ in range(nprocs)]    # col -> ordinal
        recv_ord = [dict() for _ in range(nprocs)]    # col -> ordinal
        for r, ops in enumerate(journals):
            for j, op in enumerate(ops):
                code = op[0]
                if code == "isend":
                    hid_src[r][op[1]] = (j, "isend")
                    lst = send_cols[r].setdefault((op[2], op[3]), [])
                    send_ord[r][j] = len(lst)
                    lst.append(j)
                elif code == "irecv":
                    hid_src[r][op[1]] = (j, "irecv")
                    lst = recv_cols[r].setdefault((op[2], op[3]), [])
                    recv_ord[r][j] = len(lst)
                    lst.append(j)

        def uniform(values):
            first = values[0]
            for v in values:
                if v != first:
                    raise _NotUniform
            return first

        def farr(col_vals):
            return np.array(col_vals, dtype=np.float64)

        def send_resolver(j, c):
            """Resolve a wait on the isend at column ``c`` (own send)."""
            mode = uniform([journals[r][c][5][0] for r in range(nprocs)])
            if mode == "e":
                ov = farr([journals[r][c][5][2] for r in range(nprocs)])
                return ("edone", c, ov)
            # rendezvous: completion needs the peer's posted-receive time
            pcols, peers = [], []
            for r in range(nprocs):
                op = journals[r][c]
                dest, tag = op[2], op[3]
                k = send_ord[r][c]
                posts = recv_cols[dest].get((r, tag))
                if posts is None or len(posts) <= k:
                    raise _NotUniform
                pcols.append(posts[k])
                peers.append(dest)
            pcol = uniform(pcols)
            if pcol >= j or c >= j:
                raise _NotUniform
            p = [journals[r][c][5] for r in range(nprocs)]
            return (
                "sendr", c, pcol, np.array(peers),
                farr([x[2] for x in p]), farr([x[3] for x in p]),
                farr([x[4] for x in p]), farr([x[5] for x in p]),
            )

        def recv_resolver(j, c):
            """Resolve a wait on the irecv at column ``c``."""
            scols, peers = [], []
            for r in range(nprocs):
                op = journals[r][c]
                src, tag = op[2], op[3]
                k = recv_ord[r][c]
                sends = send_cols[src].get((r, tag))
                if sends is None or len(sends) <= k:
                    raise _NotUniform
                scols.append(sends[k])
                peers.append(src)
            scol = uniform(scols)
            if scol >= j or c >= j:
                raise _NotUniform
            peer = np.array(peers)
            mode = uniform([journals[r][scol][5][0] for r in range(nprocs)])
            # sender-side params, pre-gathered per receiving rank
            p = [journals[pr][scol][5] for pr in peers]
            if mode == "e":
                return ("recve", c, scol, peer, farr([x[2] for x in p]))
            return (
                "recvr", c, scol, peer,
                farr([x[2] for x in p]), farr([x[3] for x in p]),
                farr([x[4] for x in p]), farr([x[5] for x in p]),
            )

        def resolver(j, hid_col):
            srcs = [hid_src[r].get(hid_col[r]) for r in range(nprocs)]
            if any(s is None for s in srcs):
                raise _NotUniform
            c = uniform([s[0] for s in srcs])
            code = uniform([s[1] for s in srcs])
            if code == "isend":
                return send_resolver(j, c)
            return recv_resolver(j, c)

        program = []
        for j in range(ncols):
            col = [journals[r][j] for r in range(nprocs)]
            code = uniform([op[0] for op in col])
            if code == "compute":
                program.append(
                    ("compute",) + tuple(
                        farr([op[i] for op in col]) for i in range(1, 10)
                    )
                )
            elif code == "isend":
                mode = uniform([op[5][0] for op in col])
                nbytes = farr([op[4] for op in col])
                lat1 = farr([op[5][1] for op in col])
                program.append(("send", j, lat1, nbytes))
            elif code == "irecv":
                program.append(("post", j))
            elif code == "wait":
                kind = uniform([op[2] for op in col])
                program.append(
                    ("wait", kind, resolver(j, [op[1] for op in col]))
                )
            elif code == "srwait":
                program.append((
                    "srwait",
                    resolver(j, [op[1] for op in col]),
                    resolver(j, [op[2] for op in col]),
                ))
            elif code == "coll":
                kind = uniform([op[1] for op in col])
                uniform([op[2] for op in col])  # per-step ordinal
                costs = [op[3] for op in col]
                has_nb = uniform([op[4] is not None for op in col])
                nbytes = farr([op[4] for op in col]) if has_nb else None
                # the scalar gate maxes costs starting from 0.0
                program.append(("coll", kind, max([0.0] + costs), nbytes))
            else:
                raise _NotUniform
        return cls(program, nprocs, ncols)

    # --- execution ----------------------------------------------------------

    def run(self, t_start: float, nsteps: int,
            stats: Optional[list] = None) -> list[float]:
        n = self.nprocs
        t = np.full(n, t_start, dtype=np.float64)
        tacc = cacc = touched = None
        if stats is not None:
            kinds = {"compute"}
            for ins in self._program:
                if ins[0] == "wait" or ins[0] == "coll":
                    kinds.add(ins[1])
                elif ins[0] == "srwait":
                    kinds.add("MPI_Sendrecv")
            tacc = {
                k: np.array([s.time_by_kind.get(k, 0.0) for s in stats])
                for k in kinds
            }
            touched = {
                k: np.array([k in s.time_by_kind for s in stats], dtype=bool)
                for k in kinds
            }
            if any(ins[0] == "compute" for ins in self._program):
                # compute adds unconditionally, so the key always appears
                touched["compute"][:] = True
            names = _COMPUTE_COUNTERS + ("messages", "msg_bytes")
            cacc = {
                nm: np.array([s.counters.get(nm, 0.0) for s in stats])
                for nm in names
            }
        maximum, where = np.maximum, np.where
        S: list = [None] * self._ncols
        A: list = [None] * self._ncols

        def resolve(res):
            """(fin, fire) arrays of one resolver."""
            mode = res[0]
            if mode == "edone":
                post = S[res[1]]
                return post + res[2], post
            if mode == "sendr":
                _, c, pcol, peer, hs, lat, xf, ov = res
                start = maximum(S[pcol][peer], A[c])
                return start + hs + lat + xf + ov, start
            if mode == "recve":
                _, c, scol, peer, ov = res
                start = maximum(S[c], A[scol][peer])
                return start + ov, start
            _, c, scol, peer, hs, lat, xf, ov = res
            start = maximum(S[c], A[scol][peer])
            return start + hs + lat + xf + ov, start

        for _ in range(nsteps):
            for ins in self._program:
                code = ins[0]
                if code == "compute":
                    sec = ins[1]
                    t = t + sec
                    if stats is not None:
                        tacc["compute"] += sec
                        for nm, col in zip(_COMPUTE_COUNTERS, ins[2:]):
                            cacc[nm] += col
                elif code == "send":
                    _, j, lat1, nbytes = ins
                    S[j] = t
                    A[j] = t + lat1
                    if stats is not None:
                        cacc["messages"] += 1.0
                        cacc["msg_bytes"] += nbytes
                elif code == "post":
                    S[ins[1]] = t
                elif code == "wait":
                    _, kind, res = ins
                    fin, fire = resolve(res)
                    resume = maximum(fire, t)
                    nt = where(fin > resume, resume + (fin - resume), resume)
                    if stats is not None:
                        mask = nt > t
                        tacc[kind] = where(mask, tacc[kind] + (nt - t), tacc[kind])
                        touched[kind] |= mask
                    t = nt
                elif code == "srwait":
                    _, sres, rres = ins
                    t0 = t
                    for res in (sres, rres):
                        fin, fire = resolve(res)
                        resume = maximum(fire, t)
                        t = where(fin > resume, resume + (fin - resume), resume)
                    if stats is not None:
                        mask = t > t0
                        tacc["MPI_Sendrecv"] = where(
                            mask, tacc["MPI_Sendrecv"] + (t - t0),
                            tacc["MPI_Sendrecv"],
                        )
                        touched["MPI_Sendrecv"] |= mask
                else:  # coll
                    _, kind, cmax, nbytes = ins
                    if stats is not None and nbytes is not None:
                        cacc["messages"] += 1.0
                        cacc["msg_bytes"] += nbytes
                    t_fire = t.max()
                    finish = t_fire + cmax
                    resume = maximum(t_fire, t)
                    nt = where(finish > resume, resume + (finish - resume), resume)
                    if stats is not None:
                        mask = nt > t
                        tacc[kind] = where(mask, tacc[kind] + (nt - t), tacc[kind])
                        touched[kind] |= mask
                    t = nt
        if stats is not None:
            for i, s in enumerate(stats):
                tbk = s.time_by_kind
                for kind, arr in tacc.items():
                    if touched[kind][i] or kind in tbk:
                        tbk[kind] = float(arr[i])
                c = s.counters
                for nm, arr in cacc.items():
                    c[nm] = float(arr[i])
        return [float(x) for x in t]


class _NotUniform(Exception):
    """Journals are not column-uniform; compile returns None."""


# --------------------------------------------------------------------------
# controller + step loop
# --------------------------------------------------------------------------

class FastForwardController:
    """Per-run coordinator of the recording/decision/replay protocol.

    Created by the harness only for eligible runs (no noise, no faults,
    no tracing, memoization on, ``fast_forward=True``).  One instance
    serves all ranks of the run.
    """

    #: boundary indices of the protocol (see module docstring)
    RECORD_FIRST = 1
    DECIDE = 3
    PARK = 4

    def __init__(self, runtime: "MpiRuntime", sim_steps: int,
                 exec_model=None) -> None:
        self.runtime = runtime
        self.sim_steps = sim_steps
        self.exec_model = exec_model
        self.nprocs = runtime.nprocs
        self.recorder: Optional[StepRecorder] = None
        self.dead = sim_steps < self.PARK + 1  # nothing left to skip
        self.engaged = False
        self._journals: dict[int, list[list]] = {}   # step -> per-rank ops
        #: boundary index -> per-rank clock (rank-indexed; None = not there
        #: yet) — rank-indexed so skewed wavefront boundaries keep their
        #: per-rank identity instead of arrival order
        self._boundary_now: dict[int, list[Optional[float]]] = {}
        self._arrived: dict[int, int] = {}
        self._park_signal = Signal("fast-forward-decision")
        self._park = False
        self._gen0: Optional[int] = None
        self.abort_reason: Optional[str] = None
        self.abort_code: Optional[str] = None
        #: replay depth and analytically-skipped op count, set on engage
        #: (exposed via :meth:`metrics` for the wavefront observability
        #: counters; the sync tier reports its column count as depth)
        self.levels = 0
        self.events_saved = 0

    # --- per-rank boundary hook -------------------------------------------

    def boundary(self, comm: "Communicator", idx: int) -> Optional[Signal]:
        """Called by every rank right before it starts step ``idx``.
        Returns a signal to park on at the decision boundary, else None."""
        if self.dead:
            return None
        rt = self.runtime
        rank = comm.rank
        if idx == self.RECORD_FIRST:
            if self.recorder is None:
                self.recorder = StepRecorder(self.nprocs)
                rt.recorder = self.recorder
                self._gen0 = getattr(self.exec_model, "generation", None)
            self.recorder.begin_step(rank)
        elif idx == self.RECORD_FIRST + 1:
            self._journals.setdefault(idx - 1, [None] * self.nprocs)[rank] = (
                self.recorder.end_step(rank)
            )
            self.recorder.begin_step(rank)
            self._note_boundary(idx, rank, rt.sim.now)
        elif idx == self.DECIDE:
            self._journals.setdefault(idx - 1, [None] * self.nprocs)[rank] = (
                self.recorder.end_step(rank)
            )
            if self._note_boundary(idx, rank, rt.sim.now):
                rt.recorder = None
                self._decide()
        elif idx == self.PARK and self._park:
            if self._note_boundary(idx, rank, rt.sim.now):
                self._execute(rt.sim.now)
            return self._park_signal
        return None

    def _note_boundary(self, idx: int, rank: int, now: float) -> bool:
        """Record a rank's boundary timestamp; True for the last arrival."""
        nows = self._boundary_now.get(idx)
        if nows is None:
            nows = self._boundary_now[idx] = [None] * self.nprocs
        nows[rank] = now
        n = self._arrived.get(idx, 0) + 1
        self._arrived[idx] = n
        return n == self.nprocs

    def _abort(self, reason: str, code: str = "aborted") -> None:
        self.abort_reason = reason
        self.abort_code = code
        self.dead = True

    # --- decision ----------------------------------------------------------

    def _common_decline_reason(self) -> Optional[tuple[str, str]]:
        """Checks every replay tier shares: supported ops, steps left,
        stable pricing, complete and periodic journals.  Returns a
        ``(code, reason)`` pair or ``None``."""
        rec = self.recorder
        if rec.unsupported is not None:
            return ("unsupported-op", f"unsupported op: {rec.unsupported}")
        if self.sim_steps < self.PARK + 1:
            return ("steps", "no steps left to fast-forward")
        gen = getattr(self.exec_model, "generation", None)
        if self._gen0 is None or gen != self._gen0:
            return ("pricing-unstable", "phase pricing not stable while recording")
        j1 = self._journals.get(self.RECORD_FIRST)
        j2 = self._journals.get(self.RECORD_FIRST + 1)
        if j1 is None or j2 is None or any(x is None for x in j1 + j2):
            return ("incomplete-journals", "incomplete journals")
        for r in range(self.nprocs):
            if j1[r] != j2[r]:
                return ("not-periodic", f"rank {r} step structure not periodic")
        return None

    def _sync_decline_reason(self) -> Optional[tuple[str, str]]:
        """Checks specific to the *synchronized* replay tier: every step
        ends in a full-communicator collective and all ranks cross each
        boundary at one instant."""
        j1 = self._journals[self.RECORD_FIRST]
        for r in range(self.nprocs):
            if not j1[r] or j1[r][-1][0] != "coll":
                return (
                    "no-collective-boundary",
                    f"rank {r} step does not end in a collective "
                    "(boundaries not globally synchronized)",
                )
        for idx in (self.RECORD_FIRST + 1, self.DECIDE):
            nows = self._boundary_now.get(idx)
            if (
                nows is None
                or any(t is None for t in nows)
                or any(t != nows[0] for t in nows)
            ):
                return ("boundaries-skewed", "step boundaries not synchronized")
        return None

    def _decide(self) -> None:
        """Last rank at the DECIDE boundary: check eligibility and arm the
        parking boundary (nothing blocks here — ranks already proceeded)."""
        declined = self._common_decline_reason() or self._sync_decline_reason()
        if declined is not None:
            return self._abort(declined[1], declined[0])
        self._park = True

    # --- observability -------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """Post-run tier-decision counters (the ``wavefront`` metrics
        source; see :mod:`repro.obs.metrics`)."""
        if self.engaged:
            return {
                "eligible": 1.0,
                "levels": float(self.levels),
                "events_saved": float(self.events_saved),
            }
        code = self.abort_code if self.abort_code is not None else "undecided"
        return {f"declined.{code}": 1.0}

    # --- engagement ---------------------------------------------------------

    def _execute(self, now: float) -> None:
        """Last rank at the PARK boundary: verify, validate, replay, fire."""
        rt = self.runtime
        nows = self._boundary_now[self.PARK]
        try:
            if any(t != now for t in nows):
                raise ReplayUnsupported("ranks parked at different times")
            if not all(m.idle() for m in rt.mailboxes):
                raise ReplayUnsupported("in-flight messages at the boundary")
            if rt.sim._heap or rt.sim._runq:
                raise ReplayUnsupported("pending events at the boundary")
            journals = self._journals[self.RECORD_FIRST + 1]
            # validation: replay the step the engine just simulated
            # (DECIDE -> PARK) and demand bitwise-identical clocks
            t_decide = self._boundary_now[self.DECIDE][0]
            predicted = Replayer(journals, self.nprocs).run(t_decide, 1)
            if any(t != now for t in predicted):
                raise ReplayUnsupported(
                    "validation failed: replayed step does not reproduce "
                    "the simulated boundary clock"
                )
            remaining = self.sim_steps - self.PARK
            # column-uniform structures replay vectorized across ranks;
            # the compiled program must itself reproduce the validation
            # step bitwise before it is trusted with the commit
            vec = VectorReplayer.compile(journals, self.nprocs)
            if vec is not None and any(
                t != now for t in vec.run(t_decide, 1)
            ):
                vec = None
            if vec is not None:
                finals = vec.run(now, remaining, stats=rt.stats)
            else:
                finals = Replayer(journals, self.nprocs, stats=rt.stats).run(
                    now, remaining
                )
        except ReplayUnsupported as exc:
            self._abort(str(exc), "validation")
            self._park_signal.fire(("go", None))
            return
        self.engaged = True
        self.levels = max(len(j) for j in journals)
        self.events_saved = remaining * sum(len(j) for j in journals)
        self._park_signal.fire(("ff", finals))


class StepLoop:
    """Benchmark-side driver of the per-step protocol.

    Bodies iterate their representative steps as::

        loop = ctx.step_loop(comm)
        while (yield loop.next_step()):
            ... one step ...

    Without a controller this is a plain counter (no events, no time) —
    the loop is bit-identical to ``for _ in range(ctx.sim_steps)``.
    """

    __slots__ = ("_comm", "_ctl", "_total", "_idx", "_done")

    def __init__(self, comm: "Communicator", total: int,
                 ctl: Optional[FastForwardController]) -> None:
        self._comm = comm
        self._ctl = ctl
        self._total = total
        self._idx = 0
        self._done = False

    def next_step(self) -> Generator[Any, Any, bool]:
        if self._done or self._idx >= self._total:
            return False
        ctl = self._ctl
        if ctl is not None and not ctl.dead:
            sig = ctl.boundary(self._comm, self._idx)
            if sig is not None:
                value = yield Wait(sig)
                kind, data = value
                if kind == "ff":
                    t_final = data[self._comm.rank]
                    now = self._comm.now
                    if t_final > now:
                        # land on the replayed clock *exactly*: a
                        # Delay(t_final - now) would re-round the
                        # subtraction; call_at schedules at t_final itself
                        wake = Signal("fast-forward-wake")
                        self._comm.runtime.sim.call_at(
                            t_final, lambda: wake.fire(None)
                        )
                        yield Wait(wake)
                    self._done = True
                    return False
        self._idx += 1
        return True
