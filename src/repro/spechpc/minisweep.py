"""521.miniswp / 621.miniswp — radiation-transport sweep (C, ~17500 LOC).

A successor of Sweep3D: a KBA-style wavefront sweep over a 3D grid with 64
energy groups and 32 angles per octant, decomposed over a 2D (y, z)
process grid.  There is **no collective** (Table 1); all communication is
blocking point-to-point along the sweep dependencies.

Sect. 4.1.5's serialization bug is reproduced *by execution*, not by a
formula: faces are large, so sends use the synchronous rendezvous mode,
and the code sends to its upstream ("top") neighbor **before** posting its
own receive.  With open boundary conditions only the head of the chain can
receive immediately; completion then ripples down the chain one rendezvous
at a time.  The damage grows with the chain length — which is the largest
factor of the process count, so primes (e.g. 59 -> a 59-long chain) are
catastrophic while neighboring counts (58 = 29 x 2) are merely bad:
exactly the reproducible fluctuation pattern of Figs. 1-2.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)

SWEEP_CELL = KernelModel(
    name="minisweep.sweep",
    flops_per_unit=38.0,            # per (cell, group, angle) update
    simd_fraction=0.55,
    mem_bytes_per_unit=3.0,
    l3_bytes_per_unit=6.0,
    l2_bytes_per_unit=16.0,
    working_set_bytes_per_unit=4.0,
    compute_efficiency=0.42,
    heat=0.86,
)

#: Octants actually simulated per step (of 8; results scale linearly).
SIM_OCTANTS = 2
TOTAL_OCTANTS = 8


class Minisweep(Benchmark):
    """KBA wavefront sweep with the send-before-recv rendezvous bug.

    ``recv_first=True`` builds the *fixed* variant that posts the receive
    before the blocking send — the ablation bench shows the serialization
    ripple disappearing.
    """

    def __init__(self, recv_first: bool = False) -> None:
        self.recv_first = recv_first

    info = BenchmarkInfo(
        name="minisweep",
        benchmark_id=21,
        language="C",
        loc=17500,
        collective="-",
        numerics="Successor of the Sweep3D radiation transport benchmark",
        domain="Radiation transport in nuclear engineering",
        memory_bound=False,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={
                "nx": 96, "ny": 64, "nz": 64,
                "groups": 64, "angles": 32, "blocks": 8,
            },
            steps=40,
        ),
        "small": Workload(
            suite="small",
            params={
                "nx": 128, "ny": 64, "nz": 64,
                "groups": 64, "angles": 32, "blocks": 8,
            },
            steps=80,
        ),
    }

    def decompose(self, ctx: RunContext) -> tuple[int, int]:
        """(Py, Pz) with Py >= Pz — the chain runs along y."""
        return dims_create(ctx.nprocs, 2)  # type: ignore[return-value]

    def chain_length(self, ctx: RunContext) -> int:
        """Length of the serialized rendezvous chain."""
        return self.decompose(ctx)[0]

    def local_units(self, ctx: RunContext, rank: int) -> float:
        p = ctx.workload.params
        py, pz = self.decompose(ctx)
        cy, cz = grid_coords(rank, (py, pz))
        ny_l = split_extent(p["ny"], py, cy)
        nz_l = split_extent(p["nz"], pz, cz)
        return float(p["nx"] * ny_l * nz_l * p["groups"] * p["angles"])

    def default_sim_steps(self, suite: str) -> int:
        return 2

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        p = ctx.workload.params
        py, pz = self.decompose(ctx)
        nblocks = p["blocks"]

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            cy, cz = grid_coords(rank, (py, pz))
            ny_l = split_extent(p["ny"], py, cy)
            nz_l = split_extent(p["nz"], pz, cz)
            units_per_block = (
                p["nx"] * ny_l * nz_l * p["groups"] * p["angles"] / nblocks
            )
            ranks_dom = ctx.ranks_in_domain(rank)
            block_cost = ctx.exec_model.phase_cost(
                SWEEP_CELL, units_per_block, ranks_dom
            )
            # outgoing y-face of one z-block: nx * nz_block cells carrying
            # all groups and the quarter of angles pointing into this
            # octant direction -> MB-scale (rendezvous) messages
            face_bytes = int(
                p["nx"] * max(1, nz_l // nblocks) * p["groups"] * p["angles"] * 8 // 4
            )

            up = grid_rank((cy - 1, cz), (py, pz)) if cy > 0 else None
            down = grid_rank((cy + 1, cz), (py, pz)) if cy < py - 1 else None
            zprev = grid_rank((cy, cz - 1), (py, pz)) if cz > 0 else None
            znext = grid_rank((cy, cz + 1), (py, pz)) if cz < pz - 1 else None
            z_face = int(
                p["nx"] * max(1, ny_l // nblocks) * p["groups"] * p["angles"] * 8 // 4
            )

            loop = ctx.step_loop(comm)

            while (yield loop.next_step()):
                for octant in range(SIM_OCTANTS):
                    # alternate sweep direction between octants
                    send_peer, recv_peer = (up, down) if octant % 2 == 0 else (down, up)
                    for _block in range(nblocks):
                        if self.recv_first:
                            # the FIXED ordering: pre-post the receive,
                            # then send — no ripple
                            rreq = (
                                comm.irecv(recv_peer, tag=octant)
                                if recv_peer is not None
                                else None
                            )
                            if send_peer is not None:
                                yield comm.send(send_peer, face_bytes, tag=octant)
                            if rreq is not None:
                                yield comm.wait(rreq, kind="MPI_Recv")
                        else:
                            # THE BUG: blocking (rendezvous) send posted
                            # before the receive — the ripple starts at
                            # the open end of the chain.
                            if send_peer is not None:
                                yield comm.send(send_peer, face_bytes, tag=octant)
                            if recv_peer is not None:
                                yield comm.recv(recv_peer, tag=octant)
                        if zprev is not None:
                            yield comm.sendrecv(
                                zprev, z_face, zprev, z_face, tag=64 + octant
                            )
                        if znext is not None:
                            yield comm.sendrecv(
                                znext, z_face, znext, z_face, tag=64 + octant
                            )
                        yield self.compute_phase(
                            ctx, comm, block_cost, label="compute"
                        )

        return body
