"""505.lbm / 605.lbm — Lattice-Boltzmann D2Q37 2D CFD solver (C, ~6000 LOC).

Resource characterization (Sect. 4.1.6): the *collide* kernel performs
~6600 flops per lattice-site update at high SIMD efficiency (the most
compute-intensive code of the suite), the *propagate* kernel is strongly
memory-bound with sparse (latency-sensitive) accesses over 37 SoA
population arrays.  Per-step communication is a wide halo exchange with
nonblocking pairs plus an ``MPI_Barrier`` at the end of every iteration
(Table 1's dominant collective) — the barrier is what turns one slow rank
into everyone's waiting time (inset of Fig. 2(h)).

The power-of-two lattice extents (4096 x 16384 tiny) make some local slab
shapes pathological for the TLB/L1 (alignment model), producing the
reproducible scaling fluctuations of Fig. 1.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.alignment import alignment_penalty
from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)

#: D2Q37 population count (37 SoA streams).
N_POPULATIONS = 37

COLLIDE = KernelModel(
    name="lbm.collide",
    flops_per_unit=6600.0,
    simd_fraction=0.93,
    mem_bytes_per_unit=60.0,
    l3_bytes_per_unit=180.0,
    l2_bytes_per_unit=650.0,
    working_set_bytes_per_unit=N_POPULATIONS * 8.0 * 2,
    compute_efficiency=0.45,
    heat=0.92,
)

PROPAGATE = KernelModel(
    name="lbm.propagate",
    flops_per_unit=40.0,
    simd_fraction=0.80,
    mem_bytes_per_unit=180.0,
    l3_bytes_per_unit=260.0,
    l2_bytes_per_unit=320.0,
    working_set_bytes_per_unit=N_POPULATIONS * 8.0 * 2,
    compute_efficiency=0.40,
    latency_bound_factor=1.25,
    heat=0.88,
)

#: Halo width of the D2Q37 stencil (third-neighbor reach).
HALO_WIDTH = 3


class Lbm(Benchmark):
    """Lattice-Boltzmann D2Q37.

    ``use_barrier=False`` builds the variant without the per-iteration
    ``MPI_Barrier`` — the paper notes the barrier "could be avoided
    because it is only used to synchronize processes at the end of each
    iteration"; the ablation bench quantifies what it costs.
    """

    def __init__(self, use_barrier: bool = True) -> None:
        self.use_barrier = use_barrier

    info = BenchmarkInfo(
        name="lbm",
        benchmark_id=5,
        language="C",
        loc=6000,
        collective="Barrier",
        numerics="Lattice-Boltzmann Method D2Q37",
        domain="2D CFD solver",
        memory_bound=False,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"nx": 4096, "ny": 16384, "seed": 13948},
            steps=600,
        ),
        "small": Workload(
            suite="small",
            params={"nx": 12000, "ny": 48000, "seed": 13948},
            steps=500,
        ),
        # medium/large parameters are modeled estimates scaled to the
        # suites' 4 / 14.5 TB memory budgets (Table 1 lists tiny/small
        # only; the paper evaluates only those)
        "medium": Workload(
            suite="medium",
            params={"nx": 24000, "ny": 96000, "seed": 13948},
            steps=400,
        ),
        "large": Workload(
            suite="large",
            params={"nx": 48000, "ny": 192000, "seed": 13948},
            steps=300,
        ),
    }

    # --- decomposition ------------------------------------------------------

    def decompose(self, ctx: RunContext) -> tuple[int, int]:
        """2D process grid (Px, Py), Px >= Py."""
        return dims_create(ctx.nprocs, 2)  # type: ignore[return-value]

    def local_shape(self, ctx: RunContext, rank: int) -> tuple[int, int]:
        """Local lattice extent (lx, ly) of one rank."""
        px, py = self.decompose(ctx)
        cx, cy = grid_coords(rank, (px, py))
        nx = ctx.workload.params["nx"]
        ny = ctx.workload.params["ny"]
        return split_extent(nx, px, cx), split_extent(ny, py, cy)

    def local_units(self, ctx: RunContext, rank: int) -> float:
        lx, ly = self.local_shape(ctx, rank)
        return float(lx * ly)

    def rank_penalty(self, ctx: RunContext, rank: int) -> float:
        """Alignment/TLB penalty of this rank's slab shape."""
        lx, ly = self.local_shape(ctx, rank)
        return alignment_penalty(
            local_rows=ly, row_elems=lx, n_streams=N_POPULATIONS
        )

    # --- program ------------------------------------------------------------

    def default_sim_steps(self, suite: str) -> int:
        return 3

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        px, py = self.decompose(ctx)
        nx = ctx.workload.params["nx"]
        ny = ctx.workload.params["ny"]

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            cx, cy = grid_coords(rank, (px, py))
            lx = split_extent(nx, px, cx)
            ly = split_extent(ny, py, cy)
            units = float(lx * ly)
            ranks_dom = ctx.ranks_in_domain(rank)
            penalty = self.rank_penalty(ctx, rank)
            collide = ctx.exec_model.phase_cost(COLLIDE, units, ranks_dom, penalty)
            propagate = ctx.exec_model.phase_cost(
                PROPAGATE, units, ranks_dom, penalty
            )

            # periodic 2D neighbors
            west = grid_rank(((cx - 1) % px, cy), (px, py))
            east = grid_rank(((cx + 1) % px, cy), (px, py))
            south = grid_rank((cx, (cy - 1) % py), (px, py))
            north = grid_rank((cx, (cy + 1) % py), (px, py))
            x_halo = HALO_WIDTH * ly * N_POPULATIONS * 8
            y_halo = HALO_WIDTH * lx * N_POPULATIONS * 8

            loop = ctx.step_loop(comm)
            while (yield loop.next_step()):
                reqs = []
                if px > 1:
                    reqs.append(comm.irecv(west, tag=10))
                    reqs.append(comm.irecv(east, tag=11))
                if py > 1:
                    reqs.append(comm.irecv(south, tag=12))
                    reqs.append(comm.irecv(north, tag=13))
                if px > 1:
                    reqs.append(comm.isend(east, x_halo, tag=10))
                    reqs.append(comm.isend(west, x_halo, tag=11))
                if py > 1:
                    reqs.append(comm.isend(north, y_halo, tag=12))
                    reqs.append(comm.isend(south, y_halo, tag=13))
                yield self.compute_phase(ctx, comm, propagate, label="compute")
                yield comm.waitall(reqs)
                yield self.compute_phase(ctx, comm, collide, label="compute")
                if self.use_barrier:
                    # the paper notes this barrier is avoidable overhead
                    yield comm.barrier()

        return body
