"""Benchmark base classes, workload definitions, and decomposition helpers.

Each SPEChpc 2021 benchmark is modeled as:

* static metadata (Table 1/2: language, LOC, dominant collective, domain);
* per-suite :class:`Workload` parameter sets (Table 1);
* one or more :class:`~repro.model.kernel.KernelModel` resource
  characterizations;
* an MPI program body (a generator over a
  :class:`~repro.smpi.comm.Communicator`) that executes the benchmark's
  real communication pattern on the simulated runtime.

The body simulates ``ctx.sim_steps`` *representative* time steps; because
SPEC steps are statistically identical, the harness scales results to the
full step count afterwards.  This keeps cluster-scale simulations (1664
ranks) tractable while preserving every per-step interleaving effect.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Generator, Sequence

import numpy as np

from repro.machine.cluster import ClusterSpec
from repro.model.execution import ExecutionModel, MemoizedExecutionModel
from repro.model.kernel import PhaseCost
from repro.smpi.comm import Communicator
from repro.smpi.runtime import MpiRuntime


# --------------------------------------------------------------------------
# decomposition helpers
# --------------------------------------------------------------------------

@lru_cache(maxsize=None)
def dims_create(nprocs: int, ndims: int) -> tuple[int, ...]:
    """Balanced factorization of ``nprocs`` into ``ndims`` dimensions, in
    decreasing order — the MPI_Dims_create algorithm.

    Cached: the divisor enumeration is O(nprocs) and every rank of a job
    asks for the same decomposition, which made setup O(nprocs^2) at
    paper scale (64 nodes x 104 ranks).

    >>> dims_create(12, 2)
    (4, 3)
    >>> dims_create(59, 2)   # prime: degenerates to a chain
    (59, 1)
    """
    if nprocs < 1 or ndims < 1:
        raise ValueError("nprocs and ndims must be >= 1")
    if ndims == 1:
        return (nprocs,)
    # pick the divisor closest to the ndims-th root, recurse on the rest
    target = nprocs ** (1.0 / ndims)
    divisors = [d for d in range(1, nprocs + 1) if nprocs % d == 0]
    d = min(divisors, key=lambda x: (abs(x - target), x))
    rest = dims_create(nprocs // d, ndims - 1)
    return tuple(sorted((d,) + rest, reverse=True))


def split_extent(total: int, parts: int, index: int) -> int:
    """Block distribution with remainder: extent of chunk ``index``.

    >>> [split_extent(10, 3, i) for i in range(3)]
    [4, 3, 3]
    """
    if not (0 <= index < parts):
        raise ValueError("index out of range")
    base, rem = divmod(total, parts)
    return base + (1 if index < rem else 0)


def grid_coords(rank: int, dims: Sequence[int]) -> tuple[int, ...]:
    """Row-major cartesian coordinates of ``rank`` in a process grid."""
    coords = []
    for d in reversed(dims):
        coords.append(rank % d)
        rank //= d
    return tuple(reversed(coords))


def grid_rank(coords: Sequence[int], dims: Sequence[int]) -> int:
    """Inverse of :func:`grid_coords`."""
    r = 0
    for c, d in zip(coords, dims):
        if not (0 <= c < d):
            raise ValueError("coordinate out of range")
        r = r * d + c
    return r


# --------------------------------------------------------------------------
# workloads
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Workload:
    """One suite entry of Table 1.

    ``params`` carries the benchmark-specific input configuration;
    ``steps`` the number of (outer) time steps the full run executes;
    ``inner_iterations`` the average solver iterations per step for
    implicit codes (1 for explicit ones).
    """

    suite: str                 # "tiny" | "small" | "medium" | "large"
    params: dict = field(default_factory=dict)
    steps: int = 1
    inner_iterations: int = 1

    def __post_init__(self) -> None:
        if self.suite not in ("tiny", "small", "medium", "large"):
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.steps < 1 or self.inner_iterations < 1:
            raise ValueError("steps and inner_iterations must be >= 1")

    @property
    def total_iterations(self) -> int:
        return self.steps * self.inner_iterations


# --------------------------------------------------------------------------
# run context
# --------------------------------------------------------------------------

@dataclass
class RunContext:
    """Everything a benchmark body needs to execute one simulated run.

    ``threads`` > 1 switches the kernel pricing to the hybrid MPI+OpenMP
    model (each rank's work is shared by that many cores).

    ``memoize`` (default on) wraps the execution model in a per-run
    :class:`~repro.model.execution.MemoizedExecutionModel`, so identical
    ``phase_cost`` queries across ranks and steps are priced once.
    Results are bit-identical either way; ``memoize=False`` re-evaluates
    every query (the reference path for equivalence tests).
    """

    cluster: ClusterSpec
    nprocs: int
    workload: Workload
    exec_model: ExecutionModel
    sim_steps: int = 3
    noise: np.ndarray | None = None   # per-rank compute slowdown factors
    runtime: MpiRuntime | None = None
    threads: int = 1
    memoize: bool = True
    #: optional steady-state fast-forward controller (set by the harness
    #: for eligible runs; see :mod:`repro.spechpc.fastforward`)
    fast_forward: object | None = field(default=None, repr=False)
    _stretch_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.sim_steps < 1:
            raise ValueError("sim_steps must be >= 1")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.noise is not None and len(self.noise) < self.nprocs:
            raise ValueError("need one noise factor per rank")
        if self.threads > 1:
            # transparently reprice every kernel through the hybrid model
            base = self.exec_model
            threads = self.threads
            self.exec_model = _HybridModelProxy(base, threads)  # type: ignore
        if self.memoize:
            # wrap outermost so hybrid-repriced costs are cached too
            self.exec_model = MemoizedExecutionModel(self.exec_model)  # type: ignore

    def noise_factor(self, rank: int) -> float:
        if self.noise is None:
            return 1.0
        return float(self.noise[rank])

    def stretched_cost(self, cost: PhaseCost, factor: float) -> PhaseCost:
        """``cost`` with its duration stretched by a rank's noise factor.

        Stretched variants are cached per (cost, factor) when memoization
        is on — noise factors are per-rank constants for a run, so each
        rank's steady-state steps reuse one stretched object.
        """
        if not self.memoize:
            return self._stretch(cost, factor)
        key = (cost, factor)
        hit = self._stretch_cache.get(key)
        if hit is None:
            hit = self._stretch_cache[key] = self._stretch(cost, factor)
        return hit

    @staticmethod
    def _stretch(cost: PhaseCost, factor: float) -> PhaseCost:
        return PhaseCost(
            seconds=cost.seconds * factor,
            flops=cost.flops,
            simd_flops=cost.simd_flops,
            mem_bytes=cost.mem_bytes,
            l3_bytes=cost.l3_bytes,
            l2_bytes=cost.l2_bytes,
            busy_seconds=cost.busy_seconds,
            heat=cost.heat,
        )

    def ranks_in_domain(self, rank: int) -> int:
        """Job ranks sharing this rank's ccNUMA domain (compact pinning)."""
        assert self.runtime is not None, "context not bound to a runtime"
        return self.runtime.ranks_in_domain(rank)

    def step_scale(self) -> float:
        """Factor to scale simulated-steps results to the full run."""
        return self.workload.total_iterations / self.sim_steps

    def step_loop(self, comm: Communicator):
        """Per-rank driver of the representative-step loop.  Bodies use::

            loop = ctx.step_loop(comm)
            while (yield loop.next_step()):
                ... one time step ...

        Without a fast-forward controller this counts steps exactly like
        ``for _ in range(ctx.sim_steps)``; with one it additionally runs
        the steady-state detection protocol at the step boundaries.
        """
        from repro.spechpc.fastforward import StepLoop

        return StepLoop(comm, self.sim_steps, self.fast_forward)


class _HybridModelProxy:
    """Execution-model wrapper that prices every phase with
    :meth:`ExecutionModel.hybrid_phase_cost` at a fixed thread count,
    so benchmark bodies need no hybrid-specific code."""

    def __init__(self, base: ExecutionModel, threads: int) -> None:
        self._base = base
        self._threads = threads

    def phase_cost(self, kernel, units, ranks_in_domain, penalty=1.0):
        return self._base.hybrid_phase_cost(
            kernel, units, ranks_in_domain, self._threads, penalty
        )

    def __getattr__(self, name):
        return getattr(self._base, name)


# --------------------------------------------------------------------------
# benchmark ABC
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchmarkInfo:
    """Static Table 1 / Table 2 metadata."""

    name: str
    benchmark_id: int          # SPEC id (e.g. 505/605 for lbm -> 5)
    language: str
    loc: int
    collective: str            # dominant collective primitive ("-" if none)
    numerics: str              # Table 2 numerical brief
    domain: str                # Table 2 application domain
    memory_bound: bool         # the paper's node-level classification


class Benchmark(abc.ABC):
    """Abstract base of the nine suite entries."""

    info: BenchmarkInfo

    #: suite name -> Workload
    workloads: dict[str, Workload]

    # --- interface ----------------------------------------------------------

    @abc.abstractmethod
    def make_body(
        self, ctx: RunContext
    ) -> Callable[[Communicator], Generator]:
        """Return the per-rank program factory for one run."""

    @abc.abstractmethod
    def local_units(self, ctx: RunContext, rank: int) -> float:
        """Work units assigned to ``rank`` (for load-balance analysis)."""

    def default_sim_steps(self, suite: str) -> int:
        """Representative steps to simulate (overridable per benchmark)."""
        return 3

    # --- conveniences -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.info.name

    def workload(self, suite: str) -> Workload:
        try:
            return self.workloads[suite]
        except KeyError:
            raise KeyError(
                f"{self.name} does not define a {suite!r} workload; "
                f"available: {sorted(self.workloads)}"
            ) from None

    def supports(self, suite: str) -> bool:
        return suite in self.workloads

    def compute_phase(
        self,
        ctx: RunContext,
        comm: Communicator,
        cost: PhaseCost,
        label: str = "compute",
    ) -> Generator:
        """Execute a kernel phase, applying the rank's noise factor."""
        f = ctx.noise_factor(comm.rank)
        if f != 1.0:
            cost = ctx.stretched_cost(cost, f)
        yield comm.compute(cost.seconds, label=label, **cost.counter_kwargs())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Benchmark {self.name}>"
