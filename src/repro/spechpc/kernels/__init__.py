"""Executable NumPy mini-kernels, one per SPEChpc 2021 benchmark.

These are real (small-scale) implementations of each benchmark's numerical
method, used to validate that the resource characterizations in
:mod:`repro.spechpc` describe genuine algorithms and to serve as runnable
examples.  They follow the vectorization idioms of the scientific-Python
guides: whole-array operations, views over copies, contiguous access.

The simulator always *times* the paper's full problem sizes; these kernels
*compute* on laptop-scale grids (documented substitution, see DESIGN.md).

=================  =======================================================
Benchmark          Mini-kernel
=================  =======================================================
lbm                :mod:`~repro.spechpc.kernels.lbm_d2q9` (D2Q9 LBM)
soma               :mod:`~repro.spechpc.kernels.mc_polymer` (MC polymers)
tealeaf            :mod:`~repro.spechpc.kernels.cg` (5-pt CG heat)
cloverleaf         :mod:`~repro.spechpc.kernels.hydro` (2D Euler FV)
minisweep          :mod:`~repro.spechpc.kernels.sweep` (upwind sweep)
pot3d              :mod:`~repro.spechpc.kernels.laplace_sph` (spherical CG)
sph-exa            :mod:`~repro.spechpc.kernels.sph` (SPH density/force)
hpgmgfv            :mod:`~repro.spechpc.kernels.multigrid` (V-cycle)
weather            :mod:`~repro.spechpc.kernels.fv_weather` (FV advection)
=================  =======================================================
"""

from repro.spechpc.kernels.cg import cg_solve, heat_conduction_step, laplacian_5pt
from repro.spechpc.kernels.lbm_d2q9 import LbmD2Q9
from repro.spechpc.kernels.hydro import HydroState, hydro_step, sod_initial_state
from repro.spechpc.kernels.sweep import transport_sweep
from repro.spechpc.kernels.multigrid import v_cycle, poisson_residual
from repro.spechpc.kernels.sph import sph_density, sph_forces, cubic_lattice
from repro.spechpc.kernels.mc_polymer import PolymerSystem
from repro.spechpc.kernels.fv_weather import advect_2d, gaussian_blob
from repro.spechpc.kernels.laplace_sph import solve_laplace_spherical

__all__ = [
    "cg_solve",
    "heat_conduction_step",
    "laplacian_5pt",
    "LbmD2Q9",
    "HydroState",
    "hydro_step",
    "sod_initial_state",
    "transport_sweep",
    "v_cycle",
    "poisson_residual",
    "sph_density",
    "sph_forces",
    "cubic_lattice",
    "PolymerSystem",
    "advect_2d",
    "gaussian_blob",
    "solve_laplace_spherical",
]
