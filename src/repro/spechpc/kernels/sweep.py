"""Upwind transport sweep — the minisweep mini-kernel.

Solves the steady one-group discrete-ordinates transport equation

    mu dpsi/dx + eta dpsi/dy + xi dpsi/dz + sigma psi = q

by an upwind (step-differencing) wavefront sweep through a 3D grid, the
computational pattern of Sweep3D/minisweep: each cell depends on its
upwind neighbors, so cells on a diagonal wavefront can be processed
together — exactly the dependency structure the KBA decomposition
pipelines over MPI.
"""

from __future__ import annotations

import numpy as np


def transport_sweep(
    q: np.ndarray,
    sigma: float,
    direction: tuple[int, int, int] = (1, 1, 1),
    weights: tuple[float, float, float] = (1.0, 1.0, 1.0),
    inflow: float = 0.0,
) -> np.ndarray:
    """Sweep the grid in ``direction`` (each component +-1).

    Step differencing: for positive mu,
        psi[i] = (q + mu/dx psi[i-1] + ...) / (sigma + mu/dx + ...)
    with ``inflow`` on the upwind boundary faces.  The returned array
    satisfies the discrete transport equation exactly (tested by residual).
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if any(d not in (-1, 1) for d in direction):
        raise ValueError("direction components must be +-1")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")
    q = np.asarray(q, dtype=float)
    if q.ndim != 3:
        raise ValueError("q must be 3D")

    # flip axes so the sweep always runs in +x,+y,+z
    flips = [ax for ax, d in enumerate(direction) if d < 0]
    qf = np.flip(q, axis=flips) if flips else q

    nx, ny, nz = qf.shape
    wx, wy, wz = weights
    denom = sigma + wx + wy + wz
    psi = np.empty_like(qf)

    # wavefront order: cells with equal i+j+k are independent
    prev_x = np.full((ny, nz), inflow)
    for i in range(nx):
        prev_y = np.full(nz, inflow)
        # roll the y rows sequentially (dependency), vectorize over z
        row_psi = np.empty((ny, nz))
        for j in range(ny):
            up_x = prev_x[j]
            # z dependency is sequential too; vectorizing it needs a scan —
            # use the exact recurrence via cumulative products
            a = (qf[i, j] + wx * up_x + wy * prev_y) / denom
            r = wz / denom
            # psi[k] = a[k] + r * psi[k-1], psi[-1] = inflow  (linear scan)
            psi_row = _linear_recurrence(a, r, inflow)
            row_psi[j] = psi_row
            prev_y = psi_row
        psi[i] = row_psi
        prev_x = row_psi

    return np.flip(psi, axis=flips) if flips else psi


def _linear_recurrence(a: np.ndarray, r: float, x0: float) -> np.ndarray:
    """Solve x[k] = a[k] + r x[k-1] with x[-1] = x0, vectorized:
    x[k] = r^{k+1} x0 + sum_{m<=k} r^{k-m} a[m]."""
    n = a.shape[0]
    powers = r ** np.arange(n + 1)            # r^0 .. r^n
    # prefix sums of a[m] / r^m, guarded for tiny r^m via log-free scaling:
    # with 0 < r < 1 the direct form is numerically fine for n ~ O(100).
    scaled = a / powers[:n]
    prefix = np.cumsum(scaled)
    x = powers[1:] * x0 + powers[:n] * prefix
    return x


def sweep_residual(
    psi: np.ndarray,
    q: np.ndarray,
    sigma: float,
    direction: tuple[int, int, int] = (1, 1, 1),
    weights: tuple[float, float, float] = (1.0, 1.0, 1.0),
    inflow: float = 0.0,
) -> float:
    """Max-norm residual of the discrete transport equation — zero (to
    roundoff) for the exact sweep solution."""
    flips = [ax for ax, d in enumerate(direction) if d < 0]
    pf = np.flip(psi, axis=flips) if flips else psi
    qf = np.flip(q, axis=flips) if flips else q
    wx, wy, wz = weights
    denom = sigma + wx + wy + wz

    up = np.empty_like(pf)
    res = np.empty_like(pf)
    for axis, w in ((0, wx), (1, wy), (2, wz)):
        shifted = np.roll(pf, 1, axis=axis)
        idx = [slice(None)] * 3
        idx[axis] = 0
        shifted[tuple(idx)] = inflow
        if axis == 0:
            up = w * shifted
        else:
            up = up + w * shifted
    res = denom * pf - qf - up
    return float(np.abs(res).max())
