"""2D compressible Euler finite volume — the cloverleaf mini-kernel.

An explicit Godunov-type scheme (HLL fluxes, dimensional splitting) for
the compressible Euler equations on a Cartesian grid, the same equation
set CloverLeaf advances with its staggered-grid Lagrangian-remap method.
Validated on the Sod shock tube and via exact conservation of mass,
momentum, and energy with reflective/periodic boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

GAMMA = 1.4


@dataclass
class HydroState:
    """Conserved variables on a 2D grid: density, momenta, total energy."""

    rho: np.ndarray
    mom_x: np.ndarray
    mom_y: np.ndarray
    energy: np.ndarray

    def __post_init__(self) -> None:
        shapes = {a.shape for a in (self.rho, self.mom_x, self.mom_y, self.energy)}
        if len(shapes) != 1:
            raise ValueError("all fields must share one shape")
        if np.any(self.rho <= 0):
            raise ValueError("density must be positive")

    def pressure(self) -> np.ndarray:
        kinetic = 0.5 * (self.mom_x**2 + self.mom_y**2) / self.rho
        p = (GAMMA - 1.0) * (self.energy - kinetic)
        return p

    def sound_speed(self) -> np.ndarray:
        return np.sqrt(GAMMA * np.clip(self.pressure(), 1e-14, None) / self.rho)

    def max_wavespeed(self) -> float:
        c = self.sound_speed()
        vx = np.abs(self.mom_x / self.rho)
        vy = np.abs(self.mom_y / self.rho)
        return float(np.max(c + np.maximum(vx, vy)))

    def totals(self) -> tuple[float, float, float, float]:
        return (
            float(self.rho.sum()),
            float(self.mom_x.sum()),
            float(self.mom_y.sum()),
            float(self.energy.sum()),
        )

    def copy(self) -> "HydroState":
        return HydroState(
            self.rho.copy(), self.mom_x.copy(), self.mom_y.copy(), self.energy.copy()
        )


def _hll_flux_x(u: np.ndarray) -> np.ndarray:
    """HLL flux across x-faces for stacked conserved vars u[4, ny, nx]."""
    rho, mx, my, en = u
    v = mx / rho
    p = (GAMMA - 1.0) * (en - 0.5 * (mx**2 + my**2) / rho)
    p = np.clip(p, 1e-14, None)
    c = np.sqrt(GAMMA * p / rho)

    # physical flux in x
    flux = np.empty_like(u)
    flux[0] = mx
    flux[1] = mx * v + p
    flux[2] = my * v
    flux[3] = (en + p) * v

    ul, ur = u[:, :, :-1], u[:, :, 1:]
    fl, fr = flux[:, :, :-1], flux[:, :, 1:]
    sl = np.minimum(v[:, :-1] - c[:, :-1], v[:, 1:] - c[:, 1:])
    sr = np.maximum(v[:, :-1] + c[:, :-1], v[:, 1:] + c[:, 1:])

    hll = (sr * fl - sl * fr + sl * sr * (ur - ul)) / np.where(
        np.abs(sr - sl) < 1e-14, 1e-14, sr - sl
    )
    out = np.where(sl >= 0, fl, np.where(sr <= 0, fr, hll))
    return out


def _stack(state: HydroState) -> np.ndarray:
    return np.stack([state.rho, state.mom_x, state.mom_y, state.energy])


def _unstack(u: np.ndarray) -> HydroState:
    return HydroState(u[0].copy(), u[1].copy(), u[2].copy(), u[3].copy())


def hydro_step(state: HydroState, dx: float, cfl: float = 0.4) -> tuple[HydroState, float]:
    """One dimensionally-split HLL step with periodic boundaries.

    Returns ``(new_state, dt)``; dt is chosen from the CFL condition (the
    quantity CloverLeaf reduces with MPI_Allreduce each step).
    """
    dt = cfl * dx / state.max_wavespeed()
    u = _stack(state)

    # x sweep (periodic: pad one ghost column each side)
    up = np.concatenate([u[:, :, -1:], u, u[:, :, :1]], axis=2)
    fx = _hll_flux_x(up)
    u = u - dt / dx * (fx[:, :, 1:] - fx[:, :, :-1])

    # y sweep by transposing x<->y (swap momentum components)
    ut = u[[0, 2, 1, 3]].transpose(0, 2, 1)
    utp = np.concatenate([ut[:, :, -1:], ut, ut[:, :, :1]], axis=2)
    fy = _hll_flux_x(utp)
    ut = ut - dt / dx * (fy[:, :, 1:] - fy[:, :, :-1])
    u = ut.transpose(0, 2, 1)[[0, 2, 1, 3]]

    return _unstack(u), dt


def sod_initial_state(nx: int, ny: int = 4) -> HydroState:
    """The Sod shock-tube initial condition extended in y."""
    rho = np.where(np.arange(nx)[None, :] < nx // 2, 1.0, 0.125) * np.ones((ny, nx))
    p = np.where(np.arange(nx)[None, :] < nx // 2, 1.0, 0.1) * np.ones((ny, nx))
    zeros = np.zeros((ny, nx))
    energy = p / (GAMMA - 1.0)
    return HydroState(rho, zeros.copy(), zeros.copy(), energy)
