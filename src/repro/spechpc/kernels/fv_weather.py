"""Finite-volume atmospheric transport — the weather mini-kernel.

miniWeather's core is a conservative finite-volume update of prognostic
variables on an (x, z) grid.  This mini-kernel implements the
dimensionally-split conservative advection operator with a monotonized
central (MC) limiter — the flux/limiter structure whose temporaries drive
the cache effects modeled in :mod:`repro.spechpc.weather` — plus a rising
thermal initial condition.

Validation: exact conservation of the advected quantity, second-order
convergence on smooth profiles, and exact translation for constant wind.
"""

from __future__ import annotations

import numpy as np


def _mc_limiter(dq_left: np.ndarray, dq_right: np.ndarray) -> np.ndarray:
    """Monotonized-central slope limiter."""
    d_c = 0.5 * (dq_left + dq_right)
    lim = np.minimum(np.abs(2 * dq_left), np.abs(2 * dq_right))
    lim = np.minimum(lim, np.abs(d_c))
    same_sign = (dq_left * dq_right) > 0
    return np.where(same_sign, np.sign(d_c) * lim, 0.0)


def _advect_1d(q: np.ndarray, u: float, dt_dx: float) -> np.ndarray:
    """Conservative 1D advection along the last axis (periodic), MUSCL
    with the MC limiter.  CFL must be <= 1."""
    if abs(u) * dt_dx > 1.0:
        raise ValueError("CFL violated")
    qm = np.roll(q, 1, axis=-1)
    qp = np.roll(q, -1, axis=-1)
    slope = _mc_limiter(q - qm, qp - q)
    if u >= 0:
        # upwind cell is the left one: flux at i+1/2 uses cell i
        q_face = q + 0.5 * (1.0 - u * dt_dx) * slope
        flux = u * q_face
    else:
        q_face = q - 0.5 * (1.0 + u * dt_dx) * slope
        flux = u * np.roll(q_face, -1, axis=-1)
    return q - dt_dx * (flux - np.roll(flux, 1, axis=-1))


def advect_2d(
    q: np.ndarray, ux: float, uz: float, dx: float, dz: float, dt: float
) -> np.ndarray:
    """One Strang-split conservative advection step on a periodic (z, x)
    grid."""
    if q.ndim != 2:
        raise ValueError("q must be 2D (z, x)")
    half = 0.5 * dt
    q = _advect_1d(q, ux, half / dx)                      # x half step
    q = _advect_1d(q.T, uz, dt / dz).T                    # z full step
    q = _advect_1d(q, ux, half / dx)                      # x half step
    return q


def gaussian_blob(
    nx: int, nz: int, x0: float = 0.5, z0: float = 0.5, width: float = 0.1
) -> np.ndarray:
    """Smooth initial tracer on the unit square, shape (nz, nx)."""
    x = (np.arange(nx) + 0.5) / nx
    z = (np.arange(nz) + 0.5) / nz
    xx, zz = np.meshgrid(x, z)
    return np.exp(-((xx - x0) ** 2 + (zz - z0) ** 2) / (2 * width**2))


def injection_scenario(
    nx: int, nz: int, steps: int, ux: float = 1.0, uz: float = 0.3
) -> tuple[np.ndarray, np.ndarray]:
    """Table 1's model 6 ("Injection") stand-in: advect an injected plume
    across the periodic domain.  Returns (initial, final)."""
    q0 = gaussian_blob(nx, nz, x0=0.2, z0=0.3, width=0.07)
    dx, dz = 1.0 / nx, 1.0 / nz
    dt = 0.4 * min(dx / abs(ux) if ux else 1.0, dz / abs(uz) if uz else 1.0)
    q = q0.copy()
    for _ in range(steps):
        q = advect_2d(q, ux, uz, dx, dz, dt)
    return q0, q
