"""D2Q9 lattice-Boltzmann — the lbm mini-kernel.

The SPEC benchmark uses the 37-velocity D2Q37 model; this mini-kernel
implements the standard 9-velocity BGK variant with the same
collide/propagate structure (SoA population arrays, streaming shifts,
high-flop collision), small enough to validate against analytic flows
(Taylor-Green vortex decay, mass conservation).
"""

from __future__ import annotations

import numpy as np

#: D2Q9 lattice velocities and weights.
VELOCITIES = np.array(
    [(0, 0), (1, 0), (0, 1), (-1, 0), (0, -1), (1, 1), (-1, 1), (-1, -1), (1, -1)],
    dtype=int,
)
WEIGHTS = np.array(
    [4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 36, 1 / 36, 1 / 36, 1 / 36]
)
CS2 = 1.0 / 3.0  # lattice speed of sound squared


class LbmD2Q9:
    """Periodic D2Q9 BGK solver in SoA layout (9 arrays of shape (ny, nx))."""

    def __init__(self, nx: int, ny: int, tau: float = 0.8) -> None:
        if nx < 4 or ny < 4:
            raise ValueError("grid too small")
        if tau <= 0.5:
            raise ValueError("tau must exceed 0.5 for stability")
        self.nx, self.ny, self.tau = nx, ny, tau
        self.f = np.empty((9, ny, nx))
        self.init_equilibrium(np.ones((ny, nx)), np.zeros((ny, nx)), np.zeros((ny, nx)))

    # --- moments -----------------------------------------------------------

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Density and velocity fields from the populations."""
        rho = self.f.sum(axis=0)
        ux = np.einsum("i,ijk->jk", VELOCITIES[:, 0].astype(float), self.f) / rho
        uy = np.einsum("i,ijk->jk", VELOCITIES[:, 1].astype(float), self.f) / rho
        return rho, ux, uy

    def equilibrium(
        self, rho: np.ndarray, ux: np.ndarray, uy: np.ndarray
    ) -> np.ndarray:
        """BGK equilibrium distribution (vectorized over all 9 directions)."""
        cu = (
            VELOCITIES[:, 0, None, None] * ux[None] +
            VELOCITIES[:, 1, None, None] * uy[None]
        ) / CS2
        usq = (ux**2 + uy**2) / (2 * CS2)
        return WEIGHTS[:, None, None] * rho[None] * (
            1.0 + cu + 0.5 * cu**2 - usq[None]
        )

    def init_equilibrium(
        self, rho: np.ndarray, ux: np.ndarray, uy: np.ndarray
    ) -> None:
        self.f[:] = self.equilibrium(rho, ux, uy)

    # --- kernels ------------------------------------------------------------

    def collide(self) -> None:
        """BGK relaxation toward equilibrium — the high-intensity kernel."""
        rho, ux, uy = self.macroscopic()
        feq = self.equilibrium(rho, ux, uy)
        self.f += (feq - self.f) / self.tau

    def propagate(self) -> None:
        """Streaming along the 9 lattice directions — the memory-bound
        kernel (pure data movement, periodic wrap)."""
        for i, (cx, cy) in enumerate(VELOCITIES):
            if cx:
                self.f[i] = np.roll(self.f[i], cx, axis=1)
            if cy:
                self.f[i] = np.roll(self.f[i], cy, axis=0)

    def step(self, n: int = 1) -> None:
        for _ in range(n):
            self.collide()
            self.propagate()

    # --- diagnostics ------------------------------------------------------------

    def total_mass(self) -> float:
        """Exactly conserved by both kernels (property-test invariant)."""
        return float(self.f.sum())

    def kinetic_energy(self) -> float:
        rho, ux, uy = self.macroscopic()
        return float(0.5 * (rho * (ux**2 + uy**2)).sum())

    def taylor_green_init(self, u0: float = 0.02) -> None:
        """Initialize the analytic Taylor-Green vortex (decays at a known
        viscous rate — the validation flow)."""
        x = np.arange(self.nx) * 2 * np.pi / self.nx
        y = np.arange(self.ny) * 2 * np.pi / self.ny
        xx, yy = np.meshgrid(x, y)
        ux = u0 * np.cos(xx) * np.sin(yy)
        uy = -u0 * np.sin(xx) * np.cos(yy)
        rho = np.ones_like(ux)
        self.init_equilibrium(rho, ux, uy)

    @property
    def viscosity(self) -> float:
        return CS2 * (self.tau - 0.5)
