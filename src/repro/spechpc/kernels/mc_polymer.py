"""Monte-Carlo coarse-grained polymers — the soma mini-kernel.

A Metropolis Monte-Carlo simulation of Gaussian (harmonic-bond) polymer
chains with a soft density-penalty field, the SOMA model class: each step
proposes random monomer displacements and accepts them with the Metropolis
rule; a density field on a grid is re-accumulated from all monomers (the
structure that SOMA replicates per MPI rank and reduces with Allreduce).

Validation targets: acceptance ratio in a sane band, detailed-balance
statistics (mean-squared bond length of a free chain matches the harmonic
prediction), and exact mass accounting in the density field.
"""

from __future__ import annotations

import numpy as np


class PolymerSystem:
    """``n_chains`` harmonic chains of ``chain_length`` monomers in a
    periodic box with a soft compressibility field."""

    def __init__(
        self,
        n_chains: int,
        chain_length: int,
        box: float = 10.0,
        bond_k: float = 1.5,
        kappa: float = 0.0,
        grid: int = 8,
        seed: int = 42,
    ) -> None:
        if n_chains < 1 or chain_length < 2:
            raise ValueError("need at least one chain of two monomers")
        self.n_chains = n_chains
        self.chain_length = chain_length
        self.box = box
        self.bond_k = bond_k
        self.kappa = kappa
        self.grid = grid
        self.rng = np.random.default_rng(seed)
        # random-walk initialization
        steps = self.rng.normal(0, 1 / np.sqrt(bond_k), (n_chains, chain_length, 3))
        steps[:, 0] = self.rng.uniform(0, box, (n_chains, 3))
        self.pos = np.cumsum(steps, axis=1)
        self.accepted = 0
        self.proposed = 0

    # --- energetics --------------------------------------------------------

    def bond_energy(self, pos: np.ndarray | None = None) -> float:
        """Harmonic bond energy sum over all chains."""
        p = self.pos if pos is None else pos
        bonds = np.diff(p, axis=1)
        return float(0.5 * self.bond_k * (bonds**2).sum())

    def mean_squared_bond(self) -> float:
        bonds = np.diff(self.pos, axis=1)
        return float((bonds**2).sum(axis=-1).mean())

    # --- Monte Carlo ----------------------------------------------------------

    def mc_sweep(self, step_size: float = 0.35) -> float:
        """One Metropolis sweep: propose a displacement for every monomer
        (vectorized per chain-slot to keep bond energies consistent).

        Returns the acceptance ratio of the sweep.
        """
        n, L = self.n_chains, self.chain_length
        accepted_before = self.accepted
        for slot in range(L):
            disp = self.rng.normal(0, step_size, (n, 3))
            old = self.pos[:, slot].copy()
            new = old + disp
            delta = np.zeros(n)
            if slot > 0:
                left = self.pos[:, slot - 1]
                delta += 0.5 * self.bond_k * (
                    ((new - left) ** 2).sum(1) - ((old - left) ** 2).sum(1)
                )
            if slot < L - 1:
                right = self.pos[:, slot + 1]
                delta += 0.5 * self.bond_k * (
                    ((new - right) ** 2).sum(1) - ((old - right) ** 2).sum(1)
                )
            accept = self.rng.uniform(size=n) < np.exp(-np.clip(delta, -700, 700))
            self.pos[:, slot] = np.where(accept[:, None], new, old)
            self.accepted += int(accept.sum())
            self.proposed += n
        return (self.accepted - accepted_before) / (n * L)

    # --- density field -----------------------------------------------------------

    def density_field(self) -> np.ndarray:
        """Accumulate all monomers onto the periodic grid (the replicated
        array SOMA allreduces).  Sums exactly to the monomer count."""
        g = self.grid
        cells = np.floor((self.pos.reshape(-1, 3) % self.box) / self.box * g).astype(int)
        cells = np.clip(cells, 0, g - 1)
        flat = (cells[:, 0] * g + cells[:, 1]) * g + cells[:, 2]
        field = np.bincount(flat, minlength=g**3).astype(float)
        return field.reshape(g, g, g)

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    def theoretical_msd_bond(self) -> float:
        """Equilibrium <b^2> of a free harmonic bond: 3 / k."""
        return 3.0 / self.bond_k
