"""Smoothed-particle hydrodynamics — the sph-exa mini-kernel.

Density summation and symmetric pressure forces with the cubic-spline
kernel, grid-hashed neighbor search — the computational pattern of
SPH-EXA's density/momentum kernels.  Validated on a periodic cubic
lattice (uniform density recovery, force antisymmetry -> zero net
momentum change).
"""

from __future__ import annotations

import numpy as np

#: Cubic-spline normalization in 3D.
SIGMA_3D = 8.0 / np.pi


def cubic_spline(q: np.ndarray, h: float) -> np.ndarray:
    """The standard cubic-spline kernel W(q = r/h) in 3D."""
    w = np.zeros_like(q)
    m1 = q <= 0.5
    m2 = (q > 0.5) & (q <= 1.0)
    w[m1] = 6.0 * (q[m1] ** 3 - q[m1] ** 2) + 1.0
    w[m2] = 2.0 * (1.0 - q[m2]) ** 3
    return SIGMA_3D / h**3 * w


def cubic_spline_grad(q: np.ndarray, h: float) -> np.ndarray:
    """dW/dr (radial derivative) of the cubic spline."""
    g = np.zeros_like(q)
    m1 = (q > 0) & (q <= 0.5)
    m2 = (q > 0.5) & (q <= 1.0)
    g[m1] = 6.0 * (3.0 * q[m1] ** 2 - 2.0 * q[m1])
    g[m2] = -6.0 * (1.0 - q[m2]) ** 2
    return SIGMA_3D / h**4 * g


def cubic_lattice(n_side: int, spacing: float = 1.0) -> np.ndarray:
    """Periodic cubic particle lattice, shape (n^3, 3)."""
    if n_side < 2:
        raise ValueError("need at least 2 particles per side")
    ax = np.arange(n_side) * spacing
    grid = np.stack(np.meshgrid(ax, ax, ax, indexing="ij"), axis=-1)
    return grid.reshape(-1, 3).astype(float)


def _neighbor_pairs(
    pos: np.ndarray, h: float, box: float | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All interacting pairs (i, j, r, unit vectors) within radius h via a
    cell grid (O(N) like SPH-EXA's octree, not O(N^2))."""
    n = pos.shape[0]
    if box is not None:
        ncell = max(1, int(box / h))
        cell_size = box / ncell
    else:
        lo = pos.min(axis=0)
        span = np.maximum(pos.max(axis=0) - lo, 1e-12)
        ncell = max(1, int(span.max() / h))
        cell_size = span.max() / ncell
    coords = np.floor((pos - (0 if box is not None else pos.min(axis=0))) / cell_size).astype(int)
    coords = np.clip(coords, 0, ncell - 1)
    cell_id = (coords[:, 0] * ncell + coords[:, 1]) * ncell + coords[:, 2]
    order = np.argsort(cell_id, kind="stable")

    from collections import defaultdict

    buckets: dict[int, list[int]] = defaultdict(list)
    for idx in order:
        buckets[int(cell_id[idx])].append(int(idx))

    ii, jj = [], []
    offs = [(a, b, c) for a in (-1, 0, 1) for b in (-1, 0, 1) for c in (-1, 0, 1)]
    for cid, members in buckets.items():
        cz = cid % ncell
        cy = (cid // ncell) % ncell
        cx = cid // (ncell * ncell)
        # dedupe neighbor cells: with few cells per axis, periodic
        # wrapping maps distinct offsets onto the same cell
        neighbor_ids = set()
        for dx, dy, dz in offs:
            nx_, ny_, nz_ = cx + dx, cy + dy, cz + dz
            if box is not None:
                nx_, ny_, nz_ = nx_ % ncell, ny_ % ncell, nz_ % ncell
            elif not (0 <= nx_ < ncell and 0 <= ny_ < ncell and 0 <= nz_ < ncell):
                continue
            neighbor_ids.add((nx_ * ncell + ny_) * ncell + nz_)
        for nid in neighbor_ids:
            if nid not in buckets:
                continue
            for i in members:
                for j in buckets[nid]:
                    if i < j:
                        ii.append(i)
                        jj.append(j)
    if not ii:
        return (np.empty(0, int), np.empty(0, int), np.empty(0), np.empty((0, 3)))
    ii = np.asarray(ii)
    jj = np.asarray(jj)
    d = pos[ii] - pos[jj]
    if box is not None:
        d -= box * np.round(d / box)  # minimum image
    r = np.linalg.norm(d, axis=1)
    mask = (r < h) & (r > 0)
    ii, jj, r, d = ii[mask], jj[mask], r[mask], d[mask]
    unit = d / r[:, None]
    return ii, jj, r, unit


def sph_density(
    pos: np.ndarray, mass: float, h: float, box: float | None = None
) -> np.ndarray:
    """SPH density summation over neighbors within radius ``h``."""
    n = pos.shape[0]
    rho = np.full(n, mass * cubic_spline(np.zeros(1), h)[0])  # self term
    ii, jj, r, _unit = _neighbor_pairs(pos, h, box)
    w = mass * cubic_spline(r / h, h)
    np.add.at(rho, ii, w)
    np.add.at(rho, jj, w)
    return rho


def sph_forces(
    pos: np.ndarray,
    rho: np.ndarray,
    pressure: np.ndarray,
    mass: float,
    h: float,
    box: float | None = None,
) -> np.ndarray:
    """Symmetric pressure-gradient accelerations (momentum-conserving)."""
    n = pos.shape[0]
    acc = np.zeros((n, 3))
    ii, jj, r, unit = _neighbor_pairs(pos, h, box)
    if len(ii) == 0:
        return acc
    coef = -mass * (
        pressure[ii] / rho[ii] ** 2 + pressure[jj] / rho[jj] ** 2
    ) * cubic_spline_grad(r / h, h)
    contrib = coef[:, None] * unit
    np.add.at(acc, ii, contrib)
    np.add.at(acc, jj, -contrib)
    return acc
