"""Geometric multigrid V-cycle — the hpgmgfv mini-kernel.

Solves the 2D Poisson problem  -lap(u) = f  (homogeneous Dirichlet) with
weighted-Jacobi smoothing, full-weighting restriction, and bilinear
prolongation — the method family of HPGMG-FV.  The classic multigrid
property (residual contraction by a grid-independent factor per V-cycle)
is the validation target.
"""

from __future__ import annotations

import numpy as np


def _apply_poisson(u: np.ndarray, h: float) -> np.ndarray:
    """-Laplacian with Dirichlet-0 boundaries (u holds interior points)."""
    up = np.pad(u, 1)
    return (4 * u - up[:-2, 1:-1] - up[2:, 1:-1] - up[1:-1, :-2] - up[1:-1, 2:]) / h**2


def poisson_residual(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """r = f - A u."""
    return f - _apply_poisson(u, h)


def _smooth(u: np.ndarray, f: np.ndarray, h: float, iters: int, omega: float = 0.8):
    """Weighted Jacobi (the FV smoother stand-in)."""
    for _ in range(iters):
        r = poisson_residual(u, f, h)
        u = u + omega * (h**2 / 4.0) * r
    return u

def _restrict(r: np.ndarray) -> np.ndarray:
    """Full weighting to the next coarser grid (size (n-1)/2 interior)."""
    n = r.shape[0]
    nc = (n - 1) // 2
    rp = np.pad(r, 1)
    # coarse point (I, J) sits at fine (2I+1, 2J+1)
    i = 2 * np.arange(nc)[:, None] + 1
    j = 2 * np.arange(nc)[None, :] + 1
    ip = i + 1  # index into padded array
    jp = j + 1
    return (
        4 * rp[ip, jp]
        + 2 * (rp[ip - 1, jp] + rp[ip + 1, jp] + rp[ip, jp - 1] + rp[ip, jp + 1])
        + rp[ip - 1, jp - 1] + rp[ip - 1, jp + 1] + rp[ip + 1, jp - 1] + rp[ip + 1, jp + 1]
    ) / 16.0


def _prolong(e: np.ndarray, n_fine: int) -> np.ndarray:
    """Bilinear interpolation back to the fine grid (separable, with the
    Dirichlet-0 boundary as the implicit outer ring)."""
    nc = e.shape[0]
    # grid of coarse values embedded at odd fine indices, zero boundary ring
    up = np.zeros((2 * (nc + 1) + 1,) * 2)
    up[2:-2:2, 2:-2:2] = e
    # horizontal then vertical linear interpolation of the even lines
    up[2:-2:2, 1:-1:2] = 0.5 * (up[2:-2:2, 0:-2:2] + up[2:-2:2, 2::2])
    up[1:-1:2, :] = 0.5 * (up[0:-2:2, :] + up[2::2, :])
    return up[1 : n_fine + 1, 1 : n_fine + 1]


def v_cycle(
    u: np.ndarray,
    f: np.ndarray,
    h: float,
    pre: int = 2,
    post: int = 2,
    min_size: int = 3,
) -> np.ndarray:
    """One V-cycle on a (2^k - 1)^2 interior grid."""
    n = u.shape[0]
    if u.shape != f.shape or u.shape[0] != u.shape[1]:
        raise ValueError("u and f must be square and equal-shaped")
    u = _smooth(u, f, h, pre)
    if n <= min_size:
        return _smooth(u, f, h, 20)
    r = poisson_residual(u, f, h)
    rc = _restrict(r)
    ec = v_cycle(np.zeros_like(rc), rc, 2 * h, pre, post, min_size)
    u = u + _prolong(ec, n)
    return _smooth(u, f, h, post)


def solve_poisson(
    f: np.ndarray, h: float, cycles: int = 10, tol: float = 1e-9
) -> tuple[np.ndarray, list[float]]:
    """Run V-cycles until the residual norm drops below tol.

    Returns ``(u, residual_history)``; the history should contract by a
    roughly constant factor per cycle (the multigrid property).
    """
    u = np.zeros_like(f)
    history = [float(np.linalg.norm(poisson_residual(u, f, h)))]
    for _ in range(cycles):
        u = v_cycle(u, f, h)
        history.append(float(np.linalg.norm(poisson_residual(u, f, h))))
        if history[-1] < tol * max(history[0], 1e-300):
            break
    return u, history
