"""Conjugate-gradient heat conduction — the tealeaf mini-kernel.

Solves one implicit timestep of the linear heat equation

    (I - dt * div(K grad)) u_new = u_old

on a 2D regular grid with a 5-point stencil, exactly the structure of
TeaLeaf's CG solver (Table 2).  Matrix-free: the operator is applied as a
vectorized stencil.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def laplacian_5pt(u: np.ndarray, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
    """Apply the variable-coefficient 5-point operator div(K grad u) with
    zero-flux (Neumann) boundaries.

    ``kx``/``ky`` are face-centered conductivities of shape
    ``(ny, nx+1)`` / ``(ny+1, nx)``.
    """
    ny, nx = u.shape
    if kx.shape != (ny, nx + 1) or ky.shape != (ny + 1, nx):
        raise ValueError("conductivity shapes must be face-centered")
    flux_x = np.zeros((ny, nx + 1))
    flux_x[:, 1:-1] = kx[:, 1:-1] * (u[:, 1:] - u[:, :-1])
    flux_y = np.zeros((ny + 1, nx))
    flux_y[1:-1, :] = ky[1:-1, :] * (u[1:, :] - u[:-1, :])
    return (flux_x[:, 1:] - flux_x[:, :-1]) + (flux_y[1:, :] - flux_y[:-1, :])


def cg_solve(
    apply_op: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 5000,
) -> tuple[np.ndarray, int, float]:
    """Matrix-free conjugate gradients for SPD ``apply_op``.

    Returns ``(x, iterations, final_residual_norm)``.  The iteration
    structure (one operator application, two reductions, three axpys per
    step) is what tealeaf/pot3d distribute over MPI.
    """
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_op(x)
    p = r.copy()
    rr = float(np.vdot(r, r).real)
    b_norm = float(np.linalg.norm(b)) or 1.0
    if np.sqrt(rr) <= tol * b_norm:
        return x, 0, float(np.sqrt(rr))
    for it in range(1, max_iter + 1):
        ap = apply_op(p)
        pap = float(np.vdot(p, ap).real)
        if pap <= 0:
            raise RuntimeError("operator is not positive definite")
        alpha = rr / pap
        x += alpha * p
        r -= alpha * ap
        rr_new = float(np.vdot(r, r).real)
        if np.sqrt(rr_new) <= tol * b_norm:
            return x, it, float(np.sqrt(rr_new))
        p = r + (rr_new / rr) * p
        rr = rr_new
    return x, max_iter, float(np.sqrt(rr))


def heat_conduction_step(
    u: np.ndarray,
    dt: float,
    conductivity: float | np.ndarray = 1.0,
    tol: float = 1e-12,
) -> tuple[np.ndarray, int]:
    """One implicit (backward Euler) heat-conduction step, CG-solved.

    Returns ``(u_new, cg_iterations)``.  Conserves total heat under the
    zero-flux boundaries (a property test target).
    """
    ny, nx = u.shape
    if np.isscalar(conductivity):
        kx = np.full((ny, nx + 1), float(conductivity))
        ky = np.full((ny + 1, nx), float(conductivity))
    else:
        k = np.asarray(conductivity, dtype=float)
        if k.shape != u.shape:
            raise ValueError("cell conductivity must match u")
        kx = np.zeros((ny, nx + 1))
        kx[:, 1:-1] = 0.5 * (k[:, 1:] + k[:, :-1])
        ky = np.zeros((ny + 1, nx))
        ky[1:-1, :] = 0.5 * (k[1:, :] + k[:-1, :])

    def op(v: np.ndarray) -> np.ndarray:
        return v - dt * laplacian_5pt(v, kx, ky)

    u_new, iters, _res = cg_solve(op, u, x0=u, tol=tol)
    return u_new, iters
