"""Laplace solver in spherical coordinates — the pot3d mini-kernel.

POT3D computes potential magnetic fields by solving Laplace's equation in
3D spherical coordinates (r, theta, phi) with a preconditioned CG solver.
This mini-kernel discretizes the axisymmetric (r, theta) Laplacian in
**conservative flux form**, which makes the operator symmetric positive
definite (Laplace's operator is self-adjoint under the r^2 sin(theta)
volume weight) so the same matrix-free CG as tealeaf's kernel applies.
Validated against the analytic harmonic  u = r cos(theta).
"""

from __future__ import annotations

import numpy as np

from repro.spechpc.kernels.cg import cg_solve


class SphericalGrid:
    """Interior tensor grid in (r, theta) with Dirichlet boundaries."""

    def __init__(
        self,
        nr: int,
        nt: int,
        r_inner: float = 1.0,
        r_outer: float = 2.5,
        theta_min: float = 0.15,
        theta_max: float = np.pi - 0.15,
    ) -> None:
        if nr < 4 or nt < 4:
            raise ValueError("grid too small")
        if not (0 < theta_min < theta_max < np.pi):
            raise ValueError("theta range must avoid the poles")
        self.nr, self.nt = nr, nt
        self.r_full = np.linspace(r_inner, r_outer, nr + 2)
        self.t_full = np.linspace(theta_min, theta_max, nt + 2)
        self.dr = self.r_full[1] - self.r_full[0]
        self.dt = self.t_full[1] - self.t_full[0]
        # face-centered coefficients of the flux-form operator
        r_face = 0.5 * (self.r_full[:-1] + self.r_full[1:])      # nr+1 faces
        t_face = 0.5 * (self.t_full[:-1] + self.t_full[1:])      # nt+1 faces
        self.kr = (r_face**2)[:, None] * np.sin(self.t_full[1:-1])[None, :]
        self.kt = np.sin(t_face)[None, :] * np.ones((nr, 1))

    def weighted_neg_laplacian(self, u_full: np.ndarray) -> np.ndarray:
        """-(sin t * d_r(r^2 d_r u) / dr^2 + d_t(sin t d_t u) / dt^2)
        on interior points, given the full grid including boundaries.
        Symmetric positive definite in the interior unknowns."""
        du_r = np.diff(u_full[:, 1:-1], axis=0) / self.dr     # (nr+1, nt)
        flux_r = self.kr * du_r
        du_t = np.diff(u_full[1:-1, :], axis=1) / self.dt     # (nr, nt+1)
        flux_t = self.kt * du_t
        div = np.diff(flux_r, axis=0) / self.dr + np.diff(flux_t, axis=1) / self.dt
        return -div


def solve_laplace_spherical(
    nr: int = 32,
    nt: int = 32,
    r_inner: float = 1.0,
    r_outer: float = 2.5,
    tol: float = 1e-10,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Solve Laplace u = 0 with u = r cos(theta) Dirichlet boundaries.

    Returns ``(numerical, exact, cg_iterations)`` on the interior grid;
    the flux-form discretization converges to the exact harmonic at
    second order.
    """
    grid = SphericalGrid(nr, nt, r_inner, r_outer)
    exact = grid.r_full[:, None] * np.cos(grid.t_full)[None, :]

    # boundary-lifted RHS:  A u_int = -A_gb g  (g = boundary values)
    g = exact.copy()
    g[1:-1, 1:-1] = 0.0
    b = -grid.weighted_neg_laplacian(g)

    full = np.zeros((nr + 2, nt + 2))

    def op(v: np.ndarray) -> np.ndarray:
        full[1:-1, 1:-1] = v
        return grid.weighted_neg_laplacian(full)

    u, iters, _res = cg_solve(op, b, tol=tol, max_iter=20000)
    return u, exact[1:-1, 1:-1], iters
