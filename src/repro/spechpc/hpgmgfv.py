"""534.hpgmgfv / 634.hpgmgfv — finite-volume geometric multigrid
(C, ~16700 LOC).

Variable-coefficient elliptic solves on Cartesian grids via V-cycles over
a hierarchy of levels (finest: 512^3 for tiny, 1024^3 for small, in 32^3
boxes).  The fine-level smoother streams many arrays -> memory-bound,
but only **weakly saturating** (Sect. 4.1.4): coarser levels live in the
caches, so the aggregate becomes less memory-bound as more cores shrink
the per-rank fine-level share.

Communication per V-cycle: a halo exchange on *every* level (the coarse
ones are latency-dominated small messages) plus a residual-norm
``MPI_Allreduce``.  At cluster scale this point-to-point + reduction mix
dominates and outweighs the superlinear cache gains — case C of
Sect. 5.1 on both systems.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.kernel import KernelModel
from repro.smpi.comm import Communicator
from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)

SMOOTH_FINE = KernelModel(
    name="hpgmgfv.smooth_fine",
    flops_per_unit=45.0,             # Chebyshev smoother + residual, FV fluxes
    simd_fraction=0.72,
    mem_bytes_per_unit=64.0,
    l3_bytes_per_unit=96.0,
    l2_bytes_per_unit=120.0,
    working_set_bytes_per_unit=56.0,
    compute_efficiency=0.48,
    heat=0.80,
)

COARSE_LEVELS_FACTOR = 1.0 / 7.0     # sum of (1/8)^k for k >= 1

SMOOTH_COARSE = KernelModel(
    name="hpgmgfv.smooth_coarse",
    flops_per_unit=45.0,
    simd_fraction=0.72,
    mem_bytes_per_unit=50.0,          # streams until the level fits cache
    l3_bytes_per_unit=110.0,
    l2_bytes_per_unit=150.0,
    working_set_bytes_per_unit=16.0,
    compute_efficiency=0.40,          # shorter loops, more overhead
    heat=0.80,
)

#: Halo-exchange rounds per level per V-cycle (pre/post smoothing plus
#: residual/restriction ghost updates).
HALO_ROUNDS = 4

#: Ghost-layer depth exchanged per round (FV high-order stencils).
GHOST_WIDTH = 4


class Hpgmgfv(Benchmark):
    """HPGMG-FV geometric multigrid."""

    info = BenchmarkInfo(
        name="hpgmgfv",
        benchmark_id=34,
        language="C",
        loc=16700,
        collective="Allreduce",
        numerics=(
            "Finite-volume geometric multigrid for variable-coefficient "
            "elliptic problems on Cartesian grids"
        ),
        domain="Cosmology, astrophysics, combustion",
        memory_bound=True,
    )

    workloads = {
        "tiny": Workload(
            suite="tiny",
            params={"log2_box": 5, "log2_grid": 9, "n_side": 512},
            steps=300,
        ),
        "small": Workload(
            suite="small",
            params={"log2_box": 5, "log2_grid": 10, "n_side": 1024},
            steps=300,
        ),
        # modeled estimates for the 4 / 14.5 TB suites (see lbm.py note)
        "medium": Workload(
            suite="medium",
            params={"log2_box": 5, "log2_grid": 11, "n_side": 2048},
            steps=300,
        ),
        "large": Workload(
            suite="large",
            params={"log2_box": 5, "log2_grid": 12, "n_side": 4096},
            steps=300,
        ),
    }

    #: Grid levels whose halos are exchanged per V-cycle (finest first).
    N_LEVELS = 6

    def decompose(self, ctx: RunContext) -> tuple[int, int, int]:
        return dims_create(ctx.nprocs, 3)  # type: ignore[return-value]

    def local_units(self, ctx: RunContext, rank: int) -> float:
        """Fine-level cells of this rank."""
        n = ctx.workload.params["n_side"]
        return float(n**3) / ctx.nprocs

    def default_sim_steps(self, suite: str) -> int:
        return 2

    def make_body(self, ctx: RunContext) -> Callable[[Communicator], Generator]:
        n = ctx.workload.params["n_side"]
        dims = self.decompose(ctx)

        def body(comm: Communicator) -> Generator:
            rank = comm.rank
            coords = grid_coords(rank, dims)
            ext = [split_extent(n, d, c) for d, c in zip(dims, coords)]
            units_fine = float(ext[0] * ext[1] * ext[2])
            ranks_dom = ctx.ranks_in_domain(rank)
            fine = ctx.exec_model.phase_cost(SMOOTH_FINE, units_fine, ranks_dom)
            coarse = ctx.exec_model.phase_cost(
                SMOOTH_COARSE, units_fine * COARSE_LEVELS_FACTOR, ranks_dom
            )

            neighbors = []
            for axis in range(3):
                area = 1
                for other in range(3):
                    if other != axis:
                        area *= ext[other]
                for delta in (-1, 1):
                    nc = list(coords)
                    nc[axis] += delta
                    if 0 <= nc[axis] < dims[axis]:
                        neighbors.append((grid_rank(nc, dims), area))

            loop = ctx.step_loop(comm)

            while (yield loop.next_step()):
                # one V-cycle: fine smooth, then per-level halo exchanges
                # with geometrically shrinking faces
                yield self.compute_phase(ctx, comm, fine, label="compute")
                for level in range(self.N_LEVELS):
                    shrink = 4**level            # face area / 4 per level
                    for _round in range(HALO_ROUNDS):
                        for peer, area in neighbors:
                            nbytes = max(64, GHOST_WIDTH * area * 8 // shrink)
                            yield comm.sendrecv(peer, nbytes, peer, nbytes)
                yield self.compute_phase(ctx, comm, coarse, label="compute")
                yield comm.allreduce(8)          # residual norm

        return body
