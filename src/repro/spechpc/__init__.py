"""The SPEChpc 2021 benchmark suite, modeled for the simulated runtime.

All nine benchmarks of the suite are available via :func:`get_benchmark`
or :data:`SUITE` (paper order).  Each benchmark carries its Table 1/2
metadata, tiny/small workload definitions, kernel resource models, and an
executable MPI program body.
"""

from repro.spechpc.base import (
    Benchmark,
    BenchmarkInfo,
    RunContext,
    Workload,
    dims_create,
    grid_coords,
    grid_rank,
    split_extent,
)
from repro.spechpc.suite import SUITE, SUITE_ORDER, all_benchmarks, get_benchmark

__all__ = [
    "Benchmark",
    "BenchmarkInfo",
    "RunContext",
    "Workload",
    "dims_create",
    "grid_coords",
    "grid_rank",
    "split_extent",
    "SUITE",
    "SUITE_ORDER",
    "all_benchmarks",
    "get_benchmark",
]
