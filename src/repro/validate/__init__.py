"""Validation subsystem: golden fingerprints, schedule-perturbation
sanitizer, cross-mode differential conformance, prediction-tier
differential, and inline MPI invariants.

The parts answer one question from six angles — *did this change
alter simulated results it should not have?*

* :mod:`repro.validate.golden` — canonical result fingerprints checked
  into ``tests/golden/``; any semantic drift in the model fails CI with
  the exact field that moved.
* :mod:`repro.validate.perturb` — a race detector for the DES: re-runs a
  job under seeded same-timestamp shuffles and asserts the fingerprint
  does not move (a well-formed model is invariant under every legal
  schedule).
* :mod:`repro.validate.differential` — runs the full engine flag matrix
  (fast path × matcher × memoization × fast-forward × workers) and
  diffs complete traces; the fast flavors must be bit-identical to the
  references.
* :mod:`repro.validate.prediction` — holds every :mod:`repro.predict`
  tier to its own stated error band against DES ground truth (golden
  corpus + fresh interpolation holdouts).
* :mod:`repro.validate.serving` — replays golden specs through a
  loopback ``repro serve`` HTTP server and holds every ladder path
  (cold DES, cache hit, band-negotiated prediction) to the fingerprint
  and band contracts of a direct run.
* :mod:`repro.validate.scenario` — the scenario subsystem is pure
  plumbing: named-scenario runs must be fingerprint-identical to their
  inline-flag equivalents, and every zoo parameter file must load,
  round-trip exactly, and price through Tier A.
* :mod:`repro.validate.invariants` — inline MPI conformance checks
  (non-overtaking, conservation, collective completeness, monotonic
  clocks) attachable to any run via ``run(..., invariants=True)``.

Only the invariants are imported eagerly: the other modules pull in the
harness package, which itself lazily imports the checker, and keeping
this ``__init__`` light preserves that cycle-free layering.
"""

from __future__ import annotations

from repro.validate.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    # lazy (see __getattr__):
    "fingerprint",
    "golden_cases",
    "record_diff",
    "regenerate",
    "sanitize",
    "differential_run",
    "observability_differential",
    "executor_differential",
    "prediction_differential",
    "serving_differential",
    "scenario_differential",
    "zoo_validation",
]

_LAZY = {
    "fingerprint": "repro.validate.golden",
    "golden_cases": "repro.validate.golden",
    "record_diff": "repro.validate.golden",
    "regenerate": "repro.validate.golden",
    "sanitize": "repro.validate.perturb",
    "differential_run": "repro.validate.differential",
    "observability_differential": "repro.validate.differential",
    "executor_differential": "repro.validate.differential",
    "prediction_differential": "repro.validate.prediction",
    "serving_differential": "repro.validate.serving",
    "scenario_differential": "repro.validate.scenario",
    "zoo_validation": "repro.validate.scenario",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
