"""Serving differential: the HTTP service must not change a single bit.

The serving layer (:mod:`repro.serve`) is a *distribution* layer — a
cache, a band-negotiated predictor, and a deduplicating front end around
the same engine.  This differential holds it to that claim over a real
loopback HTTP server, for every selected golden-corpus spec, on all
three ladder paths:

* **cold (DES)** — the first request escalates to the engine; its
  response must carry the same golden fingerprint as a direct
  :func:`repro.harness.runner.run`, and the result *reconstructed from
  the response JSON* must re-fingerprint identically (the store format
  and the HTTP round trip are both lossless).
* **cache hit** — the repeat request must be answered from the store
  (``source: "store"``, zero engine executions) with the identical
  fingerprint and an identical result document.
* **predict hit** — a ``max_band`` request must be answered by a cheap
  tier, *flagged* (``source: "predict"``, ``fingerprint: null``),
  band-annotated, and its runtime must actually fall within the stated
  band of the DES ground truth.

:func:`serving_differential` returns human-readable failure strings —
empty means the service is transparent.
"""

from __future__ import annotations

import os
from typing import Optional

#: max_band offered on the predict-path check: generous enough that the
#: surrogate (exact at corpus points) always qualifies at golden specs.
PREDICT_MAX_BAND = 0.25


def _default_golden_dir() -> str:
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))),
        "tests",
        "golden",
    )


def serving_differential(
    golden_dir: Optional[str] = None,
    scales: tuple[int, ...] = (1,),
    benchmarks: tuple[str, ...] | None = None,
    clusters: tuple[str, ...] = ("A", "B"),
    workers: int = 2,
) -> list[str]:
    """Replay golden specs through a loopback server; diff against
    direct runs.

    ``scales=(1,)`` covers the 1-node corpus lane (the tier-1 default);
    the CI serving job widens to ``(1, 4)`` — the full checked-in
    corpus.  Returns failure descriptions (empty list = pass).
    """
    from repro.harness.runner import engine_run_count
    from repro.serve import ServeApp, ServeClient, loopback_server
    from repro.validate.golden import fingerprint, golden_cases, run_case

    if golden_dir is None:
        golden_dir = _default_golden_dir()

    cases = [
        c for c in golden_cases(scales=scales)
        if (benchmarks is None or c.benchmark in benchmarks)
        and c.cluster in clusters
    ]
    failures: list[str] = []

    # the corpus is seeded from the golden fingerprints, so the predict
    # path can interpolate at exactly the specs being replayed
    app = ServeApp(workers=workers, golden_dir=golden_dir)
    with loopback_server(app) as (host, port):
        client = ServeClient(host, port)
        for case in cases:
            spec = {
                "benchmark": case.benchmark,
                "cluster": case.cluster,
                "nnodes": case.nnodes,
                "suite": case.suite,
            }
            direct = run_case(case)
            expected = fingerprint(direct).digest

            # --- path 1: cold DES ------------------------------------
            runs_before = engine_run_count()
            cold = client.run(spec)
            if cold.source != "des":
                failures.append(
                    f"{case.slug}: first request answered from "
                    f"{cold.source!r}, expected a cold DES execution"
                )
            if cold.fingerprint != expected:
                failures.append(
                    f"{case.slug}: served fingerprint "
                    f"{str(cold.fingerprint)[:16]}… != direct "
                    f"{expected[:16]}… on the cold path"
                )
            rebuilt = fingerprint(cold.result()).digest
            if rebuilt != expected:
                failures.append(
                    f"{case.slug}: result reconstructed from the response "
                    f"re-fingerprints to {rebuilt[:16]}… != {expected[:16]}… "
                    "(lossy serialization)"
                )

            # --- path 2: cache hit -----------------------------------
            runs_cold = engine_run_count()
            warm = client.run(spec)
            if warm.source != "store":
                failures.append(
                    f"{case.slug}: repeat request answered from "
                    f"{warm.source!r}, expected the result store"
                )
            if engine_run_count() != runs_cold:
                failures.append(
                    f"{case.slug}: the cache hit cost "
                    f"{engine_run_count() - runs_cold} engine execution(s)"
                )
            if warm.fingerprint != expected:
                failures.append(
                    f"{case.slug}: cached fingerprint drifted to "
                    f"{str(warm.fingerprint)[:16]}…"
                )
            if warm.doc["result"] != cold.doc["result"]:
                failures.append(
                    f"{case.slug}: cached result document differs from the "
                    "cold answer"
                )
            if engine_run_count() - runs_before != 1:
                failures.append(
                    f"{case.slug}: cold+warm cost "
                    f"{engine_run_count() - runs_before} engine executions, "
                    "expected exactly 1"
                )

            # --- path 3: predict hit (band-negotiated) ---------------
            pred = client.run(
                {**spec, "seed": case.nnodes + 1000},  # fresh key: not cached
                max_band=PREDICT_MAX_BAND,
            )
            if pred.source != "predict":
                failures.append(
                    f"{case.slug}: max_band request answered from "
                    f"{pred.source!r}, expected the prediction ladder level"
                )
                continue
            if pred.fingerprint is not None:
                failures.append(
                    f"{case.slug}: prediction carries a fingerprint — "
                    "predictions must never masquerade as ground truth"
                )
            if not (0.0 <= pred.band <= PREDICT_MAX_BAND):
                failures.append(
                    f"{case.slug}: predict answer states band {pred.band}, "
                    f"outside the negotiated max_band {PREDICT_MAX_BAND}"
                )
            served_runtime = pred.result().elapsed
            err = abs(served_runtime - direct.elapsed) / direct.elapsed
            if err > pred.band * (1.0 + 1e-9):
                failures.append(
                    f"{case.slug}: predict runtime off by {100 * err:.2f}% "
                    f"— outside its own stated band of {100 * pred.band:.2f}%"
                )
    return failures
