"""Cross-mode differential conformance.

The engine carries several "same answer, different algorithm" pairs: the
DES run-queue fast path vs the pure heap, the indexed mailbox matcher vs
the linear scan, the memoized pricing model vs fresh pricing, the
steady-state fast-forward vs full stepping, and the parallel sweep
executor vs the serial loop.  Every pair claims bit-identical results;
this module is where that claim is *checked* rather than assumed.

:func:`differential_run` executes one job in every mode of the flag
matrix (24 = fast_path × matcher × memoize × replay tier, the tier being
off / fast-forward / fast-forward+wavefront) plus a workers>1 sweep,
fingerprints each (see :mod:`repro.validate.golden`), and — for the
trace-compatible subset — diffs complete event timelines against the
all-reference mode, reporting the first mismatching trace record with
its mode, rank, time, and kind.  (The fourth tier combination — the
wavefront tier *forced* with the synchronized tier disabled — is covered
by the golden-corpus test in ``tests/test_wavefront.py``.)

:func:`bandwidth_scheduler_differential` covers the one deliberately
*non*-bitwise pair: the two :class:`~repro.des.resources.
BandwidthResource` schedulers implement the same max-min fair-sharing
fluid model with different arithmetic, so completion *order* must agree
exactly while completion *times* agree to a relative tolerance.
"""

from __future__ import annotations

import itertools
import random
import threading
from dataclasses import dataclass
from typing import Optional, Union

from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark
from repro.validate.golden import fingerprint, record_diff


@dataclass(frozen=True)
class Mode:
    """One engine configuration of the flag matrix."""

    fast_path: bool
    matcher: str
    memoize: bool
    fast_forward: bool
    wavefront: bool = False

    @property
    def label(self) -> str:
        tier = (
            "wf" if self.wavefront
            else ("ff" if self.fast_forward else "noff")
        )
        return (
            f"{'fastpath' if self.fast_path else 'heap'}"
            f"+{self.matcher}"
            f"+{'memo' if self.memoize else 'nomemo'}"
            f"+{tier}"
        )


#: The all-reference mode every other mode is diffed against: pure heap,
#: linear matcher, fresh pricing, full stepping.
REFERENCE_MODE = Mode(
    fast_path=False, matcher="linear", memoize=False, fast_forward=False,
    wavefront=False,
)

#: Replay-tier axis of the matrix: tier off, synchronized fast-forward,
#: fast-forward with the wavefront tier on top (the production default).
_TIERS = ((False, False), (True, False), (True, True))


def flag_matrix() -> list[Mode]:
    """All 24 engine modes, reference first."""
    modes = [
        Mode(fast_path=fp, matcher=m, memoize=mz, fast_forward=ff, wavefront=wf)
        for fp, m, mz, (ff, wf) in itertools.product(
            (False, True), ("linear", "indexed"), (False, True), _TIERS
        )
    ]
    modes.sort(key=lambda m: m != REFERENCE_MODE)  # stable: reference first
    return modes


@dataclass(frozen=True)
class ModeMismatch:
    """One mode whose result differs from the reference."""

    mode: str
    #: first differing canonical-record field
    field: str
    #: first differing trace record, or None if the mode is not
    #: trace-comparable / the timelines agree
    first_event: Optional[str]

    def summary(self) -> str:
        msg = f"{self.mode}: {self.field}"
        if self.first_event:
            msg += f"; first mismatching trace record: {self.first_event}"
        return msg


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one full-matrix differential run."""

    benchmark: str
    cluster: str
    nprocs: int
    suite: str
    modes: int
    reference_digest: str
    mismatches: tuple[ModeMismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        head = (
            f"{self.benchmark} on {self.cluster} nprocs={self.nprocs}: "
            f"{self.modes} mode(s)"
        )
        if self.ok:
            return f"{head} — conformant"
        lines = [f"{head} — {len(self.mismatches)} MISMATCH(ES)"]
        lines += ["  " + m.summary() for m in self.mismatches]
        return "\n".join(lines)


def _first_trace_diff(ref, other) -> Optional[str]:
    """First differing record between two full traces (both are emitted
    in deterministic per-rank program order; compared rank-major)."""
    a = sorted((iv.rank, iv.t0, iv.t1, iv.kind) for iv in ref.intervals)
    b = sorted((iv.rank, iv.t0, iv.t1, iv.kind) for iv in other.intervals)
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return (
                f"record #{i}: reference rank={ea[0]} t0={ea[1]:.9g} "
                f"t1={ea[2]:.9g} kind={ea[3]} vs rank={eb[0]} "
                f"t0={eb[1]:.9g} t1={eb[2]:.9g} kind={eb[3]}"
            )
    if len(a) != len(b):
        return f"record #{min(len(a), len(b))}: {len(a)} vs {len(b)} records"
    return None


def differential_run(
    benchmark: Union[str, Benchmark],
    cluster: Union[str, ClusterSpec],
    nprocs: int,
    suite: str = "tiny",
    sim_steps: Optional[int] = None,
    trace_diff: bool = True,
    workers: bool = True,
) -> DifferentialReport:
    """Run one job through the full flag matrix and diff everything
    against the all-reference mode.

    ``trace_diff`` additionally replays the eight fast-forward-off modes
    with full traces and compares complete timelines (tracing forces the
    fast-forward off, so FF-on modes have no distinct traced flavor).
    ``workers`` adds a ``run_many(workers=2)`` sweep asserting the
    process-pool path returns the same fingerprints as in-process runs.
    """
    from repro.harness.parallel import RunSpec, run_many
    from repro.harness.runner import run  # lazy: harness imports us
    from repro.machine.registry import get_cluster
    from repro.spechpc.suite import get_benchmark

    bench = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    clus = get_cluster(cluster) if isinstance(cluster, str) else cluster

    modes = flag_matrix()
    results = {
        mode: run(
            bench, clus, nprocs, suite=suite, sim_steps=sim_steps,
            fast_path=mode.fast_path, matcher=mode.matcher,
            memoize=mode.memoize, fast_forward=mode.fast_forward,
            wavefront=mode.wavefront,
        )
        for mode in modes
    }
    fps = {mode: fingerprint(res) for mode, res in results.items()}
    ref_fp = fps[REFERENCE_MODE]

    traces = {}
    if trace_diff:
        traces = {
            mode: run(
                bench, clus, nprocs, suite=suite, sim_steps=sim_steps,
                trace=True, fast_path=mode.fast_path, matcher=mode.matcher,
                memoize=mode.memoize, fast_forward=False, wavefront=False,
            ).trace
            for mode in modes
            if not mode.fast_forward and not mode.wavefront
        }

    mismatches: list[ModeMismatch] = []
    for mode in modes:
        if mode == REFERENCE_MODE:
            continue
        fp = fps[mode]
        if fp == ref_fp:
            continue
        field = record_diff(ref_fp.record, fp.record) or "<digest only>"
        first = None
        base_mode = Mode(
            fast_path=mode.fast_path, matcher=mode.matcher,
            memoize=mode.memoize, fast_forward=False, wavefront=False,
        )
        if base_mode in traces:
            first = _first_trace_diff(traces[REFERENCE_MODE], traces[base_mode])
        mismatches.append(
            ModeMismatch(mode=mode.label, field=field, first_event=first)
        )
    if trace_diff:
        # fingerprint-equal modes must also be trace-equal (a compensating
        # pair of errors could cancel in the aggregates)
        for mode, trace in traces.items():
            if mode == REFERENCE_MODE or any(
                m.mode == mode.label for m in mismatches
            ):
                continue
            first = _first_trace_diff(traces[REFERENCE_MODE], trace)
            if first:
                mismatches.append(
                    ModeMismatch(
                        mode=mode.label,
                        field="<aggregates equal, timelines differ>",
                        first_event=first,
                    )
                )

    nmodes = len(modes)
    if workers:
        specs = [
            RunSpec(benchmark=bench, cluster=clus, nprocs=nprocs, suite=suite,
                    sim_steps=sim_steps)
        ] * 2
        pooled = run_many(specs, workers=2)
        nmodes += 1
        default_fp = fps[Mode(True, "indexed", True, True, True)]
        for i, res in enumerate(pooled):
            fp = fingerprint(res)
            if fp != default_fp:
                field = record_diff(default_fp.record, fp.record) or "<digest only>"
                mismatches.append(
                    ModeMismatch(
                        mode=f"workers=2[{i}]", field=field, first_event=None
                    )
                )

    return DifferentialReport(
        benchmark=bench.name,
        cluster=clus.name,
        nprocs=nprocs,
        suite=suite,
        modes=nmodes,
        reference_digest=ref_fp.digest,
        mismatches=tuple(mismatches),
    )


# --- observability zero-perturbation differential ---------------------------


@dataclass(frozen=True)
class ObservabilityReport:
    """Outcome of one observability zero-perturbation check."""

    benchmark: str
    cluster: str
    nprocs: int
    suite: str
    plain_digest: str
    observed_digest: str
    #: the checked-in golden digest, when a golden corpus was consulted
    golden_digest: Optional[str]
    mismatches: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        head = (
            f"{self.benchmark} on {self.cluster} nprocs={self.nprocs}: "
            "observability differential"
        )
        if self.ok:
            return f"{head} — zero-perturbation"
        lines = [f"{head} — {len(self.mismatches)} MISMATCH(ES)"]
        lines += ["  " + m for m in self.mismatches]
        return "\n".join(lines)


def observability_differential(
    benchmark: Union[str, Benchmark],
    cluster: Union[str, ClusterSpec],
    nprocs: int,
    suite: str = "tiny",
    sim_steps: Optional[int] = None,
    golden_dir: Optional[str] = None,
) -> ObservabilityReport:
    """Prove attaching observability does not perturb results.

    Runs the job twice — plain (production flags, fast-forward eligible)
    and with a full trace plus the complete :mod:`repro.obs` pipeline
    (timeline classification, both pattern detectors, metrics snapshot,
    all three exporters) driven over it — and asserts the two result
    fingerprints are bit-identical.  With ``golden_dir``, both must also
    match the checked-in golden digest when the point is part of the
    corpus (the traced run not only equals today's plain run, it equals
    the historical record).
    """
    from repro.harness.runner import run  # lazy: harness imports us
    from repro.machine.registry import get_cluster
    from repro.spechpc.suite import get_benchmark

    bench = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    clus = get_cluster(cluster) if isinstance(cluster, str) else cluster

    plain = run(bench, clus, nprocs, suite=suite, sim_steps=sim_steps)
    traced = run(bench, clus, nprocs, suite=suite, sim_steps=sim_steps,
                 trace=True)

    # drive the whole observability pipeline — every derived artifact is
    # built from the finished run, so none of this may move the result
    from repro.obs import chrome_trace_json, observe, render_svg_timeline

    obs = observe(traced)
    obs.report()
    chrome_trace_json(obs.timelines)
    render_svg_timeline(obs.timelines)

    fp_plain = fingerprint(plain)
    fp_traced = fingerprint(traced)
    mismatches: list[str] = []
    if fp_traced != fp_plain:
        field = record_diff(fp_plain.record, fp_traced.record) or "<digest only>"
        mismatches.append(f"traced vs plain: {field}")

    golden_digest: Optional[str] = None
    if golden_dir is not None:
        from repro.validate.golden import golden_cases, load_fingerprint

        for case in golden_cases():
            if (
                case.benchmark == bench.name
                and get_cluster(case.cluster).name == clus.name
                and case.nprocs == nprocs
                and case.suite == suite
                and sim_steps is None
            ):
                golden = load_fingerprint(golden_dir, case)
                golden_digest = golden.digest
                if fp_traced.digest != golden.digest:
                    mismatches.append(
                        f"traced vs golden {case.slug}: digest "
                        f"{fp_traced.digest[:16]}… != {golden.digest[:16]}…"
                    )
                break

    return ObservabilityReport(
        benchmark=bench.name,
        cluster=clus.name,
        nprocs=nprocs,
        suite=suite,
        plain_digest=fp_plain.digest,
        observed_digest=fp_traced.digest,
        golden_digest=golden_digest,
        mismatches=tuple(mismatches),
    )


# --- bandwidth-scheduler differential ---------------------------------------


@dataclass(frozen=True)
class SchedulerMismatch:
    """One flow whose outcome differs across the two schedulers."""

    flow: int
    kind: str  # "order" or "time"
    detail: str


def bandwidth_scheduler_differential(
    flows: int = 64,
    seed: int = 0,
    capacity: float = 12.5e9,
    rel_tol: float = 1e-9,
) -> list[SchedulerMismatch]:
    """Drive both :class:`~repro.des.resources.BandwidthResource`
    schedulers with the same seeded random flow pattern and compare.

    The schedulers share one fluid model but integrate it differently
    (virtual clock vs lazy re-walk), so floating-point association
    differs: completion *order* must match exactly, completion *times*
    to ``rel_tol`` relative.  The virtual clock's ``light`` solo-flow
    fast path claims *bitwise* identity with the full bookkeeping, so it
    is additionally compared against plain virtual-clock exactly.
    Returns the mismatches (empty = conformant).
    """
    from repro.des.resources import BandwidthResource
    from repro.des.simulator import Delay, Simulator

    rng = random.Random(seed)
    pattern = [
        (rng.uniform(0.0, 1.0), rng.uniform(1e6, 4e9)) for _ in range(flows)
    ]

    def drive(scheduler: str, light: bool = False) -> list[tuple[int, float]]:
        sim = Simulator(fast_path=False)
        nic = BandwidthResource(
            sim, capacity=capacity, scheduler=scheduler, light=light
        )
        done: list[tuple[int, float]] = []

        def flow_body(i: int, start: float, amount: float):
            def body():
                if start > 0.0:
                    yield Delay(start)
                yield nic.transfer(amount)
                done.append((i, sim.now))

            return body

        for i, (start, amount) in enumerate(pattern):
            sim.spawn(f"flow-{i}", flow_body(i, start, amount)())
        sim.run()
        return done

    vclock = drive("virtual-clock")
    vlight = drive("virtual-clock", light=True)
    reference = drive("reference")

    mismatches: list[SchedulerMismatch] = []
    if vlight != vclock:
        first = next(
            (
                (a, b) for a, b in zip(vclock, vlight) if a != b
            ),
            ((-1, 0.0), (-1, 0.0)),
        )
        mismatches.append(
            SchedulerMismatch(
                flow=first[0][0],
                kind="light",
                detail=(
                    "light solo fast path is not bitwise identical to "
                    f"virtual-clock: {first[1]!r} vs {first[0]!r} "
                    f"({len(vlight)} vs {len(vclock)} completions)"
                ),
            )
        )
    for (iv, tv), (ir, tr) in zip(vclock, reference):
        if iv != ir:
            mismatches.append(
                SchedulerMismatch(
                    flow=iv,
                    kind="order",
                    detail=(
                        f"virtual-clock completed flow {iv} where reference "
                        f"completed flow {ir}"
                    ),
                )
            )
            break  # order mismatch cascades; one report is enough
        denom = max(abs(tv), abs(tr), 1e-30)
        if abs(tv - tr) / denom > rel_tol:
            mismatches.append(
                SchedulerMismatch(
                    flow=iv,
                    kind="time",
                    detail=(
                        f"flow {iv}: virtual-clock t={tv!r} vs reference "
                        f"t={tr!r} (rel err {abs(tv - tr) / denom:.3g})"
                    ),
                )
            )
    if len(vclock) != len(reference):
        mismatches.append(
            SchedulerMismatch(
                flow=-1,
                kind="order",
                detail=(
                    f"{len(vclock)} vs {len(reference)} completed flows"
                ),
            )
        )
    return mismatches


# --- executor differential --------------------------------------------------


@dataclass(frozen=True)
class ExecutorMismatch:
    """One spec whose result differs between an executor and the serial
    in-process reference."""

    executor: str
    nprocs: int
    seed: int
    field: str

    def summary(self) -> str:
        return (
            f"{self.executor}: nprocs={self.nprocs} seed={self.seed} "
            f"differs at {self.field}"
        )


def executor_differential(
    benchmark: Union[str, Benchmark] = "lbm",
    cluster: Union[str, ClusterSpec] = "A",
    proc_counts=(1, 2),
    suite: str = "tiny",
    sim_steps: Optional[int] = 1,
    executors=("serial", "local", "fabric"),
    fabric_workers: int = 2,
) -> list[ExecutorMismatch]:
    """Run one small grid through every executor backend and compare
    fingerprints against the in-process serial reference.

    The executor contract (:mod:`repro.harness.executors`) is that the
    backend chooses *where* a spec runs, never *what* it computes: the
    result list must be field-for-field identical whether the points ran
    in this process, in a local pool, or on fabric workers across the
    network.  ``"fabric"`` here spins up an in-process manager on a
    loopback port with ``fabric_workers`` worker *threads* — same wire
    protocol and lease machinery as real cross-machine workers, no
    subprocess cost.  Returns the mismatches (empty = conformant).
    """
    from repro.harness.fabric import FabricExecutor, worker_loop
    from repro.harness.parallel import RunSpec, run_many
    from repro.machine.registry import get_cluster
    from repro.spechpc.suite import get_benchmark

    bench = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    clus = get_cluster(cluster) if isinstance(cluster, str) else cluster

    specs = [
        RunSpec(
            benchmark=bench, cluster=clus, nprocs=n, suite=suite,
            sim_steps=sim_steps, seed=1000 * n,
        )
        for n in proc_counts
    ]
    reference = [fingerprint(r) for r in run_many(specs, executor="serial")]

    mismatches: list[ExecutorMismatch] = []
    for name in executors:
        if name == "fabric":
            ex = FabricExecutor(("127.0.0.1", 0))
            host, port = ex.address
            threads = [
                threading.Thread(
                    target=worker_loop,
                    args=(host, port),
                    kwargs={"name": f"diff-{i}", "reconnect": 5.0},
                    daemon=True,
                )
                for i in range(fabric_workers)
            ]
            for t in threads:
                t.start()
            try:
                results = run_many(specs, executor=ex)
            finally:
                ex.shutdown()
            for t in threads:
                t.join(timeout=10.0)
        else:
            results = run_many(specs, workers=2, executor=name)
        for spec, ref, res in zip(specs, reference, results):
            fp = fingerprint(res)
            if fp == ref:
                continue
            field = record_diff(ref.record, fp.record) or "<digest only>"
            mismatches.append(
                ExecutorMismatch(
                    executor=name, nprocs=spec.nprocs, seed=spec.seed,
                    field=field,
                )
            )
    return mismatches
