"""Scenario differential: named scenarios vs equivalent inline flags.

The scenario subsystem is pure plumbing — a scenario *names* a
configuration, it must not *change* it.  Two checks enforce that:

* :func:`zoo_validation` — every checked-in zoo parameter file loads,
  survives an exact dict round-trip, and prices through Tier A from the
  parameter file alone; the ``icelake``/``sapphirerapids`` files parse
  to specs *equal* to the calibrated registry objects (the zoo is the
  registry written down, not a copy that can drift).
* :func:`scenario_differential` — running under a named scenario is
  **fingerprint-identical** (:func:`repro.validate.golden.fingerprint`)
  to running with the equivalent inline flags: a ``zoo/`` reference vs
  the registry cluster, an inline ``cluster_spec`` vs its source, a
  fixed-at-nominal frequency plan vs no plan at all, a clocked library
  scenario vs :func:`repro.model.dvfs.apply_frequency` by hand, and
  each segment of a segmented plan vs a standalone fixed run at that
  frequency (which is what makes phase-cost-cache staleness across a
  frequency change structurally impossible).

Both return human-readable failure strings, empty when green — the CLI
surfaces them via ``repro validate --scenarios``.
"""

from __future__ import annotations

import math


def zoo_validation() -> list[str]:
    """Validate every zoo parameter file (see module docstring)."""
    from repro.machine.registry import CLUSTER_A, CLUSTER_B
    from repro.predict.api import AnalyticPredictionTier, PredictionSpec
    from repro.scenarios.zoo import (
        ZooError,
        cluster_from_dict,
        cluster_to_dict,
        load_zoo_cluster,
        zoo_names,
    )

    failures: list[str] = []
    tier = AnalyticPredictionTier()
    for name in zoo_names():
        try:
            cluster = load_zoo_cluster(name)
        except (ZooError, ValueError) as exc:
            failures.append(f"zoo/{name}: does not load: {exc}")
            continue
        if cluster_from_dict(cluster_to_dict(cluster)) != cluster:
            failures.append(f"zoo/{name}: dict round-trip is not exact")
        # Tier A must price the whole node range from the file alone
        for nnodes in (1, cluster.max_nodes):
            try:
                pred = tier.predict(PredictionSpec(
                    benchmark="lbm", cluster=cluster.name, nnodes=nnodes,
                    cluster_obj=cluster,
                ))
            except Exception as exc:  # noqa: BLE001 — report, don't abort
                failures.append(
                    f"zoo/{name}: Tier A fails at {nnodes} node(s): {exc}"
                )
                continue
            if not (
                math.isfinite(pred.runtime) and pred.runtime > 0
                and math.isfinite(pred.energy.total_energy)
                and pred.energy.total_energy > 0
            ):
                failures.append(
                    f"zoo/{name}: Tier A priced a non-physical result at "
                    f"{nnodes} node(s): runtime={pred.runtime}, "
                    f"energy={pred.energy.total_energy}"
                )
    for name, registry in (("icelake", CLUSTER_A), ("sapphirerapids", CLUSTER_B)):
        if load_zoo_cluster(name) != registry:
            failures.append(
                f"zoo/{name}: drifted from the calibrated registry spec "
                f"{registry.name}"
            )
    return failures


def scenario_differential(nprocs: int = 8) -> list[str]:
    """Named-scenario runs vs inline-flag runs (see module docstring)."""
    from repro.harness.runner import run
    from repro.machine.registry import CLUSTER_A
    from repro.model.dvfs import apply_frequency
    from repro.scenarios import (
        FrequencyPlan,
        FrequencySegment,
        Scenario,
        load_scenario,
        run_frequency_plan,
        run_scenario,
    )
    from repro.scenarios.zoo import cluster_to_dict
    from repro.spechpc.suite import get_benchmark
    from repro.validate.golden import fingerprint

    failures: list[str] = []
    bench = get_benchmark("lbm")
    baseline = fingerprint(run(bench, CLUSTER_A, nprocs))

    # 1. zoo reference vs registry cluster
    zoo = fingerprint(run_scenario(
        load_scenario("zoo/icelake"), nprocs, benchmark="lbm"
    ))
    if zoo != baseline:
        failures.append(
            "scenario zoo/icelake: run differs from the inline ClusterA run "
            f"({zoo.digest[:12]} != {baseline.digest[:12]})"
        )

    # 2. inline cluster_spec vs its source registry object
    inline = Scenario(
        name="inline-icelake", cluster_spec=cluster_to_dict(CLUSTER_A)
    )
    got = fingerprint(run_scenario(inline, nprocs, benchmark="lbm"))
    if got != baseline:
        failures.append(
            "scenario inline cluster_spec: run differs from the registry "
            f"run ({got.digest[:12]} != {baseline.digest[:12]})"
        )
    if inline.digest != Scenario(name="ref", cluster="zoo/icelake").digest:
        failures.append(
            "scenario digest: inline cluster_spec and zoo/icelake disagree "
            "despite identical parameters"
        )

    # 3. fixed-at-nominal frequency plan vs no plan
    nominal = CLUSTER_A.node.cpu.nominal_clock_hz
    nom = Scenario(
        name="nominal-plan", cluster="A",
        frequency=FrequencyPlan.fixed(nominal),
    )
    got = fingerprint(run_scenario(nom, nprocs, benchmark="lbm"))
    if got != baseline:
        failures.append(
            "scenario nominal-frequency plan: run differs from the "
            f"plan-free run ({got.digest[:12]} != {baseline.digest[:12]})"
        )

    # 4. clocked library scenario vs apply_frequency by hand
    lib = load_scenario("dvfs_lbm_clockdown")
    want = fingerprint(run(
        bench, apply_frequency(CLUSTER_A, lib.frequency.frequency_hz), nprocs
    ))
    got = fingerprint(run_scenario(lib, nprocs))
    if got != want:
        failures.append(
            "scenario dvfs_lbm_clockdown: run differs from the "
            f"apply_frequency run ({got.digest[:12]} != {want.digest[:12]})"
        )

    # 5. segmented plan: every segment == a standalone fixed run
    plan = FrequencyPlan((
        FrequencySegment(2.0e9, iterations=2),
        FrequencySegment(nominal),
    ))
    seg = run_frequency_plan(bench, CLUSTER_A, plan, nprocs)
    for result, n, frequency in zip(
        seg.segments, seg.steps,
        (s.frequency_hz for s in plan.active_segments),
    ):
        want = fingerprint(run(
            bench, apply_frequency(CLUSTER_A, frequency), nprocs, sim_steps=n
        ))
        got = fingerprint(result)
        if got != want:
            failures.append(
                f"segmented plan: the {frequency / 1e9:g} GHz segment "
                f"({n} steps) differs from a standalone fixed run "
                f"({got.digest[:12]} != {want.digest[:12]})"
            )
    return failures
