"""Inline MPI conformance checks.

An :class:`InvariantChecker` attaches to a run (``run(..., invariants=True)``
or ``MpiRuntime(checker=...)``) and observes every point-to-point send,
every completed match, every collective arrival, and every call-completion
clock reading.  It enforces, independently of the matching code it audits:

* **non-overtaking** — per ``(src, dest, tag)`` channel, messages match in
  send order (MPI 4.1 §3.5 ordering rule);
* **causality** — no message matches before it arrived at the receiver;
* **conservation** — every send is matched exactly once by the end of the
  run, and matches never outnumber sends;
* **collective completeness** — every collective invocation is entered by
  all ranks exactly once, and each rank's collective call sequence is
  gap-free (mismatched sequences show up as a partially-entered gate);
* **monotonic per-rank clocks** — a rank never observes virtual time
  running backwards across its MPI/compute call boundaries.

A violation raises :class:`InvariantViolation` naming the rule, the ranks
involved, and the virtual time — turning a silent mis-simulation into a
loud failure at the exact event that broke the contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.mailbox import RecvPost, SendArrival


class InvariantViolation(RuntimeError):
    """An MPI conformance invariant failed during a simulated run."""


class InvariantChecker:
    """Accumulates conformance state for one job (see module docstring).

    The checker is engine-agnostic on purpose: it keys on message
    identity and channel ordinals, not on mailbox internals, so it audits
    the indexed and linear matchers (and any future one) with the same
    code.
    """

    __slots__ = (
        "nprocs",
        "sends",
        "matches",
        "clock_checks",
        "_send_next",
        "_match_next",
        "_ordinal",
        "_clock",
        "_coll",
        "_coll_count",
    )

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.sends = 0
        self.matches = 0
        self.clock_checks = 0
        #: (src, dest, tag) -> next send ordinal to assign
        self._send_next: dict[tuple[int, int, int], int] = {}
        #: (src, dest, tag) -> next ordinal a match must consume
        self._match_next: dict[tuple[int, int, int], int] = {}
        #: id(arrival) -> (channel, ordinal) while the message is in flight
        self._ordinal: dict[int, tuple[tuple[int, int, int], int]] = {}
        #: rank -> last clock reading observed
        self._clock: dict[int, float] = {}
        #: (op, seq) -> ranks that entered this collective invocation
        self._coll: dict[tuple[str, int], set[int]] = {}
        #: rank -> number of collective calls made (must equal each seq)
        self._coll_count: dict[int, int] = {}

    # --- point-to-point -----------------------------------------------------

    def on_send(self, arrival: "SendArrival", src: int, dest: int) -> None:
        """A message entered the network (called from ``isend``)."""
        chan = (src, dest, arrival.tag)
        ordinal = self._send_next.get(chan, 0)
        self._send_next[chan] = ordinal + 1
        self._ordinal[id(arrival)] = (chan, ordinal)
        self.sends += 1

    def on_match(
        self, arrival: "SendArrival", post: "RecvPost", dest: int, now: float
    ) -> None:
        """A send/recv pair matched (called from ``complete_match``)."""
        entry = self._ordinal.pop(id(arrival), None)
        if entry is None:
            raise InvariantViolation(
                f"conservation: rank {dest} matched a message from rank "
                f"{arrival.src} (tag {arrival.tag}) that was never sent "
                f"through the audited send path (t={now:.6g})"
            )
        chan, ordinal = entry
        expected = self._match_next.get(chan, 0)
        if ordinal != expected:
            raise InvariantViolation(
                f"non-overtaking: channel src={chan[0]} dest={chan[1]} "
                f"tag={chan[2]} matched message #{ordinal} while #{expected} "
                f"is still outstanding (t={now:.6g}) — messages on one "
                "channel must match in send order"
            )
        self._match_next[chan] = expected + 1
        if not post.matches(arrival.src, arrival.tag):
            raise InvariantViolation(
                f"matching: rank {dest}'s receive (src={post.src}, "
                f"tag={post.tag}) was paired with a message from rank "
                f"{arrival.src} tag {arrival.tag} it cannot accept "
                f"(t={now:.6g})"
            )
        if now < arrival.arrival_time - 1e-12:
            raise InvariantViolation(
                f"causality: message src={arrival.src} dest={dest} "
                f"tag={arrival.tag} matched at t={now:.6g} before its "
                f"arrival at t={arrival.arrival_time:.6g}"
            )
        self.matches += 1

    # --- collectives --------------------------------------------------------

    def on_collective(self, rank: int, op: str, seq: int, now: float) -> None:
        """Rank ``rank`` entered its ``seq``-th collective, of kind ``op``."""
        count = self._coll_count.get(rank, 0)
        if seq != count:
            raise InvariantViolation(
                f"collective sequence: rank {rank} entered {op} with "
                f"sequence {seq} but has made {count} collective call(s) "
                f"(t={now:.6g})"
            )
        self._coll_count[rank] = count + 1
        entered = self._coll.setdefault((op, seq), set())
        if rank in entered:
            raise InvariantViolation(
                f"collective completeness: rank {rank} entered {op} "
                f"#{seq} twice (t={now:.6g})"
            )
        entered.add(rank)

    # --- clocks -------------------------------------------------------------

    def on_clock(self, rank: int, now: float) -> None:
        """Rank ``rank`` observed virtual time ``now`` at a call boundary."""
        self.clock_checks += 1
        last = self._clock.get(rank)
        if last is not None and now < last:
            raise InvariantViolation(
                f"monotonic clock: rank {rank} observed t={now:.6g} after "
                f"t={last:.6g} — virtual time ran backwards"
            )
        self._clock[rank] = now

    # --- finalize -----------------------------------------------------------

    def finalize(self, elapsed: float) -> None:
        """End-of-run conservation and completeness audit (called by the
        runtime after the event queues drain and mailboxes are idle)."""
        if self._ordinal:
            lost = sorted(chan for chan, _ in self._ordinal.values())[:8]
            raise InvariantViolation(
                f"conservation: {len(self._ordinal)} message(s) sent but "
                f"never matched by finalize (first channels: {lost})"
            )
        if self.sends != self.matches:
            raise InvariantViolation(
                f"conservation: {self.sends} send(s) vs {self.matches} "
                "match(es) at finalize"
            )
        incomplete = {
            key: entered
            for key, entered in self._coll.items()
            if len(entered) != self.nprocs
        }
        if incomplete:
            (op, seq), entered = sorted(incomplete.items())[0]
            missing = sorted(set(range(self.nprocs)) - entered)[:8]
            raise InvariantViolation(
                f"collective completeness: {op} #{seq} was entered by "
                f"{len(entered)} of {self.nprocs} ranks "
                f"(missing e.g. {missing}); {len(incomplete)} incomplete "
                "collective(s) in total"
            )
        for rank, last in self._clock.items():
            if last > elapsed + 1e-12:
                raise InvariantViolation(
                    f"monotonic clock: rank {rank} observed t={last:.6g} "
                    f"beyond the job makespan {elapsed:.6g}"
                )

    def summary(self) -> dict[str, int]:
        """Counts of audited events (stored in ``RunResult.meta``)."""
        return {
            "sends": self.sends,
            "matches": self.matches,
            "collectives": len(self._coll),
            "clock_checks": self.clock_checks,
        }
