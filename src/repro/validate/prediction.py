"""Prediction differential: every cheap tier must honor its stated band.

A :class:`~repro.predict.api.Prediction` carries a **band** — the tier's
own claimed bound on ``|predicted - DES| / DES``.  This module is the
enforcement side of that contract, checked against DES ground truth from
three directions:

1. **Analytic vs golden** — Tier A re-prices every golden fingerprint
   case (``tests/golden``) and must land within its calibrated
   per-benchmark band (:data:`repro.predict.analytic.ANALYTIC_BAND`) for
   both runtime and total energy.
2. **Surrogate exactness** — Tier B trained on the full golden corpus
   must reproduce every corpus point to round-off (it interpolates; a
   query at a trained point *is* the DES value).
3. **Surrogate holdout** — fresh DES runs at node counts *inside* the
   trained hull but absent from the corpus (2 nodes between the golden
   1- and 4-node points); the surrogate's interpolated answer must fall
   within its own stated (LOO-CV derived) band.

:func:`prediction_differential` returns a list of human-readable
failure strings — empty means every tier honored its claim.
"""

from __future__ import annotations

import os

#: Relative tolerance for "exact": interpolation at a trained point goes
#: through exp(log(...)) once, so allow a few ulps of round-off.
EXACT_RTOL = 1e-9

#: Node counts simulated fresh as interpolation holdouts (must lie
#: strictly inside the golden scales' hull).
HOLDOUT_SCALES = (2,)


def _default_golden_dir() -> str:
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))),
        "tests",
        "golden",
    )


def _rel(predicted: float, reference: float) -> float:
    return abs(predicted - reference) / reference


def prediction_differential(
    golden_dir: str | None = None,
    scales: tuple[int, ...] = (1, 4),
    holdout_scales: tuple[int, ...] = HOLDOUT_SCALES,
    benchmarks: tuple[str, ...] | None = None,
    clusters: tuple[str, ...] = ("A", "B"),
    sample_limit: int | None = None,
) -> list[str]:
    """Hold every prediction tier to its stated error band.

    Returns failure descriptions (empty list = pass).  ``benchmarks``
    restricts the sweep to a subset; ``holdout_scales=()`` skips the
    fresh DES holdout runs (the cheap, simulation-free subset).
    """
    from repro.machine.registry import get_cluster
    from repro.predict import (
        PredictionSpec,
        SurrogatePredictionTier,
        corpus_from_golden,
        predict,
    )
    from repro.predict.analytic import SAMPLE_LIMIT

    if golden_dir is None:
        golden_dir = _default_golden_dir()
    if sample_limit is None:
        sample_limit = SAMPLE_LIMIT

    failures: list[str] = []
    corpus = corpus_from_golden(golden_dir, scales=scales)
    if not len(corpus):
        return [f"prediction: no golden fingerprints under {golden_dir}"]

    cluster_names = {get_cluster(c).name for c in clusters}

    def selected(sample) -> bool:
        if sample.cluster not in cluster_names:
            return False
        return benchmarks is None or sample.benchmark in benchmarks

    # --- 1. analytic within its calibrated band at every golden point ---
    for s in corpus:
        if not selected(s):
            continue
        spec = PredictionSpec(
            benchmark=s.benchmark, cluster=s.cluster, nnodes=s.nnodes,
            suite=s.suite, nprocs=s.nprocs,
        )
        pred = predict(spec, tier="analytic", sample_limit=sample_limit)
        for label, got, want in (
            ("runtime", pred.runtime, s.elapsed),
            ("energy", pred.energy.total_energy, s.total_energy),
        ):
            err = _rel(got, want)
            if err > pred.band:
                failures.append(
                    f"analytic {s.benchmark}/{s.cluster}/{s.nnodes}n "
                    f"{label}: error {err:.3f} exceeds stated band "
                    f"{pred.band:.3f}"
                )

    # --- 2. surrogate exact at every trained corpus point ---------------
    tier_b = SurrogatePredictionTier(corpus)
    for s in corpus:
        if not selected(s):
            continue
        spec = PredictionSpec(
            benchmark=s.benchmark, cluster=s.cluster, nnodes=s.nnodes,
            suite=s.suite, nprocs=s.nprocs,
        )
        pred = tier_b.predict(spec)
        if pred is None:
            failures.append(
                f"surrogate {s.benchmark}/{s.cluster}/{s.nnodes}n: "
                f"no answer for a trained corpus point"
            )
            continue
        for label, got, want in (
            ("runtime", pred.runtime, s.elapsed),
            ("energy", pred.energy.total_energy, s.total_energy),
        ):
            err = _rel(got, want)
            if err > EXACT_RTOL:
                failures.append(
                    f"surrogate {s.benchmark}/{s.cluster}/{s.nnodes}n "
                    f"{label}: not exact at a trained point "
                    f"(error {err:.2e}; interpolation must reproduce the "
                    f"corpus bit-for-bit)"
                )

    # --- 3. surrogate holdout: fresh DES points inside the hull ---------
    if holdout_scales:
        from repro.harness.runner import run as des_run
        from repro.spechpc.suite import get_benchmark

        groups = [g for g in corpus.groups()
                  if (benchmarks is None or g[0] in benchmarks)
                  and g[1] in cluster_names and len(corpus.group(g)) >= 2]
        for bench_name, cluster_name, suite, threads in groups:
            cluster = get_cluster(cluster_name)
            bench = get_benchmark(bench_name)
            for nnodes in holdout_scales:
                pred = tier_b.predict(PredictionSpec(
                    benchmark=bench_name, cluster=cluster_name,
                    nnodes=nnodes, suite=suite, threads=threads,
                ))
                if pred is None or not pred.details.get("in_hull"):
                    failures.append(
                        f"surrogate {bench_name}/{cluster_name}/{nnodes}n: "
                        f"holdout point unexpectedly outside the hull"
                    )
                    continue
                truth = des_run(
                    bench, cluster, nprocs=nnodes * cluster.cores_per_node,
                    suite=suite, threads_per_rank=threads,
                )
                for label, got, want in (
                    ("runtime", pred.runtime, truth.elapsed),
                    ("energy", pred.energy.total_energy,
                     truth.energy.total_energy),
                ):
                    err = _rel(got, want)
                    if err > pred.band:
                        failures.append(
                            f"surrogate {bench_name}/{cluster_name}/"
                            f"{nnodes}n {label}: holdout error {err:.3f} "
                            f"exceeds stated band {pred.band:.3f}"
                        )
    return failures
