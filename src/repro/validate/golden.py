"""Golden result fingerprints.

A *fingerprint* is a stable SHA-256 digest over a canonical record of
everything a run's result asserts about the model: full-run runtime,
per-rank compute/wait breakdown, message counts and bytes, and the
energy reading.  Floats are encoded with :meth:`float.hex` so the record
is exact — two fingerprints are equal iff the results are bit-identical
— and cross-platform, since the pricing model is pure IEEE-754 double
arithmetic with no platform-dependent libm calls in the hashed fields.

The golden corpus lives in ``tests/golden/`` as one JSON file per
(benchmark, cluster, scale) case: all nine Table 1 benchmarks × both
clusters at 1-node and 4-node scale.  ``tests/test_golden.py`` replays
every case and compares digests; on mismatch, :func:`record_diff` names
the first field that moved, so "a golden changed" comes with "and here
is exactly what changed".

Regeneration (``repro validate --regen``) refuses to run on a dirty git
tree: a golden update must be attributable to exactly one commit's code
change, never to uncommitted local state.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.harness.results import RunResult
from repro.machine.registry import get_cluster
from repro.spechpc.suite import SUITE_ORDER, get_benchmark

#: Bump on incompatible canonical-record change (forces full regen).
SCHEMA_VERSION = 1

#: Cluster short names in corpus order.
CLUSTER_NAMES = ("A", "B")

#: Node counts covered by the checked-in corpus.
DEFAULT_SCALES = (1, 4)


def _hex(x: float) -> str:
    """Exact, platform-independent float encoding."""
    return float(x).hex()


def canonical_record(result: RunResult) -> dict[str, Any]:
    """The canonical (deterministically ordered, exactly encoded) view of
    a :class:`RunResult` that the fingerprint hashes.

    Dict-valued fields are emitted with sorted keys and per-rank arrays
    in rank order, so the record is independent of accumulation order;
    ``rank_wait`` sums the MPI_* kinds per rank in sorted-kind order for
    the same reason.
    """
    counters = {k: _hex(result.counters[k]) for k in sorted(result.counters)}
    time_by_kind = {
        k: _hex(result.time_by_kind[k]) for k in sorted(result.time_by_kind)
    }
    rank_compute: list[str] = []
    rank_wait: list[str] = []
    for per_rank in result.rank_times or ():
        rank_compute.append(_hex(per_rank.get("compute", 0.0)))
        wait = 0.0
        for kind in sorted(per_rank):
            if kind.startswith("MPI_"):
                wait += per_rank[kind]
        rank_wait.append(_hex(wait))
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": result.benchmark,
        "cluster": result.cluster,
        "suite": result.suite,
        "nprocs": result.nprocs,
        "nnodes": result.nnodes,
        "elapsed": _hex(result.elapsed),
        "sim_elapsed": _hex(result.sim_elapsed),
        "step_scale": _hex(result.step_scale),
        "counters": counters,
        "time_by_kind": time_by_kind,
        "energy": {
            "elapsed": _hex(result.energy.elapsed),
            "chip_energy": _hex(result.energy.chip_energy),
            "dram_energy": _hex(result.energy.dram_energy),
        },
        "rank_compute": rank_compute,
        "rank_wait": rank_wait,
    }


@dataclass(frozen=True)
class Fingerprint:
    """A digest plus the canonical record it was computed from."""

    digest: str
    record: dict[str, Any]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fingerprint):
            return self.digest == other.digest
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.digest)


def fingerprint(result: RunResult) -> Fingerprint:
    """Fingerprint a run result (see module docstring for the contract)."""
    import hashlib

    record = canonical_record(result)
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return Fingerprint(
        digest=hashlib.sha256(payload.encode()).hexdigest(), record=record
    )


def record_diff(a: dict[str, Any], b: dict[str, Any]) -> Optional[str]:
    """First differing path between two canonical records, as
    ``"path: a-value != b-value"`` — or ``None`` if identical.

    Walks keys in sorted order so the reported field is deterministic.
    """

    def walk(x: Any, y: Any, path: str) -> Optional[str]:
        if type(x) is not type(y):
            return f"{path}: type {type(x).__name__} != {type(y).__name__}"
        if isinstance(x, dict):
            for k in sorted(set(x) | set(y)):
                if k not in x:
                    return f"{path}.{k}: missing on left"
                if k not in y:
                    return f"{path}.{k}: missing on right"
                found = walk(x[k], y[k], f"{path}.{k}")
                if found:
                    return found
            return None
        if isinstance(x, list):
            if len(x) != len(y):
                return f"{path}: length {len(x)} != {len(y)}"
            for i, (xi, yi) in enumerate(zip(x, y)):
                found = walk(xi, yi, f"{path}[{i}]")
                if found:
                    return found
            return None
        if x != y:
            detail = ""
            if isinstance(x, str) and isinstance(y, str):
                try:  # show hex floats as numbers too
                    detail = f" ({float.fromhex(x):.12g} vs {float.fromhex(y):.12g})"
                except ValueError:
                    pass
            return f"{path}: {x!r} != {y!r}{detail}"
        return None

    return walk(a, b, "record")


# --- the golden corpus -------------------------------------------------------


@dataclass(frozen=True)
class GoldenCase:
    """One (benchmark, cluster, scale) point of the golden corpus."""

    benchmark: str
    cluster: str
    nnodes: int
    nprocs: int
    suite: str = "tiny"

    @property
    def slug(self) -> str:
        return f"{self.benchmark}_{self.cluster}_{self.nnodes}node"


def golden_cases(scales: tuple[int, ...] = DEFAULT_SCALES) -> Iterator[GoldenCase]:
    """All corpus cases: 9 benchmarks × 2 clusters × the given scales,
    fully populated nodes (nprocs = nnodes × cores/node)."""
    for name in SUITE_ORDER:
        for cname in CLUSTER_NAMES:
            cluster = get_cluster(cname)
            for nnodes in scales:
                yield GoldenCase(
                    benchmark=name,
                    cluster=cname,
                    nnodes=nnodes,
                    nprocs=nnodes * cluster.cores_per_node,
                )


def case_path(golden_dir: str, case: GoldenCase) -> str:
    return os.path.join(golden_dir, f"{case.slug}.json")


def run_case(case: GoldenCase) -> RunResult:
    """Execute one golden case with the default (production) flags."""
    from repro.harness.runner import run  # lazy: keep import layering light

    return run(
        get_benchmark(case.benchmark),
        get_cluster(case.cluster),
        case.nprocs,
        suite=case.suite,
    )


def compute_fingerprint(case: GoldenCase) -> Fingerprint:
    return fingerprint(run_case(case))


def save_fingerprint(golden_dir: str, case: GoldenCase, fp: Fingerprint) -> str:
    os.makedirs(golden_dir, exist_ok=True)
    path = case_path(golden_dir, case)
    doc = {"digest": fp.digest, "record": fp.record}
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_fingerprint(golden_dir: str, case: GoldenCase) -> Fingerprint:
    path = case_path(golden_dir, case)
    with open(path) as fh:
        doc = json.load(fh)
    return Fingerprint(digest=doc["digest"], record=doc["record"])


def check_case(golden_dir: str, case: GoldenCase) -> Optional[str]:
    """Re-run one case against its checked-in golden.

    Returns ``None`` on a match, or a human-readable mismatch message
    naming the first differing canonical-record field.
    """
    expected = load_fingerprint(golden_dir, case)
    actual = compute_fingerprint(case)
    if actual.digest == expected.digest:
        return None
    diff = record_diff(expected.record, actual.record)
    return (
        f"{case.slug}: fingerprint {actual.digest[:16]}… != golden "
        f"{expected.digest[:16]}…; first difference: {diff}"
    )


# --- regeneration ------------------------------------------------------------


class DirtyTreeError(RuntimeError):
    """Refusing to regenerate goldens on a dirty git tree."""


def tree_is_dirty(root: str) -> bool:
    """True if tracked files under ``root`` have uncommitted changes.

    Untracked files are ignored (the regen itself creates golden files
    that may be untracked on first run).  A missing git binary or a
    non-repo directory counts as dirty: no provenance, no regen.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return True
    if out.returncode != 0:
        return True
    return bool(out.stdout.strip())


def regenerate(
    golden_dir: str,
    scales: tuple[int, ...] = DEFAULT_SCALES,
    force: bool = False,
    repo_root: Optional[str] = None,
) -> list[str]:
    """Recompute and write every corpus fingerprint.

    Refuses on a dirty tree unless ``force=True`` — a golden update must
    be attributable to exactly one commit.  Returns the written paths.
    """
    root = repo_root or os.path.dirname(os.path.abspath(golden_dir))
    if not force and tree_is_dirty(root):
        raise DirtyTreeError(
            "git tree is dirty — commit (or stash) code changes before "
            "regenerating goldens so every golden update is attributable "
            "to one commit; use --force to override"
        )
    return [
        save_fingerprint(golden_dir, case, compute_fingerprint(case))
        for case in golden_cases(scales)
    ]
