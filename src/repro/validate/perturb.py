"""Schedule-perturbation determinism sanitizer — a race detector for
the DES.

The simulator's heap breaks same-timestamp ties by insertion counter and
the mailboxes deliver same-time arrivals in a fixed order.  Those
tie-breaks are *conveniences*, not semantics: MPI leaves same-time
cross-channel arrival order unspecified, and a well-formed model's
results must not depend on which legal order the engine happens to pick.
Any dependence is the DES analogue of a data race — invisible in normal
runs (the fixed tie-break masks it) and primed to surface as a baffling
result change after an unrelated refactor shifts event insertion order.

:func:`sanitize` makes such races loud: it re-runs a job ``shuffles``
times with seeded shuffles of exactly the two legal freedoms (the
``tie_seed`` hook in :class:`~repro.des.simulator.Simulator` and the
``tie_shuffle`` hook in :class:`~repro.smpi.mailbox.Mailbox`) and
asserts the result fingerprint never moves.  Per-channel FIFO order,
posted-receive order, and cross-time causality are never perturbed —
only orders MPI itself leaves open.

On divergence the offending seed is replayed with full traces and the
report pinpoints the first event (rank, time, kind) that differs from
the baseline timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark
from repro.validate.golden import Fingerprint, fingerprint, record_diff


@dataclass(frozen=True)
class Divergence:
    """One perturbation seed under which the fingerprint moved."""

    seed: int
    #: first differing canonical-record field ("path: a != b")
    field: str
    #: first differing trace event, or None if the timelines agree to
    #: the end (the divergence is then aggregate-only, e.g. energy)
    first_event: Optional[str]

    def summary(self) -> str:
        msg = f"seed {self.seed}: {self.field}"
        if self.first_event:
            msg += f"; first diverging event: {self.first_event}"
        return msg


@dataclass(frozen=True)
class SanitizerReport:
    """Outcome of one sanitizer sweep over a job."""

    benchmark: str
    cluster: str
    nprocs: int
    suite: str
    shuffles: int
    baseline_digest: str
    divergences: tuple[Divergence, ...]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        head = (
            f"{self.benchmark} on {self.cluster} nprocs={self.nprocs}: "
            f"{self.shuffles} shuffle(s)"
        )
        if self.ok:
            return f"{head} — invariant"
        lines = [f"{head} — {len(self.divergences)} DIVERGENCE(S)"]
        lines += ["  " + d.summary() for d in self.divergences]
        return "\n".join(lines)


def _canonical_events(trace: Any) -> list[tuple]:
    """Trace intervals in a schedule-independent order.

    Per rank, intervals are recorded in program order and a rank's
    program is deterministic, so sorting by (rank, t0, t1, kind) yields
    the same sequence for every legal schedule of a well-formed model.
    """
    return sorted(
        (iv.rank, iv.t0, iv.t1, iv.kind) for iv in trace.intervals
    )


def _first_event_diff(base: Any, pert: Any) -> Optional[str]:
    a, b = _canonical_events(base), _canonical_events(pert)
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return (
                f"event #{i}: baseline rank={ea[0]} t0={ea[1]:.9g} "
                f"t1={ea[2]:.9g} kind={ea[3]} vs perturbed rank={eb[0]} "
                f"t0={eb[1]:.9g} t1={eb[2]:.9g} kind={eb[3]}"
            )
    if len(a) != len(b):
        return (
            f"event #{min(len(a), len(b))}: timelines have {len(a)} vs "
            f"{len(b)} events"
        )
    return None


def sanitize(
    benchmark: Union[str, Benchmark],
    cluster: Union[str, ClusterSpec],
    nprocs: int,
    suite: str = "tiny",
    shuffles: int = 20,
    base_seed: int = 1,
    sim_steps: Optional[int] = None,
) -> SanitizerReport:
    """Assert fingerprint invariance under ``shuffles`` seeded schedule
    perturbations (seeds ``base_seed .. base_seed+shuffles-1``).

    The baseline is the default-flag run — so this simultaneously checks
    that the perturbed configuration (which forces the pure-heap engine
    and full fidelity) agrees with the production fast paths.
    """
    from repro.harness.runner import run  # lazy: harness imports us
    from repro.machine.registry import get_cluster
    from repro.spechpc.suite import get_benchmark

    if shuffles < 1:
        raise ValueError(f"shuffles must be >= 1 (got {shuffles})")
    bench = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    clus = get_cluster(cluster) if isinstance(cluster, str) else cluster

    baseline = run(bench, clus, nprocs, suite=suite, sim_steps=sim_steps)
    base_fp = fingerprint(baseline)

    divergences: list[Divergence] = []
    for seed in range(base_seed, base_seed + shuffles):
        perturbed = run(
            bench, clus, nprocs, suite=suite, sim_steps=sim_steps,
            perturb_seed=seed,
        )
        pert_fp = fingerprint(perturbed)
        if pert_fp == base_fp:
            continue
        divergences.append(
            _diagnose(bench, clus, nprocs, suite, sim_steps, seed,
                      base_fp, pert_fp)
        )

    return SanitizerReport(
        benchmark=bench.name,
        cluster=clus.name,
        nprocs=nprocs,
        suite=suite,
        shuffles=shuffles,
        baseline_digest=base_fp.digest,
        divergences=tuple(divergences),
    )


def _diagnose(
    bench: Benchmark,
    clus: ClusterSpec,
    nprocs: int,
    suite: str,
    sim_steps: Optional[int],
    seed: int,
    base_fp: Fingerprint,
    pert_fp: Fingerprint,
) -> Divergence:
    """Replay a diverging seed with traces and localize the first
    differing event."""
    from repro.harness.runner import run

    field = record_diff(base_fp.record, pert_fp.record) or "<digest only>"
    traced_base = run(
        bench, clus, nprocs, suite=suite, sim_steps=sim_steps, trace=True
    )
    traced_pert = run(
        bench, clus, nprocs, suite=suite, sim_steps=sim_steps, trace=True,
        perturb_seed=seed,
    )
    first = _first_event_diff(traced_base.trace, traced_pert.trace)
    return Divergence(seed=seed, field=field, first_event=first)
