"""repro — simulation-based reproduction of the SPEChpc 2021 Ice Lake /
Sapphire Rapids performance and energy case study (SC 2023).

Public API highlights:

>>> from repro import run, get_benchmark, CLUSTER_A
>>> result = run(get_benchmark("tealeaf"), CLUSTER_A, nprocs=72)
>>> round(result.mem_bandwidth / 1e9)  # saturated node bandwidth, GB/s
307

Subpackages
-----------
``repro.machine``   cluster/CPU/network models (Table 3 registries)
``repro.des``       discrete-event simulation engine
``repro.smpi``      simulated MPI runtime
``repro.model``     execution (Roofline/ECM), power, alignment models
``repro.perfmon``   LIKWID/RAPL/ITAC-style instrumentation
``repro.spechpc``   the nine benchmarks + executable mini-kernels
``repro.harness``   runners, sweeps, reporting
``repro.analysis``  efficiencies, scaling cases, Z-plots, comparisons
"""

from repro.harness import run, scaling_sweep
from repro.machine import CLUSTER_A, CLUSTER_B, get_cluster
from repro.spechpc import all_benchmarks, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "run",
    "scaling_sweep",
    "get_benchmark",
    "all_benchmarks",
    "get_cluster",
    "CLUSTER_A",
    "CLUSTER_B",
    "__version__",
]
