"""Fault application engine.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into the three runtime hooks:

* **compute stretching** — :meth:`compute_seconds` maps a fault-free
  compute duration to the wall duration under the rank's active slow-rank
  windows and OS-noise bursts, by piecewise integration of the
  instantaneous slowdown factor (windows and bursts make the factor a
  step function of simulated time);
* **link degradation** — :meth:`transfer_time` / :meth:`link_latency` /
  :meth:`rendezvous_link` price point-to-point traffic with the degraded
  bandwidth/latency of any matching :class:`~repro.faults.plan.
  DegradedLink` window;
* **crash schedule** — :attr:`crashes` is consumed by
  :meth:`repro.smpi.runtime.MpiRuntime.launch`, which kills the rank's
  process at the planned time.

Pricing itself (:class:`~repro.model.execution.ExecutionModel`) stays
fault-free: like per-rank noise, fault stretching is applied *after*
pricing, so the memoized phase-cost cache remains valid under any plan
and an empty plan is bit-identical to no plan at all.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.faults.plan import DegradedLink, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.network import NetworkSpec

_INF = math.inf

#: Piecewise-integration segment budget per compute phase.  A phase that
#: spans more fault-window boundaries than this finishes at the factor of
#: the last inspected segment (a deliberate approximation that keeps the
#: hook O(1) amortized; with sane plans it is never reached).
MAX_SEGMENTS = 10_000


class FaultInjector:
    """Applies one :class:`FaultPlan` to one run.

    The injector is stateless across calls — every query is a pure
    function of (rank, time), so it is safe to share between the runtime
    and the communicators of a run.
    """

    __slots__ = ("plan", "_slow_by_rank", "_noise_by_rank", "_links", "_crashes")

    def __init__(self, plan: FaultPlan, nprocs: Optional[int] = None) -> None:
        if nprocs is not None:
            plan.validate_for(nprocs)
        self.plan = plan
        # per-rank compute-fault tables; rank -> tuple of specs (None key
        # holds the all-rank noise)
        self._slow_by_rank: dict[int, tuple] = {}
        for s in plan.slow_ranks:
            self._slow_by_rank.setdefault(s.rank, ())
            self._slow_by_rank[s.rank] += (s,)
        self._noise_by_rank: dict[Optional[int], tuple] = {}
        for n in plan.os_noise:
            self._noise_by_rank.setdefault(n.rank, ())
            self._noise_by_rank[n.rank] += (n,)
        self._links: tuple[DegradedLink, ...] = plan.links
        self._crashes = plan.crashes

    # --- crash schedule -----------------------------------------------------

    @property
    def crashes(self):
        return self._crashes

    # --- compute stretching ---------------------------------------------------

    def affects_compute(self, rank: int) -> bool:
        """True if any slow-rank window or noise source targets ``rank``."""
        return (
            rank in self._slow_by_rank
            or rank in self._noise_by_rank
            or None in self._noise_by_rank
        )

    def _compute_faults(self, rank: int):
        slows = self._slow_by_rank.get(rank, ())
        noises = self._noise_by_rank.get(rank, ()) + self._noise_by_rank.get(
            None, ()
        )
        return slows, noises

    def _factor_at(self, slows, noises, t: float) -> float:
        f = 1.0
        for s in slows:
            if s.t_start <= t < s.t_end:
                f *= s.factor
        for n in noises:
            if t >= n.phase and (t - n.phase) % n.period < n.duration:
                f *= n.factor
        return f

    def _next_boundary(self, slows, noises, t: float) -> float:
        """Earliest fault-window edge strictly after ``t`` (inf if none)."""
        b = _INF
        for s in slows:
            if t < s.t_start:
                b = min(b, s.t_start)
            elif t < s.t_end:
                b = min(b, s.t_end)
        for n in noises:
            if t < n.phase:
                b = min(b, n.phase)
                continue
            k, offset = divmod(t - n.phase, n.period)
            if offset < n.duration:
                edge = n.phase + k * n.period + n.duration   # burst end
            else:
                edge = n.phase + (k + 1) * n.period          # next burst
            b = min(b, edge)
        return b

    def compute_seconds(self, rank: int, t0: float, seconds: float) -> float:
        """Wall duration of ``seconds`` of fault-free compute started at
        ``t0`` by ``rank``, under the rank's slow windows and noise
        bursts (piecewise-constant slowdown integration)."""
        if seconds <= 0.0:
            return seconds
        slows, noises = self._compute_faults(rank)
        if not slows and not noises:
            return seconds
        t = t0
        remaining = seconds
        f = 1.0
        for _ in range(MAX_SEGMENTS):
            f = self._factor_at(slows, noises, t)
            boundary = self._next_boundary(slows, noises, t)
            if boundary == _INF:
                return (t + remaining * f) - t0
            span = boundary - t
            progressed = span / f
            if progressed >= remaining:
                return (t + remaining * f) - t0
            remaining -= progressed
            t = boundary
        # segment budget exhausted: finish at the last factor seen
        return (t + remaining * f) - t0

    # --- link degradation -----------------------------------------------------

    def _link_state(
        self, src_node: int, dst_node: int, now: float
    ) -> tuple[float, float, float]:
        """(bandwidth factor, latency factor, extra latency) on the path."""
        bwf, latf, extra = 1.0, 1.0, 0.0
        for lk in self._links:
            if not (lk.t_start <= now < lk.t_end):
                continue
            fwd = (lk.src_node is None or lk.src_node == src_node) and (
                lk.dst_node is None or lk.dst_node == dst_node
            )
            rev = lk.symmetric and (
                (lk.src_node is None or lk.src_node == dst_node)
                and (lk.dst_node is None or lk.dst_node == src_node)
            )
            if fwd or rev:
                bwf *= lk.bandwidth_factor
                latf *= lk.latency_factor
                extra += lk.extra_latency
        return bwf, latf, extra

    def transfer_time(
        self,
        net: "NetworkSpec",
        src_node: int,
        dst_node: int,
        nbytes: int,
        intra: bool,
        now: float,
    ) -> float:
        """Degraded equivalent of :meth:`NetworkSpec.transfer_time`."""
        bwf, latf, extra = self._link_state(src_node, dst_node, now)
        if intra:
            lat, bw = net.intra_node_latency, net.intra_node_bandwidth
        else:
            lat, bw = net.latency, net.effective_bandwidth
        return lat * latf + extra + nbytes / (bw * bwf)

    def link_latency(
        self,
        net: "NetworkSpec",
        src_node: int,
        dst_node: int,
        intra: bool,
        now: float,
    ) -> float:
        """Degraded small-message latency on the path."""
        _, latf, extra = self._link_state(src_node, dst_node, now)
        lat = net.intra_node_latency if intra else net.latency
        return lat * latf + extra

    def rendezvous_link(
        self,
        net: "NetworkSpec",
        src_node: int,
        dst_node: int,
        intra: bool,
        now: float,
    ) -> tuple[float, float]:
        """(bandwidth, latency) for a rendezvous transfer on the path."""
        bwf, latf, extra = self._link_state(src_node, dst_node, now)
        if intra:
            bw, lat = net.intra_node_bandwidth, net.intra_node_latency
        else:
            bw, lat = net.effective_bandwidth, net.latency
        return bw * bwf, lat * latf + extra

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.plan
        return (
            f"<FaultInjector slow={len(p.slow_ranks)} noise={len(p.os_noise)} "
            f"links={len(p.links)} crashes={len(p.crashes)}>"
        )
