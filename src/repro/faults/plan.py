"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of what
goes wrong during a run:

* :class:`SlowRank` — one rank computes ``factor`` times slower inside a
  simulated-time window (a thermally throttled or mis-clocked node, the
  cause of the paper's lbm barrier skew);
* :class:`OsNoise` — periodic bursts during which affected ranks compute
  ``factor`` times slower (daemon/OS jitter, cf. the run-to-run
  variability Brunst et al. report for SPEChpc campaigns);
* :class:`DegradedLink` — bandwidth/latency degradation between two nodes
  (or any pair) inside a time window (a flapping InfiniBand link);
* :class:`RankCrash` — the rank's process stops executing at simulated
  time ``time`` (node failure).

Plans are value objects: frozen dataclasses of tuples, hashable and
picklable, so they ride along in :class:`~repro.harness.parallel.RunSpec`
across process boundaries.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Optional

_INF = math.inf


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(msg)


@dataclass(frozen=True)
class SlowRank:
    """Rank ``rank`` computes ``factor`` x slower in [t_start, t_end)."""

    rank: int
    factor: float
    t_start: float = 0.0
    t_end: float = _INF

    def __post_init__(self) -> None:
        _require(self.rank >= 0, f"slow-rank rank must be >= 0, got {self.rank}")
        _require(self.factor >= 1.0, f"slow-rank factor must be >= 1, got {self.factor}")
        _require(self.t_start >= 0.0, "slow-rank t_start must be >= 0")
        _require(self.t_end > self.t_start, "slow-rank window must be non-empty")


@dataclass(frozen=True)
class OsNoise:
    """Periodic compute-stall bursts.

    Bursts start at ``phase + k * period`` and last ``duration`` seconds;
    during a burst the affected rank(s) compute ``factor`` x slower
    (``factor`` large approximates a full stall).  ``rank=None`` afflicts
    every rank (system-wide daemon activity).
    """

    period: float
    duration: float
    factor: float
    rank: Optional[int] = None
    phase: float = 0.0

    def __post_init__(self) -> None:
        _require(self.period > 0.0, "os-noise period must be > 0")
        _require(0.0 < self.duration <= self.period,
                 "os-noise duration must be in (0, period]")
        _require(self.factor >= 1.0, f"os-noise factor must be >= 1, got {self.factor}")
        _require(self.phase >= 0.0, "os-noise phase must be >= 0")
        if self.rank is not None:
            _require(self.rank >= 0, "os-noise rank must be >= 0")


@dataclass(frozen=True)
class DegradedLink:
    """Bandwidth/latency degradation on a node-to-node path.

    ``src_node``/``dst_node`` of ``None`` match any node; a link with
    ``src_node == dst_node`` (or wildcards) also degrades intra-node
    transport.  ``symmetric`` applies the fault in both directions.
    """

    src_node: Optional[int] = None
    dst_node: Optional[int] = None
    bandwidth_factor: float = 1.0   # multiplies bandwidth, in (0, 1]
    latency_factor: float = 1.0    # multiplies latency, >= 1
    extra_latency: float = 0.0     # additive latency [s]
    t_start: float = 0.0
    t_end: float = _INF
    symmetric: bool = True

    def __post_init__(self) -> None:
        _require(0.0 < self.bandwidth_factor <= 1.0,
                 "link bandwidth_factor must be in (0, 1]")
        _require(self.latency_factor >= 1.0, "link latency_factor must be >= 1")
        _require(self.extra_latency >= 0.0, "link extra_latency must be >= 0")
        _require(self.t_start >= 0.0, "link t_start must be >= 0")
        _require(self.t_end > self.t_start, "link window must be non-empty")
        for node in (self.src_node, self.dst_node):
            if node is not None:
                _require(node >= 0, "link node indices must be >= 0")


@dataclass(frozen=True)
class RankCrash:
    """Rank ``rank`` stops executing at simulated time ``time``.

    Peers blocked on the crashed rank deadlock, which the engine surfaces
    as a :class:`~repro.des.simulator.DeadlockError` naming the crash; a
    job that completes despite the crash raises
    :class:`~repro.smpi.diagnostics.RankCrashedError` at finalize (MPI
    semantics: a lost rank fails the job either way).
    """

    rank: int
    time: float

    def __post_init__(self) -> None:
        _require(self.rank >= 0, f"crash rank must be >= 0, got {self.rank}")
        _require(self.time >= 0.0, "crash time must be >= 0")


_FAULT_TYPES = {
    "slow_ranks": SlowRank,
    "os_noise": OsNoise,
    "links": DegradedLink,
    "crashes": RankCrash,
}


@dataclass(frozen=True)
class FaultPlan:
    """The full fault scenario of one run."""

    slow_ranks: tuple[SlowRank, ...] = ()
    os_noise: tuple[OsNoise, ...] = ()
    links: tuple[DegradedLink, ...] = ()
    crashes: tuple[RankCrash, ...] = ()

    def __post_init__(self) -> None:
        # JSON/dict construction hands over lists; normalize to tuples so
        # the plan stays hashable
        for name, cls in _FAULT_TYPES.items():
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
            for item in getattr(self, name):
                _require(
                    isinstance(item, cls),
                    f"{name} entries must be {cls.__name__}, got {type(item).__name__}",
                )
        crashed = [c.rank for c in self.crashes]
        _require(len(crashed) == len(set(crashed)),
                 "a rank may crash at most once")

    @property
    def empty(self) -> bool:
        return not (self.slow_ranks or self.os_noise or self.links or self.crashes)

    def validate_for(self, nprocs: int) -> None:
        """Check every referenced rank exists in an ``nprocs``-rank job."""
        for f in (*self.slow_ranks, *self.crashes):
            _require(f.rank < nprocs,
                     f"fault references rank {f.rank} but the job has {nprocs} ranks")
        for n in self.os_noise:
            if n.rank is not None:
                _require(n.rank < nprocs,
                         f"os-noise references rank {n.rank} but the job has "
                         f"{nprocs} ranks")

    # --- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name in _FAULT_TYPES:
            items = getattr(self, name)
            if items:
                out[name] = [
                    {k: (None if v is None else v)
                     for k, v in asdict(item).items() if v != _INF}
                    for item in items
                ]
        return out

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        unknown = set(doc) - set(_FAULT_TYPES)
        if unknown:
            raise ValueError(
                f"unknown fault plan keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_FAULT_TYPES)}"
            )
        kwargs = {}
        for name, fault_cls in _FAULT_TYPES.items():
            entries = doc.get(name, [])
            allowed = {f.name for f in fields(fault_cls)}
            parsed = []
            for entry in entries:
                bad = set(entry) - allowed
                if bad:
                    raise ValueError(
                        f"unknown {fault_cls.__name__} fields {sorted(bad)}; "
                        f"expected a subset of {sorted(allowed)}"
                    )
                parsed.append(fault_cls(**entry))
            kwargs[name] = tuple(parsed)
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
