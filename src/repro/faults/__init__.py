"""Fault-injection subsystem.

The paper's most interesting results are robustness phenomena — lbm's
barrier skew caused by a single slow rank (inset of Fig. 2(h)) and
minisweep's rendezvous serialization ripple — both uncovered with ITAC
tracing.  This package lets the simulator produce those phenomena *on
purpose*: a declarative :class:`FaultPlan` describes slow ranks, OS-noise
bursts, degraded links, and rank crashes; a :class:`FaultInjector` applies
it through two hooks (compute stretching in
:meth:`repro.smpi.comm.Communicator.compute`, link degradation in
:class:`repro.smpi.runtime.MpiRuntime`) without touching benchmark code.

A fault-free plan is bit-identical to a run without one: the hooks are
skipped entirely when no injector is attached.
"""

from repro.faults.plan import (
    DegradedLink,
    FaultPlan,
    OsNoise,
    RankCrash,
    SlowRank,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "SlowRank",
    "OsNoise",
    "DegradedLink",
    "RankCrash",
]
