"""Canonical request specs and their content-address keys.

A serving request names a point of the simulation space.  Its identity
— the cache key, the single-flight key, the store key — is the SHA-256
digest of a *canonical record*: a deterministically ordered JSON
document of every field that can change the simulated result, following
the :mod:`repro.validate.golden` fingerprint idiom (sorted keys, exact
encodings, schema stamp).  Two requests collide iff a direct
:func:`repro.harness.runner.run` would produce bit-identical results
for both.

Engine-mode flags (``fast_path``, ``matcher``, ...) are deliberately
*not* part of the identity: the validation subsystem proves all engine
modes bit-identical, so they select an implementation, not a result.
Fields that do change results — benchmark, cluster, scale, suite,
threads, seed/noise, explicit step counts, fault plans — are all keyed.

A request may name a :class:`~repro.scenarios.Scenario` instead of a
cluster — a library/zoo reference string or an inline scenario
document (``"scenario": "zoo/cascadelake"``).  The scenario supplies
the machine, a fixed frequency plan, a fault plan, and a default suite;
the scenario's parameter-level :attr:`~repro.scenarios.Scenario.digest`
joins the canonical record, so two scenarios that resolve to different
parameters can never alias one key.  Segmented frequency plans are
rejected here — the server prices single runs, and a multi-frequency
trajectory is not one run (use
:func:`repro.scenarios.run_frequency_plan` locally).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: Bump on incompatible canonical-record change (old store records then
#: key differently and simply miss — recompute-and-rewrite, never a
#: wrong answer).  2: scenario digest joined the record, ``suite``
#: became resolution-ordered (request > scenario > "tiny").
SPEC_SCHEMA = 2


class SpecError(ValueError):
    """A malformed or unsatisfiable request spec (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class ServeSpec:
    """One canonicalized serving request.

    ``nprocs=None`` means fully populated nodes (``nnodes`` x cores per
    node — the paper's multi-node axis); the resolved rank count is part
    of the canonical record so a later cluster-table change cannot alias
    two different runs onto one key.  Exactly one of ``cluster`` and
    ``scenario`` must be given; ``suite=None`` resolves to the
    scenario's suite, then ``"tiny"``.
    """

    benchmark: str
    cluster: Optional[str] = None
    nnodes: int = 1
    nprocs: Optional[int] = None
    suite: Optional[str] = None
    threads: int = 1
    seed: int = 0
    noise_sigma: float = 0.0
    sim_steps: Optional[int] = None
    faults: Optional[dict[str, Any]] = field(default=None, hash=False)
    #: scenario reference (string) or inline scenario document (dict)
    scenario: Optional[Any] = field(default=None, hash=False)

    @classmethod
    def from_request(cls, doc: dict[str, Any]) -> "ServeSpec":
        """Validate and canonicalize one request body.

        Unknown fields are rejected loudly — a typo like ``"node"`` for
        ``"nnodes"`` must not silently price a different run.
        """
        _require(isinstance(doc, dict), "request spec must be a JSON object")
        allowed = {
            "benchmark", "cluster", "nnodes", "nprocs", "suite",
            "threads", "seed", "noise_sigma", "sim_steps", "faults",
            "scenario",
        }
        unknown = sorted(set(doc) - allowed)
        _require(not unknown, f"unknown spec field(s): {', '.join(unknown)}")
        _require("benchmark" in doc, "spec needs a 'benchmark'")
        _require(
            "cluster" in doc or "scenario" in doc,
            "spec needs a 'cluster' or a 'scenario'",
        )
        try:
            spec = cls(
                benchmark=str(doc["benchmark"]),
                cluster=(
                    None if doc.get("cluster") is None else str(doc["cluster"])
                ),
                nnodes=int(doc.get("nnodes", 1)),
                nprocs=None if doc.get("nprocs") is None else int(doc["nprocs"]),
                suite=None if doc.get("suite") is None else str(doc["suite"]),
                threads=int(doc.get("threads", 1)),
                seed=int(doc.get("seed", 0)),
                noise_sigma=float(doc.get("noise_sigma", 0.0)),
                sim_steps=(
                    None if doc.get("sim_steps") is None
                    else int(doc["sim_steps"])
                ),
                faults=doc.get("faults"),
                scenario=doc.get("scenario"),
            )
        except (TypeError, ValueError) as exc:
            raise SpecError(f"malformed spec field: {exc}") from exc
        spec.validate()
        return spec

    # --- scenario resolution ----------------------------------------------

    def scenario_obj(self):
        """The resolved :class:`~repro.scenarios.Scenario`, or ``None``."""
        if self.scenario is None:
            return None
        from repro.scenarios import Scenario, ScenarioError, load_scenario

        try:
            if isinstance(self.scenario, str):
                return load_scenario(self.scenario)
            scenario = Scenario.from_dict(self.scenario)
            scenario.validate()
            return scenario
        except ScenarioError as exc:
            raise SpecError(f"bad scenario: {exc}") from exc

    @property
    def resolved_suite(self) -> str:
        """Request suite > scenario suite > ``"tiny"``."""
        if self.suite is not None:
            return self.suite
        if self.scenario is not None:
            scenario = self.scenario_obj()
            if scenario.suite is not None:
                return scenario.suite
        return "tiny"

    # --- validation / resolution ------------------------------------------

    def validate(self) -> None:
        """Resolve registry names and bounds; raises :class:`SpecError`."""
        from repro.spechpc.suite import get_benchmark

        _require(self.nnodes >= 1, "nnodes must be >= 1")
        _require(self.nprocs is None or self.nprocs >= 1, "nprocs must be >= 1")
        _require(self.threads >= 1, "threads must be >= 1")
        _require(self.noise_sigma >= 0.0, "noise_sigma must be >= 0")
        _require(
            self.sim_steps is None or self.sim_steps >= 1,
            "sim_steps must be >= 1",
        )
        _require(
            (self.cluster is None) != (self.scenario is None),
            "give exactly one of 'cluster' and 'scenario'",
        )
        try:
            bench = get_benchmark(self.benchmark)
        except (KeyError, ValueError) as exc:
            raise SpecError(f"unknown benchmark {self.benchmark!r}") from exc
        scenario = self.scenario_obj()
        if scenario is not None:
            if scenario.frequency is not None and not scenario.frequency.is_fixed:
                raise SpecError(
                    "the server prices single runs; segmented frequency "
                    "plans are not one run (use repro.scenarios."
                    "run_frequency_plan locally)"
                )
            _require(
                not (scenario.faults is not None and self.faults is not None),
                "fault plan given both by the scenario and the spec",
            )
        else:
            from repro.machine.registry import get_cluster

            try:
                get_cluster(self.cluster)
            except (KeyError, ValueError) as exc:
                raise SpecError(f"unknown cluster {self.cluster!r}") from exc
        suite = self.resolved_suite
        _require(
            suite in bench.workloads,
            f"benchmark {bench.name!r} has no {suite!r} workload "
            f"(choose from {', '.join(sorted(bench.workloads))})",
        )
        if self.faults is not None:
            self.fault_plan()  # raises SpecError on malformed plans

    def resolve(self):
        """-> (Benchmark, ClusterSpec, nprocs), capacity-raised like
        :meth:`repro.predict.api.PredictionSpec.resolve`.  The cluster
        is the scenario's *effective* machine (frequency plan applied)
        when the request names a scenario."""
        from dataclasses import replace

        from repro.spechpc.suite import get_benchmark

        bench = get_benchmark(self.benchmark)
        scenario = self.scenario_obj()
        if scenario is not None:
            from repro.scenarios import ScenarioError

            try:
                cluster = scenario.effective_cluster()
            except ScenarioError as exc:
                raise SpecError(str(exc)) from exc
        else:
            from repro.machine.registry import get_cluster

            cluster = get_cluster(self.cluster)
        if self.nnodes > cluster.max_nodes:
            cluster = replace(cluster, max_nodes=self.nnodes)
        nprocs = self.nprocs or self.nnodes * cluster.cores_per_node
        return bench, cluster, nprocs

    def fault_plan(self):
        """The request's :class:`~repro.faults.plan.FaultPlan` (its own,
        or the scenario's), or None."""
        doc = self.faults
        if doc is None and self.scenario is not None:
            scenario = self.scenario_obj()
            doc = scenario.faults
        if doc is None:
            return None
        from repro.faults.plan import FaultPlan

        try:
            return FaultPlan.from_json(json.dumps(doc))
        except Exception as exc:
            raise SpecError(f"malformed fault plan: {exc}") from exc

    def run_spec(self):
        """The equivalent :class:`~repro.harness.parallel.RunSpec`
        (default production engine flags — the golden configuration)."""
        from repro.harness.parallel import RunSpec

        bench, cluster, nprocs = self.resolve()
        return RunSpec(
            benchmark=bench,
            cluster=cluster,
            nprocs=nprocs,
            suite=self.resolved_suite,
            sim_steps=self.sim_steps,
            noise_sigma=self.noise_sigma,
            seed=self.seed,
            threads_per_rank=self.threads,
            faults=self.fault_plan(),
        )

    def _calibrated_cluster(self) -> Optional[str]:
        """The registry name of this request's machine, or ``None`` when
        the request runs on something the calibrated tiers have never
        seen (a zoo machine, a re-clocked scenario).  The cheap tiers'
        corpora are keyed by registry cluster name, so only calibrated
        requests may train or consult them."""
        if self.scenario is None:
            return self.cluster
        from repro.machine.registry import CLUSTERS

        scenario = self.scenario_obj()
        effective = scenario.effective_cluster()
        for name in ("A", "B"):
            if effective == CLUSTERS[name]:
                return name
        return None

    def prediction_spec(self):
        """The equivalent :class:`~repro.predict.api.PredictionSpec`, or
        ``None`` when the request uses DES-only axes (noise, faults,
        explicit step counts) that no cheap tier can price — or runs on
        a machine outside the calibrated registry (see
        :meth:`_calibrated_cluster`): the surrogate corpus is keyed by
        registry cluster name, and letting a re-clocked or zoo machine
        consult (or train) it would silently mis-correct."""
        if (
            self.noise_sigma != 0.0
            or self.sim_steps is not None
            or self.fault_plan() is not None
        ):
            return None
        cluster = self._calibrated_cluster()
        if cluster is None:
            return None
        from repro.predict.api import PredictionSpec

        return PredictionSpec(
            benchmark=self.benchmark,
            cluster=cluster,
            nnodes=self.nnodes,
            suite=self.resolved_suite,
            threads=self.threads,
            nprocs=self.nprocs,
        )

    # --- identity ----------------------------------------------------------

    def canonical_record(self) -> dict[str, Any]:
        """The deterministically ordered record the key hashes.

        Registry names are resolved (``"A"`` and ``"ClusterA"`` are the
        same cluster, so they must be the same key), the rank count is
        materialized, floats are hex-encoded (exact, platform-free), a
        fault plan contributes its own canonical JSON digest, and a
        scenario contributes its parameter-level digest (so a zoo
        reference and an equal inline scenario document share a key,
        while any parameter difference splits it).
        """
        bench, cluster, nprocs = self.resolve()
        plan = self.fault_plan()
        fault_digest = None
        if plan is not None and not plan.empty:
            fault_digest = hashlib.sha256(
                plan.to_json().encode()
            ).hexdigest()[:16]
        scenario = self.scenario_obj()
        return {
            "schema": SPEC_SCHEMA,
            "benchmark": bench.name,
            "cluster": cluster.name,
            "nnodes": self.nnodes,
            "nprocs": nprocs,
            "suite": self.resolved_suite,
            "threads": self.threads,
            "seed": self.seed,
            "noise_sigma": float(self.noise_sigma).hex(),
            "sim_steps": self.sim_steps,
            "faults": fault_digest,
            "scenario": None if scenario is None else scenario.digest[:16],
        }

    @property
    def key(self) -> str:
        """Content-address: SHA-256 over the canonical record."""
        payload = json.dumps(
            self.canonical_record(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_request(self) -> dict[str, Any]:
        """The JSON body a client would POST for this spec (inverse of
        :meth:`from_request`, defaults omitted)."""
        doc: dict[str, Any] = {
            "benchmark": self.benchmark,
            "nnodes": self.nnodes,
        }
        if self.cluster is not None:
            doc["cluster"] = self.cluster
        if self.scenario is not None:
            doc["scenario"] = self.scenario
        if self.nprocs is not None:
            doc["nprocs"] = self.nprocs
        if self.suite is not None:
            doc["suite"] = self.suite
        if self.threads != 1:
            doc["threads"] = self.threads
        if self.seed != 0:
            doc["seed"] = self.seed
        if self.noise_sigma != 0.0:
            doc["noise_sigma"] = self.noise_sigma
        if self.sim_steps is not None:
            doc["sim_steps"] = self.sim_steps
        if self.faults is not None:
            doc["faults"] = self.faults
        return doc
