"""Canonical request specs and their content-address keys.

A serving request names a point of the simulation space.  Its identity
— the cache key, the single-flight key, the store key — is the SHA-256
digest of a *canonical record*: a deterministically ordered JSON
document of every field that can change the simulated result, following
the :mod:`repro.validate.golden` fingerprint idiom (sorted keys, exact
encodings, schema stamp).  Two requests collide iff a direct
:func:`repro.harness.runner.run` would produce bit-identical results
for both.

Engine-mode flags (``fast_path``, ``matcher``, ...) are deliberately
*not* part of the identity: the validation subsystem proves all engine
modes bit-identical, so they select an implementation, not a result.
Fields that do change results — benchmark, cluster, scale, suite,
threads, seed/noise, explicit step counts, fault plans — are all keyed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: Bump on incompatible canonical-record change (old store records then
#: key differently and simply miss — recompute-and-rewrite, never a
#: wrong answer).
SPEC_SCHEMA = 1


class SpecError(ValueError):
    """A malformed or unsatisfiable request spec (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class ServeSpec:
    """One canonicalized serving request.

    ``nprocs=None`` means fully populated nodes (``nnodes`` x cores per
    node — the paper's multi-node axis); the resolved rank count is part
    of the canonical record so a later cluster-table change cannot alias
    two different runs onto one key.
    """

    benchmark: str
    cluster: str
    nnodes: int = 1
    nprocs: Optional[int] = None
    suite: str = "tiny"
    threads: int = 1
    seed: int = 0
    noise_sigma: float = 0.0
    sim_steps: Optional[int] = None
    faults: Optional[dict[str, Any]] = field(default=None, hash=False)

    @classmethod
    def from_request(cls, doc: dict[str, Any]) -> "ServeSpec":
        """Validate and canonicalize one request body.

        Unknown fields are rejected loudly — a typo like ``"node"`` for
        ``"nnodes"`` must not silently price a different run.
        """
        _require(isinstance(doc, dict), "request spec must be a JSON object")
        allowed = {
            "benchmark", "cluster", "nnodes", "nprocs", "suite",
            "threads", "seed", "noise_sigma", "sim_steps", "faults",
        }
        unknown = sorted(set(doc) - allowed)
        _require(not unknown, f"unknown spec field(s): {', '.join(unknown)}")
        _require("benchmark" in doc, "spec needs a 'benchmark'")
        _require("cluster" in doc, "spec needs a 'cluster'")
        try:
            spec = cls(
                benchmark=str(doc["benchmark"]),
                cluster=str(doc["cluster"]),
                nnodes=int(doc.get("nnodes", 1)),
                nprocs=None if doc.get("nprocs") is None else int(doc["nprocs"]),
                suite=str(doc.get("suite", "tiny")),
                threads=int(doc.get("threads", 1)),
                seed=int(doc.get("seed", 0)),
                noise_sigma=float(doc.get("noise_sigma", 0.0)),
                sim_steps=(
                    None if doc.get("sim_steps") is None
                    else int(doc["sim_steps"])
                ),
                faults=doc.get("faults"),
            )
        except (TypeError, ValueError) as exc:
            raise SpecError(f"malformed spec field: {exc}") from exc
        spec.validate()
        return spec

    # --- validation / resolution ------------------------------------------

    def validate(self) -> None:
        """Resolve registry names and bounds; raises :class:`SpecError`."""
        from repro.machine.registry import get_cluster
        from repro.spechpc.suite import get_benchmark

        _require(self.nnodes >= 1, "nnodes must be >= 1")
        _require(self.nprocs is None or self.nprocs >= 1, "nprocs must be >= 1")
        _require(self.threads >= 1, "threads must be >= 1")
        _require(self.noise_sigma >= 0.0, "noise_sigma must be >= 0")
        _require(
            self.sim_steps is None or self.sim_steps >= 1,
            "sim_steps must be >= 1",
        )
        try:
            bench = get_benchmark(self.benchmark)
        except (KeyError, ValueError) as exc:
            raise SpecError(f"unknown benchmark {self.benchmark!r}") from exc
        try:
            cluster = get_cluster(self.cluster)
        except (KeyError, ValueError) as exc:
            raise SpecError(f"unknown cluster {self.cluster!r}") from exc
        _require(
            self.suite in bench.workloads,
            f"benchmark {bench.name!r} has no {self.suite!r} workload "
            f"(choose from {', '.join(sorted(bench.workloads))})",
        )
        if self.faults is not None:
            self.fault_plan()  # raises SpecError on malformed plans
        del cluster

    def resolve(self):
        """-> (Benchmark, ClusterSpec, nprocs), capacity-raised like
        :meth:`repro.predict.api.PredictionSpec.resolve`."""
        from dataclasses import replace

        from repro.machine.registry import get_cluster
        from repro.spechpc.suite import get_benchmark

        bench = get_benchmark(self.benchmark)
        cluster = get_cluster(self.cluster)
        if self.nnodes > cluster.max_nodes:
            cluster = replace(cluster, max_nodes=self.nnodes)
        nprocs = self.nprocs or self.nnodes * cluster.cores_per_node
        return bench, cluster, nprocs

    def fault_plan(self):
        """The request's :class:`~repro.faults.plan.FaultPlan`, or None."""
        if self.faults is None:
            return None
        from repro.faults.plan import FaultPlan

        try:
            return FaultPlan.from_json(json.dumps(self.faults))
        except Exception as exc:
            raise SpecError(f"malformed fault plan: {exc}") from exc

    def run_spec(self):
        """The equivalent :class:`~repro.harness.parallel.RunSpec`
        (default production engine flags — the golden configuration)."""
        from repro.harness.parallel import RunSpec

        bench, cluster, nprocs = self.resolve()
        return RunSpec(
            benchmark=bench,
            cluster=cluster,
            nprocs=nprocs,
            suite=self.suite,
            sim_steps=self.sim_steps,
            noise_sigma=self.noise_sigma,
            seed=self.seed,
            threads_per_rank=self.threads,
            faults=self.fault_plan(),
        )

    def prediction_spec(self):
        """The equivalent :class:`~repro.predict.api.PredictionSpec`, or
        ``None`` when the request uses DES-only axes (noise, faults,
        explicit step counts) that no cheap tier can price."""
        if (
            self.noise_sigma != 0.0
            or self.sim_steps is not None
            or self.faults is not None
        ):
            return None
        from repro.predict.api import PredictionSpec

        return PredictionSpec(
            benchmark=self.benchmark,
            cluster=self.cluster,
            nnodes=self.nnodes,
            suite=self.suite,
            threads=self.threads,
            nprocs=self.nprocs,
        )

    # --- identity ----------------------------------------------------------

    def canonical_record(self) -> dict[str, Any]:
        """The deterministically ordered record the key hashes.

        Registry names are resolved (``"A"`` and ``"ClusterA"`` are the
        same cluster, so they must be the same key), the rank count is
        materialized, floats are hex-encoded (exact, platform-free), and
        a fault plan contributes its own canonical JSON digest.
        """
        bench, cluster, nprocs = self.resolve()
        plan = self.fault_plan()
        fault_digest = None
        if plan is not None and not plan.empty:
            fault_digest = hashlib.sha256(
                plan.to_json().encode()
            ).hexdigest()[:16]
        return {
            "schema": SPEC_SCHEMA,
            "benchmark": bench.name,
            "cluster": cluster.name,
            "nnodes": self.nnodes,
            "nprocs": nprocs,
            "suite": self.suite,
            "threads": self.threads,
            "seed": self.seed,
            "noise_sigma": float(self.noise_sigma).hex(),
            "sim_steps": self.sim_steps,
            "faults": fault_digest,
        }

    @property
    def key(self) -> str:
        """Content-address: SHA-256 over the canonical record."""
        payload = json.dumps(
            self.canonical_record(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_request(self) -> dict[str, Any]:
        """The JSON body a client would POST for this spec (inverse of
        :meth:`from_request`, defaults omitted)."""
        doc: dict[str, Any] = {
            "benchmark": self.benchmark, "cluster": self.cluster,
            "nnodes": self.nnodes,
        }
        if self.nprocs is not None:
            doc["nprocs"] = self.nprocs
        if self.suite != "tiny":
            doc["suite"] = self.suite
        if self.threads != 1:
            doc["threads"] = self.threads
        if self.seed != 0:
            doc["seed"] = self.seed
        if self.noise_sigma != 0.0:
            doc["noise_sigma"] = self.noise_sigma
        if self.sim_steps is not None:
            doc["sim_steps"] = self.sim_steps
        if self.faults is not None:
            doc["faults"] = self.faults
        return doc
