"""The server's job table: every request gets a traceable job record.

``POST /sweep`` returns its job id immediately in the response header
(and in every NDJSON progress event), so ``GET /status/<job>`` can
answer "how far along is my sweep" from another connection while the
batch is still executing.  Single ``/run`` requests are journaled too —
the table doubles as the server's recent-request log.

Timestamps are ``time.monotonic`` deltas (durations), not wall-clock
epochs: the table is in-memory observability, not an audit log.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

#: Completed jobs kept for /status lookups before the oldest are pruned.
JOB_HISTORY = 512


@dataclass
class Job:
    """One tracked request (a /run point or a whole /sweep batch)."""

    id: str
    kind: str                        # "run" | "sweep" | "predict"
    total: int = 1                   # points in the batch
    done: int = 0                    # points answered so far
    state: str = "queued"            # queued | running | done | failed
    error: Optional[str] = None
    #: per-ladder-level answer counts for this job
    sources: dict[str, int] = field(default_factory=dict)
    started: float = field(default_factory=time.monotonic)
    finished: Optional[float] = None

    def tick(self, source: str) -> None:
        self.done += 1
        self.sources[source] = self.sources.get(source, 0) + 1

    @property
    def elapsed(self) -> float:
        end = self.finished if self.finished is not None else time.monotonic()
        return end - self.started

    def to_doc(self) -> dict[str, Any]:
        return {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "sources": dict(self.sources),
            "elapsed_s": round(self.elapsed, 6),
            "error": self.error,
        }


class JobTable:
    """Thread-safe id -> :class:`Job` map with bounded history."""

    def __init__(self, history: int = JOB_HISTORY) -> None:
        self._jobs: dict[str, Job] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._history = history

    def __len__(self) -> int:
        return len(self._jobs)

    def create(self, kind: str, total: int = 1) -> Job:
        with self._lock:
            job = Job(id=f"{kind}-{next(self._counter):06d}", kind=kind,
                      total=total, state="running")
            self._jobs[job.id] = job
            self._prune()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def finish(self, job: Job, error: Optional[str] = None) -> None:
        job.state = "failed" if error else "done"
        job.error = error
        job.finished = time.monotonic()

    def _prune(self) -> None:
        # drop the oldest *finished* jobs beyond the history bound;
        # running jobs are never evicted
        excess = len(self._jobs) - self._history
        if excess <= 0:
            return
        for jid in [j.id for j in self._jobs.values()
                    if j.state in ("done", "failed")][:excess]:
            del self._jobs[jid]
