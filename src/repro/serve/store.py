"""The content-addressed result store behind ``repro serve``.

An append-only JSONL file, one record per completed DES answer, keyed
by the canonical spec digest (:mod:`repro.serve.spec`).  The machinery
follows the schema-2 checkpoint idioms (:mod:`repro.harness.checkpoint`)
— schema stamps, corrupt-tail tolerance, last-record-wins, fsynced
appends, atomic compaction with a durable directory entry — plus one
property checkpoints do not need: **integrity verification**.  Every
record carries the result's golden fingerprint digest, and a record
whose stored result no longer reproduces that digest (bit rot, a torn
concurrent write, a tampered file) is discarded on load.  Corruption of
any kind therefore degrades to a cache *miss* — recompute and rewrite —
never to a wrong cached answer.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.harness.checkpoint import fsync_dir
from repro.harness.results import RunResult

#: Schema stamp for store records; records from other schemas are
#: ignored on load (a stale-schema store degrades to recompute).
STORE_SCHEMA = 1


@dataclass(frozen=True)
class StoreEntry:
    """One cached answer: the spec it answers, the result, provenance."""

    key: str
    spec: dict[str, Any]        # canonical spec record (serve.spec)
    result: RunResult
    fingerprint: str            # golden fingerprint digest of ``result``
    source: str = "des"         # provenance of the cached answer

    def to_record(self) -> dict[str, Any]:
        return {
            "schema": STORE_SCHEMA,
            "kind": "entry",
            "key": self.key,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "result": self.result.to_checkpoint_dict(),
        }


def _verify(entry: StoreEntry) -> bool:
    """True iff the stored result still hashes to its recorded digest."""
    from repro.validate.golden import fingerprint

    try:
        return fingerprint(entry.result).digest == entry.fingerprint
    except Exception:
        return False


def _parse_line(line: str) -> Optional[StoreEntry]:
    """One JSONL line -> verified entry, or ``None`` for blank, corrupt,
    truncated, unknown-schema, or integrity-failing lines."""
    line = line.strip()
    if not line:
        return None
    try:
        doc = json.loads(line)
        if doc.get("schema") != STORE_SCHEMA or doc.get("kind") != "entry":
            return None
        entry = StoreEntry(
            key=doc["key"],
            spec=doc["spec"],
            result=RunResult.from_checkpoint_dict(doc["result"]),
            fingerprint=doc["fingerprint"],
            source=doc.get("source", "des"),
        )
    except (ValueError, KeyError, TypeError):
        return None
    if not _verify(entry):
        return None
    return entry


class ResultStore:
    """Fingerprint-keyed result cache with JSONL persistence.

    ``path=None`` keeps the store in memory (tests, ephemeral servers).
    Construction loads every valid record (last record wins per key);
    :meth:`put` durably appends; :meth:`compact` atomically folds the
    file to one line per key.  All methods are thread-safe — the server
    touches the store from its event loop and its worker threads.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._entries: dict[str, StoreEntry] = {}
        self._lock = threading.Lock()
        #: lines present in the file but rejected on load (corrupt,
        #: stale schema, integrity failure) — observability for /metrics
        self.rejected_lines = 0
        if path is not None and os.path.exists(path):
            with open(path, errors="replace") as fh:
                for raw in fh:
                    entry = _parse_line(raw)
                    if entry is None:
                        if raw.strip():
                            self.rejected_lines += 1
                        continue
                    self._entries[entry.key] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def get(self, key: str) -> Optional[StoreEntry]:
        with self._lock:
            return self._entries.get(key)

    def put(self, entry: StoreEntry) -> None:
        """Insert (or replace) one answer; durably appended when backed
        by a file (fsynced data — the rename durability lives in
        :meth:`compact`)."""
        with self._lock:
            self._entries[entry.key] = entry
            if self.path is None:
                return
            line = json.dumps(entry.to_record(), sort_keys=True)
            fresh = not os.path.exists(self.path)
            with open(self.path, "a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            if fresh:
                # first append created the file: make its directory
                # entry durable too
                fsync_dir(self.path)

    def compact(self) -> int:
        """Atomically rewrite the file with one verified line per key.

        fsyncs the temp file *and* the directory entry after
        ``os.replace`` — without the latter a crash can resurrect the
        pre-compact file even though the replace "succeeded".  Returns
        the number of entries kept; memory-only stores no-op.
        """
        with self._lock:
            if self.path is None:
                return len(self._entries)
            tmp = self.path + ".compact.tmp"
            with open(tmp, "w") as fh:
                for entry in self._entries.values():
                    fh.write(json.dumps(entry.to_record(), sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            fsync_dir(self.path)
            return len(self._entries)
