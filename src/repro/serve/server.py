"""The asyncio HTTP server: ``POST /run``, ``POST /sweep``,
``POST /predict``, ``GET /status/<job>``, ``GET /metrics``.

Pure stdlib (``asyncio`` + ``http.HTTPStatus``): requests are parsed off
an :func:`asyncio.start_server` stream, one request per connection
(``Connection: close``), JSON bodies in, JSON or NDJSON out.

Every answer flows through the three-level ladder (cheapest level that
can defend its answer):

1. **store** — the canonical spec key hits the content-addressed result
   store: the cached, integrity-verified DES answer is returned as-is.
2. **predict** — the request stated a ``max_band`` and a cheap
   prediction tier's *own stated band* satisfies it: the tier's answer
   is returned, band-annotated and flagged (``source: "predict"``,
   ``fingerprint: null`` — a prediction is never dressed up as ground
   truth).
3. **des** — a genuine cold miss: deduplicated against identical
   in-flight requests (single-flight — N concurrent identical specs
   cost one engine execution and every caller receives the leader's
   exact bytes), executed, fingerprinted, and written back to both the
   result store and the prediction corpus.  The service gets cheaper
   as it runs.

The DES never blocks the event loop: executions run on a bounded thread
pool for ``/run`` and through :func:`repro.harness.parallel.run_many`
(pluggable executor — local pool or the TCP fabric) for ``/sweep``
batches.
"""

from __future__ import annotations

import asyncio
import collections
import json
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Any, Optional

from repro.serve.flight import SingleFlight
from repro.serve.jobs import JobTable
from repro.serve.spec import ServeSpec, SpecError
from repro.serve.store import ResultStore, StoreEntry

#: Request size guards (one simulation spec is a few hundred bytes; a
#: grid sweep of every paper point is well under a megabyte).
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Latency samples kept per ladder level for the /metrics percentiles.
LATENCY_WINDOW = 4096

_JSON = "application/json"
_NDJSON = "application/x-ndjson"


class HttpError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: HTTPStatus, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _dumps(doc: Any) -> bytes:
    """Deterministic response encoding (sorted keys — identical answers
    are identical bytes, which the single-flight contract relies on)."""
    return (json.dumps(doc, sort_keys=True) + "\n").encode()


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


class ServeApp:
    """The service: ladder, store, corpus, jobs, metrics, HTTP front.

    Parameters
    ----------
    store_path / corpus_path:
        JSONL backing files (``None`` keeps either in memory).
    golden_dir:
        Seed the prediction corpus from the golden fingerprint corpus
        (the 36 checked-in DES ground-truth points), so ``max_band``
        requests interpolate from the first request onward.
    workers:
        Thread-pool width for ``/run`` DES executions *and* the
        ``run_many`` worker count for ``/sweep`` batches.
    sweep_executor:
        ``run_many`` backend for sweep batches: ``None`` (auto),
        ``"serial"``, ``"local"``, or a constructed executor instance —
        e.g. :class:`repro.harness.fabric.FabricExecutor` so a TCP
        worker fleet backs the service.
    inject_des_latency:
        Test/chaos hook: sleep this many seconds inside every DES
        execution (exercises coalescing windows deterministically).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_path: str | None = None,
        corpus_path: str | None = None,
        golden_dir: str | None = None,
        workers: int = 2,
        sweep_executor: Any = None,
        inject_des_latency: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.host = host
        self.port = port
        self.store = ResultStore(store_path)
        if golden_dir is not None:
            from repro.predict.corpus import corpus_from_golden

            self.corpus = corpus_from_golden(golden_dir, path=corpus_path)
        else:
            from repro.predict.corpus import PredictionCorpus

            self.corpus = PredictionCorpus(corpus_path)
        self.workers = workers
        self.sweep_executor = sweep_executor
        if not isinstance(sweep_executor, (str, type(None))):
            # one backend serves many run_many batches; drive() must not
            # shut it down after the first — the app owns its lifecycle
            sweep_executor.persistent = True
        self.inject_des_latency = inject_des_latency
        self.flight = SingleFlight()
        self.jobs = JobTable()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-des"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.monotonic()
        # --- metrics ---------------------------------------------------
        self.requests: collections.Counter = collections.Counter()
        self.answers: collections.Counter = collections.Counter()
        self.des_runs = 0
        self._latency: dict[str, collections.deque] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_HEADER_BYTES
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.host, self.port = host, port
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)
        if not isinstance(self.sweep_executor, (str, type(None))):
            self.sweep_executor.shutdown()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except HttpError as exc:
                await self._respond_error(writer, exc)
                return
            try:
                await self._dispatch(method, path, body, writer)
            except HttpError as exc:
                await self._respond_error(writer, exc)
            except SpecError as exc:
                await self._respond_error(
                    writer, HttpError(HTTPStatus.BAD_REQUEST, str(exc))
                )
            except Exception as exc:  # a bug must not kill the server
                self.answers["error"] += 1
                await self._respond_error(writer, HttpError(
                    HTTPStatus.INTERNAL_SERVER_ERROR,
                    f"{type(exc).__name__}: {exc}",
                ))
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, Optional[dict]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise HttpError(
                HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE, "headers too large"
            )
        except asyncio.IncompleteReadError:
            raise HttpError(HTTPStatus.BAD_REQUEST, "truncated request")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise HttpError(HTTPStatus.BAD_REQUEST,
                            f"malformed request line: {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise HttpError(HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                            f"body of {length} bytes exceeds the "
                            f"{MAX_BODY_BYTES}-byte limit")
        body: Optional[dict] = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError as exc:
                raise HttpError(HTTPStatus.BAD_REQUEST,
                                f"body is not valid JSON: {exc}")
        return method, path, body

    async def _write_head(self, writer: asyncio.StreamWriter,
                          status: HTTPStatus, content_type: str,
                          length: Optional[int]) -> None:
        head = [f"HTTP/1.1 {status.value} {status.phrase}",
                f"Content-Type: {content_type}",
                "Connection: close"]
        if length is not None:
            head.append(f"Content-Length: {length}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        await writer.drain()

    async def _respond(self, writer: asyncio.StreamWriter, payload: bytes,
                       status: HTTPStatus = HTTPStatus.OK) -> None:
        await self._write_head(writer, status, _JSON, len(payload))
        writer.write(payload)
        await writer.drain()

    async def _respond_error(self, writer: asyncio.StreamWriter,
                             exc: HttpError) -> None:
        payload = _dumps({"error": exc.message, "status": exc.status.value})
        await self._respond(writer, payload, exc.status)

    async def _dispatch(self, method: str, path: str, body: Optional[dict],
                        writer: asyncio.StreamWriter) -> None:
        if path == "/run" or path == "/predict" or path == "/sweep":
            if method != "POST":
                raise HttpError(HTTPStatus.METHOD_NOT_ALLOWED,
                                f"{path} requires POST")
            if body is None:
                raise HttpError(HTTPStatus.BAD_REQUEST,
                                f"{path} requires a JSON body")
        self.requests[f"{method} {path.split('/')[1] or '/'}"] += 1
        if path == "/run":
            await self._handle_run(body, writer)
        elif path == "/predict":
            await self._handle_predict(body, writer)
        elif path == "/sweep":
            await self._handle_sweep(body, writer)
        elif path.startswith("/status/") and method == "GET":
            await self._handle_status(path[len("/status/"):], writer)
        elif path == "/metrics" and method == "GET":
            await self._respond(writer, _dumps(self.metrics_doc()))
        elif path == "/healthz" and method == "GET":
            await self._respond(writer, _dumps({"ok": True}))
        else:
            raise HttpError(HTTPStatus.NOT_FOUND, f"no route for {path}")

    # ------------------------------------------------------------------
    # the answer ladder
    # ------------------------------------------------------------------

    def _observe(self, source: str, t0: float) -> None:
        self.answers[source] += 1
        window = self._latency.setdefault(
            source, collections.deque(maxlen=LATENCY_WINDOW)
        )
        window.append(time.perf_counter() - t0)

    def _entry_payload(self, entry: StoreEntry, source: str) -> bytes:
        return _dumps({
            "key": entry.key,
            "source": source,
            "tier": "des",
            "band": 0.0,
            "fingerprint": entry.fingerprint,
            "spec": entry.spec,
            "result": entry.result.to_checkpoint_dict(),
        })

    def _prediction_payload(self, spec: ServeSpec, key: str,
                            pred: Any) -> bytes:
        from repro.predict.api import prediction_to_result

        result = prediction_to_result(pred)
        return _dumps({
            "key": key,
            "source": "predict",        # flagged: not ground truth
            "tier": pred.details.get("fallback") or pred.tier,
            "band": pred.band,
            "fingerprint": None,        # predictions are never fingerprinted
            "spec": spec.canonical_record(),
            "result": result.to_checkpoint_dict(),
        })

    def _execute_des(self, spec: ServeSpec):
        """Worker-thread entry: one engine execution for one spec."""
        from repro.harness.parallel import execute

        if self.inject_des_latency > 0.0:
            time.sleep(self.inject_des_latency)
        return execute(spec.run_spec())

    def _absorb(self, spec: ServeSpec, key: str, result) -> StoreEntry:
        """Write one fresh DES answer back to the store and the corpus."""
        from repro.validate.golden import fingerprint

        entry = StoreEntry(
            key=key,
            spec=spec.canonical_record(),
            result=result,
            fingerprint=fingerprint(result).digest,
            source="des",
        )
        self.store.put(entry)
        if spec.prediction_spec() is not None:
            # only clean grid points train the predictor (noise, faults
            # and truncated step counts would poison the residuals)
            from repro.predict.corpus import CorpusSample

            self.corpus.add(CorpusSample(
                benchmark=result.benchmark,
                cluster=result.cluster,
                suite=result.suite,
                nnodes=result.nnodes,
                nprocs=result.nprocs,
                threads=spec.threads,
                elapsed=result.elapsed,
                total_energy=result.energy.total_energy,
            ))
        return entry

    def _try_predict(self, spec: ServeSpec, max_band: float):
        """Ladder level 2 (worker thread): a cheap tier's answer iff its
        stated band satisfies the request's ``max_band``."""
        pspec = spec.prediction_spec()
        if pspec is None:
            return None
        from repro.predict.api import predict

        pred = predict(pspec, tier="auto", corpus=self.corpus,
                       allow_des=False)
        if pred.band <= max_band:
            return pred
        return None

    async def _answer_run(self, spec: ServeSpec, max_band: Optional[float],
                          force: bool) -> tuple[bytes, str]:
        """-> (payload bytes, ladder level) for one spec."""
        key = spec.key
        loop = asyncio.get_running_loop()
        if not force:
            entry = self.store.get(key)
            if entry is not None:
                return self._entry_payload(entry, "store"), "store"
            if max_band is not None and not self.flight.flying(key):
                pred = await loop.run_in_executor(
                    self._pool, self._try_predict, spec, max_band
                )
                if pred is not None:
                    return self._prediction_payload(spec, key, pred), "predict"

        async def thunk() -> bytes:
            result = await loop.run_in_executor(
                self._pool, self._execute_des, spec
            )
            self.des_runs += 1
            entry = self._absorb(spec, key, result)
            return self._entry_payload(entry, "des")

        payload, joined = await self.flight.do(key, thunk)
        return payload, ("coalesced" if joined else "des")

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_envelope(body: dict) -> tuple[ServeSpec, Optional[float], bool]:
        if "spec" not in body:
            raise SpecError("body needs a 'spec' object "
                            '(e.g. {"spec": {"benchmark": "lbm", '
                            '"cluster": "A", "nnodes": 4}})')
        extra = sorted(set(body) - {"spec", "max_band", "force"})
        if extra:
            raise SpecError(f"unknown request field(s): {', '.join(extra)}")
        spec = ServeSpec.from_request(body["spec"])
        max_band = body.get("max_band")
        if max_band is not None:
            max_band = float(max_band)
            if max_band < 0.0:
                raise SpecError("max_band must be >= 0")
        return spec, max_band, bool(body.get("force", False))

    async def _handle_run(self, body: dict,
                          writer: asyncio.StreamWriter) -> None:
        t0 = time.perf_counter()
        spec, max_band, force = self._parse_envelope(body)
        payload, source = await self._answer_run(spec, max_band, force)
        self._observe(source, t0)
        await self._respond(writer, payload)

    async def _handle_predict(self, body: dict,
                              writer: asyncio.StreamWriter) -> None:
        t0 = time.perf_counter()
        if "spec" not in body:
            raise SpecError("body needs a 'spec' object")
        extra = sorted(set(body) - {"spec", "tier", "allow_des"})
        if extra:
            raise SpecError(f"unknown request field(s): {', '.join(extra)}")
        spec = ServeSpec.from_request(body["spec"])
        tier = body.get("tier", "auto")
        allow_des = bool(body.get("allow_des", False))
        pspec = spec.prediction_spec()
        if pspec is None:
            raise SpecError(
                "spec uses DES-only axes (noise_sigma, sim_steps, faults) "
                "that no prediction tier can price — POST /run instead"
            )
        from repro.predict.api import TIERS, predict

        if tier not in TIERS:
            raise SpecError(f"unknown tier {tier!r}; expected one of {TIERS}")
        loop = asyncio.get_running_loop()
        pred = await loop.run_in_executor(
            self._pool,
            lambda: predict(pspec, tier=tier, corpus=self.corpus,
                            allow_des=allow_des),
        )
        if pred.tier == "des":
            self.des_runs += 1
        low, high = pred.runtime_interval
        self._observe("predict", t0)
        await self._respond(writer, _dumps({
            "key": spec.key,
            "source": "predict",
            "tier": pred.details.get("fallback") or pred.tier,
            "band": pred.band,
            "runtime_s": pred.runtime,
            "runtime_interval_s": [low, high],
            "energy_j": pred.energy.total_energy,
            "spec": spec.canonical_record(),
        }))

    def _run_batch(self, run_specs: list) -> list:
        """Worker-thread entry: one ``run_many`` batch over the
        configured executor (local pool by default, fabric when the
        server was started with one)."""
        from repro.harness.parallel import run_many

        if self.inject_des_latency > 0.0:
            time.sleep(self.inject_des_latency)
        return run_many(
            run_specs,
            workers=self.workers,
            executor=self.sweep_executor,
            tolerate_failures=True,
        )

    async def _handle_sweep(self, body: dict,
                            writer: asyncio.StreamWriter) -> None:
        extra = sorted(set(body) - {"specs", "max_band", "stream"})
        if extra:
            raise SpecError(f"unknown request field(s): {', '.join(extra)}")
        raw_specs = body.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise SpecError("body needs a non-empty 'specs' array")
        specs = [ServeSpec.from_request(doc) for doc in raw_specs]
        max_band = body.get("max_band")
        if max_band is not None:
            max_band = float(max_band)
        stream = bool(body.get("stream", False))

        job = self.jobs.create("sweep", total=len(specs))
        events: list[bytes] = []

        async def emit(doc: dict) -> None:
            line = _dumps(doc)
            if stream:
                writer.write(line)
                await writer.drain()
            else:
                events.append(line)

        if stream:
            await self._write_head(writer, HTTPStatus.OK, _NDJSON, None)
        await emit({"event": "accepted", "job": job.id, "total": len(specs)})

        loop = asyncio.get_running_loop()
        keys = [s.key for s in specs]
        cold: list[tuple[int, ServeSpec, str, asyncio.Future]] = []
        waiting: list[tuple[int, str]] = []
        try:
            for i, (spec, key) in enumerate(zip(specs, keys)):
                t0 = time.perf_counter()
                entry = self.store.get(key)
                if entry is not None:
                    job.tick("store")
                    self._observe("store", t0)
                    await emit({"event": "point", "index": i, "job": job.id,
                                "source": "store", "key": key,
                                "fingerprint": entry.fingerprint})
                    continue
                if max_band is not None:
                    pred = await loop.run_in_executor(
                        self._pool, self._try_predict, spec, max_band
                    )
                    if pred is not None:
                        job.tick("predict")
                        self._observe("predict", t0)
                        await emit({
                            "event": "point", "index": i, "job": job.id,
                            "source": "predict", "key": key,
                            "tier": pred.details.get("fallback") or pred.tier,
                            "band": pred.band, "fingerprint": None,
                        })
                        continue
                fut = self.flight.claim(key)
                if fut is None:
                    # an identical spec is already executing (another
                    # request, or earlier in this very sweep)
                    waiting.append((i, key))
                else:
                    cold.append((i, spec, key, fut))

            # batch the cold points through run_many in worker-sized
            # chunks, so progress streams while later chunks still run
            chunk = max(1, self.workers)
            for lo in range(0, len(cold), chunk):
                batch = cold[lo:lo + chunk]
                t0 = time.perf_counter()
                outcomes = await loop.run_in_executor(
                    self._pool, self._run_batch,
                    [spec.run_spec() for _, spec, _, _ in batch],
                )
                for (i, spec, key, fut), outcome in zip(batch, outcomes):
                    if getattr(outcome, "failed", False):
                        error = RuntimeError(outcome.summary())
                        self.flight.settle(key, fut, error=error)
                        job.tick("failed")
                        self._observe("failed", t0)
                        await emit({
                            "event": "point", "index": i, "job": job.id,
                            "source": "failed", "key": key,
                            "error": outcome.summary(),
                        })
                        continue
                    self.des_runs += 1
                    entry = self._absorb(spec, key, outcome)
                    self.flight.settle(
                        key, fut, value=self._entry_payload(entry, "des")
                    )
                    job.tick("des")
                    self._observe("des", t0)
                    await emit({"event": "point", "index": i, "job": job.id,
                                "source": "des", "key": key,
                                "fingerprint": entry.fingerprint})

            for i, key in waiting:
                t0 = time.perf_counter()
                try:
                    await self.flight.wait(key)
                except Exception as exc:
                    job.tick("failed")
                    await emit({"event": "point", "index": i, "job": job.id,
                                "source": "failed", "key": key,
                                "error": str(exc)})
                    continue
                entry = self.store.get(key)
                source = "coalesced" if entry is not None else "failed"
                job.tick(source)
                self._observe(source, t0)
                await emit({
                    "event": "point", "index": i, "job": job.id,
                    "source": source, "key": key,
                    "fingerprint": entry.fingerprint if entry else None,
                })
        except BaseException:
            # settle any unresolved claims so /run joiners don't hang
            for _, _, key, fut in cold:
                if not fut.done():
                    self.flight.settle(
                        key, fut,
                        error=RuntimeError("sweep aborted mid-batch"),
                    )
            self.jobs.finish(job, error="sweep aborted")
            raise
        self.jobs.finish(job)
        await emit({"event": "done", **job.to_doc()})
        if stream:
            return  # NDJSON already written; close-delimited
        payload = b"".join(events)
        await self._write_head(writer, HTTPStatus.OK, _NDJSON, len(payload))
        writer.write(payload)
        await writer.drain()

    async def _handle_status(self, job_id: str,
                             writer: asyncio.StreamWriter) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(HTTPStatus.NOT_FOUND, f"unknown job {job_id!r}")
        await self._respond(writer, _dumps(job.to_doc()))

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def metrics_doc(self) -> dict[str, Any]:
        answered = sum(self.answers.values())
        cheap = answered - self.answers["des"] - self.answers["failed"] \
            - self.answers["error"]
        latency = {}
        for source, window in sorted(self._latency.items()):
            samples = list(window)
            latency[source] = {
                "count": len(samples),
                "p50_ms": 1e3 * _percentile(samples, 0.50),
                "p90_ms": 1e3 * _percentile(samples, 0.90),
                "p99_ms": 1e3 * _percentile(samples, 0.99),
            }
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "requests": dict(self.requests),
            "answers": dict(self.answers),
            "answered": answered,
            "hit_rate": (cheap / answered) if answered else 0.0,
            "des_runs": self.des_runs,
            "singleflight": {
                "leads": self.flight.leads,
                "joins": self.flight.joins,
                "open": len(self.flight),
            },
            "store": {
                "entries": len(self.store),
                "rejected_lines": self.store.rejected_lines,
                "path": self.store.path,
            },
            "corpus": {"samples": len(self.corpus),
                       "path": self.corpus.path},
            "jobs": len(self.jobs),
            "latency": latency,
        }


# ----------------------------------------------------------------------
# loopback harness (tests, the serving differential, the load bench)
# ----------------------------------------------------------------------


class loopback_server:
    """Context manager: run a :class:`ServeApp` on a background thread.

    ::

        app = ServeApp(store_path=tmp / "store.jsonl")
        with loopback_server(app) as (host, port):
            client = ServeClient(host, port)
            ...

    The event loop lives on the spawned thread; entering waits until the
    socket is bound, exiting stops the server and joins the thread.
    """

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self._thread: Any = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready: Any = None

    def __enter__(self) -> tuple[str, int]:
        import threading

        self._ready = threading.Event()
        failure: list[BaseException] = []

        def _serve() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.app.start())
            except BaseException as exc:  # bind failure etc.
                failure.append(exc)
                self._ready.set()
                return
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.app.stop())
                loop.close()

        self._thread = threading.Thread(
            target=_serve, name="serve-loopback", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if failure:
            raise failure[0]
        if self._loop is None or not self._ready.is_set():
            raise RuntimeError("loopback server failed to start in time")
        return self.app.address

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
