"""Simulation-as-a-service: the ``repro serve`` HTTP front end.

The paper's entire result set is a finite grid — nine SPEChpc 2021
benchmarks x two clusters x power-of-two node counts — so most queries
against this reproduction are *repeat* queries and should never reach
the event heap.  This package is the distribution layer that makes that
true: a stdlib-only asyncio HTTP service in front of a three-level
answer ladder.

1. **Result store** (:mod:`repro.serve.store`) — a content-addressed
   JSONL store keyed by the canonical SHA-256 spec digest
   (:mod:`repro.serve.spec`, the golden-fingerprint idiom).  Exact
   repeats are answered from disk in microseconds, integrity-checked
   against the stored result fingerprint on load.
2. **Tiered predictor** — requests that state an acceptable error band
   (``max_band``) are answered by :func:`repro.predict.api.predict`
   when a cheap tier's stated band satisfies it; the answer is flagged
   and band-annotated, never silently substituted for ground truth.
3. **Single-flight DES** (:mod:`repro.serve.flight`) — genuine cold
   misses are deduplicated against identical in-flight requests (N
   concurrent identical specs -> exactly one engine execution), run on
   the pluggable executor layer, and written back to both the store and
   the prediction corpus — the service gets cheaper as it runs.

:mod:`repro.serve.server` is the asyncio server (``POST /run``,
``POST /sweep``, ``POST /predict``, ``GET /status/<job>``,
``GET /metrics``); :mod:`repro.serve.client` is the matching stdlib
client used by tests, the serving differential
(:mod:`repro.validate.serving`) and the load benchmark.  See
``docs/serving.md``.
"""

from __future__ import annotations

from repro.serve.client import ServeClient
from repro.serve.flight import SingleFlight
from repro.serve.jobs import Job, JobTable
from repro.serve.server import ServeApp, loopback_server
from repro.serve.spec import ServeSpec, SpecError
from repro.serve.store import ResultStore, StoreEntry

__all__ = [
    "Job",
    "JobTable",
    "ResultStore",
    "ServeApp",
    "ServeClient",
    "ServeSpec",
    "SingleFlight",
    "SpecError",
    "StoreEntry",
    "loopback_server",
]
