"""Single-flight deduplication of identical in-flight requests.

N concurrent requests for the same canonical spec key must cost exactly
one engine execution: the first caller becomes the *leader* and runs the
work; every request that arrives while the flight is open *joins* it and
receives the leader's exact value (for the server: the same response
bytes).  The flight closes when the work completes, so a later repeat
hits the result store instead.

asyncio-native: one event loop, futures as rendezvous points.  The
leader executes the thunk (typically dispatching the DES to a worker
thread); joiners ``await`` a shielded view of the leader's future so a
cancelled joiner cannot cancel the shared work under everyone else.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable


class SingleFlight:
    """Key -> in-flight future map with join accounting."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        #: completed flights led / requests coalesced into another
        #: caller's flight (for ``/metrics``)
        self.leads = 0
        self.joins = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def flying(self, key: str) -> bool:
        return key in self._inflight

    async def do(
        self, key: str, thunk: Callable[[], Awaitable[Any]]
    ) -> tuple[Any, bool]:
        """Run ``thunk`` under single-flight semantics for ``key``.

        Returns ``(value, joined)`` — ``joined`` is True when this call
        coalesced into an already-open flight instead of executing.
        A failing thunk propagates the same exception to the leader and
        every joiner, and closes the flight (the next request retries).
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.joins += 1
            return await asyncio.shield(existing), True

        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        try:
            value = await thunk()
        except BaseException as exc:
            fut.set_exception(exc)
            fut.exception()  # consumed here; joiners re-raise their own
            raise
        else:
            fut.set_result(value)
            self.leads += 1
            return value, False
        finally:
            # close the flight only after the outcome is published, so
            # joiners admitted during execution all share it
            del self._inflight[key]

    def claim(self, key: str) -> asyncio.Future | None:
        """Open a flight for ``key`` without a thunk (batch execution:
        a sweep claims its cold keys up front so concurrent ``/run``
        requests coalesce into the batch).  Returns the future to
        resolve via :meth:`settle`, or ``None`` if already in flight.
        """
        if key in self._inflight:
            return None
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        return fut

    def settle(self, key: str, fut: asyncio.Future, value: Any = None,
               error: BaseException | None = None) -> None:
        """Publish a claimed flight's outcome and close it."""
        if error is not None:
            fut.set_exception(error)
            fut.exception()
        else:
            fut.set_result(value)
            self.leads += 1
        if self._inflight.get(key) is fut:
            del self._inflight[key]

    async def wait(self, key: str) -> Any | None:
        """Join an open flight for ``key`` (or return ``None`` if none
        is open) — used by batch paths to reuse someone else's work."""
        fut = self._inflight.get(key)
        if fut is None:
            return None
        self.joins += 1
        return await asyncio.shield(fut)
