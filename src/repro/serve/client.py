"""A small stdlib client for the ``repro serve`` HTTP API.

Used by the loopback test battery, the serving differential
(:mod:`repro.validate.serving`) and the load benchmark — and usable as
a plain library client.  One connection per request
(``http.client.HTTPConnection``; the server is ``Connection: close``).

Responses come back as :class:`ServeAnswer` — the parsed JSON document
plus the exact response bytes, because the single-flight contract is
stated in *bytes*: N concurrent identical requests receive the same
payload, byte for byte.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any, Iterator, Optional


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass(frozen=True)
class ServeAnswer:
    """One /run (or per-point) answer: parsed doc + raw bytes."""

    doc: dict[str, Any]
    raw: bytes

    @property
    def source(self) -> str:
        return self.doc["source"]

    @property
    def fingerprint(self) -> Optional[str]:
        return self.doc.get("fingerprint")

    @property
    def band(self) -> float:
        return float(self.doc.get("band", 0.0))

    def result(self):
        """The answer's :class:`~repro.harness.results.RunResult`."""
        from repro.harness.results import RunResult

        return RunResult.from_checkpoint_dict(self.doc["result"])


class ServeClient:
    """Minimal synchronous client: run / predict / sweep / status /
    metrics."""

    def __init__(self, host: str, port: int, timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # --- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Any = None) -> tuple[int, bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def _json(self, method: str, path: str, body: Any = None) -> ServeAnswer:
        status, raw = self._request(method, path, body)
        doc = json.loads(raw)
        if status >= 400:
            raise ServeError(status, doc.get("error", raw.decode()))
        return ServeAnswer(doc=doc, raw=raw)

    # --- endpoints ---------------------------------------------------------

    def run(self, spec: dict[str, Any], max_band: float | None = None,
            force: bool = False) -> ServeAnswer:
        """POST /run — one point through the answer ladder."""
        body: dict[str, Any] = {"spec": spec}
        if max_band is not None:
            body["max_band"] = max_band
        if force:
            body["force"] = True
        return self._json("POST", "/run", body)

    def predict(self, spec: dict[str, Any], tier: str = "auto",
                allow_des: bool = False) -> ServeAnswer:
        """POST /predict — a band-annotated prediction, no cache."""
        return self._json(
            "POST", "/predict",
            {"spec": spec, "tier": tier, "allow_des": allow_des},
        )

    def sweep(self, specs: list[dict[str, Any]],
              max_band: float | None = None,
              stream: bool = False) -> list[dict[str, Any]]:
        """POST /sweep — returns the NDJSON event list (accepted,
        point..., done).  With ``stream=True`` events are read
        incrementally off the socket (and still returned as a list)."""
        body: dict[str, Any] = {"specs": specs, "stream": stream}
        if max_band is not None:
            body["max_band"] = max_band
        if not stream:
            status, raw = self._request("POST", "/sweep", body)
            if status >= 400:
                doc = json.loads(raw)
                raise ServeError(status, doc.get("error", raw.decode()))
            return [json.loads(line) for line in raw.splitlines() if line]
        return list(self.sweep_events(specs, max_band=max_band))

    def sweep_events(self, specs: list[dict[str, Any]],
                     max_band: float | None = None
                     ) -> Iterator[dict[str, Any]]:
        """POST /sweep with ``stream=true`` — yield events as they
        arrive (the server writes close-delimited NDJSON)."""
        body: dict[str, Any] = {"specs": specs, "stream": True}
        if max_band is not None:
            body["max_band"] = max_band
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("POST", "/sweep", body=json.dumps(body).encode(),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            if resp.status >= 400:
                doc = json.loads(resp.read())
                raise ServeError(resp.status,
                                 doc.get("error", "sweep rejected"))
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def status(self, job_id: str) -> dict[str, Any]:
        """GET /status/<job>."""
        return self._json("GET", f"/status/{job_id}").doc

    def metrics(self) -> dict[str, Any]:
        """GET /metrics."""
        return self._json("GET", "/metrics").doc

    def healthz(self) -> bool:
        try:
            return bool(self._json("GET", "/healthz").doc.get("ok"))
        except (OSError, ServeError):
            return False
