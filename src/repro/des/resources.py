"""Shared saturable resources for simulated processes.

:class:`BandwidthResource` models a capacity shared by concurrent users
with fair sharing and *instant global re-balancing*: when a transfer
starts or ends, the remaining work of every active transfer is re-priced
at the new fair share.  This is the classic fluid flow model (as used by
SimGrid) and is exact for max-min fair sharing of a single link.

The MPI layer prices point-to-point transfers analytically for speed, but
this primitive is available for substrates that need true contention
(e.g. a NIC shared by many concurrent rendezvous transfers, or a disk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.des.simulator import Signal, Wait


@dataclass
class _Flow:
    remaining: float
    done: Signal


class BandwidthResource:
    """A shared capacity [units/s] with max-min fair sharing.

    Usage from a simulated process::

        nic = BandwidthResource(sim, capacity=12e9)

        def body():
            yield nic.transfer(3e9)   # takes 0.25 s alone, longer if shared

    The implementation advances flows lazily: on every entry/exit event it
    integrates the elapsed progress at the previous concurrency level and
    reschedules the next completion.
    """

    def __init__(self, sim, capacity: float, name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._flows: list[_Flow] = []
        self._last_update = 0.0
        self._completion_scheduled: float | None = None

    # --- internals ---------------------------------------------------------

    def _advance(self) -> None:
        """Integrate progress of all active flows up to now."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0 and self._flows:
            rate = self.capacity / len(self._flows)
            for f in self._flows:
                f.remaining -= rate * dt
        self._last_update = now

    def _reschedule(self) -> None:
        """Schedule the next flow completion at the current sharing."""
        if not self._flows:
            self._completion_scheduled = None
            return
        rate = self.capacity / len(self._flows)
        next_flow = min(self._flows, key=lambda f: f.remaining)
        t_done = self.sim.now + max(0.0, next_flow.remaining) / rate
        self._completion_scheduled = t_done
        self.sim.call_at(t_done, self._on_completion_check)

    def _on_completion_check(self) -> None:
        # guard against stale callbacks after a rebalance
        if (
            self._completion_scheduled is None
            or abs(self.sim.now - self._completion_scheduled) > 1e-12
        ):
            return
        self._advance()
        finished = [f for f in self._flows if f.remaining <= 1e-9]
        self._flows = [f for f in self._flows if f.remaining > 1e-9]
        for f in finished:
            f.done.fire(self.sim.now)
        self._reschedule()

    # --- public API ----------------------------------------------------------

    def transfer(self, amount: float) -> Generator:
        """Sub-coroutine: move ``amount`` units through the resource."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount == 0:
            return
            yield  # pragma: no cover
        self._advance()
        flow = _Flow(remaining=amount, done=Signal(f"{self.name}-flow"))
        self._flows.append(flow)
        self._reschedule()
        yield Wait(flow.done)

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self) -> float:
        """Per-flow rate at the current concurrency [units/s]."""
        if not self._flows:
            return self.capacity
        return self.capacity / len(self._flows)
