"""Shared saturable resources for simulated processes.

:class:`BandwidthResource` models a capacity shared by concurrent users
with fair sharing and *instant global re-balancing*: when a transfer
starts or ends, the remaining work of every active transfer is re-priced
at the new fair share.  This is the classic fluid flow model (as used by
SimGrid) and is exact for max-min fair sharing of a single link.

The MPI layer prices point-to-point transfers analytically for speed, but
this primitive is available for substrates that need true contention
(e.g. a NIC shared by many concurrent rendezvous transfers, or a disk).

Two schedulers implement the model:

* ``scheduler="virtual-clock"`` (default) — processor-sharing accounting
  with a *virtual clock* ``V`` that advances at ``capacity / n`` units per
  real second while ``n`` flows are active.  A flow entering with
  ``amount`` units finishes when ``V`` reaches ``V_entry + amount``, so
  entry is O(log F) (one heap push of the virtual finish time) and each
  rebalance is O(1): no per-flow re-integration ever happens.
* ``scheduler="reference"`` — the original lazy re-integration that walks
  every active flow on each entry/exit event, kept as the behavioral
  reference for the differential tests.

Both schedulers guard their scheduled completion callbacks with a
monotonically increasing *epoch token*: every entry/exit bumps the epoch,
and a callback carrying a stale epoch returns immediately.  (The old
reference guard compared ``sim.now`` against the scheduled completion
time with a ``1e-12`` float tolerance — a rebalance landing within the
tolerance window could be mistaken for the real completion.)

``light=True`` (virtual-clock only) additionally enables a *solo-flow
fast path*: while exactly one flow is active — the common case for runs
whose replay tier is structurally ineligible and which are below paper
scale, where the harness hints that nothing will ever consume the full
bookkeeping — the flow skips the finish-time heap entirely.  The
completion time is computed with the exact virtual-clock arithmetic
(``(V + amount) - V`` is *not* exactly ``amount`` in floats), so the
timing is bitwise identical; a second flow joining retroactively
materializes the solo flow into the heap (entry order, hence tie order,
preserved) and the epoch bump cancels the solo callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from itertools import count
from typing import Generator

from repro.des.simulator import Signal, Wait


@dataclass
class _Flow:
    remaining: float
    done: Signal
    finish_v: float = 0.0        # virtual finish time (virtual-clock mode)
    finished: bool = False


class BandwidthResource:
    """A shared capacity [units/s] with max-min fair sharing.

    Usage from a simulated process::

        nic = BandwidthResource(sim, capacity=12e9)

        def body():
            yield nic.transfer(3e9)   # takes 0.25 s alone, longer if shared

    See the module docstring for the two scheduler implementations.
    """

    def __init__(
        self,
        sim,
        capacity: float,
        name: str = "resource",
        scheduler: str = "virtual-clock",
        light: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if scheduler not in ("virtual-clock", "reference"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected "
                "'virtual-clock' or 'reference'"
            )
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.scheduler = scheduler
        self.light = light and scheduler == "virtual-clock"
        self._solo: _Flow | None = None  # light solo-flow fast path
        self._flows: list[_Flow] = []    # reference mode only
        self._nflows = 0                 # virtual-clock mode only
        self._last_update = 0.0
        # epoch token: bumped on every entry/exit; completion callbacks
        # carry the epoch they were scheduled under and bail out if a
        # rebalance has happened since (no float-tolerance comparisons)
        self._epoch = 0
        # --- virtual-clock state ---
        self._vclock = 0.0
        self._finish_heap: list[tuple[float, int, _Flow]] = []
        self._tiebreak = count()

    # --- shared internals ----------------------------------------------------

    def _advance_vclock(self) -> None:
        """Advance the virtual clock to the current real time."""
        now = self.sim.now
        dt = now - self._last_update
        n = self._nflows
        if dt > 0 and n:
            self._vclock += dt * (self.capacity / n)
        self._last_update = now

    def _advance_reference(self) -> None:
        """Integrate progress of all active flows up to now (O(F))."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0 and self._flows:
            rate = self.capacity / len(self._flows)
            for f in self._flows:
                f.remaining -= rate * dt
        self._last_update = now

    def _schedule_completion(self, t_done: float) -> None:
        epoch = self._epoch
        self.sim.call_at(t_done, lambda: self._on_completion_check(epoch))

    # --- virtual-clock scheduler ---------------------------------------------

    def _reschedule_vclock(self) -> None:
        self._epoch += 1
        heap = self._finish_heap
        while heap and heap[0][2].finished:
            heappop(heap)
        if not heap:
            return
        next_v = heap[0][0]
        t_done = (
            self.sim.now
            + max(0.0, next_v - self._vclock) * self._nflows / self.capacity
        )
        self._schedule_completion(t_done)

    def _complete_vclock(self) -> None:
        self._advance_vclock()
        solo = self._solo
        if solo is not None:
            # light solo completion: same sequence as the heap path —
            # advance, retire, snap the virtual clock to the flow's exact
            # finish value, fire — with no heap traffic at all
            self._solo = None
            solo.finished = True
            self._nflows -= 1
            if solo.finish_v > self._vclock:
                self._vclock = solo.finish_v
            solo.done.fire(self.sim.now)
            self._reschedule_vclock()
            return
        heap = self._finish_heap
        while heap and heap[0][2].finished:
            heappop(heap)
        if heap:
            # the epoch guard guarantees no rebalance happened since this
            # completion was scheduled, so the heap head *is* the flow it
            # was scheduled for — complete it unconditionally (immune to
            # virtual-clock rounding), together with any co-finishers
            # within eps.  The batch fires in *entry* order (the tiebreak
            # counter), not heap order: co-finishers' virtual finish
            # times can differ by float noise in either direction, and
            # the reference scheduler's scan completes simultaneous
            # finishers in entry order
            _, tb, head = heappop(heap)
            head.finished = True
            self._nflows -= 1
            if head.finish_v > self._vclock:
                self._vclock = head.finish_v
            batch = [(tb, head)]
            eps = 1e-9 * self.capacity
            while heap and not heap[0][2].finished and heap[0][0] <= self._vclock + eps:
                _, tb, flow = heappop(heap)
                flow.finished = True
                self._nflows -= 1
                batch.append((tb, flow))
            batch.sort()
            for _, flow in batch:
                flow.done.fire(self.sim.now)
        self._reschedule_vclock()

    # --- reference scheduler --------------------------------------------------

    def _reschedule_reference(self) -> None:
        self._epoch += 1
        if not self._flows:
            return
        rate = self.capacity / len(self._flows)
        next_flow = min(self._flows, key=lambda f: f.remaining)
        t_done = self.sim.now + max(0.0, next_flow.remaining) / rate
        self._schedule_completion(t_done)

    def _complete_reference(self) -> None:
        self._advance_reference()
        # completion tolerance scales with capacity: the float residue
        # after integrating a flow of A units is ~A*ulp, far above any
        # absolute threshold for multi-gigabyte transfers
        eps = 1e-9 * self.capacity
        finished = [f for f in self._flows if f.remaining <= eps]
        self._flows = [f for f in self._flows if f.remaining > eps]
        for f in finished:
            f.finished = True
            f.done.fire(self.sim.now)
        self._reschedule_reference()

    # --- completion dispatch ---------------------------------------------------

    def _on_completion_check(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # a rebalance superseded this callback
        if self.scheduler == "virtual-clock":
            self._complete_vclock()
        else:
            self._complete_reference()

    # --- public API ----------------------------------------------------------

    def transfer(self, amount: float) -> Generator:
        """Sub-coroutine: move ``amount`` units through the resource."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount == 0:
            return
            yield  # pragma: no cover
        if self.scheduler == "virtual-clock":
            self._advance_vclock()
            flow = _Flow(remaining=amount, done=Signal(f"{self.name}-flow"))
            flow.finish_v = self._vclock + amount
            self._nflows += 1
            if self.light and self._nflows == 1:
                # solo fast path: no heap entry; completion time uses the
                # exact virtual-clock expression of the n=1 heap path
                self._solo = flow
                self._epoch += 1
                t_done = (
                    self.sim.now
                    + max(0.0, flow.finish_v - self._vclock)
                    * self._nflows / self.capacity
                )
                self._schedule_completion(t_done)
            else:
                if self._solo is not None:
                    # a second flow joins: retroactively materialize the
                    # solo flow (entry order preserved — it draws its
                    # tiebreak before the newcomer); the reschedule's
                    # epoch bump cancels the solo completion callback
                    heappush(
                        self._finish_heap,
                        (self._solo.finish_v, next(self._tiebreak), self._solo),
                    )
                    self._solo = None
                heappush(
                    self._finish_heap, (flow.finish_v, next(self._tiebreak), flow)
                )
                self._reschedule_vclock()
        else:
            self._advance_reference()
            flow = _Flow(remaining=amount, done=Signal(f"{self.name}-flow"))
            self._flows.append(flow)
            self._reschedule_reference()
        yield Wait(flow.done)

    @property
    def active_flows(self) -> int:
        if self.scheduler == "virtual-clock":
            return self._nflows
        return len(self._flows)

    def current_rate(self) -> float:
        """Per-flow rate at the current concurrency [units/s]."""
        n = self.active_flows
        if n == 0:
            return self.capacity
        return self.capacity / n
