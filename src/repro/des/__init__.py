"""Discrete-event simulation core.

A minimal but complete coroutine-based discrete-event engine in the style of
SimPy/SimGrid: simulated processes are Python generators that ``yield``
scheduling primitives (:class:`Delay`, :class:`Wait`) to the
:class:`Simulator`, which advances virtual time through an event heap.

The simulated MPI runtime (:mod:`repro.smpi`) and the benchmark codes run on
top of this engine, so communication/serialization phenomena (rendezvous
ripples, barrier skew) emerge from actual interleaved execution rather than
closed-form formulas.
"""

from repro.des.simulator import (
    DeadlockError,
    Delay,
    HangError,
    Signal,
    SimProcess,
    SimStats,
    Simulator,
    Wait,
    join_all,
)

__all__ = [
    "Simulator",
    "SimProcess",
    "SimStats",
    "Delay",
    "Wait",
    "Signal",
    "DeadlockError",
    "HangError",
    "join_all",
]
