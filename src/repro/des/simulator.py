"""Event loop, processes, and scheduling primitives.

Processes are plain generator functions.  They communicate with the engine
by yielding:

* :class:`Delay` — suspend for a span of virtual time;
* :class:`Wait` — suspend until a :class:`Signal` fires (the signal's value
  is delivered as the result of the ``yield``);
* another generator — run it to completion as a sub-coroutine (its return
  value is delivered as the result of the ``yield``).

The sub-coroutine convention keeps benchmark code readable: an MPI call is
simply ``result = yield comm.allreduce(...)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

#: Type of a simulated-process body.
ProcessBody = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Delay:
    """Yielded by a process to sleep for ``duration`` virtual seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative delay: {self.duration}")


class Signal:
    """A one-shot broadcast condition.

    Processes block on a signal with ``yield Wait(sig)``; ``fire(value)``
    wakes all current and future waiters, delivering ``value``.  Firing an
    already-fired signal is an error (one-shot semantics keep matching
    logic in the MPI layer honest).
    """

    __slots__ = ("fired", "value", "_waiters", "name")

    def __init__(self, name: str = "") -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: list[SimProcess] = []
        self.name = name

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._simulator._ready(proc, value)

    def add_waiter(self, proc: "SimProcess") -> None:
        self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"<Signal {self.name!r} {state}>"


@dataclass(frozen=True)
class Wait:
    """Yielded by a process to block until ``signal`` fires."""

    signal: Signal


class SimProcess:
    """A running simulated process (a stack of generator frames)."""

    __slots__ = ("name", "_stack", "_simulator", "done", "result", "error")

    def __init__(self, name: str, body: ProcessBody, simulator: "Simulator") -> None:
        self.name = name
        self._stack: list[ProcessBody] = [body]
        self._simulator = simulator
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def _step(self, send_value: Any) -> None:
        """Advance the process until it blocks or finishes."""
        sim = self._simulator
        while True:
            frame = self._stack[-1]
            try:
                yielded = frame.send(send_value)
            except StopIteration as stop:
                self._stack.pop()
                if not self._stack:
                    self.done = True
                    self.result = stop.value
                    sim._finished(self)
                    return
                send_value = stop.value
                continue
            except BaseException as exc:
                self.done = True
                self.error = exc
                sim._finished(self)
                raise
            if isinstance(yielded, Delay):
                sim._schedule(sim.now + yielded.duration, self, None)
                return
            if isinstance(yielded, Wait):
                sig = yielded.signal
                if sig.fired:
                    send_value = sig.value
                    continue
                sig.add_waiter(self)
                return
            if isinstance(yielded, Generator):
                self._stack.append(yielded)
                send_value = None
                continue
            raise TypeError(
                f"process {self.name!r} yielded unsupported object "
                f"{yielded!r}; expected Delay, Wait, or a generator"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<SimProcess {self.name!r} {state}>"


class Simulator:
    """The virtual-time event loop.

    Usage::

        sim = Simulator()
        sim.spawn("worker", worker_body())
        sim.run()
        assert sim.now == expected_makespan
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, SimProcess, Any]] = []
        self._counter = itertools.count()
        self._processes: list[SimProcess] = []
        self._nfinished = 0

    # --- process management ----------------------------------------------

    def spawn(self, name: str, body: ProcessBody) -> SimProcess:
        """Create a process and make it runnable at the current time."""
        if not isinstance(body, Generator):
            raise TypeError(f"process body for {name!r} must be a generator")
        proc = SimProcess(name, body, self)
        self._processes.append(proc)
        self._schedule(self.now, proc, None)
        return proc

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at virtual ``time`` (used for message
        delivery without the overhead of a full process)."""
        if time < self.now - 1e-15:
            raise ValueError(f"call_at in the past: {time} < {self.now}")
        heapq.heappush(self._heap, (time, next(self._counter), None, fn))

    @property
    def processes(self) -> tuple[SimProcess, ...]:
        return tuple(self._processes)

    # --- engine internals ----------------------------------------------------

    def _schedule(self, time: float, proc: SimProcess, value: Any) -> None:
        heapq.heappush(self._heap, (time, next(self._counter), proc, value))

    def _ready(self, proc: SimProcess, value: Any) -> None:
        """Make a blocked process runnable now (called by Signal.fire)."""
        self._schedule(self.now, proc, value)

    def _finished(self, proc: SimProcess) -> None:
        self._nfinished += 1

    # --- main loop -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Execute events until the heap drains (or ``until`` is reached).

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        processes remain blocked with no pending events — which in the MPI
        layer indicates a genuine communication deadlock.
        """
        while self._heap:
            time, _, proc, value = heapq.heappop(self._heap)
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, next(self._counter), proc, value))
                self.now = until
                return self.now
            if time < self.now - 1e-15:
                raise RuntimeError("event scheduled in the past")
            self.now = max(self.now, time)
            if proc is None:
                value()  # plain callback scheduled via call_at
                continue
            if proc.done:
                continue
            proc._step(value)
        blocked = [p for p in self._processes if not p.done]
        if blocked:
            names = ", ".join(p.name for p in blocked[:8])
            raise DeadlockError(
                f"{len(blocked)} process(es) blocked forever at t={self.now}: {names}"
            )
        return self.now

    def all_done(self) -> bool:
        """True if every spawned process has finished."""
        return all(p.done for p in self._processes)


class DeadlockError(RuntimeError):
    """Raised when the event heap drains while processes are still blocked."""


def join_all(procs: Iterable[SimProcess]) -> list[Any]:
    """Collect results of finished processes, re-raising the first error."""
    results = []
    for p in procs:
        if p.error is not None:
            raise p.error
        results.append(p.result)
    return results
